//! Engine-equivalence tier for the axis-generic continuation engine: the
//! in-place system reparameterization (`set_mu`, `set_profitability`,
//! `patch_cps`) must be **bit-exact** to rebuilding the system from
//! scratch, the `ContinuationSolver` must agree with independent cold
//! solves on every axis, the Theorem 6 tangent predictor
//! (`WarmStart::Tangent` seeded from `Sensitivity::directional`) must
//! land on the same equilibria, and the block fan-out must stay
//! bit-identical for any thread count on the new axes.
//!
//! Together with the µ-sweep case in `tests/alloc_free.rs` (zero heap
//! allocation per warm sweep) this pins the axis-engine contract: a
//! kernel patch is a *representation* change, never an *answer* change,
//! and continuation along any axis is a *speed* optimization, never an
//! *answer* change.

use subcomp::exp::scenarios::{random_specs, section5_system};
use subcomp::exp::sweep::{Axis, ContinuationSolver, EqGrid, GridContext};
use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::{NashSolver, WarmStart};
use subcomp::game::sensitivity::Sensitivity;
use subcomp::game::workspace::SolveWorkspace;
use subcomp::model::aggregation::{build_system, ExpCpSpec};

fn nash(tol: f64) -> NashSolver {
    NashSolver::default().with_tol(tol)
}

// ---------------------------------------------------------------------------
// Kernel-patch reparameterization is bit-exact to a full rebuild
// ---------------------------------------------------------------------------

#[test]
fn set_mu_is_bit_exact_to_rebuild_across_markets() {
    for (seed, n) in [(11u64, 3usize), (12, 5), (13, 8)] {
        let specs = random_specs(n, seed);
        let base = SubsidyGame::new(build_system(&specs, 1.0).unwrap(), 0.55, 0.8).unwrap();
        let mut patched = base.clone();
        for mu in [0.4, 1.0, 2.5, 6.0] {
            patched.set_mu(mu).unwrap();
            let rebuilt = SubsidyGame::new(build_system(&specs, mu).unwrap(), 0.55, 0.8).unwrap();
            let a = nash(1e-9).solve(&patched).unwrap();
            let b = nash(1e-9).solve(&rebuilt).unwrap();
            assert_eq!(a.subsidies, b.subsidies, "seed {seed}, mu {mu}");
            assert_eq!(a.state.phi.to_bits(), b.state.phi.to_bits());
            assert_eq!(a.iterations, b.iterations, "identical solves sweep for sweep");
            assert_eq!(a.residual.to_bits(), b.residual.to_bits());
        }
    }
}

#[test]
fn set_profitability_is_bit_exact_to_rebuild() {
    let specs = random_specs(6, 21);
    let base = SubsidyGame::new(build_system(&specs, 1.0).unwrap(), 0.6, 0.9).unwrap();
    for (i, v) in [(0usize, 0.05), (2, 1.4), (5, 0.0)] {
        let mut patched = base.clone();
        patched.set_profitability(i, v).unwrap();
        let mut respec = specs.clone();
        respec[i].v = v;
        let rebuilt = SubsidyGame::new(build_system(&respec, 1.0).unwrap(), 0.6, 0.9).unwrap();
        let a = nash(1e-9).solve(&patched).unwrap();
        let b = nash(1e-9).solve(&rebuilt).unwrap();
        assert_eq!(a.subsidies, b.subsidies, "v[{i}] = {v}");
        assert_eq!(a.utilities, b.utilities);
        // And the cloning shim rides the same path.
        let shimmed = base.with_profitability(i, v).unwrap();
        let c = nash(1e-9).solve(&shimmed).unwrap();
        assert_eq!(a.subsidies, c.subsidies);
    }
}

#[test]
fn patch_cps_is_bit_exact_to_rebuild_through_a_nash_solve() {
    // Replace one provider wholesale (new β — a distinct-β slot
    // re-derivation — and new demand/profitability), then check the full
    // equilibrium pipeline agrees bit for bit with a from-scratch system.
    let specs = random_specs(5, 31);
    let base_sys = build_system(&specs, 1.2).unwrap();
    let mut respec = specs.clone();
    respec[3] = ExpCpSpec::unit(4.5, 7.0, 0.9);
    let replacement = respec[3].build(base_sys.cp(3).name().to_string());

    let mut patched_sys = base_sys.clone();
    patched_sys.patch_cps([(3, replacement)]).unwrap();
    let rebuilt_sys = {
        let cps: Vec<_> = (0..5)
            .map(|i| {
                let s = &respec[i];
                s.build(base_sys.cp(i).name().to_string())
            })
            .collect();
        subcomp::model::system::System::new(
            cps,
            1.2,
            subcomp::model::utilization::LinearUtilization,
        )
        .unwrap()
    };
    let a = nash(1e-9).solve(&SubsidyGame::new(patched_sys, 0.6, 0.8).unwrap()).unwrap();
    let b = nash(1e-9).solve(&SubsidyGame::new(rebuilt_sys, 0.6, 0.8).unwrap()).unwrap();
    assert_eq!(a.subsidies, b.subsidies);
    assert_eq!(a.state.phi.to_bits(), b.state.phi.to_bits());
    assert_eq!(a.utilities, b.utilities);
}

// ---------------------------------------------------------------------------
// Engine vs independent cold solves on the new axes
// ---------------------------------------------------------------------------

#[test]
fn mu_axis_continuation_matches_independent_cold_solves() {
    let sys = section5_system();
    let base = SubsidyGame::new(sys.clone(), 0.6, 0.8).unwrap();
    let mus = [0.4, 0.7, 1.0, 1.6, 2.5];
    let grid =
        ContinuationSolver::over(Axis::Cap, Axis::Mu).solve_game(&base, &[0.8], &mus).unwrap();
    let reference = nash(1e-8);
    for (c, &mu) in mus.iter().enumerate() {
        let game = SubsidyGame::new(sys.with_capacity(mu).unwrap(), 0.6, 0.8).unwrap();
        let cold = reference.solve(&game).unwrap();
        let pt = grid.point(0, c);
        for i in 0..8 {
            assert!(
                (pt.subsidies[i] - cold.subsidies[i]).abs() < 1e-6,
                "mu = {mu}, CP {i}: continuation {} vs cold {}",
                pt.subsidies[i],
                cold.subsidies[i]
            );
        }
        assert!((pt.phi - cold.state.phi).abs() < 1e-6);
        assert!((pt.revenue - cold.isp_revenue(&game)).abs() < 1e-6);
    }
}

#[test]
fn profitability_axis_continuation_matches_independent_cold_solves() {
    let sys = section5_system();
    let base = SubsidyGame::new(sys, 0.6, 1.0).unwrap();
    let vs = [0.2, 0.6, 1.0, 1.5, 2.0];
    let j = 6; // the a5-b2 type of the v = 1 block
    let grid = ContinuationSolver::over(Axis::Cap, Axis::Profitability(j))
        .solve_game(&base, &[1.0], &vs)
        .unwrap();
    let reference = nash(1e-8);
    for (c, &v) in vs.iter().enumerate() {
        let game = base.with_profitability(j, v).unwrap();
        let cold = reference.solve(&game).unwrap();
        let pt = grid.point(0, c);
        for i in 0..8 {
            assert!((pt.subsidies[i] - cold.subsidies[i]).abs() < 1e-6, "v[{j}] = {v}, CP {i}");
        }
    }
    // Theorem 5's direction along the swept axis: the shocked provider's
    // equilibrium subsidy is monotone nondecreasing in its profitability.
    for c in 1..vs.len() {
        assert!(grid.point(0, c).subsidies[j] >= grid.point(0, c - 1).subsidies[j] - 1e-9);
    }
}

#[test]
fn mu_price_grid_thread_fanout_is_bit_identical() {
    let sys = section5_system();
    let base = SubsidyGame::new(sys, 0.0, 0.7).unwrap();
    let mus = [0.6, 1.0, 1.8];
    let prices = [0.3, 0.55, 0.9, 1.3];
    let solver = ContinuationSolver::over(Axis::Mu, Axis::Price).with_block(2);
    let one = solver.clone().with_threads(1).solve_game(&base, &mus, &prices).unwrap();
    let four = solver.clone().with_threads(4).solve_game(&base, &mus, &prices).unwrap();
    assert_eq!(one, four);
    // The sequential caller-owned-context engine is the same bits again,
    // and a context survives reuse across calls.
    let mut ctx = GridContext::for_game(&base);
    let mut seq = EqGrid::empty();
    solver.solve_seq_into(&mut ctx, &mus, &prices, &mut seq).unwrap();
    assert_eq!(one, seq);
    let mut again = EqGrid::empty();
    solver.solve_seq_into(&mut ctx, &mus, &prices, &mut again).unwrap();
    assert_eq!(seq, again);
}

// ---------------------------------------------------------------------------
// Tangent predictor-corrector
// ---------------------------------------------------------------------------

#[test]
fn tangent_warm_start_corrects_to_the_cold_equilibrium() {
    let sys = section5_system();
    let mut game = SubsidyGame::new(sys.clone(), 0.6, 0.8).unwrap();
    let solver = nash(1e-9);
    let mut ws = SolveWorkspace::for_game(&game);

    game.set_mu(1.0).unwrap();
    solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
    let ds = Sensitivity::directional(&mut game, ws.subsidies(), Axis::Mu).unwrap();

    let dmu = 0.15;
    game.set_mu(1.0 + dmu).unwrap();
    let stats = solver
        .solve_into(&game, WarmStart::Tangent { ds_dtheta: &ds, dtheta: dmu }, &mut ws)
        .unwrap();
    assert!(stats.converged);
    let cold = solver
        .solve(&SubsidyGame::new(sys.with_capacity(1.0 + dmu).unwrap(), 0.6, 0.8).unwrap())
        .unwrap();
    for i in 0..8 {
        assert!(
            (ws.subsidies()[i] - cold.subsidies[i]).abs() < 1e-7,
            "CP {i}: tangent-corrected {} vs cold {}",
            ws.subsidies()[i],
            cold.subsidies[i]
        );
    }
}

#[test]
fn tangent_mode_engine_matches_previous_mode() {
    let sys = section5_system();
    let base = SubsidyGame::new(sys, 0.6, 0.8).unwrap();
    let mus = [0.8, 1.0, 1.3, 1.7];
    let plain = ContinuationSolver::over(Axis::Cap, Axis::Mu);
    let previous = plain.solve_game(&base, &[0.8], &mus).unwrap();
    let tangent = plain.clone().with_tangent(true).solve_game(&base, &[0.8], &mus).unwrap();
    for c in 0..mus.len() {
        let (a, b) = (previous.point(0, c), tangent.point(0, c));
        for i in 0..8 {
            assert!((a.subsidies[i] - b.subsidies[i]).abs() < 1e-6, "mu = {}, CP {i}", mus[c]);
        }
    }
    assert_eq!(tangent.cold_solves(), previous.cold_solves());
}

#[test]
fn tangent_warm_start_validates_inputs() {
    let game = SubsidyGame::new(section5_system(), 0.6, 0.8).unwrap();
    let solver = nash(1e-8);
    let mut ws = SolveWorkspace::for_game(&game);
    let short = [0.1; 3];
    assert!(solver
        .solve_into(&game, WarmStart::Tangent { ds_dtheta: &short, dtheta: 0.1 }, &mut ws)
        .is_err());
    let ds = [0.1; 8];
    assert!(solver
        .solve_into(&game, WarmStart::Tangent { ds_dtheta: &ds, dtheta: f64::NAN }, &mut ws)
        .is_err());
    // A non-finite tangent *component* degrades to Previous for that
    // provider instead of poisoning the solve.
    let mut bad = [0.0; 8];
    bad[2] = f64::INFINITY;
    let stats = solver
        .solve_into(&game, WarmStart::Tangent { ds_dtheta: &bad, dtheta: 0.1 }, &mut ws)
        .unwrap();
    assert!(stats.converged);
}
