//! Counting-allocator tier: proves the workspace solve engine performs
//! **zero heap allocation after warm-up** — the property `solve_farm`
//! relies on to batch tens of thousands of games without allocator
//! traffic.
//!
//! A thread-local counting wrapper around the system allocator tallies
//! every `alloc`/`realloc`/`alloc_zeroed` issued by the *measuring thread*
//! while a tracking flag is set (other test threads are invisible to the
//! counter, so this suite coexists with the parallel test runner). Each
//! assertion warms a [`SolveWorkspace`] up on the games under test, then
//! re-runs the solves with counting enabled and demands a zero count.
//!
//! The `unsafe` below is the bare minimum a `GlobalAlloc` wrapper
//! requires; it delegates straight to `std::alloc::System` and touches
//! nothing else. (The workspace-wide `unsafe_code = "deny"` lint is
//! relaxed for this one test crate only.)

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::{NashSolver, WarmStart};
use subcomp::game::vi::{extragradient_solve_into, projection_solve_into, ViConfig};
use subcomp::game::workspace::SolveWorkspace;
use subcomp::model::aggregation::{build_system, ExpCpSpec};

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

impl CountingAllocator {
    fn record() {
        // `try_with` so allocations during TLS teardown cannot abort.
        let _ = TRACKING.try_with(|t| {
            if t.get() {
                let _ = ALLOCATIONS.try_with(|a| a.set(a.get() + 1));
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        CountingAllocator::record();
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        CountingAllocator::record();
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        CountingAllocator::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting enabled on this thread and returns
/// how many allocations it performed.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCATIONS.with(|a| a.set(0));
    TRACKING.with(|t| t.set(true));
    let result = f();
    TRACKING.with(|t| t.set(false));
    (ALLOCATIONS.with(|a| a.get()), result)
}

/// Small, fast-converging games of assorted sizes (kept tiny so the suite
/// stays quick in debug builds; allocation behaviour does not depend on
/// problem size).
fn games() -> Vec<SubsidyGame> {
    let mk = |n: usize, p: f64, q: f64| {
        let specs: Vec<ExpCpSpec> = (0..n)
            .map(|i| {
                ExpCpSpec::unit(
                    2.0 + (i % 2) as f64 * 3.0,
                    2.0 + (i % 3) as f64,
                    0.5 + 0.1 * i as f64,
                )
            })
            .collect();
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    };
    vec![mk(3, 0.6, 0.8), mk(5, 0.5, 0.6), mk(2, 0.8, 1.0)]
}

#[test]
fn nash_solve_into_is_allocation_free_after_warmup() {
    let games = games();
    let solver = NashSolver::default().with_tol(1e-7);
    let mut ws = SolveWorkspace::new();
    // Warm-up: one solve per game sizes every buffer (including across
    // different n — buffers only grow).
    for game in &games {
        solver.solve_into(game, WarmStart::Zero, &mut ws).unwrap();
    }
    // The measured loop mimics solve_farm's solver loop: many games, one
    // workspace, cold and warm starts interleaved.
    let (allocs, stats) = allocations_during(|| {
        let mut last = None;
        for _ in 0..5 {
            for game in &games {
                let cold = solver.solve_into(game, WarmStart::Zero, &mut ws).unwrap();
                let warm = solver.solve_into(game, WarmStart::Previous, &mut ws).unwrap();
                assert!(cold.converged && warm.converged);
                last = Some(warm);
            }
        }
        last.unwrap()
    });
    assert!(stats.converged);
    assert_eq!(allocs, 0, "warm Nash solves must not touch the heap, saw {allocs} allocations");
}

#[test]
fn jacobi_solve_into_is_allocation_free_after_warmup() {
    let games = games();
    let solver = NashSolver::default().jacobi().with_damping(0.7).with_tol(1e-6);
    let mut ws = SolveWorkspace::new();
    for game in &games {
        solver.solve_into(game, WarmStart::Zero, &mut ws).unwrap();
    }
    let (allocs, _) = allocations_during(|| {
        for game in &games {
            solver.solve_into(game, WarmStart::Zero, &mut ws).unwrap();
        }
    });
    assert_eq!(allocs, 0, "warm Jacobi solves must not touch the heap, saw {allocs} allocations");
}

#[test]
fn vi_solvers_are_allocation_free_after_warmup() {
    let games = games();
    let cfg = ViConfig { tol: 1e-5, ..Default::default() };
    let mut ws = SolveWorkspace::new();
    let starts: Vec<Vec<f64>> = games.iter().map(|g| vec![0.0; g.n()]).collect();
    for (game, s0) in games.iter().zip(&starts) {
        projection_solve_into(game, s0, &cfg, &mut ws).unwrap();
        extragradient_solve_into(game, s0, &cfg, &mut ws).unwrap();
    }
    let (allocs, _) = allocations_during(|| {
        for (game, s0) in games.iter().zip(&starts) {
            let pj = projection_solve_into(game, s0, &cfg, &mut ws).unwrap();
            let eg = extragradient_solve_into(game, s0, &cfg, &mut ws).unwrap();
            assert!(pj.converged && eg.converged);
        }
    });
    assert_eq!(allocs, 0, "warm VI solves must not touch the heap, saw {allocs} allocations");
}

#[test]
fn grid_solver_is_allocation_free_after_warmup() {
    // The continuation grid engine (`GridSolver::solve_seq_into`): after
    // one warm-up pass of the same shape, a full multi-row sweep — game
    // reparameterization via set_price/set_cap, seeded solves, cold
    // fallbacks, result writes — performs zero heap allocation for the
    // whole 3×8 grid (a fortiori zero per grid point).
    use subcomp::exp::scenarios::section5_system;
    use subcomp::exp::sweep::{EqGrid, GridContext, GridSolver};

    let system = section5_system();
    let qs = [0.0, 0.7, 1.4];
    let prices: [f64; 8] = std::array::from_fn(|k| 0.15 + 0.25 * k as f64);
    let solver = GridSolver::default();
    let mut ctx = GridContext::new(&system);
    let mut grid = EqGrid::empty();
    // Warm-up: sizes the context, the workspace and every output buffer.
    solver.solve_seq_into(&mut ctx, &qs, &prices, &mut grid).unwrap();
    let reference = grid.clone();
    let (allocs, ()) = allocations_during(|| {
        solver.solve_seq_into(&mut ctx, &qs, &prices, &mut grid).unwrap();
    });
    assert_eq!(
        allocs, 0,
        "a warm 3x8 grid sweep must not touch the heap, saw {allocs} allocations"
    );
    assert_eq!(grid, reference, "the warm re-solve must reproduce the grid exactly");
    assert_eq!(grid.n_rows(), 3);
    assert_eq!(grid.n_cols(), 8);
    assert!(grid.cold_solves() >= 1);
}

#[test]
fn mu_axis_sweep_is_allocation_free_after_warmup() {
    // The axis-generic continuation engine on a non-(q, p) axis: a warm
    // µ-sweep — capacity reparameterized in place via set_mu per point,
    // warm-started solves, result writes — performs zero heap allocation,
    // extending the PR-4 zero-allocation contract to the µ/v writes.
    use subcomp::exp::scenarios::section5_system;
    use subcomp::exp::sweep::{Axis, ContinuationSolver, EqGrid, GridContext};

    let base = SubsidyGame::new(section5_system(), 0.6, 0.9).unwrap();
    let mus: [f64; 8] = std::array::from_fn(|k| 0.5 + 0.35 * k as f64);
    let solver = ContinuationSolver::over(Axis::Cap, Axis::Mu);
    let mut ctx = GridContext::for_game(&base);
    let mut grid = EqGrid::empty();
    // Warm-up: sizes the context, the workspace and every output buffer.
    solver.solve_seq_into(&mut ctx, &[0.9], &mus, &mut grid).unwrap();
    let reference = grid.clone();
    let (allocs, ()) = allocations_during(|| {
        solver.solve_seq_into(&mut ctx, &[0.9], &mus, &mut grid).unwrap();
    });
    assert_eq!(
        allocs, 0,
        "a warm 8-point mu sweep must not touch the heap, saw {allocs} allocations"
    );
    assert_eq!(grid, reference, "the warm re-solve must reproduce the sweep exactly");
    assert_eq!(grid.n_cols(), 8);
    assert!(grid.cold_solves() >= 1);
}

#[test]
fn lane_solve_into_is_allocation_free_after_warmup() {
    // The SoA lane engine: after one warm-up solve per batch shape, a
    // lockstep multi-lane solve — population refills, threshold best
    // responses, per-lane masking, convergence epilogues — performs zero
    // heap allocation, including when one workspace hops between lane
    // games of different shapes (buffers only grow).
    use subcomp::game::lane::{LaneGame, LaneSolver, LaneWorkspace};

    let mk = |n: usize, p: f64, q: f64, mu: f64| {
        let specs: Vec<ExpCpSpec> = (0..n)
            .map(|i| {
                ExpCpSpec::unit(
                    2.0 + (i % 2) as f64 * 3.0,
                    2.0 + (i % 3) as f64,
                    0.5 + 0.1 * i as f64,
                )
            })
            .collect();
        SubsidyGame::new(build_system(&specs, mu).unwrap(), p, q).unwrap()
    };
    let trio = [mk(3, 0.6, 0.8, 1.0), mk(3, 0.5, 0.6, 1.4), mk(3, 0.8, 1.0, 0.7)];
    let pair = [mk(5, 0.6, 0.9, 1.1), mk(5, 0.4, 0.5, 0.9)];
    let wide = LaneGame::from_games(&trio.iter().collect::<Vec<_>>()).unwrap();
    let tall = LaneGame::from_games(&pair.iter().collect::<Vec<_>>()).unwrap();

    let solver = LaneSolver::default();
    let mut lw = LaneWorkspace::new();
    // Warm-up on both shapes sizes every buffer.
    assert_eq!(solver.solve_into(&wide, &mut lw), 3);
    assert_eq!(solver.solve_into(&tall, &mut lw), 2);
    let (allocs, converged) = allocations_during(|| {
        let mut converged = 0;
        for _ in 0..3 {
            converged += solver.solve_into(&wide, &mut lw);
            converged += solver.solve_into(&tall, &mut lw);
        }
        converged
    });
    assert_eq!(converged, 15);
    assert_eq!(allocs, 0, "warm lane solves must not touch the heap, saw {allocs} allocations");
}

#[test]
fn warm_equilibrium_server_is_allocation_free_after_warmup() {
    // The resident service: after warm-up, both fast paths stay off the
    // heap — a cache hit (fingerprint pass + shared-snapshot clone) and
    // a warm re-solve (eviction retires a unique snapshot to the
    // freelist, `blank()` recycles it, `capture_into` refills the same
    // buffers). Sensitivity reads are excluded: the returned derivative
    // is a fresh `Vec` by contract.
    use subcomp::exp::server::{EquilibriumServer, Request, Source};
    use subcomp::game::game::Axis;

    let game = games().into_iter().next().unwrap();
    let p0 = Axis::Price.value(&game);

    let cycle = |server: &mut EquilibriumServer, expect: Option<Source>| {
        for p in [p0, p0 * 1.05] {
            server.serve(Request::Update { axis: Axis::Price, value: p }).unwrap();
            let (_, src) = server.equilibrium().unwrap();
            if let Some(expect) = expect {
                assert_eq!(src, expect);
            }
        }
    };

    // Cache-hit path: both operating points resident, reads alternate.
    let mut hits = EquilibriumServer::new(game.clone(), 1, 4);
    cycle(&mut hits, None); // warm-up solves size every buffer
    let (allocs, ()) = allocations_during(|| {
        for _ in 0..5 {
            cycle(&mut hits, Some(Source::CacheHit));
        }
    });
    assert_eq!(allocs, 0, "cache hits must not touch the heap, saw {allocs} allocations");

    // Warm re-solve path: a 1-entry cache, so alternating points always
    // miss, evict the resident snapshot to the freelist and re-solve
    // from the slot's previous iterate.
    let mut warm = EquilibriumServer::new(game, 1, 1);
    cycle(&mut warm, None);
    cycle(&mut warm, Some(Source::Warm));
    let (allocs, ()) = allocations_during(|| {
        for _ in 0..5 {
            cycle(&mut warm, Some(Source::Warm));
        }
    });
    assert_eq!(allocs, 0, "warm re-solves must not touch the heap, saw {allocs} allocations");
}

#[test]
fn budgeted_warm_serve_is_allocation_free_after_warmup() {
    // The deadline machinery must be free on the happy path: a budget
    // generous enough for convergence adds only integer compares inside
    // the sweep loop (no deadline bookkeeping on the heap), so the warm
    // re-solve cycle stays at zero allocations exactly like the
    // unbudgeted one above.
    use subcomp::exp::server::{EquilibriumServer, Request, Source};
    use subcomp::game::game::Axis;
    use subcomp::game::workspace::SolveBudget;

    let game = games().into_iter().next().unwrap();
    let p0 = Axis::Price.value(&game);
    let mut server = EquilibriumServer::new(game, 1, 1).with_budget(SolveBudget::sweeps(10_000));

    let cycle = |server: &mut EquilibriumServer, expect: Option<Source>| {
        for p in [p0, p0 * 1.05] {
            server.serve(Request::Update { axis: Axis::Price, value: p }).unwrap();
            let (_, src) = server.equilibrium().unwrap();
            assert_ne!(src, Source::Partial, "a generous budget must not degrade the answer");
            if let Some(expect) = expect {
                assert_eq!(src, expect);
            }
        }
    };
    cycle(&mut server, None); // warm-up solves size every buffer
    cycle(&mut server, Some(Source::Warm));
    let (allocs, ()) = allocations_during(|| {
        for _ in 0..5 {
            cycle(&mut server, Some(Source::Warm));
        }
    });
    assert_eq!(
        allocs, 0,
        "budget-checked warm solves must not touch the heap, saw {allocs} allocations"
    );
}

#[test]
fn snapshot_index_publish_cycle_is_allocation_free_after_warmup() {
    // The epoch-published snapshot index: once the retired freelist holds
    // a recyclable map buffer for every key-set shape in rotation, a
    // publish (copy-on-write rebuild into a recycled buffer + generation
    // bump) and the reader's refresh-and-get both stay off the heap.
    use subcomp::game::snapshot::{EqSnapshot, SnapshotIndex};

    let snaps: Vec<std::sync::Arc<EqSnapshot>> = {
        let game = games().into_iter().next().unwrap();
        let solver = NashSolver::default().with_tol(1e-7);
        let mut ws = SolveWorkspace::new();
        (0..2)
            .map(|_| {
                let stats = solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
                std::sync::Arc::new(EqSnapshot::capture(&game, &ws, stats))
            })
            .collect()
    };

    let index = SnapshotIndex::new();
    let mut reader = index.reader();
    let cycle = |index: &SnapshotIndex, reader: &mut subcomp::game::snapshot::SnapshotReader| {
        for (key, snap) in snaps.iter().enumerate() {
            index.publish(key as u64, 0x5eed ^ key as u64, std::sync::Arc::clone(snap));
            let got = reader.get(key as u64).expect("just published");
            assert!(std::sync::Arc::ptr_eq(&got, snap));
        }
    };
    // Warm-up: fills the retired freelist with unique buffers of the
    // steady-state shape (the HashMap only ever holds 2 keys here).
    for _ in 0..4 {
        cycle(&index, &mut reader);
    }
    let (allocs, ()) = allocations_during(|| {
        for _ in 0..8 {
            cycle(&index, &mut reader);
        }
    });
    assert_eq!(
        allocs, 0,
        "warm snapshot-index publish/read cycles must not touch the heap, saw {allocs} allocations"
    );
}

#[test]
fn sharded_router_warm_serve_is_allocation_free_after_warmup() {
    // The router side of the sharded serve path. The counting allocator
    // is thread-local, so shard-thread work is invisible here by design —
    // the shard's own warm path is pinned by
    // `warm_equilibrium_server_is_allocation_free_after_warmup` above.
    // What this proves: the router's request dispatch (lock-free index
    // probe, channel send/recv over the persistent sync channels, reply
    // plumbing) adds zero allocations of its own, for both the lock-free
    // read and the update/re-read cycle through the owning shard.
    use subcomp::exp::server::{Request, ShardedConfig, ShardedServer, Source};
    use subcomp::game::game::Axis;

    let game = games().into_iter().next().unwrap();
    let p0 = Axis::Price.value(&game);
    let mut server =
        ShardedServer::new(vec![(0, game)], &ShardedConfig { shards: 1, pool: 1, cache: 4 })
            .unwrap();

    let cycle = |server: &mut ShardedServer| {
        for p in [p0, p0 * 1.05] {
            server.serve(0, Request::Update { axis: Axis::Price, value: p }).unwrap();
            // First read after a write goes to the shard (the write
            // retracted the published snapshot)…
            let reply = server.serve(0, Request::Equilibrium).unwrap();
            let subcomp::exp::server::Reply::Equilibrium { source, .. } = reply else {
                panic!("equilibrium read answered a non-equilibrium reply");
            };
            assert_ne!(source, Source::LockFree);
            // …and the re-read is served lock-free off the index.
            let reply = server.serve(0, Request::Equilibrium).unwrap();
            let subcomp::exp::server::Reply::Equilibrium { source, .. } = reply else {
                panic!("equilibrium read answered a non-equilibrium reply");
            };
            assert_eq!(source, Source::LockFree);
        }
    };
    for _ in 0..3 {
        cycle(&mut server); // warm-up: shard buffers + index freelist
    }
    let (allocs, ()) = allocations_during(|| {
        for _ in 0..5 {
            cycle(&mut server);
        }
    });
    assert_eq!(
        allocs, 0,
        "the warm sharded router path must not allocate on the serving thread, \
         saw {allocs} allocations"
    );
}

#[test]
fn fd_axis_shift_is_allocation_free_after_warmup() {
    // The clone-free finite-difference leg of the sensitivity engine:
    // `Sensitivity::axis_shift_into` probes the game in place (apply
    // θ±h, evaluate marginal utilities into workspace buffers, restore
    // θ bit-exactly) instead of cloning the game per probe. After one
    // warm-up call per axis sizes the `FdWorkspace` and the output
    // buffer, repeated shifts across every supported axis stay off the
    // heap — and the game parameter really is restored, so back-to-back
    // calls keep producing identical derivatives.
    use subcomp::game::game::Axis;
    use subcomp::game::sensitivity::{FdWorkspace, Sensitivity};

    let mut game = games().into_iter().next().unwrap();
    let solver = NashSolver::default().with_tol(1e-8);
    let mut ws = SolveWorkspace::new();
    solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
    let s: Vec<f64> = ws.subsidies().to_vec();
    let axes = [Axis::Mu, Axis::Price, Axis::Profitability(0), Axis::Profitability(2)];

    let mut fd = FdWorkspace::new();
    let mut out = Vec::new();
    let mut reference = Vec::new();
    for &axis in &axes {
        Sensitivity::axis_shift_into(&mut game, &s, axis, &mut fd, &mut out).unwrap();
        reference.push(out.clone());
    }
    let (allocs, ()) = allocations_during(|| {
        for _ in 0..5 {
            for (&axis, reference) in axes.iter().zip(&reference) {
                Sensitivity::axis_shift_into(&mut game, &s, axis, &mut fd, &mut out).unwrap();
                assert_eq!(&out, reference, "in-place probe+restore must be deterministic");
            }
        }
    });
    assert_eq!(allocs, 0, "warm FD axis shifts must not touch the heap, saw {allocs} allocations");
}

#[test]
fn warm_adoption_loop_tick_is_allocation_free_after_warmup() {
    // The closed adoption loop's resident tick: lock-free externality
    // read, SoA simulation over the owned blocks, in-place µ write and
    // warm re-solve through the sharded router. On the documented
    // resident configuration — serial block fan-out, no tangent
    // seeding, no demand write-back — a tick performs zero allocations
    // on the driving thread after warm-up (shard-thread work is
    // invisible to the thread-local counter and is pinned by the
    // server cases above).
    use subcomp::exp::adoption::{AdoptionLoop, LoopConfig};
    use subcomp::exp::scenarios::section5_specs;

    let cfg = LoopConfig {
        seed: 7,
        cohorts: 1,
        users: 2_000,
        chunk: 512,
        threads: 1,
        demand_every: 0,
        seed_tangent: false,
        shards: 1,
        ..Default::default()
    };
    let mut lp = AdoptionLoop::new(&section5_specs(), 3.0, 0.6, 0.8, &cfg).unwrap();
    for _ in 0..3 {
        lp.tick().unwrap(); // warm-up: sizes shard buffers and the snapshot freelist
    }
    let (allocs, adopted) = allocations_during(|| {
        let mut adopted = 0;
        for _ in 0..5 {
            adopted = lp.tick().unwrap().adopted;
        }
        adopted
    });
    assert!(adopted > 0, "the warm loop must keep simulating");
    assert_eq!(
        allocs, 0,
        "a warm adoption tick must not allocate on the driving thread, \
         saw {allocs} allocations"
    );
}

#[test]
fn counter_actually_counts() {
    // Sanity check on the harness itself: an allocating closure must be
    // visible, otherwise the zero assertions above are vacuous.
    let (allocs, v) = allocations_during(|| vec![1u8; 4096]);
    assert!(allocs >= 1, "the counting allocator missed a Vec allocation");
    assert_eq!(v.len(), 4096);
}
