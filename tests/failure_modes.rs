//! Failure injection and degenerate-input behaviour: the library must
//! fail loudly and precisely, never hang or return garbage.

use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::game::sensitivity::Sensitivity;
use subcomp::model::aggregation::{build_system, ExpCpSpec};
use subcomp::num::NumError;

fn tiny_market() -> subcomp::model::system::System {
    build_system(&[ExpCpSpec::unit(3.0, 2.0, 0.8)], 1.0).unwrap()
}

#[test]
fn zero_profitability_market_is_inert() {
    // Nobody can afford to subsidize: equilibrium is the baseline and the
    // machinery reports it as such rather than failing.
    let specs = [ExpCpSpec::unit(3.0, 2.0, 0.0), ExpCpSpec::unit(5.0, 4.0, 0.0)];
    let game = SubsidyGame::new(build_system(&specs, 1.0).unwrap(), 0.5, 1.0).unwrap();
    let eq = NashSolver::default().solve(&game).unwrap();
    assert!(eq.subsidies.iter().all(|&s| s == 0.0));
    assert!(eq.utilities.iter().all(|&u| u == 0.0));
}

#[test]
fn absurd_price_still_solves() {
    // At a price of 50 the market is effectively dead; the fixed point
    // must still be found (phi -> 0), not diverge.
    let game = SubsidyGame::new(tiny_market(), 50.0, 1.0).unwrap();
    let eq = NashSolver::default().solve(&game).unwrap();
    assert!(eq.state.phi < 1e-10);
    assert!(eq.state.theta() < 1e-10);
}

#[test]
fn tiny_capacity_heavy_load() {
    // Capacity 1e-3 with unit demand: extreme congestion, still solvable.
    let sys = build_system(&[ExpCpSpec::unit(1.0, 1.0, 1.0)], 1e-3).unwrap();
    let state = sys.state_at_uniform_price(0.1).unwrap();
    assert!(state.phi > 1.0, "must be heavily congested, phi = {}", state.phi);
    assert!(state.residual(&sys) < 1e-8);
}

#[test]
fn invalid_constructions_are_rejected_with_context() {
    let sys = tiny_market();
    match SubsidyGame::new(sys.clone(), -1.0, 1.0) {
        Err(NumError::Domain { what, .. }) => assert!(what.contains("price")),
        other => panic!("expected domain error, got {other:?}"),
    }
    match SubsidyGame::new(sys, 1.0, f64::NAN) {
        Err(NumError::Domain { .. }) => {}
        other => panic!("expected domain error, got {other:?}"),
    }
}

#[test]
fn wrong_arity_profiles_rejected_everywhere() {
    let game = SubsidyGame::new(tiny_market(), 0.5, 1.0).unwrap();
    assert!(matches!(game.state(&[0.1, 0.1]), Err(NumError::DimensionMismatch { .. })));
    assert!(matches!(game.utilities(&[]), Err(NumError::DimensionMismatch { .. })));
    assert!(matches!(
        Sensitivity::compute(&game, &[0.1, 0.2]),
        Err(NumError::DimensionMismatch { .. })
    ));
}

#[test]
fn out_of_box_profiles_rejected() {
    let game = SubsidyGame::new(tiny_market(), 0.5, 0.3).unwrap();
    assert!(game.state(&[0.4]).is_err(), "subsidy above cap must be rejected");
    assert!(game.state(&[-0.1]).is_err(), "negative subsidy must be rejected");
}

#[test]
fn starved_solver_reports_max_iterations() {
    let specs = [ExpCpSpec::unit(4.0, 2.0, 1.0), ExpCpSpec::unit(5.0, 3.0, 1.0)];
    let game = SubsidyGame::new(build_system(&specs, 1.0).unwrap(), 0.6, 1.0).unwrap();
    let starved = NashSolver::default().with_tol(1e-12).with_max_sweeps(2);
    match starved.solve(&game) {
        Err(NumError::MaxIterations { max_iter, residual }) => {
            assert_eq!(max_iter, 2);
            assert!(residual.is_finite());
        }
        other => panic!("expected MaxIterations, got {other:?}"),
    }
}

#[test]
fn clamped_price_mode_keeps_effective_price_nonnegative() {
    let game = SubsidyGame::new(tiny_market(), 0.2, 0.8).unwrap().with_clamped_price(true);
    let t = game.effective_prices(&[0.7]);
    assert_eq!(t[0], 0.0);
    // And the game still solves.
    let eq = NashSolver::default().solve(&game).unwrap();
    assert!(eq.converged);
}

#[test]
fn empty_market_end_to_end() {
    let sys = build_system(&[], 1.0).unwrap();
    let game = SubsidyGame::new(sys, 0.5, 1.0).unwrap();
    let eq = NashSolver::default().solve(&game).unwrap();
    assert!(eq.subsidies.is_empty());
    assert_eq!(eq.state.phi, 0.0);
    assert_eq!(eq.isp_revenue(&game), 0.0);
    let sens = Sensitivity::compute(&game, &[]).unwrap();
    assert!(sens.ds_dq.is_empty());
}

#[test]
fn near_degenerate_cap_equals_zero_cap_limit() {
    // q = 1e-12 behaves like q = 0 (no meaningful subsidies), with no
    // numerical drama in the sensitivity partition.
    let game = SubsidyGame::new(tiny_market(), 0.5, 1e-12).unwrap();
    let eq = NashSolver::default().solve(&game).unwrap();
    assert!(eq.subsidies[0] <= 1e-12);
    let base = SubsidyGame::new(tiny_market(), 0.5, 0.0).unwrap();
    let eq0 = NashSolver::default().solve(&base).unwrap();
    assert!((eq.state.phi - eq0.state.phi).abs() < 1e-9);
}
