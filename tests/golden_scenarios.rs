//! Golden-snapshot regression tier: re-runs the full scenario corpus and
//! diffs every field of every result against the committed snapshots in
//! `tests/golden/`, under the per-field tolerance policy of
//! `subcomp_exp::golden::snapshot_tolerances`.
//!
//! A failure here means a code change moved a pinned equilibrium (or a
//! solver-health indicator) beyond tolerance. If the change is intentional,
//! regenerate with `cargo run --release -p subcomp-exp --bin regen_golden`
//! and justify the shift in the commit message; see `tests/README.md`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use subcomp_exp::corpus::{corpus, run_scenario, ScenarioSpec};
use subcomp_exp::figures::snapshots::{figure_snapshot_names, figure_snapshots};
use subcomp_exp::golden::{diff_snapshots, render_diff, snapshot_tolerances, Json};
use subcomp_exp::sweep::parallel_map;

/// Largest scenario the *debug* diff run re-solves. The large-n ensembles
/// (n = 64, 256) take minutes without optimization, so under
/// `debug_assertions` they are diffed only for presence/canonical form;
/// release runs — CI's `--release` golden step and `regen_golden` — always
/// re-solve the full corpus.
const DEBUG_SIZE_CEILING: usize = 32;

fn diffable_specs() -> Vec<ScenarioSpec> {
    let all = corpus();
    if cfg!(debug_assertions) {
        let (run, skipped): (Vec<_>, Vec<_>) =
            all.into_iter().partition(|s| s.specs.len() <= DEBUG_SIZE_CEILING);
        for s in &skipped {
            println!(
                "skipping `{}` (n = {}) in this debug build — covered by the release golden run",
                s.name,
                s.specs.len()
            );
        }
        run
    } else {
        all
    }
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Every golden file stem this repository pins: the scenario corpus plus
/// the figure-series snapshots.
fn golden_stems() -> Vec<String> {
    let mut stems: Vec<String> = corpus().iter().map(|s| s.name.to_string()).collect();
    stems.extend(figure_snapshot_names().iter().map(|n| n.to_string()));
    stems
}

#[test]
fn golden_files_cover_exactly_the_corpus_and_figures() {
    let expected: BTreeSet<String> = golden_stems().iter().map(|s| format!("{s}.json")).collect();
    let on_disk: BTreeSet<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden/ must exist — run the regen_golden binary")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|f| f.ends_with(".json"))
        .collect();
    let missing: Vec<&String> = expected.difference(&on_disk).collect();
    let stale: Vec<&String> = on_disk.difference(&expected).collect();
    assert!(
        missing.is_empty() && stale.is_empty(),
        "golden set out of sync with the corpus + figure snapshots \
         (missing: {missing:?}, stale: {stale:?}) — \
         run `cargo run --release -p subcomp-exp --bin regen_golden`"
    );
}

#[test]
fn figure_series_match_committed_goldens() {
    // The figure pipelines (now routed through the axis-generic
    // continuation module) are pinned series-by-series exactly like the
    // scenario equilibria: a within-shape drift fails with a field diff.
    let dir = golden_dir();
    let mut report = String::new();
    let mut failed = 0usize;
    for (name, actual) in figure_snapshots().expect("figure snapshots compute") {
        let path = dir.join(format!("{name}.json"));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                report.push_str(&format!(
                    "figure `{name}`: golden {} unreadable ({e}) — run regen_golden\n",
                    path.display()
                ));
                failed += 1;
                continue;
            }
        };
        let golden = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                report.push_str(&format!("figure `{name}`: golden is corrupt: {e}\n"));
                failed += 1;
                continue;
            }
        };
        let diffs = diff_snapshots(&golden, &actual, &snapshot_tolerances);
        if !diffs.is_empty() {
            report.push_str(&render_diff(name, &diffs));
            report.push('\n');
            failed += 1;
        }
    }
    assert!(
        failed == 0,
        "{failed} figure snapshot(s) diverged:\n\n{report}\n\
         If the shift is intentional, regenerate with \
         `cargo run --release -p subcomp-exp --bin regen_golden` and explain why \
         in the commit message."
    );
}

#[test]
fn corpus_matches_committed_goldens() {
    let dir = golden_dir();
    let mut report = String::new();
    let mut failed = 0usize;

    let specs = diffable_specs();
    let results = parallel_map(&specs, threads(), run_scenario);
    let named = specs.iter().map(|s| s.name.to_string()).zip(results);
    for (name, result) in named {
        let path = dir.join(format!("{name}.json"));
        let actual = match result {
            Ok(res) => res.to_json(),
            Err(e) => {
                report.push_str(&format!("scenario `{name}`: run FAILED: {e}\n"));
                failed += 1;
                continue;
            }
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                report.push_str(&format!(
                    "scenario `{name}`: golden {} unreadable ({e}) — run regen_golden\n",
                    path.display()
                ));
                failed += 1;
                continue;
            }
        };
        let golden = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                report.push_str(&format!("scenario `{name}`: golden is corrupt: {e}\n"));
                failed += 1;
                continue;
            }
        };
        let diffs = diff_snapshots(&golden, &actual, &snapshot_tolerances);
        if !diffs.is_empty() {
            report.push_str(&render_diff(&name, &diffs));
            report.push('\n');
            failed += 1;
        }
    }

    assert!(
        failed == 0,
        "{failed} scenario(s) diverged from their golden snapshots:\n\n{report}\n\
         If the shift is intentional, regenerate with \
         `cargo run --release -p subcomp-exp --bin regen_golden` and explain why \
         in the commit message."
    );
}

#[test]
fn goldens_are_canonical_renderings() {
    // Byte-level determinism guard: every committed file must be exactly
    // what the codec renders for its own parse. This keeps regen runs
    // diff-clean and catches hand-edited snapshots.
    for stem in golden_stems() {
        let path = golden_dir().join(format!("{stem}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} — run regen_golden", path.display()));
        let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert_eq!(
            text,
            parsed.render(),
            "golden for `{stem}` is not in canonical codec form — run regen_golden"
        );
    }
}
