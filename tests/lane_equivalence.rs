//! Lane-engine equivalence tier: the SoA lane engine against the scalar
//! reference, on randomized ensembles.
//!
//! Three contracts (see `tests/README.md`, "The lane tier"):
//!
//! 1. **Bit-identity vs the same-engine scalar solver.** Per lane, a
//!    `LaneSolver` solve is bit-for-bit the scalar
//!    `NashSolver::default().with_threshold_br(true)` solve of that
//!    lane's game from the zero profile — same probe sequence through the
//!    shared best-response engine bodies, same φ-solves, same population
//!    cache bits.
//! 2. **Documented tolerance vs the grid-scan default.** Against the
//!    default `BatchSolver` (grid-scan best responses, cold) the lane
//!    engine agrees to the threshold-vs-grid bound of 1e-7 — the same
//!    bound the scalar threshold solver is held to.
//! 3. **Structural determinism.** Lane-mode batch results are
//!    bit-identical across thread counts AND lane-block sizes: lane
//!    assignment is a pure function of the item list and `K`, and lanes
//!    never read each other's state.

use proptest::prelude::*;
use subcomp::exp::scenarios::{farm_game, random_specs};
use subcomp::exp::sweep::BatchSolver;
use subcomp::game::game::SubsidyGame;
use subcomp::game::lane::{LaneGame, LaneSolver, LaneWorkspace};
use subcomp::game::nash::{NashSolver, WarmStart};
use subcomp::game::structure::SplitMix64;
use subcomp::game::workspace::SolveWorkspace;
use subcomp::model::aggregation::build_system;

/// A random same-shape ensemble: `lanes` games of `n` providers each,
/// with independent specs, capacity, price and cap per lane.
fn ensemble(n: usize, lanes: usize, seed: u64) -> Vec<SubsidyGame> {
    let mut rng = SplitMix64::new(seed);
    (0..lanes)
        .map(|_| {
            let specs = random_specs(n, rng.next_u64());
            let mu = 0.4 + 1.6 * rng.next_f64();
            let p = 0.2 + 1.0 * rng.next_f64();
            let q = 0.1 + 0.9 * rng.next_f64();
            SubsidyGame::new(build_system(&specs, mu).unwrap(), p, q).unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lane_solve_is_bit_identical_to_scalar_threshold_solver(
        n in 2usize..=5,
        lanes in 2usize..=6,
        seed in 0u64..(1u64 << 48),
    ) {
        let games = ensemble(n, lanes, seed);
        let refs: Vec<&SubsidyGame> = games.iter().collect();
        let lane_game = LaneGame::from_games(&refs).expect("exp-family games are lane-eligible");
        let mut lw = LaneWorkspace::new();
        LaneSolver::default().solve_into(&lane_game, &mut lw);

        let scalar = NashSolver::default().with_threshold_br(true);
        let mut ws = SolveWorkspace::new();
        for (l, game) in games.iter().enumerate() {
            match (scalar.solve_into(game, WarmStart::Zero, &mut ws), lw.result_of(l)) {
                (Ok(stats), Ok(lane_stats)) => {
                    prop_assert_eq!(lane_stats.iterations, stats.iterations);
                    prop_assert_eq!(lane_stats.residual.to_bits(), stats.residual.to_bits());
                    for (a, b) in lw.subsidies_of(l, n).iter().zip(ws.subsidies()) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                    for (a, b) in lw.utilities_of(l, n).iter().zip(ws.utilities()) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                    prop_assert_eq!(lw.phi_of(l).to_bits(), ws.state().phi.to_bits());
                }
                // A lane that fails must fail exactly like its scalar twin.
                (Err(scalar_err), Err(lane_err)) => prop_assert_eq!(scalar_err, lane_err),
                (scalar_out, lane_out) => prop_assert!(
                    false,
                    "lane {} outcome diverged: scalar {:?} vs lane {:?}",
                    l, scalar_out, lane_out
                ),
            }
        }
    }

    #[test]
    fn lane_batch_matches_grid_scan_batch_to_documented_tolerance(
        n in 2usize..=5,
        lanes in 2usize..=6,
        seed in 0u64..(1u64 << 48),
    ) {
        let games = ensemble(n, lanes, seed);
        let lane_results = BatchSolver::default().with_lanes(4).solve_games(&games);
        // Cold scalar grid-scan solves: the historical reference engine.
        let grid_results = BatchSolver::default().cold().solve_games(&games);
        for (l, (lane, grid)) in lane_results.iter().zip(&grid_results).enumerate() {
            let (lane, grid) = (lane.as_ref().unwrap(), grid.as_ref().unwrap());
            prop_assert!(lane.converged && grid.converged);
            for i in 0..n {
                prop_assert!(
                    (lane.subsidies[i] - grid.subsidies[i]).abs() < 1e-7,
                    "lane {} CP {}: threshold {} vs grid {}",
                    l, i, lane.subsidies[i], grid.subsidies[i]
                );
            }
        }
    }

    #[test]
    fn lane_mode_is_bit_identical_across_threads_and_lane_blocks(
        count in 6usize..=24,
        seed in 0u64..(1u64 << 32),
    ) {
        // A mixed-shape ensemble (the farm definition: n varies per game),
        // so lane grouping, short trailing blocks and the scalar-fallback
        // scatter path are all exercised.
        let indices: Vec<u64> = (0..count as u64).collect();
        let solve = |threads: usize, k: usize| {
            BatchSolver::default().with_threads(threads).with_lanes(k).run(
                &indices,
                |&i| farm_game(seed, i, 2, 6),
                |_, ws, stats| (ws.subsidies().to_vec(), stats.iterations),
            )
        };
        let reference = solve(1, 4);
        for (threads, k) in [(1, 1), (1, 7), (1, 64), (4, 4), (8, 1), (3, 64)] {
            let other = solve(threads, k);
            for (a, b) in reference.iter().zip(&other) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                prop_assert!(a.1 == b.1, "iteration count drifted at threads={} lanes={}", threads, k);
                for (x, y) in a.0.iter().zip(&b.0) {
                    prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "subsidy bits drifted at threads={} lanes={}", threads, k
                    );
                }
            }
        }
    }
}
