//! Lane-engine equivalence tier: the SoA lane engine against the scalar
//! reference, on randomized ensembles.
//!
//! Three contracts (see `tests/README.md`, "The lane tier"):
//!
//! 1. **Bit-identity vs the same-engine scalar solver.** Per lane, a
//!    `LaneSolver` solve is bit-for-bit the scalar
//!    `NashSolver::default().with_threshold_br(true)` solve of that
//!    lane's game from the zero profile — same probe sequence through the
//!    shared best-response engine bodies, same φ-solves, same population
//!    cache bits.
//! 2. **Documented tolerance vs the grid-scan default.** Against the
//!    default `BatchSolver` (grid-scan best responses, cold) the lane
//!    engine agrees to the threshold-vs-grid bound of 1e-7 — the same
//!    bound the scalar threshold solver is held to.
//! 3. **Structural determinism.** Lane-mode batch results are
//!    bit-identical across thread counts AND lane-block sizes: lane
//!    assignment is a pure function of the item list and `K`, and lanes
//!    never read each other's state.

use proptest::prelude::*;
use subcomp::exp::scenarios::{farm_game, random_specs};
use subcomp::exp::sweep::BatchSolver;
use subcomp::game::game::SubsidyGame;
use subcomp::game::lane::{LaneGame, LaneSolver, LaneWorkspace};
use subcomp::game::nash::{NashSolver, WarmStart};
use subcomp::game::structure::SplitMix64;
use subcomp::game::workspace::SolveWorkspace;
use subcomp::model::aggregation::build_system;

/// A random same-shape ensemble: `lanes` games of `n` providers each,
/// with independent specs, capacity, price and cap per lane.
fn ensemble(n: usize, lanes: usize, seed: u64) -> Vec<SubsidyGame> {
    let mut rng = SplitMix64::new(seed);
    (0..lanes)
        .map(|_| {
            let specs = random_specs(n, rng.next_u64());
            let mu = 0.4 + 1.6 * rng.next_f64();
            let p = 0.2 + 1.0 * rng.next_f64();
            let q = 0.1 + 0.9 * rng.next_f64();
            SubsidyGame::new(build_system(&specs, mu).unwrap(), p, q).unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lane_solve_is_bit_identical_to_scalar_threshold_solver(
        n in 2usize..=5,
        lanes in 2usize..=6,
        seed in 0u64..(1u64 << 48),
    ) {
        let games = ensemble(n, lanes, seed);
        let refs: Vec<&SubsidyGame> = games.iter().collect();
        let lane_game = LaneGame::from_games(&refs).expect("exp-family games are lane-eligible");
        let mut lw = LaneWorkspace::new();
        LaneSolver::default().solve_into(&lane_game, &mut lw);

        let scalar = NashSolver::default().with_threshold_br(true);
        let mut ws = SolveWorkspace::new();
        for (l, game) in games.iter().enumerate() {
            match (scalar.solve_into(game, WarmStart::Zero, &mut ws), lw.result_of(l)) {
                (Ok(stats), Ok(lane_stats)) => {
                    prop_assert_eq!(lane_stats.iterations, stats.iterations);
                    prop_assert_eq!(lane_stats.residual.to_bits(), stats.residual.to_bits());
                    for (a, b) in lw.subsidies_of(l, n).iter().zip(ws.subsidies()) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                    for (a, b) in lw.utilities_of(l, n).iter().zip(ws.utilities()) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                    prop_assert_eq!(lw.phi_of(l).to_bits(), ws.state().phi.to_bits());
                }
                // A lane that fails must fail exactly like its scalar twin.
                (Err(scalar_err), Err(lane_err)) => prop_assert_eq!(scalar_err, lane_err),
                (scalar_out, lane_out) => prop_assert!(
                    false,
                    "lane {} outcome diverged: scalar {:?} vs lane {:?}",
                    l, scalar_out, lane_out
                ),
            }
        }
    }

    #[test]
    fn lane_batch_matches_grid_scan_batch_to_documented_tolerance(
        n in 2usize..=5,
        lanes in 2usize..=6,
        seed in 0u64..(1u64 << 48),
    ) {
        let games = ensemble(n, lanes, seed);
        let lane_results = BatchSolver::default().with_lanes(4).solve_games(&games);
        // Cold scalar grid-scan solves: the historical reference engine.
        let grid_results = BatchSolver::default().cold().solve_games(&games);
        for (l, (lane, grid)) in lane_results.iter().zip(&grid_results).enumerate() {
            let (lane, grid) = (lane.as_ref().unwrap(), grid.as_ref().unwrap());
            prop_assert!(lane.converged && grid.converged);
            for i in 0..n {
                prop_assert!(
                    (lane.subsidies[i] - grid.subsidies[i]).abs() < 1e-7,
                    "lane {} CP {}: threshold {} vs grid {}",
                    l, i, lane.subsidies[i], grid.subsidies[i]
                );
            }
        }
    }

    #[test]
    fn lane_blocking_edge_cases_are_bit_identical(
        n in 2usize..=4,
        count in 1usize..=9,
        seed in 0u64..(1u64 << 40),
    ) {
        // K exceeding the ensemble (one undersized block), K=1 (every
        // block partial relative to any larger K), and a K that leaves a
        // partial trailing chunk all pack the same games — results must
        // not depend on the chunking at all.
        let games = ensemble(n, count, seed);
        let reference = BatchSolver::default().with_lanes(64).solve_games(&games);
        for k in [1, 2, count, count + 1] {
            let other = BatchSolver::default().with_lanes(k).solve_games(&games);
            for (l, (a, b)) in reference.iter().zip(&other).enumerate() {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                prop_assert!(a.iterations == b.iterations, "K={} game {}", k, l);
                for (x, y) in a.subsidies.iter().zip(&b.subsidies) {
                    prop_assert!(x.to_bits() == y.to_bits(), "K={} game {}", k, l);
                }
            }
        }
    }

    #[test]
    fn lane_mode_is_bit_identical_across_threads_and_lane_blocks(
        count in 6usize..=24,
        seed in 0u64..(1u64 << 32),
    ) {
        // A mixed-shape ensemble (the farm definition: n varies per game),
        // so lane grouping, short trailing blocks and the scalar-fallback
        // scatter path are all exercised.
        let indices: Vec<u64> = (0..count as u64).collect();
        let solve = |threads: usize, k: usize| {
            BatchSolver::default().with_threads(threads).with_lanes(k).run(
                &indices,
                |&i| farm_game(seed, i, 2, 6),
                |_, ws, stats| (ws.subsidies().to_vec(), stats.iterations),
            )
        };
        let reference = solve(1, 4);
        for (threads, k) in [(1, 1), (1, 7), (1, 64), (4, 4), (8, 1), (3, 64)] {
            let other = solve(threads, k);
            for (a, b) in reference.iter().zip(&other) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                prop_assert!(a.1 == b.1, "iteration count drifted at threads={} lanes={}", threads, k);
                for (x, y) in a.0.iter().zip(&b.0) {
                    prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "subsidy bits drifted at threads={} lanes={}", threads, k
                    );
                }
            }
        }
    }
}

/// Deterministic pins for the lane-blocking edge cases, cheap enough to
/// read as documentation: an oversized `K` collapses to one undersized
/// block, a trailing partial chunk stays in the lane engine, and
/// lane-ineligible games (the non-paper clamped-price convention) fall
/// back to scalar threshold solves without disturbing result order.
mod blocking_pins {
    use super::*;

    /// Bit-compares two batch outcomes game by game.
    fn assert_bit_identical(
        a: &[subcomp::num::error::NumResult<subcomp::game::nash::NashSolution>],
        b: &[subcomp::num::error::NumResult<subcomp::game::nash::NashSolution>],
        label: &str,
    ) {
        assert_eq!(a.len(), b.len(), "{label}: result count");
        for (l, (x, y)) in a.iter().zip(b).enumerate() {
            let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
            assert_eq!(x.iterations, y.iterations, "{label}: game {l} iterations");
            assert!(x.converged && y.converged, "{label}: game {l} convergence");
            for (s, t) in x.subsidies.iter().zip(&y.subsidies) {
                assert_eq!(s.to_bits(), t.to_bits(), "{label}: game {l} subsidy bits");
            }
        }
    }

    #[test]
    fn oversized_lane_block_collapses_to_one_undersized_block() {
        let games = ensemble(3, 5, 41);
        let exact = BatchSolver::default().with_lanes(5).solve_games(&games);
        let oversized = BatchSolver::default().with_lanes(64).solve_games(&games);
        assert_bit_identical(&exact, &oversized, "K=64 over 5 games");
    }

    #[test]
    fn partial_trailing_block_stays_in_the_lane_engine() {
        // 7 same-shape games with K=4: blocks of 4 and 3. The trailing
        // 3-lane block must produce the same bits as an exact-fit run —
        // short blocks are first-class, not a scalar detour.
        let games = ensemble(3, 7, 43);
        let chunked = BatchSolver::default().with_lanes(4).solve_games(&games);
        let exact = BatchSolver::default().with_lanes(7).solve_games(&games);
        assert_bit_identical(&chunked, &exact, "K=4 over 7 games");
    }

    #[test]
    fn ineligible_games_fall_back_to_scalar_threshold_solves_in_order() {
        // Alternate eligible and clamped-price (lane-ineligible) games.
        // Every game — either path — must match its own cold scalar
        // threshold solve bit for bit, in the original order.
        let games: Vec<SubsidyGame> = ensemble(3, 6, 47)
            .into_iter()
            .enumerate()
            .map(|(i, g)| if i % 2 == 0 { g.with_clamped_price(true) } else { g })
            .collect();
        assert!(games[0].clamps_effective_price() && !games[1].clamps_effective_price());

        let batch = BatchSolver::default().with_lanes(4).solve_games(&games);
        let scalar = NashSolver::default().with_threshold_br(true);
        let mut ws = SolveWorkspace::new();
        for (l, (game, got)) in games.iter().zip(&batch).enumerate() {
            let stats = scalar.solve_into(game, WarmStart::Zero, &mut ws).unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(got.iterations, stats.iterations, "game {l}");
            for (s, t) in got.subsidies.iter().zip(ws.subsidies()) {
                assert_eq!(s.to_bits(), t.to_bits(), "game {l} subsidy bits");
            }
        }
    }
}
