//! Server tier: the resident equilibrium service end to end.
//!
//! Five contracts (see `tests/README.md`, "The server tier"):
//!
//! 1. **Cache hits are bit-identical to the solve that filled them.** A
//!    repeated query returns the *same* shared snapshot (`Arc::ptr_eq`),
//!    and that snapshot matches an independent cold solve of the same
//!    market with the server's solver configuration bit for bit.
//! 2. **The fingerprint sees every parameter.** A write on any [`Axis`]
//!    — price, cap, capacity, any single provider's profitability —
//!    forces a re-solve; writing the old value back restores the cache
//!    hit.
//! 3. **Eviction under pressure is deterministic LRU.** With a
//!    `capacity`-entry cache, the least-recently-answered equilibrium is
//!    the one that pays a re-solve.
//! 4. **The warm-start ladder serves tangent steps.** After a
//!    sensitivity read, a small write along the same axis is solved from
//!    the Theorem 6 tangent extrapolation (and still converges onto the
//!    true equilibrium); an oversized write is refused by the trust
//!    region and degrades to the previous-iterate seed.
//! 5. **Load-generator replay is deterministic.** Two servers fed the
//!    same stream produce identical replies (bit-level checksum),
//!    identical source mixes and identical cache counters.

use std::sync::Arc;
use subcomp::exp::scenarios::section5_system;
use subcomp::exp::server::{
    fingerprint, generate, generate_multi, summarize_latencies, EquilibriumServer, LoadGenConfig,
    Reply, ShardedConfig, ShardedServer, Source,
};
use subcomp::game::game::{Axis, SubsidyGame};
use subcomp::game::nash::{NashSolver, WarmStart};
use subcomp::game::workspace::SolveWorkspace;
use subcomp::num::error::NumError;

/// The §5 market at the `serve_market` default operating point.
fn section5_game() -> SubsidyGame {
    SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid")
}

#[test]
fn cache_hit_is_bit_identical_to_the_cold_solve_that_filled_it() {
    let mut server = EquilibriumServer::new(section5_game(), 2, 16);
    let (cold, src) = server.equilibrium().unwrap();
    assert_eq!(src, Source::Cold);
    let (hit, src) = server.equilibrium().unwrap();
    assert_eq!(src, Source::CacheHit);
    assert!(Arc::ptr_eq(&cold, &hit), "a cache hit must return the shared snapshot");

    // Independent reference: the server's solver configuration, cold,
    // outside the server. Same market, same engine — same bits.
    let game = section5_game();
    let mut ws = SolveWorkspace::new();
    let stats =
        NashSolver::default().with_tol(1e-10).solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
    assert!(stats.converged);
    assert_eq!(hit.subsidies().len(), ws.subsidies().len());
    for (a, b) in hit.subsidies().iter().zip(ws.subsidies()) {
        assert_eq!(a.to_bits(), b.to_bits(), "cached subsidies drifted off the cold solve");
    }
    for (a, b) in hit.utilities().iter().zip(ws.utilities()) {
        assert_eq!(a.to_bits(), b.to_bits(), "cached utilities drifted off the cold solve");
    }
    assert_eq!(hit.state().phi.to_bits(), ws.state().phi.to_bits());
}

#[test]
fn every_axis_write_changes_the_fingerprint_and_reverting_restores_the_hit() {
    let n = section5_game().n();
    let axes =
        [Axis::Price, Axis::Cap, Axis::Mu, Axis::Profitability(0), Axis::Profitability(n - 1)];
    let mut server = EquilibriumServer::new(section5_game(), 2, 64);
    server.equilibrium().unwrap(); // prime the base point

    for axis in axes {
        let held = axis.value(server.game());
        server.update(axis, held * 1.01).unwrap();
        let (_, src) = server.equilibrium().unwrap();
        assert_ne!(src, Source::CacheHit, "{axis:?}: a parameter write must force a re-solve");
        server.update(axis, held).unwrap();
        let (_, src) = server.equilibrium().unwrap();
        assert_eq!(src, Source::CacheHit, "{axis:?}: reverting the write must restore the hit");
    }
}

#[test]
fn eviction_under_capacity_pressure_is_lru() {
    let mut server = EquilibriumServer::new(section5_game(), 1, 2);
    let prices = [0.5, 0.6, 0.7];
    let mut answer_at = |p: f64| {
        server.update(Axis::Price, p).unwrap();
        let (_, src) = server.equilibrium().unwrap();
        src
    };
    assert_eq!(answer_at(prices[0]), Source::Cold);
    assert_ne!(answer_at(prices[1]), Source::CacheHit);
    assert_ne!(answer_at(prices[2]), Source::CacheHit); // evicts prices[0]
    assert_ne!(
        answer_at(prices[0]),
        Source::CacheHit,
        "the least-recently-answered point must have been evicted"
    ); // re-solving it evicts prices[1]
    assert_eq!(answer_at(prices[2]), Source::CacheHit, "the hot tail must survive eviction");
    let cs = server.cache_stats();
    assert_eq!(cs.len, 2);
    assert!(cs.evictions >= 2, "expected eviction traffic, saw {}", cs.evictions);
}

#[test]
fn tangent_ladder_serves_small_steps_and_refuses_large_ones() {
    let mut server = EquilibriumServer::new(section5_game(), 1, 16);
    let (_, _, src) = server.sensitivity(Axis::Mu).unwrap();
    assert_eq!(src, Source::Cold);

    // A small step along the differentiated axis rides the tangent.
    let mu = Axis::Mu.value(server.game());
    server.update(Axis::Mu, mu + 0.05).unwrap();
    let (snap, src) = server.equilibrium().unwrap();
    assert_eq!(src, Source::Tangent, "a small single-axis step must use the tangent seed");

    // And the tangent-seeded answer is the true equilibrium: compare to
    // an independent cold solve at the stepped market.
    let mut stepped = section5_game();
    stepped.set_mu(mu + 0.05).unwrap();
    let mut ws = SolveWorkspace::new();
    NashSolver::default().with_tol(1e-10).solve_into(&stepped, WarmStart::Zero, &mut ws).unwrap();
    for (a, b) in snap.subsidies().iter().zip(ws.subsidies()) {
        assert!((a - b).abs() < 1e-8, "tangent-seeded solve landed off the equilibrium");
    }

    // An oversized step is outside the trust region: the policy refuses
    // the extrapolation and the solve degrades to the warm slot iterate.
    let (_, _, _) = server.sensitivity(Axis::Mu).unwrap();
    let mu = Axis::Mu.value(server.game());
    server.update(Axis::Mu, mu + 1.0).unwrap();
    let (_, src) = server.equilibrium().unwrap();
    assert_eq!(src, Source::Warm, "an out-of-trust-region step must not be extrapolated");
}

#[test]
fn full_game_submission_keeps_the_fingerprint_cache() {
    let mut server = EquilibriumServer::new(section5_game(), 2, 16);
    let (first, src) = server.equilibrium().unwrap();
    assert_eq!(src, Source::Cold);
    // Submitting a market that fingerprints to a cached equilibrium is
    // O(lookup), even though every warm seed was discarded.
    let (resub, src) = server.submit(section5_game()).unwrap();
    assert_eq!(src, Source::CacheHit);
    assert!(Arc::ptr_eq(&first, &resub));
    assert_eq!(fingerprint(server.game()).unwrap(), fingerprint(&section5_game()).unwrap());
}

/// Folds a reply into a bit-level checksum, mirroring `serve_market`.
fn checksum(acc: u64, reply: &Reply) -> u64 {
    let mut acc = acc.rotate_left(1);
    match reply {
        Reply::Updated { value, .. } => acc ^= value.to_bits(),
        Reply::Equilibrium { snap, .. } => {
            for s in snap.subsidies() {
                acc ^= s.to_bits();
            }
            acc ^= snap.state().phi.to_bits();
        }
        Reply::Sensitivity { ds, snap, .. } => {
            for d in ds {
                acc ^= d.to_bits();
            }
            acc ^= snap.state().phi.to_bits();
        }
        Reply::Degenerate { active_set, snap, .. } => {
            for &i in active_set.lower.iter().chain(&active_set.upper) {
                acc ^= (i as u64 + 1).wrapping_mul(0x517c_c1b7_2722_0a95);
            }
            acc ^= snap.state().phi.to_bits();
        }
    }
    acc
}

#[test]
fn load_generator_replay_through_the_server_is_deterministic() {
    let config = LoadGenConfig { requests: 400, ..LoadGenConfig::default() };
    let stream = generate(&config).unwrap();
    assert_eq!(
        stream,
        generate(&config).unwrap(),
        "the load generator itself must replay bit-identically"
    );

    let run = || {
        let mut server = EquilibriumServer::new(section5_game(), 2, 8);
        let mut sum = 0u64;
        for req in &stream {
            sum = checksum(sum, &server.serve(*req).unwrap());
        }
        (sum, server.stats(), server.cache_stats())
    };
    let (sum_a, stats_a, cache_a) = run();
    let (sum_b, stats_b, cache_b) = run();
    assert_eq!(sum_a, sum_b, "served replies diverged across identical replays");
    assert_eq!(stats_a, stats_b, "server counters diverged across identical replays");
    assert_eq!(cache_a, cache_b, "cache counters diverged across identical replays");
    // The mix exercised every tier of interest: reads hit the cache
    // (skewed hot keys revisit), and some writes forced real solves.
    assert!(stats_a.cache_hits > 0, "no cache traffic: {stats_a:?}");
    assert!(stats_a.cold_solves + stats_a.warm_solves > 0, "no solves: {stats_a:?}");
    assert!(stats_a.updates > 0 && stats_a.sensitivities > 0, "mix collapsed: {stats_a:?}");
}

/// The multi-market stream used by the sharded contracts: enough markets
/// to land on several shards, cache capacity comfortably above the
/// hot-key count so LRU recency (which lock-free serving does not touch)
/// can never drive an eviction difference.
fn sharded_fixture() -> (Vec<(u64, SubsidyGame)>, Vec<(u64, subcomp::exp::server::Request)>) {
    let markets: Vec<(u64, SubsidyGame)> = (0..4u64).map(|id| (id, section5_game())).collect();
    let cfg = LoadGenConfig { requests: 150, hot_keys: 6, ..LoadGenConfig::default() };
    let stream = generate_multi(&cfg, markets.len()).unwrap();
    (markets, stream)
}

#[test]
fn sharded_replay_is_bit_identical_across_shard_counts() {
    // The tentpole contract: shards are execution hosts, not state — the
    // same interleaved stream produces bit-identical replies (per-market
    // checksums), the same lock-free hit count and the same per-market
    // answer content at 1, 2 and 4 shards.
    let (_, stream) = sharded_fixture();
    let run = |shards: usize| -> (Vec<u64>, u64) {
        let (markets, _) = sharded_fixture();
        let n_markets = markets.len();
        let mut server =
            ShardedServer::new(markets, &ShardedConfig { shards, pool: 2, cache: 64 }).unwrap();
        let mut sums = vec![0u64; n_markets];
        for (market, req) in &stream {
            let reply = server.serve(*market, *req).unwrap();
            let m = *market as usize;
            sums[m] = checksum(sums[m], &reply);
        }
        (sums, server.lockfree_hits())
    };
    let (sums_1, hits_1) = run(1);
    let (sums_2, hits_2) = run(2);
    let (sums_4, hits_4) = run(4);
    assert_eq!(sums_1, sums_2, "replies diverged between 1 and 2 shards");
    assert_eq!(sums_1, sums_4, "replies diverged between 1 and 4 shards");
    assert_eq!(hits_1, hits_2, "lock-free fast-path firing depends on shard count");
    assert_eq!(hits_1, hits_4, "lock-free fast-path firing depends on shard count");
    assert!(hits_1 > 0, "the stream never exercised the lock-free path");
}

#[test]
fn lockfree_read_is_the_owning_shards_cache_entry() {
    // The published snapshot the router serves lock-free is the *same*
    // allocation as the owning shard's resident cache entry — an Arc
    // clone out of the index, never a copy.
    let mut server = ShardedServer::new(
        (0..3u64).map(|id| (id, section5_game())).collect(),
        &ShardedConfig { shards: 2, pool: 2, cache: 16 },
    )
    .unwrap();
    for id in 0..3u64 {
        server.serve(id, subcomp::exp::server::Request::Equilibrium).unwrap();
    }
    for id in 0..3u64 {
        let lockfree = server.read_cached(id).expect("read published its answer");
        let resident = server.peek_shard_cache(id).unwrap().expect("the shard cached its solve");
        assert!(
            Arc::ptr_eq(&lockfree, &resident),
            "market {id}: lock-free read is not the shard's cache entry"
        );
        // And the serving path hands out that same allocation.
        let reply = server.serve(id, subcomp::exp::server::Request::Equilibrium).unwrap();
        let Reply::Equilibrium { snap, source } = reply else { unreachable!() };
        assert_eq!(source, Source::LockFree);
        assert!(Arc::ptr_eq(&snap, &resident));
    }
}

#[test]
fn per_market_order_is_preserved_under_interleaved_load() {
    // Session multiplexing must not reorder any market's requests: each
    // market's replies under the interleaved sharded run are bit-identical
    // to a standalone EquilibriumServer fed that market's subsequence in
    // isolation (same pool/cache configuration).
    let (markets, stream) = sharded_fixture();
    let n_markets = markets.len();
    let mut server =
        ShardedServer::new(markets, &ShardedConfig { shards: 3, pool: 2, cache: 64 }).unwrap();
    let mut sharded_sums = vec![0u64; n_markets];
    for (market, req) in &stream {
        let reply = server.serve(*market, *req).unwrap();
        let m = *market as usize;
        sharded_sums[m] = checksum(sharded_sums[m], &reply);
    }
    assert!(server.lockfree_hits() > 0, "interleaved load never went lock-free");

    for m in 0..n_markets {
        let mut standalone = EquilibriumServer::new(section5_game(), 2, 64);
        let mut sum = 0u64;
        for (market, req) in &stream {
            if *market as usize == m {
                sum = checksum(sum, &standalone.serve(*req).unwrap());
            }
        }
        assert_eq!(
            sharded_sums[m], sum,
            "market {m}: interleaved replies drifted off the standalone serve"
        );
    }
}

/// A demand curve that answers NaN above a price threshold — legal to
/// construct (scalar parameters all validate), poisonous to fingerprint.
#[derive(Clone)]
struct NanAboveDemand {
    threshold: f64,
}

impl subcomp::model::demand::DemandFn for NanAboveDemand {
    fn m(&self, t: f64) -> f64 {
        if t >= self.threshold {
            f64::NAN
        } else {
            2.0 * (-t).exp()
        }
    }
    fn dm_dt(&self, t: f64) -> f64 {
        if t >= self.threshold {
            f64::NAN
        } else {
            -2.0 * (-t).exp()
        }
    }
    fn name(&self) -> &'static str {
        "nan-above"
    }
    fn boxed_clone(&self) -> Box<dyn subcomp::model::demand::DemandFn> {
        Box::new(self.clone())
    }
    fn scaled(&self, _kappa: f64) -> Box<dyn subcomp::model::demand::DemandFn> {
        Box::new(self.clone())
    }
}

#[test]
fn nan_probing_curves_are_failed_requests_not_poisoned_cache_keys() {
    // The fingerprint regression: NaN never equals itself, so a
    // NaN-bearing key would never match its own cache entry and every
    // lookup of that market would silently re-solve. The fingerprint now
    // rejects non-finite probe responses with a typed error, and the
    // server surfaces it as a failed request — then recovers when a
    // well-behaved market is submitted.
    use subcomp::model::cp::ContentProvider;
    use subcomp::model::system::System;
    use subcomp::model::throughput::ExpThroughput;
    use subcomp::model::utilization::LinearUtilization;

    // The demand probe grid reaches t = 1.5; NaN starts at 1.4, so
    // construction-time scalar validation sees nothing wrong.
    let cp = ContentProvider::builder("poisoned")
        .demand(NanAboveDemand { threshold: 1.4 })
        .throughput(ExpThroughput::new(3.0, 1.0))
        .profitability(0.8)
        .build();
    let system = System::new(vec![cp], 1.2, LinearUtilization).unwrap();
    let game = SubsidyGame::new(system, 0.6, 0.8).unwrap();

    assert!(
        matches!(fingerprint(&game), Err(NumError::NonFinite { .. })),
        "a NaN probe response must be a typed fingerprint error"
    );

    let mut server = EquilibriumServer::new(game, 1, 8);
    assert!(
        matches!(server.equilibrium(), Err(NumError::NonFinite { .. })),
        "an unfingerprintable market must be a failed request"
    );
    // Submitting a sane market recovers the server.
    let (_, source) = server.submit(section5_game()).unwrap();
    assert_ne!(source, Source::CacheHit);
    let (_, source) = server.equilibrium().unwrap();
    assert_eq!(source, Source::CacheHit);
}

#[test]
fn retraction_bumps_the_generation_and_readers_never_serve_dead_snapshots() {
    // The supervision contract on the index side: a reader detached
    // before a fault observes every retraction as a generation bump and
    // can never be handed a snapshot whose market has no valid answer —
    // not after a failed submit, and not after its host shard died.
    use subcomp::exp::server::{poison_game, Request, Sabotage, ServeError};

    let markets: Vec<(u64, SubsidyGame)> = (0..2u64).map(|id| (id, section5_game())).collect();
    let mut server =
        ShardedServer::new(markets, &ShardedConfig { shards: 1, pool: 2, cache: 16 }).unwrap();
    server.serve(0, Request::Equilibrium).unwrap();
    server.serve(1, Request::Equilibrium).unwrap();

    let mut reader = server.index_reader();
    assert!(reader.get(0).is_some() && reader.get(1).is_some(), "both markets published");
    let g0 = reader.seen_generation();

    // A failed submit retracts: the reader sees the bump, not the corpse.
    let poisoned = poison_game(&section5_game()).unwrap();
    assert!(matches!(server.submit(0, poisoned), Err(ServeError::Num(NumError::NonFinite { .. }))));
    assert!(reader.get(0).is_none(), "retracted market must not serve a stale snapshot");
    assert!(reader.get(1).is_some(), "the healthy market is untouched");
    let g1 = reader.seen_generation();
    assert!(g1 > g0, "retraction must bump the generation ({g0} → {g1})");

    // Kill the shard. Recovery rehydrates market 1 from its published
    // answer; market 0's mirror is still poisoned, so its cold-solve
    // fallback fails and nothing may be republished for it.
    let err = server.serve_sabotaged(0, Request::Equilibrium, Sabotage::Kill);
    assert!(matches!(err, Err(ServeError::ShardRestarted { shard: 0 })));
    assert!(reader.get(0).is_none(), "a dead market must stay retracted after shard death");
    assert!(reader.get(1).is_some(), "rehydration republishes the surviving answer");
    assert!(reader.seen_generation() > g1, "restart recovery must bump the generation");

    // The universal heal: a clean submit republishes, the reader follows.
    server.submit(0, section5_game()).unwrap();
    assert!(reader.get(0).is_some(), "healed market publishes again");
}

#[test]
fn empty_latency_windows_are_errors_not_panics() {
    // The report path regression behind `serve_market --warmup N` with
    // N ≥ requests: an empty window is an explicit `NumError::Empty`
    // from the stats primitives, which the binary renders as "n/a".
    assert!(matches!(summarize_latencies(&[]), Err(NumError::Empty { .. })));
    let s = summarize_latencies(&[5.0, 1.0, 3.0]).unwrap();
    assert_eq!(s.count, 3);
    assert_eq!(s.p50, 3.0);
    assert_eq!(s.mean, 3.0);
}
