//! Cross-crate integration tests: every theorem and corollary of the
//! paper, checked end to end on the paper's own scenarios.

use subcomp::game::equilibrium::verify_equilibrium;
use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::game::policy::{policy_effect, PriceResponse};
use subcomp::game::revenue::marginal_revenue_at;
use subcomp::game::sensitivity::Sensitivity;
use subcomp::game::structure::p_function_evidence;
use subcomp::game::welfare::{corollary2, welfare};
use subcomp::model::effects::{PriceEffects, SystemEffects};
use subcomp::model::pricing::OneSidedMarket;
use subcomp_exp::scenarios::{section3_system, section5_system};

fn solver() -> NashSolver {
    NashSolver::default().with_tol(1e-9)
}

#[test]
fn lemma1_unique_utilization_fixed_point() {
    let sys = section3_system();
    let state = sys.state_at_uniform_price(0.4).unwrap();
    // Residual of Definition 1 is tiny and the gap slope positive.
    assert!(state.residual(&sys) < 1e-10);
    assert!(state.dg_dphi > 0.0);
    // Uniqueness: solving from the gap function and by damped Picard
    // iteration agree (two independent fixed-point routes).
    let m = state.m.clone();
    let mu = sys.mu();
    let map =
        |phi: f64| sys.cps().iter().zip(&m).map(|(cp, &mi)| mi * cp.lambda(phi)).sum::<f64>() / mu;
    let picard = subcomp::num::fixedpoint::picard(
        &map,
        0.3,
        0.6,
        subcomp::num::Tolerance::new(1e-12, 0.0).with_max_iter(20_000),
    )
    .unwrap();
    assert!((picard.x - state.phi).abs() < 1e-8);
}

#[test]
fn theorem1_capacity_and_user_effects() {
    let sys = section3_system();
    let state = sys.state_at_uniform_price(0.5).unwrap();
    let eff = SystemEffects::compute(&sys, &state).unwrap();
    assert_eq!(eff.check_signs(), None);
}

#[test]
fn theorem2_price_effect_and_condition7() {
    let sys = section3_system();
    for p in [0.2, 0.8, 1.5] {
        let state = sys.state_at_uniform_price(p).unwrap();
        let pe = PriceEffects::compute(&sys, &state, p).unwrap();
        assert!(pe.dphi_dp <= 0.0);
        assert!(pe.dtheta_total_dp <= 0.0);
    }
}

#[test]
fn lemma3_subsidy_monotonicity() {
    let game = SubsidyGame::new(section5_system(), 0.6, 1.0).unwrap();
    let s0 = vec![0.1; 8];
    let mut s1 = s0.clone();
    s1[4] = 0.5;
    let st0 = game.state(&s0).unwrap();
    let st1 = game.state(&s1).unwrap();
    assert!(st1.phi > st0.phi);
    assert!(st1.theta_i[4] > st0.theta_i[4]);
    for j in (0..8).filter(|&j| j != 4) {
        assert!(st1.theta_i[j] < st0.theta_i[j]);
    }
}

#[test]
fn theorem3_equilibrium_characterization() {
    let game = SubsidyGame::new(section5_system(), 0.6, 0.5).unwrap();
    let eq = solver().solve(&game).unwrap();
    let report = verify_equilibrium(&game, &eq.subsidies).unwrap();
    assert!(
        report.is_equilibrium(1e-5),
        "kkt {:.2e}, threshold {:.2e}",
        report.max_kkt_residual,
        report.max_threshold_residual
    );
}

#[test]
fn theorem4_uniqueness_evidence_and_solver_agreement() {
    let game = SubsidyGame::new(section5_system(), 0.7, 0.8).unwrap();
    // Sampled P-function condition.
    let ev = p_function_evidence(&game, 40, 11).unwrap();
    assert!(ev.holds(), "counterexample {:?}", ev.counterexample);
    // Independent solvers land on the same equilibrium.
    let gs = solver().solve(&game).unwrap();
    let jac = solver().jacobi().with_damping(0.6).solve(&game).unwrap();
    for i in 0..8 {
        assert!((gs.subsidies[i] - jac.subsidies[i]).abs() < 1e-6);
    }
}

#[test]
fn theorem5_profitability_raises_subsidy() {
    let game = SubsidyGame::new(section5_system(), 0.8, 1.0).unwrap();
    let base = solver().solve(&game).unwrap();
    // Raise CP 5's profitability (a2-b5-v1 -> v = 1.4).
    let richer = game.with_profitability(5, 1.4).unwrap();
    let eq2 = solver().solve(&richer).unwrap();
    assert!(
        eq2.subsidies[5] >= base.subsidies[5] - 1e-9,
        "subsidy must rise with profitability: {} -> {}",
        base.subsidies[5],
        eq2.subsidies[5]
    );
    // Lemma 3 follow-through: its throughput rises too.
    assert!(eq2.state.theta_i[5] > base.state.theta_i[5] - 1e-12);
}

#[test]
fn theorem6_sensitivities_match_resolved_equilibria() {
    let sys = section5_system();
    let (p, q) = (0.6, 0.35);
    let game = SubsidyGame::new(sys, p, q).unwrap();
    let eq = solver().solve(&game).unwrap();
    let sens = Sensitivity::compute(&game, &eq.subsidies).unwrap();
    assert!(sens.regular);
    let h = 1e-4;
    let hi = solver().solve(&game.with_cap(q + h).unwrap()).unwrap();
    let lo = solver().solve(&game.with_cap(q - h).unwrap()).unwrap();
    for i in 0..8 {
        let fd = (hi.subsidies[i] - lo.subsidies[i]) / (2.0 * h);
        assert!(
            (sens.ds_dq[i] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
            "CP {i}: {} vs {fd}",
            sens.ds_dq[i]
        );
    }
}

#[test]
fn corollary1_deregulation_helps_isp_at_fixed_price() {
    let sys = section5_system();
    let solver = solver();
    let mut prev: Option<(f64, f64)> = None;
    for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let game = SubsidyGame::new(sys.clone(), 0.6, q).unwrap();
        let eq = solver.solve(&game).unwrap();
        let now = (eq.state.phi, eq.isp_revenue(&game));
        if let Some((phi_prev, rev_prev)) = prev {
            assert!(now.0 >= phi_prev - 1e-9, "utilization fell with q");
            assert!(now.1 >= rev_prev - 1e-9, "revenue fell with q");
        }
        prev = Some(now);
    }
}

#[test]
fn theorem7_marginal_revenue_formula() {
    let sys = section5_system();
    let game = SubsidyGame::new(sys, 0.8, 0.4).unwrap();
    let solver = solver();
    let eq = solver.solve(&game).unwrap();
    let mr = marginal_revenue_at(&game, &eq).unwrap();
    // Numeric check with re-solved equilibria.
    let h = 1e-4;
    let rev = |p: f64| {
        let g = game.with_price(p).unwrap();
        solver.solve(&g).unwrap().isp_revenue(&g)
    };
    let fd = (rev(0.8 + h) - rev(0.8 - h)) / (2.0 * h);
    assert!((mr.dr_dp - fd).abs() < 2e-2 * (1.0 + fd.abs()), "{} vs {fd}", mr.dr_dp);
    assert!(mr.upsilon > 0.0 && mr.upsilon < 1.0);
}

#[test]
fn theorem8_policy_effect_with_fixed_price() {
    let sys = section5_system();
    let pe = policy_effect(&sys, 0.35, PriceResponse::Fixed(0.6), &solver()).unwrap();
    assert_eq!(pe.dp_dq, 0.0);
    assert!(pe.dphi_dq > 0.0, "Corollary 1: utilization rises with q");
    assert!(pe.dr_dq > 0.0, "Corollary 1: revenue rises with q");
    // Some CP gains and some loses (the congestion externality).
    assert!((0..8).any(|i| pe.throughput_increasing(i)));
    assert!((0..8).any(|i| !pe.throughput_increasing(i)));
}

#[test]
fn corollary2_welfare_condition_consistent() {
    let sys = section5_system();
    let (p, q) = (0.6, 0.35);
    let game = SubsidyGame::new(sys, p, q).unwrap();
    let solver = solver();
    let eq = solver.solve(&game).unwrap();
    let sens = Sensitivity::compute(&game, &eq.subsidies).unwrap();
    let dt_dq: Vec<f64> = sens.ds_dq.iter().map(|d| -d).collect();
    let c2 = corollary2(&game, &eq.state, &eq.subsidies, &dt_dq).unwrap();
    assert!(c2.dphi_dq > 0.0);
    // Sign consistency between the condition and dW/dq.
    assert_eq!(c2.predicts_increase(), c2.dw_dq > 0.0);
    // And against re-solved welfare.
    let h = 1e-4;
    let w = |qq: f64| {
        let g = game.with_cap(qq).unwrap();
        let e = solver.solve(&g).unwrap();
        welfare(&g, &e.state)
    };
    let fd = (w(q + h) - w(q - h)) / (2.0 * h);
    assert_eq!(fd > 0.0, c2.dw_dq > 0.0);
}

#[test]
fn theorem5_subsidy_monotone_in_profitability_across_grid() {
    // Theorem 5 asserted as a comparative-statics sweep, not a single
    // step: CP 5's equilibrium subsidy rises monotonically with its v
    // while it is interior, then pins at the effective cap min(q, v).
    let base = SubsidyGame::new(section5_system(), 0.8, 1.0).unwrap();
    let solver = solver();
    let mut prev = -f64::INFINITY;
    for v in [0.6, 0.8, 1.0, 1.2, 1.5, 2.0] {
        let game = base.with_profitability(5, v).unwrap();
        let eq = solver.solve(&game).unwrap();
        assert!(eq.converged);
        assert!(
            eq.subsidies[5] >= prev - 1e-9,
            "subsidy must be nondecreasing in v: s({v}) = {} < {prev}",
            eq.subsidies[5]
        );
        // Lemma 3 follow-through: throughput ranking moves with it.
        assert!(eq.subsidies[5] <= game.effective_cap(5) + 1e-12);
        prev = eq.subsidies[5];
    }
    // The sweep must actually traverse the interior and reach the cap.
    let rich = base.with_profitability(5, 2.0).unwrap();
    let pinned = solver.solve(&rich).unwrap();
    assert!((pinned.subsidies[5] - rich.effective_cap(5)).abs() < 1e-6);
}

#[test]
fn capacity_comparative_statics_split_by_congestion_sensitivity() {
    // Subsidy response to capacity µ, a claim the paper leaves implicit
    // in §6's capacity-planning discussion. Expanding µ relieves
    // congestion, which shifts the equilibrium in opposite directions for
    // the two congestion classes of the §5 market: congestion-tolerant
    // types (β = 2 — indices 2, 4, 6 among the active CPs) value the
    // extra headroom and escalate their subsidies, while
    // congestion-sensitive types (β = 5 — indices 3, 5, 7) rely less on
    // subsidizing once the network is fast anyway. Equilibrium
    // utilization falls and total throughput rises throughout (Theorem 1
    // carried through the equilibrium map).
    let solver = solver();
    let mut prev: Option<(Vec<f64>, f64, f64)> = None;
    for mu in [0.5, 0.75, 1.0, 1.5, 2.0, 3.0] {
        let sys = section5_system().with_capacity(mu).unwrap();
        let game = SubsidyGame::new(sys, 0.6, 1.0).unwrap();
        let eq = solver.solve(&game).unwrap();
        assert!(eq.converged, "mu = {mu}");
        if let Some((s_prev, phi_prev, theta_prev)) = &prev {
            for &i in &[2usize, 4, 6] {
                assert!(
                    eq.subsidies[i] >= s_prev[i] - 1e-9,
                    "beta=2 CP {i} must raise its subsidy with mu: {} -> {}",
                    s_prev[i],
                    eq.subsidies[i]
                );
            }
            for &i in &[3usize, 5, 7] {
                assert!(
                    eq.subsidies[i] <= s_prev[i] + 1e-9,
                    "beta=5 CP {i} must lower its subsidy with mu: {} -> {}",
                    s_prev[i],
                    eq.subsidies[i]
                );
            }
            assert!(eq.state.phi < *phi_prev, "utilization must fall with mu");
            assert!(eq.state.theta() > *theta_prev, "throughput must rise with mu");
        }
        prev = Some((eq.subsidies.clone(), eq.state.phi, eq.state.theta()));
    }
}

#[test]
fn figure4_one_sided_revenue_single_peaked() {
    let sys = section3_system();
    let market = OneSidedMarket::new(&sys);
    let (p_star, r_star) = market.revenue_maximizing_price(0.0, 3.0).unwrap();
    assert!(p_star > 0.0 && p_star < 3.0);
    assert!(r_star > 0.0);
}
