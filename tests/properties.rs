//! Property-based tests (proptest) on the core invariants: uniqueness of
//! the congestion fixed point, Theorem 1/2 sign structure, Lemma 2
//! invariance, equilibrium feasibility and KKT certificates across random
//! markets, and elasticity identities.

use proptest::prelude::*;
use subcomp::game::equilibrium::verify_equilibrium;
use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::model::aggregation::{aggregate, build_system, ExpCpSpec};
use subcomp::model::effects::{PriceEffects, SystemEffects};
use subcomp::model::elasticity::{check_eq14, StateElasticities};

/// Strategy: a small market of 2–5 exponential CP types.
fn market_strategy() -> impl Strategy<Value = Vec<ExpCpSpec>> {
    proptest::collection::vec(
        (0.5f64..6.0, 0.5f64..6.0, 0.1f64..1.2)
            .prop_map(|(alpha, beta, v)| ExpCpSpec::unit(alpha, beta, v)),
        2..=5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fixed_point_exists_and_gap_vanishes(
        specs in market_strategy(),
        mu in 0.3f64..3.0,
        p in 0.0f64..2.0,
    ) {
        let sys = build_system(&specs, mu).unwrap();
        let state = sys.state_at_uniform_price(p).unwrap();
        prop_assert!(state.phi >= 0.0);
        prop_assert!(state.residual(&sys) < 1e-8);
        prop_assert!(state.dg_dphi > 0.0);
    }

    #[test]
    fn theorem1_signs_hold_generically(
        specs in market_strategy(),
        mu in 0.3f64..3.0,
        p in 0.05f64..1.5,
    ) {
        let sys = build_system(&specs, mu).unwrap();
        let state = sys.state_at_uniform_price(p).unwrap();
        let eff = SystemEffects::compute(&sys, &state).unwrap();
        prop_assert_eq!(eff.check_signs(), None);
    }

    #[test]
    fn theorem2_aggregate_throughput_never_rises_with_price(
        specs in market_strategy(),
        mu in 0.3f64..3.0,
        p in 0.05f64..1.5,
    ) {
        let sys = build_system(&specs, mu).unwrap();
        let state = sys.state_at_uniform_price(p).unwrap();
        let pe = PriceEffects::compute(&sys, &state, p).unwrap();
        prop_assert!(pe.dphi_dp <= 0.0);
        prop_assert!(pe.dtheta_total_dp <= 1e-12);
    }

    #[test]
    fn lemma2_rescaling_is_invisible(
        specs in market_strategy(),
        kappa in 0.2f64..5.0,
        p in 0.0f64..1.5,
    ) {
        let sys = build_system(&specs, 1.0).unwrap();
        let base = sys.state_at_uniform_price(p).unwrap();
        let mut rescaled = specs.clone();
        rescaled[0] = rescaled[0].rescaled(kappa).unwrap();
        let sys2 = build_system(&rescaled, 1.0).unwrap();
        let st2 = sys2.state_at_uniform_price(p).unwrap();
        prop_assert!((base.phi - st2.phi).abs() < 1e-9);
        prop_assert!((base.theta() - st2.theta()).abs() < 1e-9);
    }

    #[test]
    fn equation14_elasticity_identity(
        specs in market_strategy(),
        p in 0.05f64..1.5,
    ) {
        let sys = build_system(&specs, 1.0).unwrap();
        let state = sys.state_at_uniform_price(p).unwrap();
        let e = StateElasticities::compute(&sys, &state, p).unwrap();
        prop_assert!(check_eq14(&e) < 1e-10);
        let u = e.upsilon();
        prop_assert!(u > 0.0 && u <= 1.0, "upsilon {}", u);
    }

    #[test]
    fn equilibria_are_feasible_and_certified(
        specs in market_strategy(),
        p in 0.1f64..1.2,
        q in 0.05f64..1.0,
    ) {
        let sys = build_system(&specs, 1.0).unwrap();
        let game = SubsidyGame::new(sys, p, q).unwrap();
        let eq = NashSolver::default().with_tol(1e-8).solve(&game).unwrap();
        for (i, &s) in eq.subsidies.iter().enumerate() {
            prop_assert!(s >= 0.0 && s <= game.effective_cap(i) + 1e-9);
        }
        let report = verify_equilibrium(&game, &eq.subsidies).unwrap();
        prop_assert!(report.is_equilibrium(1e-4),
            "kkt {:.2e} threshold {:.2e}", report.max_kkt_residual, report.max_threshold_residual);
        // Utilities non-negative: any CP can always play s = 0.
        for &u in &eq.utilities {
            prop_assert!(u >= -1e-9);
        }
    }

    #[test]
    fn deregulation_never_hurts_isp_at_fixed_price(
        specs in market_strategy(),
        p in 0.1f64..1.2,
        q in 0.05f64..0.9,
    ) {
        let sys = build_system(&specs, 1.0).unwrap();
        let solver = NashSolver::default().with_tol(1e-8);
        let tight = solver.solve(&SubsidyGame::new(sys.clone(), p, q).unwrap()).unwrap();
        let loose = solver.solve(&SubsidyGame::new(sys, p, q + 0.1).unwrap()).unwrap();
        prop_assert!(loose.state.phi >= tight.state.phi - 1e-7);
        prop_assert!(loose.state.theta() >= tight.state.theta() - 1e-7);
    }
}

#[test]
fn aggregation_of_identical_types_is_exact() {
    // Deterministic companion to the proptest: 3 identical types equal
    // their aggregate.
    let one = ExpCpSpec { m0: 0.4, alpha: 3.0, lambda0: 1.0, beta: 2.0, v: 1.0 };
    let agg = aggregate(&[one, one, one], 1e-12).unwrap();
    let sys_three = build_system(&[one, one, one], 1.0).unwrap();
    let sys_one = build_system(&[agg], 1.0).unwrap();
    for p in [0.1, 0.6, 1.3] {
        let a = sys_three.state_at_uniform_price(p).unwrap();
        let b = sys_one.state_at_uniform_price(p).unwrap();
        assert!((a.phi - b.phi).abs() < 1e-10);
        assert!((a.theta() - b.theta()).abs() < 1e-10);
    }
}
