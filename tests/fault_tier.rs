//! Fault tier: the serving layer's recovery contracts under injected
//! failure (see `tests/README.md`, "The fault tier").
//!
//! Five contracts:
//!
//! 1. **Chaos replay is bit-identical and shard-invariant.** One seed,
//!    one fault schedule: two runs produce byte-equal reports, and the
//!    same run at 1, 2 and 4 shards produces the *same* checksum,
//!    failure breakdowns and recovery counters — shard kills trigger the
//!    canonical fleet-wide reset precisely so this holds.
//! 2. **Every fault is recovered.** No chaos episode leaves a market
//!    unrecovered after the final heal sweep; killed shards restart,
//!    panicked markets are rebuilt from their mirrors.
//! 3. **Budgets degrade deterministically, then quarantine.** A starved
//!    market answers identical `Source::Partial` iterates (never cached,
//!    never published), accumulates strikes, refuses all requests once
//!    quarantined — and only a submit heals it.
//! 4. **Poisoned curves are caught at the door.** A NaN-above-threshold
//!    demand curve fails admission fingerprinting as a typed
//!    `NonFinite`, never inside a solve, and never publishes.
//! 5. **Degenerate equilibria are typed replies, not errors.** A
//!    sensitivity read at an equilibrium violating strict
//!    complementarity answers `Reply::Degenerate` with the active-set
//!    partition, and the server keeps serving.

use subcomp::exp::scenarios::section5_system;
use subcomp::exp::server::{
    poison_game, run_chaos, ChaosConfig, ChaosReport, EquilibriumServer, FaultKind, FaultPlan,
    LoadGenConfig, Reply, Request, Sabotage, ServeError, ShardedConfig, ShardedServer, Source,
};
use subcomp::game::game::{Axis, SubsidyGame};
use subcomp::game::workspace::SolveBudget;
use subcomp::num::error::NumError;

/// The §5 market at the `serve_market` default operating point.
fn section5_game() -> SubsidyGame {
    SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid")
}

fn section5_markets(n: usize) -> Vec<(u64, SubsidyGame)> {
    (0..n as u64).map(|id| (id, section5_game())).collect()
}

fn chaos(shards: usize, seed: u64) -> ChaosReport {
    run_chaos(
        &section5_markets(4),
        &ChaosConfig {
            shards,
            pool: 2,
            cache: 16,
            load: LoadGenConfig { requests: 120, hot_keys: 6, ..LoadGenConfig::default() },
            chaos_seed: seed,
        },
    )
    .expect("chaos harness must run")
}

#[test]
fn chaos_replay_is_bit_identical_and_shard_invariant() {
    let one_a = chaos(1, 42);
    let one_b = chaos(1, 42);
    assert_eq!(one_a, one_b, "identical seeds must replay byte-identically");

    let two = chaos(2, 42);
    let four = chaos(4, 42);
    assert_eq!(one_a, two, "chaos outcome diverged between 1 and 2 shards");
    assert_eq!(one_a, four, "chaos outcome diverged between 1 and 4 shards");

    // The episode must have actually exercised the machinery.
    assert!(one_a.injected > 0, "no faults scheduled");
    assert!(one_a.failed > 0, "faults fired but nothing failed — injection is dead");
    assert!(one_a.ok > one_a.failed, "the service must keep serving through faults");
    assert!(one_a.unrecovered.is_empty(), "unrecovered markets: {:?}", one_a.unrecovered);

    // A different seed is a different episode.
    assert_ne!(one_a.checksum, chaos(1, 43).checksum, "the seed must matter");
}

#[test]
fn every_chaos_seed_recovers_every_market() {
    // The recovery bar across a spread of schedules: whatever mix of
    // panics, kills, poisons and starvations each seed draws, the final
    // heal sweep leaves zero unrecovered markets, and every kill was
    // answered by a restart.
    for seed in [1u64, 7, 42, 99, 1234] {
        let report = chaos(2, seed);
        assert!(
            report.unrecovered.is_empty(),
            "seed {seed}: unrecovered markets {:?}",
            report.unrecovered
        );
        let plan = FaultPlan::generate(seed, report.requests, 4);
        let kills =
            plan.events().iter().filter(|e| matches!(e.kind, FaultKind::Kill)).count() as u64;
        assert!(
            report.shard_restarts >= kills.min(1),
            "seed {seed}: {kills} kills scheduled but only {} restarts",
            report.shard_restarts
        );
    }
}

#[test]
fn budget_starvation_degrades_then_quarantines_and_submit_heals() {
    // Cache capacity 0: every read is a real solve, so strikes can never
    // be reset by a cache hit and the quarantine path is deterministic.
    let mut server =
        EquilibriumServer::new(section5_game(), 1, 0).with_budget(SolveBudget::sweeps(1));

    // Three starved reads: identical partial iterates, never cached.
    let mut first_bits = None;
    for strike in 1..=3u32 {
        let reply = server.serve(Request::Equilibrium).expect("partial answers are Ok");
        let Reply::Equilibrium { snap, source } = reply else {
            panic!("equilibrium request answered something else")
        };
        assert_eq!(source, Source::Partial, "a starved solve must degrade, not error");
        assert!(!snap.stats().converged, "partial snapshots carry their non-convergence");
        let bits: Vec<u64> = snap.subsidies().iter().map(|s| s.to_bits()).collect();
        match &first_bits {
            None => first_bits = Some(bits),
            Some(first) => {
                assert_eq!(first, &bits, "starved re-reads must answer identical iterates")
            }
        }
        assert_eq!(server.strikes(), strike);
    }
    assert!(server.is_quarantined(), "three blowouts must quarantine the market");

    // Quarantine refuses every request kind with the typed error.
    for req in [
        Request::Equilibrium,
        Request::Sensitivity { axis: Axis::Mu },
        Request::Update { axis: Axis::Price, value: 0.7 },
    ] {
        assert!(
            matches!(server.serve(req), Err(ServeError::Quarantined { strikes: 3 })),
            "quarantined server must refuse {req:?}"
        );
    }

    // Only a submit heals — and the healed server converges again once
    // the budget is restored.
    server.set_budget(SolveBudget::unlimited());
    assert!(
        matches!(server.serve(Request::Equilibrium), Err(ServeError::Quarantined { strikes: 3 })),
        "a budget change alone must not lift quarantine"
    );
    let (snap, _) = server.submit(section5_game()).expect("submit heals");
    assert!(snap.stats().converged);
    assert!(!server.is_quarantined());
    assert_eq!(server.strikes(), 0);
    let reply = server.serve(Request::Equilibrium).unwrap();
    let Reply::Equilibrium { source, .. } = reply else { unreachable!() };
    // Cache capacity is 0 here, so the healed read warm-starts from the
    // pool slot the submit populated — a full answer, never a partial.
    assert_eq!(source, Source::Warm, "healed markets serve full answers again");
}

#[test]
fn partial_answers_are_never_published() {
    // Sharded view of the same contract: a starved market's partial
    // answers never reach the lock-free index, so no reader can mistake
    // a non-converged iterate for an equilibrium.
    let mut server =
        ShardedServer::new(section5_markets(1), &ShardedConfig { shards: 1, pool: 1, cache: 0 })
            .unwrap();
    server.set_budget(0, SolveBudget::sweeps(1)).unwrap();
    let reply = server.serve(0, Request::Equilibrium).unwrap();
    let Reply::Equilibrium { source, .. } = reply else { unreachable!() };
    assert_eq!(source, Source::Partial);
    assert!(server.read_cached(0).is_none(), "partial answers must never be published");
    // Healing restores publication.
    server.set_budget(0, SolveBudget::unlimited()).unwrap();
    server.submit(0, section5_game()).unwrap();
    assert!(server.read_cached(0).is_some());
}

#[test]
fn poisoned_curves_fail_typed_and_heal_cleanly() {
    let mut server =
        ShardedServer::new(section5_markets(2), &ShardedConfig { shards: 2, pool: 2, cache: 16 })
            .unwrap();
    server.serve(0, Request::Equilibrium).unwrap();
    let clean_bits = {
        let Reply::Equilibrium { snap, .. } = server.serve(0, Request::Equilibrium).unwrap() else {
            unreachable!()
        };
        snap.subsidies().to_vec()
    };

    let poisoned = poison_game(&section5_game()).unwrap();
    assert!(matches!(server.submit(0, poisoned), Err(ServeError::Num(NumError::NonFinite { .. }))));
    // Every read of the poisoned market is the same typed failure; the
    // other market keeps serving.
    for _ in 0..3 {
        assert!(matches!(
            server.serve(0, Request::Equilibrium),
            Err(ServeError::Num(NumError::NonFinite { .. }))
        ));
    }
    assert!(server.serve(1, Request::Equilibrium).is_ok());

    // Healing resubmits the clean game; the answer matches the pre-fault
    // equilibrium bit for bit.
    let healed = server.submit(0, section5_game()).unwrap();
    let Reply::Equilibrium { snap, .. } = healed else { panic!("submit answers equilibrium") };
    assert_eq!(snap.subsidies(), clean_bits.as_slice());
}

#[test]
fn degenerate_equilibria_are_typed_replies_not_errors() {
    // Build a genuinely degenerate equilibrium (strict complementarity
    // fails): solve an interior best response, then cap exactly there.
    use subcomp::game::nash::NashSolver;
    use subcomp::model::aggregation::{build_system, ExpCpSpec};

    let sys = build_system(&[ExpCpSpec::unit(8.0, 2.0, 1.0)], 1.0).unwrap();
    let free = SubsidyGame::new(sys.clone(), 1.0, 2.0).unwrap();
    let s_star = NashSolver::default().with_tol(1e-10).solve(&free).unwrap().subsidies[0];
    let pinned = SubsidyGame::new(sys, 1.0, s_star).unwrap();

    let mut server = EquilibriumServer::new(pinned, 1, 8);
    let reply = server.serve(Request::Sensitivity { axis: Axis::Mu }).unwrap();
    let Reply::Degenerate { active_set, snap, .. } = reply else {
        panic!("a degenerate sensitivity read must answer Reply::Degenerate, got {reply:?}")
    };
    assert!(active_set.upper.contains(&0), "the pinned provider sits in N+");
    assert!(snap.stats().converged, "the equilibrium itself is perfectly good");
    // The server stays resident and keeps serving.
    let reply = server.serve(Request::Equilibrium).unwrap();
    let Reply::Equilibrium { source, .. } = reply else { unreachable!() };
    assert_eq!(source, Source::CacheHit);
}

#[test]
fn sabotaged_requests_fail_typed_while_the_fleet_keeps_serving() {
    // The two supervision scopes, end to end: a request panic rebuilds
    // one market; a kill restarts the shard and rehydrates everything.
    // After both, every market serves full answers again with no submit.
    let mut server =
        ShardedServer::new(section5_markets(3), &ShardedConfig { shards: 2, pool: 2, cache: 16 })
            .unwrap();
    for id in 0..3u64 {
        server.serve(id, Request::Equilibrium).unwrap();
    }

    let panicked = server.serve_sabotaged(0, Request::Equilibrium, Sabotage::Panic);
    assert!(matches!(panicked, Err(ServeError::ShardRestarted { .. })));
    assert_eq!(server.shard_restarts(), 0);
    assert_eq!(server.market_rebuilds(), 1);

    let killed = server.serve_sabotaged(1, Request::Equilibrium, Sabotage::Kill);
    assert!(matches!(killed, Err(ServeError::ShardRestarted { .. })));
    assert_eq!(server.shard_restarts(), 1);
    assert_eq!(server.market_rebuilds(), 4, "kill recovery rebuilds the whole fleet");

    for id in 0..3u64 {
        let reply = server.serve(id, Request::Equilibrium).unwrap();
        let Reply::Equilibrium { snap, .. } = reply else { unreachable!() };
        assert!(snap.stats().converged, "market {id} must serve full answers after recovery");
    }
}

#[test]
fn fault_plans_are_pure_functions_of_their_arguments() {
    let a = FaultPlan::generate(7, 480, 4);
    assert_eq!(a, FaultPlan::generate(7, 480, 4));
    assert_ne!(a, FaultPlan::generate(8, 480, 4));
    // Nothing shard-shaped exists in the signature, and the schedule
    // pairs every curve/budget fault with a heal.
    let primaries = a
        .events()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::NanCurve { .. } | FaultKind::Starve { .. }))
        .count();
    let heals = a.events().iter().filter(|e| matches!(e.kind, FaultKind::Heal { .. })).count();
    assert_eq!(primaries, heals);
}
