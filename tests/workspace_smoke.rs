//! Fast canary that the whole crate graph links: build the paper's default
//! duopoly through the facade prelude alone, solve its subsidization
//! equilibrium, and sanity-check prices and welfare.
//!
//! If this test compiles and passes, `subcomp` -> `subcomp-core` ->
//! `subcomp-model` -> `subcomp-num` are all wired correctly.

use subcomp::prelude::*;

#[test]
fn prelude_solves_default_duopoly() {
    // Paper defaults (§3.2 / §5.2): unit populations and peak rates, µ = 1,
    // exponential families with (α, β) drawn from the {1,3,5} grid, uniform
    // usage price p = 0.6 under subsidy cap q = 0.8.
    let cps = vec![
        ContentProvider::builder("video")
            .demand(ExpDemand::new(1.0, 1.0))
            .throughput(ExpThroughput::new(1.0, 3.0))
            .profitability(1.0)
            .build(),
        ContentProvider::builder("web")
            .demand(ExpDemand::new(1.0, 3.0))
            .throughput(ExpThroughput::new(1.0, 1.0))
            .profitability(1.0)
            .build(),
    ];
    let system = System::new(cps, 1.0, LinearUtilization).expect("valid system");
    let game = SubsidyGame::new(system, 0.6, 0.8).expect("valid game");

    let eq = NashSolver::default().solve(&game).expect("equilibrium solves");
    assert!(eq.converged, "solver did not converge");

    // Effective prices t_i = p - s_i: finite and non-negative for both CPs.
    assert_eq!(eq.subsidies.len(), 2);
    for (i, &s) in eq.subsidies.iter().enumerate() {
        assert!(s.is_finite(), "subsidy {i} not finite");
        assert!(s >= 0.0, "subsidy {i} negative: {s}");
        let t = 0.6 - s;
        assert!(t.is_finite() && t >= -1e-12, "effective price {i} invalid: {t}");
    }

    // Congestion state is a genuine interior fixed point.
    assert!(eq.state.phi.is_finite() && eq.state.phi > 0.0);

    // Welfare breakdown: finite, non-negative welfare, money conserved.
    let w = WelfareBreakdown::compute(&game, &eq.subsidies).expect("welfare computes");
    assert!(w.welfare.is_finite() && w.welfare >= 0.0, "welfare {}", w.welfare);
    assert!(
        (w.user_payments + w.subsidy_outlay - w.isp_revenue).abs() < 1e-9,
        "money not conserved"
    );
}
