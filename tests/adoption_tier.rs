//! Adoption tier: the contracts of the million-user SoA adoption engine
//! and the closed simulate → warm-resolve loop (see `tests/README.md`
//! for the tier's tolerance policy).
//!
//! Three legs:
//!
//! 1. **Determinism** — trajectories are *bit-identical* across thread
//!    counts, chunk sizes and shard counts, and cohorts are isolated
//!    (a cohort's trajectory does not depend on which other cohorts run
//!    beside it). These are exact `assert_eq` checks: the engine splits
//!    its counter-mode RNG streams per user and aggregates in integer
//!    adopter counts, so there is no tolerance to negotiate.
//! 2. **Continuum cross-validation** — in the stationary regime
//!    (adopt = churn = 1, no exploration/decay) one tick realizes
//!    `P(adopt) = e^{−α·t_eff/gain}` per type, which is exactly the
//!    paper's exponential demand curve. A large population discretized
//!    from a [`ContinuumMarket`] must land on the quadrature value of
//!    `D(0, p)` within sampling + panel error (relative 2%), and on the
//!    per-type closed form within relative 2% + an absolute floor for
//!    near-extinct types.
//! 3. **Closed loop** — the loop over the sharded server stays on the
//!    warm paths (one cold solve per cohort, tangent/warm re-solves,
//!    lock-free externality reads) and replays byte-identically.

use subcomp::exp::adoption::{step_population, AdoptionLoop, LoopConfig};
use subcomp::exp::scenarios::section5_specs;
use subcomp::model::continuum::ContinuumMarket;
use subcomp::sim::adoption::{AdoptionParams, Population, TickDrive, TypeSpec};

fn types() -> Vec<TypeSpec> {
    vec![
        TypeSpec { mass: 1.0, alpha: 2.0 },
        TypeSpec { mass: 0.8, alpha: 5.0 },
        TypeSpec { mass: 1.2, alpha: 1.0 },
    ]
}

#[test]
fn stepping_is_bit_identical_across_threads_and_chunks() {
    let params = AdoptionParams { seed: 42, adopt: 0.6, churn: 0.3, ..Default::default() };
    let drive = TickDrive::uniform(3, 0.4);
    let run = |chunk: usize, threads: usize| {
        let mut pop = Population::build(&types(), 50_000, chunk, params).unwrap();
        for _ in 0..8 {
            step_population(&mut pop, threads, &drive).unwrap();
        }
        (pop.adopted_users(), pop.masses().to_vec())
    };
    let reference = run(16_384, 1);
    for (chunk, threads) in [(16_384, 4), (16_384, 13), (512, 1), (512, 8), (4_999, 3)] {
        assert_eq!(
            run(chunk, threads),
            reference,
            "chunk {chunk} x threads {threads} changed the trajectory"
        );
    }
}

#[test]
fn stationary_population_matches_the_continuum_demand() {
    // A smooth continuum of types, discretized into the engine's panel.
    let market = ContinuumMarket::new(
        1.0,
        (0.0, 1.0),
        |w| 1.0 + 0.5 * w,
        |w| 1.0 + 3.0 * w,
        |_| 0.0, // no congestion: the engine is driven at phi = 0
        |_| 1.0,
    )
    .unwrap();
    let p = 0.45;
    let demand = market.aggregate_demand(0.0, p).unwrap();
    let specs = market.discretize(16).unwrap();
    let types: Vec<TypeSpec> =
        specs.iter().map(|s| TypeSpec { mass: s.m0, alpha: s.alpha }).collect();

    // Stationary hazards: adopt/churn both certain, so a single tick
    // realizes the indicator demand curve exactly.
    let params = AdoptionParams { seed: 9, ..Default::default() };
    let n_users = 400_000;
    let mut pop = Population::build(&types, n_users, 16_384, params).unwrap();
    let drive = TickDrive::uniform(types.len(), p);
    pop.step(&drive).unwrap();

    let total: f64 = pop.masses().iter().sum();
    let rel = (total - demand).abs() / demand;
    assert!(
        rel < 0.02,
        "sampled stationary demand {total} vs continuum quadrature {demand} (rel {rel:.4})"
    );

    // Per-type agreement with the closed form, and a fixed point: the
    // stationary regime re-derives every user's state from scratch each
    // tick, so a second tick with the same drive moves nothing.
    let expected = pop.stationary_masses(&drive);
    for ((m, e), t) in pop.masses().iter().zip(&expected).zip(&types) {
        let tol = 0.02 * t.mass + 0.005 * pop.unit_mass() * (n_users as f64).sqrt();
        assert!((m - e).abs() < tol, "type mass {m} vs closed form {e} (tol {tol})");
    }
    let first: Vec<f64> = pop.masses().to_vec();
    pop.step(&drive).unwrap();
    assert_eq!(pop.masses(), &first[..], "the stationary regime must be a fixed point");
}

#[test]
fn closed_loop_replays_bit_identically_whatever_the_parallelism() {
    let specs = section5_specs();
    let base = LoopConfig {
        seed: 3,
        cohorts: 2,
        users: 4_000,
        chunk: 1_024,
        threads: 1,
        demand_every: 4,
        ..Default::default()
    };
    let run = |cfg: &LoopConfig| {
        let mut lp = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, cfg).unwrap();
        lp.run(9).unwrap()
    };
    let reference = run(&base);
    assert_eq!(run(&base), reference, "same config must replay byte-identically");
    for cfg in [
        LoopConfig { threads: 4, ..base.clone() },
        LoopConfig { threads: 32, ..base.clone() },
        LoopConfig { chunk: 333, ..base.clone() },
        LoopConfig { chunk: 7, ..base.clone() },
        LoopConfig { shards: 2, ..base.clone() },
        LoopConfig { threads: 4, chunk: 333, shards: 3, ..base.clone() },
    ] {
        assert_eq!(run(&cfg).checksum, reference.checksum, "parallelism leaked into {cfg:?}");
    }
}

#[test]
fn cohorts_do_not_observe_each_other() {
    let specs = section5_specs();
    let base = LoopConfig { seed: 11, cohorts: 1, users: 3_000, chunk: 512, ..Default::default() };
    let wide = LoopConfig { cohorts: 4, ..base.clone() };
    let mut solo = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, &base).unwrap();
    let mut crowd = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, &wide).unwrap();
    solo.run(6).unwrap();
    crowd.run(6).unwrap();
    assert_eq!(
        solo.cohort_masses(0),
        crowd.cohort_masses(0),
        "cohort 0's trajectory depends on its neighbours"
    );
}

#[test]
fn the_loop_rides_the_warm_paths() {
    let specs = section5_specs();
    let cfg = LoopConfig { seed: 5, cohorts: 2, users: 2_000, chunk: 512, ..Default::default() };
    let mut lp = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, &cfg).unwrap();
    let report = lp.run(6).unwrap();
    let s = report.sources;
    // One cold solve per cohort primes the resident state; everything
    // after rides the tangent/warm ladder, and every tick's externality
    // read after the first is absorbed lock-free by the router.
    assert_eq!(s.cold, 2, "exactly one cold solve per cohort: {s:?}");
    assert!(s.tangent + s.warm >= 10, "re-solves must stay warm: {s:?}");
    assert!(s.lockfree >= 10, "externality reads must go lock-free: {s:?}");
    assert_eq!(s.partial, 0, "no budget starvation in this tier: {s:?}");
    assert!(report.final_adopted > 0, "somebody should adopt");
}
