//! Property tier for the continuation grid engine: on random markets and
//! random `(q, p)` grids, every [`GridSolver`] point must match an
//! independent cold solve of the same game within solver tolerance, the
//! row-seeding order (forward vs reverse) must not change results beyond
//! tolerance, and the parallel fan-out must be bit-identical to the
//! sequential engine for any thread count.
//!
//! Together with `tests/alloc_free.rs` (zero heap allocation per warm
//! sweep) this pins the contract the figure panel and the grid benchmarks
//! scale on: continuation is a *speed* optimization, never an *answer*
//! change.

use proptest::prelude::*;
use subcomp::exp::sweep::{EqGrid, GridContext, GridSolver};
use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::model::aggregation::{build_system, ExpCpSpec};
use subcomp::model::system::System;

/// Strategy: a small market of 2–4 exponential CP types.
fn market_strategy() -> impl Strategy<Value = Vec<ExpCpSpec>> {
    proptest::collection::vec(
        (0.8f64..5.5, 0.8f64..5.5, 0.2f64..1.1)
            .prop_map(|(alpha, beta, v)| ExpCpSpec::unit(alpha, beta, v)),
        2..=4,
    )
}

/// Strategy: a sorted grid axis of 2–4 values in `[lo, hi]`.
fn axis_strategy(lo: f64, hi: f64) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(lo..hi, 2..=4).prop_map(|mut v| {
        v.sort_by(f64::total_cmp);
        v
    })
}

fn system_of(specs: &[ExpCpSpec]) -> System {
    build_system(specs, 1.0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn grid_points_match_independent_cold_solves(
        specs in market_strategy(),
        qs in axis_strategy(0.0, 1.2),
        prices in axis_strategy(0.1, 1.5),
    ) {
        let system = system_of(&specs);
        let grid = GridSolver::default().solve(&system, &qs, &prices).unwrap();
        // Reference: fresh games solved cold by the default grid-scan
        // engine — the construction the panel used before continuation.
        let reference = NashSolver::default().with_tol(1e-8);
        for (r, &q) in qs.iter().enumerate() {
            for (c, &p) in prices.iter().enumerate() {
                let game = SubsidyGame::new(system.clone(), p, q).unwrap();
                let cold = reference.solve(&game).unwrap();
                let pt = grid.point(r, c);
                for i in 0..game.n() {
                    prop_assert!(
                        (pt.subsidies[i] - cold.subsidies[i]).abs() < 1e-6,
                        "(q={}, p={}) CP {}: continuation {} vs cold {}",
                        q, p, i, pt.subsidies[i], cold.subsidies[i]
                    );
                }
                prop_assert!((pt.phi - cold.state.phi).abs() < 1e-6);
                prop_assert!((pt.revenue - cold.isp_revenue(&game)).abs() < 1e-6);
                prop_assert!((pt.welfare - cold.welfare(&game)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn row_seeding_order_does_not_change_results(
        specs in market_strategy(),
        qs in axis_strategy(0.0, 1.2),
        prices in axis_strategy(0.1, 1.5),
    ) {
        let system = system_of(&specs);
        let fwd = GridSolver::default().solve(&system, &qs, &prices).unwrap();
        let rev = GridSolver::default()
            .with_reverse_rows(true)
            .solve(&system, &qs, &prices)
            .unwrap();
        for r in 0..qs.len() {
            for c in 0..prices.len() {
                let (a, b) = (fwd.point(r, c), rev.point(r, c));
                for i in 0..a.subsidies.len() {
                    prop_assert!(
                        (a.subsidies[i] - b.subsidies[i]).abs() < 1e-6,
                        "(r={}, c={}) CP {}: forward {} vs reverse {}",
                        r, c, i, a.subsidies[i], b.subsidies[i]
                    );
                }
                prop_assert!((a.phi - b.phi).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn thread_fanout_is_bit_identical_to_sequential(
        specs in market_strategy(),
        qs in axis_strategy(0.0, 1.2),
        prices in axis_strategy(0.1, 1.5),
        threads in 2usize..5,
        block in 1usize..3,
    ) {
        let system = system_of(&specs);
        let solver = GridSolver::default().with_block(block);
        let parallel = solver
            .clone()
            .with_threads(threads)
            .solve(&system, &qs, &prices)
            .unwrap();
        let mut ctx = GridContext::new(&system);
        let mut seq = EqGrid::empty();
        solver.solve_seq_into(&mut ctx, &qs, &prices, &mut seq).unwrap();
        prop_assert_eq!(parallel, seq);
    }
}
