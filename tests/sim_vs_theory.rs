//! The simulators against the analytic model (DESIGN.md experiment E3):
//! the Definition 1 fixed point emerges from a stochastic flow-level
//! link, and myopic market agents find the analytic Nash equilibrium.

use subcomp::game::game::SubsidyGame;
use subcomp::model::aggregation::{build_system, ExpCpSpec};
use subcomp::model::cp::ContentProvider;
use subcomp::model::demand::ExpDemand;
use subcomp::model::system::System;
use subcomp::model::utilization::LinearUtilization;
use subcomp::sim::flow::{FlowSim, FlowSimConfig, SharingMode};
use subcomp::sim::market::{MarketSim, MarketSimConfig};
use subcomp::sim::measured::MeasuredThroughput;
// The same graded oligopoly markets the golden corpus pins, so these
// tests and the `oligopoly-n*` snapshots stay in lockstep by construction.
use subcomp_exp::corpus::graded_specs;

fn three_cp_system() -> System {
    build_system(
        &[
            ExpCpSpec::unit(2.0, 2.0, 1.0),
            ExpCpSpec::unit(5.0, 5.0, 0.5),
            ExpCpSpec::unit(3.0, 1.0, 1.0),
        ],
        1.0,
    )
    .unwrap()
}

#[test]
fn flow_sim_recovers_definition1_fixed_point() {
    let sys = three_cp_system();
    for p in [0.25, 0.75] {
        let rep = FlowSim::new(&sys, vec![p; 3], FlowSimConfig::default()).unwrap().run().unwrap();
        assert!(
            rep.phi_rel_error < 0.04,
            "p = {p}: sim {} vs analytic {}",
            rep.phi_mean,
            rep.analytic_phi
        );
    }
}

#[test]
fn flow_sim_reflects_subsidies() {
    // Subsidizing CP 1 in the simulator shifts populations and
    // utilization exactly as the analytic game predicts.
    let sys = three_cp_system();
    let game = SubsidyGame::new(sys.clone(), 0.6, 0.5).unwrap();
    let s = vec![0.0, 0.4, 0.0];
    let analytic = game.state(&s).unwrap();
    let rep = FlowSim::new(&sys, game.effective_prices(&s), FlowSimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert!((rep.phi_mean - analytic.phi).abs() / analytic.phi < 0.04);
    for i in 0..3 {
        let err = (rep.m_mean[i] - analytic.m[i]).abs() / analytic.m[i].max(1e-6);
        assert!(err < 0.08, "CP {i}: sim m {} vs analytic {}", rep.m_mean[i], analytic.m[i]);
    }
}

#[test]
fn measured_curve_closes_the_loop() {
    // Measure an emergent lambda(phi) curve from the processor-sharing
    // simulator, build a model CP on it, and solve the fixed point — the
    // full measurement-to-model pipeline.
    let sys = three_cp_system();
    let cfg = FlowSimConfig {
        ticks: 2000,
        warmup: 500,
        mode: SharingMode::ProcessorSharing,
        ..Default::default()
    };
    let sim = FlowSim::new(&sys, vec![0.2; 3], cfg).unwrap();
    // Scales straddle saturation so the measured curve has a genuinely
    // decreasing contention branch.
    let curve = sim.measure_curve(0, &[0.4, 0.8, 1.2, 1.6, 2.0, 2.4]).unwrap();
    let measured = MeasuredThroughput::from_samples(&curve).unwrap();
    let cp = ContentProvider::builder("measured")
        .demand(ExpDemand::new(1.0, 2.0))
        .throughput(measured)
        .profitability(1.0)
        .build();
    let model = System::new(vec![cp], 1.0, LinearUtilization).unwrap();
    let state = model.state_at_uniform_price(0.4).unwrap();
    assert!(state.phi.is_finite() && state.phi > 0.0);
    assert!(state.residual(&model) < 1e-8);
}

#[test]
fn market_sim_finds_nash() {
    let sys = build_system(&[ExpCpSpec::unit(5.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 4.0, 0.4)], 1.0)
        .unwrap();
    let game = SubsidyGame::new(sys, 0.7, 1.0).unwrap();
    let report = MarketSim::new(&game, MarketSimConfig::default()).unwrap().run().unwrap();
    assert!(
        report.distance_to_nash < 0.1,
        "market {:?} vs nash {:?}",
        report.final_subsidies,
        report.nash_subsidies
    );
    // Money conservation across the whole run.
    assert!(report.ledger.conservation_error() < 1e-6 * report.ledger.isp_revenue);
}

#[test]
fn market_sim_finds_nash_in_triopoly() {
    // The suite historically exercised only the duopoly path; myopic
    // A/B-experimenting agents must find the analytic equilibrium in
    // larger markets too (rotation slows down with N, so give the
    // triopoly the default horizon).
    let sys = build_system(&graded_specs(3), 1.0).unwrap();
    let game = SubsidyGame::new(sys, 0.6, 0.8).unwrap();
    let report = MarketSim::new(&game, MarketSimConfig::default()).unwrap().run().unwrap();
    assert!(
        report.distance_to_nash < 0.13,
        "triopoly market {:?} vs nash {:?} (dist {})",
        report.final_subsidies,
        report.nash_subsidies,
        report.distance_to_nash
    );
    assert!(report.ledger.conservation_error() < 1e-6 * report.ledger.isp_revenue);
}

#[test]
fn market_sim_finds_nash_in_five_cp_oligopoly() {
    // Five CPs: each provider only experiments every 5th review period,
    // so the horizon grows accordingly.
    let sys = build_system(&graded_specs(5), 1.0).unwrap();
    let game = SubsidyGame::new(sys, 0.6, 0.8).unwrap();
    let cfg = MarketSimConfig { days: 9000, ..Default::default() };
    let report = MarketSim::new(&game, cfg).unwrap().run().unwrap();
    assert!(
        report.distance_to_nash < 0.15,
        "5-CP market {:?} vs nash {:?} (dist {})",
        report.final_subsidies,
        report.nash_subsidies,
        report.distance_to_nash
    );
    // The ranking of subsidies must match the analytic one: more
    // profitable, more price-elastic types subsidize more (Figure 8's
    // pattern carried over to the oligopoly).
    for i in 1..5 {
        assert!(
            report.final_subsidies[i] >= report.final_subsidies[i - 1] - 0.05,
            "sim subsidy ordering broken at {i}: {:?}",
            report.final_subsidies
        );
    }
}

#[test]
fn deregulation_story_survives_in_simulation() {
    // Corollary 1 observed through the market simulator: ISP cumulative
    // revenue is larger when subsidies are allowed.
    let sys = build_system(&[ExpCpSpec::unit(5.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 4.0, 0.4)], 1.0)
        .unwrap();
    let cfg = MarketSimConfig { days: 2500, ..Default::default() };
    let banned = {
        let game = SubsidyGame::new(sys.clone(), 0.7, 0.0).unwrap();
        MarketSim::new(&game, cfg).unwrap().run().unwrap().ledger.isp_revenue
    };
    let open = {
        let game = SubsidyGame::new(sys, 0.7, 1.0).unwrap();
        MarketSim::new(&game, cfg).unwrap().run().unwrap().ledger.isp_revenue
    };
    assert!(open > banned, "revenue open {open} must beat banned {banned}");
}
