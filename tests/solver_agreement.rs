//! Independent solver families must agree: best-response iteration
//! (Gauss–Seidel, Jacobi), variational-inequality methods (projection,
//! extragradient), continuous dynamics, and the KKT/threshold
//! certificates — across randomized markets.

use proptest::prelude::*;
use subcomp::game::best_response::{deviation_gap, BrConfig};
use subcomp::game::dynamics::gradient_flow;
use subcomp::game::equilibrium::verify_equilibrium;
use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::game::vi::{extragradient_solve, natural_residual, projection_solve, ViConfig};
use subcomp::model::aggregation::{build_system, ExpCpSpec};
use subcomp_exp::scenarios::random_system;

fn game_for_seed(seed: u64) -> SubsidyGame {
    let sys = random_system(5, seed, 1.0);
    SubsidyGame::new(sys, 0.5 + 0.3 * ((seed % 3) as f64), 0.8).unwrap()
}

/// Strategy: a random valid market of 2–6 exponential CP types.
fn market_strategy() -> impl Strategy<Value = Vec<ExpCpSpec>> {
    proptest::collection::vec(
        (0.5f64..6.0, 0.5f64..6.0, 0.1f64..1.2)
            .prop_map(|(alpha, beta, v)| ExpCpSpec::unit(alpha, beta, v)),
        2..=6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 4 as a property: on random valid games, Gauss–Seidel and
    /// Jacobi sweeps — damped and undamped alike — must land on the same
    /// unique equilibrium within tolerance.
    #[test]
    fn sweep_families_agree_on_random_games(
        specs in market_strategy(),
        mu in 0.4f64..2.5,
        p in 0.1f64..1.2,
        q in 0.05f64..1.0,
    ) {
        let sys = build_system(&specs, mu).unwrap();
        let game = SubsidyGame::new(sys, p, q).unwrap();
        let reference = NashSolver::default().with_tol(1e-9).solve(&game).unwrap();
        prop_assert!(reference.converged);
        let variants: [(&str, NashSolver); 3] = [
            ("gs-damped", NashSolver::default().with_tol(1e-9).with_damping(0.7)),
            ("jacobi-damped-0.8", NashSolver::default().with_tol(1e-9).jacobi().with_damping(0.8)),
            ("jacobi-damped-0.5", NashSolver::default().with_tol(1e-9).jacobi().with_damping(0.5)),
        ];
        for (label, solver) in variants {
            let other = solver.solve(&game).unwrap();
            prop_assert!(other.converged, "{label} did not converge");
            for i in 0..game.n() {
                prop_assert!(
                    (reference.subsidies[i] - other.subsidies[i]).abs() < 1e-5,
                    "{label} CP {i}: GS {} vs {}",
                    reference.subsidies[i],
                    other.subsidies[i]
                );
            }
        }
    }

    /// The solved point carries independent certificates regardless of the
    /// sweep family that produced it.
    #[test]
    fn any_sweep_family_passes_certificates(
        specs in market_strategy(),
        p in 0.1f64..1.0,
        q in 0.05f64..0.9,
        omega in 0.5f64..1.0,
    ) {
        let sys = build_system(&specs, 1.0).unwrap();
        let game = SubsidyGame::new(sys, p, q).unwrap();
        let eq = NashSolver::default().with_tol(1e-9).jacobi().with_damping(omega)
            .solve(&game).unwrap();
        let report = verify_equilibrium(&game, &eq.subsidies).unwrap();
        prop_assert!(
            report.is_equilibrium(1e-5),
            "kkt {:.2e} threshold {:.2e}",
            report.max_kkt_residual,
            report.max_threshold_residual
        );
    }
}

#[test]
fn br_vi_and_certificates_agree_on_random_markets() {
    for seed in [1u64, 2, 3, 4, 5] {
        let game = game_for_seed(seed);
        let br = NashSolver::default().with_tol(1e-9).solve(&game).unwrap();
        let vi = projection_solve(&game, &[0.0; 5], &ViConfig::default()).unwrap();
        for i in 0..5 {
            assert!(
                (br.subsidies[i] - vi.subsidies[i]).abs() < 1e-5,
                "seed {seed} CP {i}: BR {} vs VI {}",
                br.subsidies[i],
                vi.subsidies[i]
            );
        }
        // Certificates.
        let report = verify_equilibrium(&game, &br.subsidies).unwrap();
        assert!(report.is_equilibrium(1e-5), "seed {seed}");
        let nr = natural_residual(&game, &br.subsidies).unwrap();
        assert!(nr < 1e-6, "seed {seed}: natural residual {nr}");
    }
}

#[test]
fn extragradient_agrees_with_gauss_seidel() {
    let game = game_for_seed(7);
    let br = NashSolver::default().solve(&game).unwrap();
    let eg = extragradient_solve(&game, &[0.2; 5], &ViConfig::default()).unwrap();
    for i in 0..5 {
        assert!((br.subsidies[i] - eg.subsidies[i]).abs() < 1e-5);
    }
}

#[test]
fn deviation_gap_vanishes_only_at_equilibrium() {
    let game = game_for_seed(9);
    let eq = NashSolver::default().solve(&game).unwrap();
    let (gap_eq, _) = deviation_gap(&game, &eq.subsidies, &BrConfig::default()).unwrap();
    assert!(gap_eq < 1e-7, "gap at equilibrium {gap_eq}");
    let (gap_origin, _) = deviation_gap(&game, &[0.0; 5], &BrConfig::default()).unwrap();
    assert!(gap_origin > gap_eq);
}

#[test]
fn continuous_dynamics_settle_on_the_same_point() {
    // The flow's time constant scales with 1/|∂u/∂s|, which is small for
    // low-throughput providers — give the integrator a long horizon.
    let game = game_for_seed(11);
    let eq = NashSolver::default().solve(&game).unwrap();
    let traj = gradient_flow(&game, &[0.0; 5], 600.0, 3000).unwrap();
    let dist =
        |s: &[f64]| s.iter().zip(&eq.subsidies).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    let d0 = dist(&traj[0].s);
    let d_end = dist(&traj.last().unwrap().s);
    assert!(
        d_end < 2e-2,
        "flow must approach the Nash point: {:?} vs {:?}",
        traj.last().unwrap().s,
        eq.subsidies
    );
    assert!(d_end < 0.05 * d0, "distance must shrink by 20x (was {d0}, now {d_end})");
}

#[test]
fn warm_and_cold_starts_unique_equilibrium() {
    // Theorem 4 in action on random markets: different starting profiles
    // converge to the same equilibrium.
    for seed in [21u64, 22, 23] {
        let game = game_for_seed(seed);
        let solver = NashSolver::default();
        let a = solver.solve_from(&game, &[0.0; 5]).unwrap();
        let caps: Vec<f64> = (0..5).map(|i| game.effective_cap(i)).collect();
        let b = solver.solve_from(&game, &caps).unwrap();
        for i in 0..5 {
            assert!((a.subsidies[i] - b.subsidies[i]).abs() < 1e-6, "seed {seed} CP {i}");
        }
    }
}
