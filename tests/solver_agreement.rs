//! Independent solver families must agree: best-response iteration
//! (Gauss–Seidel, Jacobi), variational-inequality methods (projection,
//! extragradient), continuous dynamics, and the KKT/threshold
//! certificates — across randomized markets.

use subcomp::game::best_response::{deviation_gap, BrConfig};
use subcomp::game::dynamics::gradient_flow;
use subcomp::game::equilibrium::verify_equilibrium;
use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::game::vi::{extragradient_solve, natural_residual, projection_solve, ViConfig};
use subcomp_exp::scenarios::random_system;

fn game_for_seed(seed: u64) -> SubsidyGame {
    let sys = random_system(5, seed, 1.0);
    SubsidyGame::new(sys, 0.5 + 0.3 * ((seed % 3) as f64), 0.8).unwrap()
}

#[test]
fn br_vi_and_certificates_agree_on_random_markets() {
    for seed in [1u64, 2, 3, 4, 5] {
        let game = game_for_seed(seed);
        let br = NashSolver::default().with_tol(1e-9).solve(&game).unwrap();
        let vi = projection_solve(&game, &[0.0; 5], &ViConfig::default()).unwrap();
        for i in 0..5 {
            assert!(
                (br.subsidies[i] - vi.subsidies[i]).abs() < 1e-5,
                "seed {seed} CP {i}: BR {} vs VI {}",
                br.subsidies[i],
                vi.subsidies[i]
            );
        }
        // Certificates.
        let report = verify_equilibrium(&game, &br.subsidies).unwrap();
        assert!(report.is_equilibrium(1e-5), "seed {seed}");
        let nr = natural_residual(&game, &br.subsidies).unwrap();
        assert!(nr < 1e-6, "seed {seed}: natural residual {nr}");
    }
}

#[test]
fn extragradient_agrees_with_gauss_seidel() {
    let game = game_for_seed(7);
    let br = NashSolver::default().solve(&game).unwrap();
    let eg = extragradient_solve(&game, &[0.2; 5], &ViConfig::default()).unwrap();
    for i in 0..5 {
        assert!((br.subsidies[i] - eg.subsidies[i]).abs() < 1e-5);
    }
}

#[test]
fn deviation_gap_vanishes_only_at_equilibrium() {
    let game = game_for_seed(9);
    let eq = NashSolver::default().solve(&game).unwrap();
    let (gap_eq, _) = deviation_gap(&game, &eq.subsidies, &BrConfig::default()).unwrap();
    assert!(gap_eq < 1e-7, "gap at equilibrium {gap_eq}");
    let (gap_origin, _) = deviation_gap(&game, &[0.0; 5], &BrConfig::default()).unwrap();
    assert!(gap_origin > gap_eq);
}

#[test]
fn continuous_dynamics_settle_on_the_same_point() {
    // The flow's time constant scales with 1/|∂u/∂s|, which is small for
    // low-throughput providers — give the integrator a long horizon.
    let game = game_for_seed(11);
    let eq = NashSolver::default().solve(&game).unwrap();
    let traj = gradient_flow(&game, &[0.0; 5], 600.0, 3000).unwrap();
    let dist =
        |s: &[f64]| s.iter().zip(&eq.subsidies).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    let d0 = dist(&traj[0].s);
    let d_end = dist(&traj.last().unwrap().s);
    assert!(
        d_end < 2e-2,
        "flow must approach the Nash point: {:?} vs {:?}",
        traj.last().unwrap().s,
        eq.subsidies
    );
    assert!(d_end < 0.05 * d0, "distance must shrink by 20x (was {d0}, now {d_end})");
}

#[test]
fn warm_and_cold_starts_unique_equilibrium() {
    // Theorem 4 in action on random markets: different starting profiles
    // converge to the same equilibrium.
    for seed in [21u64, 22, 23] {
        let game = game_for_seed(seed);
        let solver = NashSolver::default();
        let a = solver.solve_from(&game, &[0.0; 5]).unwrap();
        let caps: Vec<f64> = (0..5).map(|i| game.effective_cap(i)).collect();
        let b = solver.solve_from(&game, &caps).unwrap();
        for i in 0..5 {
            assert!((a.subsidies[i] - b.subsidies[i]).abs() < 1e-6, "seed {seed} CP {i}");
        }
    }
}
