//! Property tier for the workspace engine: on random games, solves through
//! a reused [`SolveWorkspace`] must match the fresh-allocation wrappers
//! **bit-exactly** — same subsidies, state, utilities, sweep counts and
//! residual bits — across Gauss–Seidel, damped Jacobi and both VI methods,
//! including a workspace hopping between games of different sizes.
//!
//! This is the contract that lets `solve`, `solve_from`,
//! `projection_solve` and `extragradient_solve` remain thin shims over the
//! engine (and what keeps the golden snapshots byte-identical across the
//! allocation-free refactor).

use proptest::prelude::*;
use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::{NashSolver, WarmStart};
use subcomp::game::vi::{
    extragradient_solve, extragradient_solve_into, projection_solve, projection_solve_into,
    ViConfig,
};
use subcomp::game::workspace::SolveWorkspace;
use subcomp::model::aggregation::{build_system, ExpCpSpec};

/// Strategy: a small market of 2–4 exponential CP types.
fn market_strategy() -> impl Strategy<Value = Vec<ExpCpSpec>> {
    proptest::collection::vec(
        (0.8f64..5.5, 0.8f64..5.5, 0.2f64..1.1)
            .prop_map(|(alpha, beta, v)| ExpCpSpec::unit(alpha, beta, v)),
        2..=4,
    )
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn nash_workspace_reuse_is_bit_exact(
        specs_a in market_strategy(),
        specs_b in market_strategy(),
        p in 0.3f64..1.0,
        q in 0.2f64..1.0,
    ) {
        let game_a = SubsidyGame::new(build_system(&specs_a, 1.0).unwrap(), p, q).unwrap();
        let game_b = SubsidyGame::new(build_system(&specs_b, 1.0).unwrap(), 1.3 - p, q).unwrap();
        for solver in [
            NashSolver::default().with_tol(1e-8),
            NashSolver::default().jacobi().with_damping(0.6).with_tol(1e-7),
        ] {
            // Fresh-allocation reference solves.
            let fresh_a = solver.solve(&game_a).unwrap();
            let fresh_b = solver.solve(&game_b).unwrap();
            // One workspace reused across games of (usually) different n,
            // then back to the first game — every run must be bit-exact.
            let mut ws = SolveWorkspace::new();
            for (game, fresh) in [(&game_a, &fresh_a), (&game_b, &fresh_b), (&game_a, &fresh_a)] {
                let stats = solver.solve_into(game, WarmStart::Zero, &mut ws).unwrap();
                prop_assert_eq!(bits(ws.subsidies()), bits(&fresh.subsidies));
                prop_assert_eq!(bits(ws.utilities()), bits(&fresh.utilities));
                prop_assert_eq!(ws.state().phi.to_bits(), fresh.state.phi.to_bits());
                prop_assert_eq!(bits(&ws.state().theta_i), bits(&fresh.state.theta_i));
                prop_assert_eq!(stats.iterations, fresh.iterations);
                prop_assert_eq!(stats.residual.to_bits(), fresh.residual.to_bits());
                prop_assert_eq!(stats.converged, fresh.converged);
            }
        }
    }

    #[test]
    fn warm_profile_start_is_bit_exact(
        specs in market_strategy(),
        p in 0.3f64..1.0,
        q in 0.2f64..1.0,
        warm in 0.0f64..0.2,
    ) {
        let game = SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap();
        let s0 = vec![warm; game.n()];
        let solver = NashSolver::default().with_tol(1e-8);
        let fresh = solver.solve_from(&game, &s0).unwrap();
        let mut ws = SolveWorkspace::for_game(&game);
        let stats = solver.solve_into(&game, WarmStart::Profile(&s0), &mut ws).unwrap();
        prop_assert_eq!(bits(ws.subsidies()), bits(&fresh.subsidies));
        prop_assert_eq!(stats.iterations, fresh.iterations);
        prop_assert_eq!(stats.residual.to_bits(), fresh.residual.to_bits());
    }

    #[test]
    fn vi_workspace_reuse_is_bit_exact(
        specs_a in market_strategy(),
        specs_b in market_strategy(),
        p in 0.3f64..1.0,
        q in 0.2f64..0.9,
    ) {
        let game_a = SubsidyGame::new(build_system(&specs_a, 1.0).unwrap(), p, q).unwrap();
        let game_b = SubsidyGame::new(build_system(&specs_b, 1.0).unwrap(), 1.2 - p, q).unwrap();
        let cfg = ViConfig { tol: 1e-6, ..Default::default() };
        let mut ws = SolveWorkspace::new();
        for game in [&game_a, &game_b, &game_a] {
            let s0 = vec![0.0; game.n()];
            let fresh_pj = projection_solve(game, &s0, &cfg).unwrap();
            let pj = projection_solve_into(game, &s0, &cfg, &mut ws).unwrap();
            prop_assert_eq!(bits(ws.subsidies()), bits(&fresh_pj.subsidies));
            prop_assert_eq!(ws.state().phi.to_bits(), fresh_pj.state.phi.to_bits());
            prop_assert_eq!(pj.iterations, fresh_pj.iterations);
            prop_assert_eq!(pj.natural_residual.to_bits(), fresh_pj.natural_residual.to_bits());

            let fresh_eg = extragradient_solve(game, &s0, &cfg).unwrap();
            let eg = extragradient_solve_into(game, &s0, &cfg, &mut ws).unwrap();
            prop_assert_eq!(bits(ws.subsidies()), bits(&fresh_eg.subsidies));
            prop_assert_eq!(eg.iterations, fresh_eg.iterations);
            prop_assert_eq!(eg.natural_residual.to_bits(), fresh_eg.natural_residual.to_bits());
        }
    }
}
