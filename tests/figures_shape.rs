//! Integration tests asserting the paper's qualitative figure claims on
//! the same data the figure binaries print (reduced grids for CI speed).

use subcomp_exp::figures::{fig10, fig11, fig4, fig5, fig7, fig8, fig9, panel};

fn shared_panel() -> panel::Panel {
    // 3 caps x 9 prices keeps this test file under a minute while still
    // exercising every claim.
    let prices: Vec<f64> = (0..9).map(|k| 0.1 + k as f64 * 0.2375).collect();
    panel::compute_on(&[0.0, 0.5, 2.0], &prices, 3).unwrap()
}

#[test]
fn figure4_shape() {
    let fig = fig4::compute(&fig4::default_prices(31)).unwrap();
    fig.check_shape().unwrap();
    // The revenue peak is interior and the peak revenue positive.
    let k = subcomp_exp::figures::shapes::argmax(&fig.revenue);
    assert!(k > 0 && k < fig.revenue.len() - 1);
    assert!(fig.revenue[k] > 0.2, "peak revenue {}", fig.revenue[k]);
}

#[test]
fn figure5_shape() {
    let fig = fig5::compute(&fig4::default_prices(31)).unwrap();
    fig.check_shape().unwrap();
}

#[test]
fn figures_7_through_11_shapes() {
    let panel = shared_panel();

    let f7 = fig7::compute(&panel);
    f7.check_shape().unwrap();

    let f8 = fig8::compute(&panel);
    fig8::check_shape(&f8).unwrap().unwrap();

    let f9 = fig9::compute(&panel);
    fig9::check_shape(&f9).unwrap().unwrap();

    let f10 = fig10::compute(&panel);
    fig10::check_shape(&f10, 0).unwrap().unwrap();

    let f11 = fig11::compute(&panel);
    fig11::check_shape(&f11, 0, f11.qs.len() - 1).unwrap().unwrap();
}

#[test]
fn figure7_crossover_story() {
    // The regulatory tension in one figure: deregulation (larger q) raises
    // welfare at a fixed price, but a higher price erases the gain —
    // W(q=2, p=1.5) is below W(q=0, p=0.35).
    let panel = shared_panel();
    let f7 = fig7::compute(&panel);
    let w_dereg_highp = f7.welfare[2][6]; // q = 2, p ~ 1.5
    let w_reg_lowp = f7.welfare[0][1]; // q = 0, p ~ 0.35
    assert!(
        w_dereg_highp < w_reg_lowp,
        "high price should dominate the subsidization gain: {w_dereg_highp} vs {w_reg_lowp}"
    );
}

#[test]
fn figure10_winners_and_losers_are_the_papers() {
    let panel = shared_panel();
    let f10 = fig10::compute(&panel);
    // Winners: a5-b2-v1 gains the most (relative) at moderate price.
    let qi = 2; // q = 2
    let pi = 2; // p ~ 0.575
    let gain = |i: usize| f10.values[qi][i][pi] - f10.values[0][i][pi];
    let gains: Vec<f64> = (0..8).map(gain).collect();
    let best = subcomp_exp::figures::shapes::argmax(&gains);
    assert_eq!(f10.labels[best], "a5-b2-v1", "gains: {gains:?}");
    // Loser at small p: the congestion-sensitive types lose throughput.
    let pi0 = 0; // p = 0.1
    assert!(gain(1) < 0.0 || f10.values[qi][1][pi0] < f10.values[0][1][pi0]);
}
