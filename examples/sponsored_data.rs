//! Sponsored data (AT&T, 2014): *full* subsidization `s_i = p` as the
//! special case the paper builds on — with the billing ledger showing
//! users of a sponsoring CP pay exactly zero.
//!
//! The example contrasts three regimes for a video CP:
//!   1. no subsidy allowed (q = 0),
//!   2. the CP's *optimal* partial subsidy under a generous cap,
//!   3. mandatory full sponsorship (s = p, the AT&T plan).
//!
//! Run with: `cargo run --example sponsored_data`

use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::model::aggregation::{build_system, ExpCpSpec};
use subcomp::sim::billing::Ledger;

fn main() {
    // A sponsoring video CP against a non-sponsoring competitor.
    let specs = [
        ExpCpSpec::unit(4.0, 3.0, 1.0), // "video" — the sponsor candidate
        ExpCpSpec::unit(3.0, 3.0, 0.6), // "rival"
    ];
    let p = 0.5;
    let system = build_system(&specs, 1.0).expect("valid market");

    // Regime 1: subsidization banned.
    let banned = SubsidyGame::new(system.clone(), p, 0.0).expect("game");
    let eq_banned = NashSolver::default().solve(&banned).expect("equilibrium");

    // Regime 2: generous cap, the CPs choose optimally.
    let open = SubsidyGame::new(system.clone(), p, 1.0).expect("game");
    let eq_open = NashSolver::default().solve(&open).expect("equilibrium");

    // Regime 3: the video CP fully sponsors (s = p), rival plays its best
    // response to that commitment.
    let full = SubsidyGame::new(system, p, p).expect("game");
    let mut s_full = eq_open.subsidies.clone();
    s_full[0] = p; // sponsored data: user price for video drops to zero
    s_full[1] = s_full[1].min(p);
    let rival_br =
        subcomp::game::best_response::best_response(&full, 1, &s_full, &Default::default())
            .expect("rival best response");
    s_full[1] = rival_br.s;
    let state_full = full.state(&s_full).expect("state");

    println!("regime comparison at p = {p} (video CP = CP 0):\n");
    let rows = [
        ("banned (q=0)", &eq_banned.subsidies, &eq_banned.state),
        ("open (q=1, Nash)", &eq_open.subsidies, &eq_open.state),
        ("full sponsorship", &s_full, &state_full),
    ];
    println!(
        "{:>18} | {:>9} {:>9} | {:>9} {:>9} | {:>8} {:>9}",
        "regime", "s_video", "s_rival", "m_video", "m_rival", "phi", "ISP rev"
    );
    for (name, s, state) in rows {
        println!(
            "{:>18} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4} | {:>8.4} {:>9.4}",
            name,
            s[0],
            s[1],
            state.m[0],
            state.m[1],
            state.phi,
            p * state.theta()
        );
    }

    // Bill one day of traffic under full sponsorship: video users pay 0.
    let ledger = Ledger::settle(&state_full.theta_i, 1.0, p, &s_full).expect("ledger");
    println!("\none billing day under full sponsorship:");
    println!("  video users pay  {:>8.4}  (sponsored: exactly zero)", ledger.user_payments[0]);
    println!("  video CP pays    {:>8.4}", ledger.cp_subsidies[0]);
    println!("  rival users pay  {:>8.4}", ledger.user_payments[1]);
    println!("  ISP receives     {:>8.4}", ledger.isp_revenue);
    println!("  conservation err {:>8.2e}", ledger.conservation_error());

    // The paper's point: the CP would rather choose its own subsidy level.
    let u_full = (1.0 - s_full[0]) * state_full.theta_i[0];
    println!(
        "\nvideo CP utility: banned {:.4} | open Nash {:.4} | full sponsorship {:.4}",
        eq_banned.utilities[0], eq_open.utilities[0], u_full
    );
    println!("(voluntary partial subsidization dominates mandated full sponsorship)");
}
