//! Agent-based market simulation: do myopic, information-poor CPs find
//! the Nash equilibrium the theory predicts?
//!
//! CPs in this simulation know nothing about demand curves or rivals;
//! they run A/B experiments on their own subsidy and keep what earns
//! more. Users churn gradually. The run converges to the analytic
//! equilibrium — the paper's static solution concept describes where the
//! decentralized market actually goes.
//!
//! Run with: `cargo run --release --example market_sim`

use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::model::aggregation::{build_system, ExpCpSpec};
use subcomp::sim::market::{MarketSim, MarketSimConfig};

fn main() {
    let specs = [
        ExpCpSpec::unit(5.0, 2.0, 1.0), // aggressive subsidizer
        ExpCpSpec::unit(2.0, 4.0, 0.4), // can't afford to play
    ];
    let system = build_system(&specs, 1.0).expect("valid market");
    let game = SubsidyGame::new(system, 0.7, 1.0).expect("game");

    // Theory first.
    let nash = NashSolver::default().solve(&game).expect("nash");
    println!("analytic Nash equilibrium: {:?}", rounded(&nash.subsidies));

    // Now the simulation.
    let cfg = MarketSimConfig::default();
    let report = MarketSim::new(&game, cfg).expect("sim").run().expect("run");

    println!("market simulation ({} days, seed {}):", cfg.days, cfg.seed);
    // Print the subsidy trajectory of CP 0 at a coarse cadence.
    let s0 = report.trace.by_name("s_0").expect("series");
    let samples = s0.samples();
    print!("  s_0 trajectory: ");
    for k in (0..samples.len()).step_by(samples.len() / 12) {
        print!("{:.2} ", samples[k]);
    }
    println!();
    println!("  final subsidies: {:?}", rounded(&report.final_subsidies));
    println!("  nash subsidies:  {:?}", rounded(&report.nash_subsidies));
    println!("  sup distance:    {:.4}", report.distance_to_nash);
    println!(
        "  cumulative ISP revenue {:.2}, money conservation error {:.2e}",
        report.ledger.isp_revenue,
        report.ledger.conservation_error()
    );
    if report.distance_to_nash < 0.1 {
        println!("the decentralized market found the analytic equilibrium.");
    } else {
        println!("warning: market ended away from equilibrium — inspect the trace.");
    }
}

fn rounded(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 1e4).round() / 1e4).collect()
}
