//! Capacity planning: the paper's investment-incentive argument, made
//! quantitative (the §6 future-work extension).
//!
//! The ISP chooses capacity µ against a linear cost c·µ, re-optimizing
//! its price at each capacity, with CPs at their subsidy equilibrium.
//! Deregulated subsidization raises margins — and with them the
//! profit-maximizing capacity, which in turn relieves the congestion
//! that short-run deregulation inflicts on congestion-sensitive CPs.
//!
//! Run with: `cargo run --example capacity_planning`

use subcomp::game::capacity::CapacityPlanner;
use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::model::aggregation::{build_system, ExpCpSpec};

fn main() {
    let specs = [
        ExpCpSpec::unit(2.0, 2.0, 0.5),
        ExpCpSpec::unit(5.0, 2.0, 1.0),
        ExpCpSpec::unit(2.0, 5.0, 1.0), // congestion-sensitive, profitable
        ExpCpSpec::unit(5.0, 5.0, 0.5),
    ];
    let system = build_system(&specs, 1.0).expect("valid market");
    let solver = NashSolver::default().with_tol(1e-6).with_max_sweeps(100);
    let planner = CapacityPlanner::new(0.08, (0.0, 2.0), (0.4, 4.0)).expect("planner");

    println!("long-run capacity choice (cost 0.08 per unit of capacity):\n");
    println!("{:>5} | {:>7} | {:>7} | {:>8} | {:>7}", "q", "mu*", "p*", "profit", "phi");
    let mut choices = Vec::new();
    for q in [0.0, 0.5, 1.0] {
        let c = planner.optimal_capacity(&system, q, &solver).expect("capacity choice");
        println!(
            "{q:>5} | {:>7.3} | {:>7.3} | {:>8.4} | {:>7.4}",
            c.mu_star, c.p_star, c.profit, c.equilibrium_phi
        );
        choices.push((q, c));
    }

    // Does expansion rescue the congestion-sensitive CP (index 2)?
    println!("\nthroughput of the congestion-sensitive profitable CP (a2-b5-v1):");
    for (q, c) in &choices {
        let sys_short = system.clone(); // short run: capacity stuck at 1
        let sys_long = system.with_capacity(c.mu_star).expect("capacity");
        let th = |sys: &subcomp::model::system::System| {
            let game = SubsidyGame::new(sys.clone(), c.p_star, *q).expect("game");
            let eq = solver.solve(&game).expect("equilibrium");
            eq.state.theta_i[2]
        };
        println!(
            "  q = {q}: short-run (mu = 1) {:.4}  ->  long-run (mu = {:.2}) {:.4}",
            th(&sys_short),
            c.mu_star,
            th(&sys_long)
        );
    }
    println!("\ncapacity expansion funded by subsidization relieves the very CPs");
    println!("that short-run deregulation hurts — the paper's investment story.");
}
