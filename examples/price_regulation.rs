//! Price regulation: the paper's closing policy question.
//!
//! Deregulating subsidization raises welfare *at a fixed price*
//! (Corollary 1/2), but a monopoly ISP re-optimizes its price — and the
//! paper warns that regulators "might need to regulate access prices if
//! the access ISP market is not competitive enough". This example
//! quantifies that: welfare under (a) a competitive/regulated price,
//! (b) the monopoly price, (c) a range of price caps.
//!
//! Run with: `cargo run --example price_regulation`

use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::game::pricing::optimal_price;
use subcomp::game::welfare::welfare;
use subcomp::model::aggregation::{build_system, ExpCpSpec};

fn main() {
    // The paper's Section 5 market: 8 types, alpha/beta in {2,5}, v in {0.5,1}.
    let mut specs = Vec::new();
    for &v in &[0.5, 1.0] {
        for &alpha in &[2.0, 5.0] {
            for &beta in &[2.0, 5.0] {
                specs.push(ExpCpSpec::unit(alpha, beta, v));
            }
        }
    }
    let system = build_system(&specs, 1.0).expect("valid market");
    let solver = NashSolver::default().with_tol(1e-7).with_max_sweeps(150);
    let q = 1.0; // deregulated subsidization

    // Monopoly benchmark: the ISP picks its revenue-maximizing price.
    let mono = optimal_price(&system, q, 0.0, 2.0, &solver).expect("monopoly price");
    println!(
        "monopoly ISP: p* = {:.3}, revenue = {:.4}, welfare = {:.4}\n",
        mono.p_star,
        mono.revenue,
        mono.equilibrium.welfare(&SubsidyGame::new(system.clone(), mono.p_star, q).unwrap())
    );

    // Regulator sweeps a price cap below the monopoly price.
    println!("price-cap sweep (subsidization cap q = {q}):");
    println!("{:>7} | {:>9} | {:>9} | {:>7}", "cap", "revenue", "welfare", "phi");
    let mut best_cap = (0.0, f64::NEG_INFINITY);
    for k in 1..=10 {
        let cap = 0.1 * k as f64;
        // Under a binding cap the monopolist prices at the cap whenever
        // the cap is below its unconstrained optimum.
        let p = cap.min(mono.p_star);
        let game = SubsidyGame::new(system.clone(), p, q).expect("game");
        let eq = solver.solve(&game).expect("equilibrium");
        let w = welfare(&game, &eq.state);
        if w > best_cap.1 {
            best_cap = (cap, w);
        }
        println!(
            "{:>7.2} | {:>9.4} | {:>9.4} | {:>7.4}",
            cap,
            eq.isp_revenue(&game),
            w,
            eq.state.phi
        );
    }
    println!("\nwelfare-maximizing cap in the sweep: {:.2} (W = {:.4})", best_cap.0, best_cap.1);
    println!(
        "monopoly price {:.3} vs welfare-best cap {:.2}: the regulator's trade-off —",
        mono.p_star, best_cap.0
    );
    println!("low caps maximize usage and welfare but squeeze the ISP's investment margin.");
}
