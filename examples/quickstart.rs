//! Quickstart: build a market, solve the subsidization equilibrium, and
//! read off who subsidizes, what the ISP earns, and where welfare goes.
//!
//! Run with: `cargo run --example quickstart`

use subcomp::game::equilibrium::verify_equilibrium;
use subcomp::game::game::SubsidyGame;
use subcomp::game::nash::NashSolver;
use subcomp::game::welfare::WelfareBreakdown;
use subcomp::model::aggregation::{build_system, ExpCpSpec};

fn main() {
    // A small content market: a video giant, a social network, and a
    // startup, all sharing one access ISP of capacity 1.
    //   alpha = price sensitivity of users, beta = congestion sensitivity
    //   of traffic, v = profit per unit of traffic.
    let specs = [
        ExpCpSpec::unit(4.0, 2.0, 1.0), // "video": elastic users, profitable
        ExpCpSpec::unit(2.0, 3.0, 0.7), // "social": stickier users
        ExpCpSpec::unit(5.0, 4.0, 0.2), // "startup": elastic users, thin margins
    ];
    let names = ["video", "social", "startup"];
    let system = build_system(&specs, 1.0).expect("valid market");

    // ISP charges p = 0.6 per unit of traffic; the regulator allows
    // subsidies up to q = 0.5.
    let game = SubsidyGame::new(system, 0.6, 0.5).expect("valid game");

    // Solve the Nash equilibrium of the subsidization competition.
    let eq = NashSolver::default().solve(&game).expect("equilibrium");
    println!("subsidization equilibrium (p = {}, q = {}):", game.price(), game.cap());
    for i in 0..game.n() {
        println!(
            "  {:>8}: subsidy {:.4}  users {:.4}  throughput {:.4}  utility {:.4}",
            names[i], eq.subsidies[i], eq.state.m[i], eq.state.theta_i[i], eq.utilities[i]
        );
    }
    println!("  utilization {:.4}, ISP revenue {:.4}", eq.state.phi, eq.isp_revenue(&game));

    // Verify it really is an equilibrium (Theorem 3 KKT certificate).
    let report = verify_equilibrium(&game, &eq.subsidies).expect("verification");
    println!(
        "equilibrium certificate: max KKT residual {:.2e}, max threshold residual {:.2e}",
        report.max_kkt_residual, report.max_threshold_residual
    );

    // Where does the money go?
    let b = WelfareBreakdown::compute(&game, &eq.subsidies).expect("breakdown");
    println!("money flows per unit time:");
    println!("  users pay        {:.4}", b.user_payments);
    println!("  CPs subsidize    {:.4}", b.subsidy_outlay);
    println!("  ISP receives     {:.4}", b.isp_revenue);
    println!("  CP gross profit  {:.4} (the paper's welfare metric W)", b.welfare);

    // Compare against the regulated baseline q = 0.
    let baseline = NashSolver::default()
        .solve(&game.with_cap(0.0).expect("baseline game"))
        .expect("baseline equilibrium");
    println!(
        "vs q = 0 baseline: ISP revenue {:.4} -> {:.4}, welfare {:.4} -> {:.4}",
        baseline.isp_revenue(&game),
        eq.isp_revenue(&game),
        baseline.welfare(&game),
        eq.welfare(&game)
    );
}
