//! # `subcomp` — Subsidization Competition for a Neutral Internet
//!
//! Facade crate re-exporting the full workspace. See the README for the
//! architecture overview, `DESIGN.md` for the paper-to-module inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! Reproduces: Richard T. B. Ma, *Subsidization Competition: Vitalizing
//! the Neutral Internet*, ACM CoNEXT 2014 (arXiv:1406.2516).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use subcomp_core as game;
pub use subcomp_exp as exp;
pub use subcomp_model as model;
pub use subcomp_num as num;
pub use subcomp_sim as sim;

/// One-stop imports across the workspace.
pub mod prelude {
    pub use subcomp_core::prelude::*;
    pub use subcomp_model::prelude::*;
}

/// Where each result of the paper lives in this workspace.
///
/// | paper result | implementation | verified by |
/// |---|---|---|
/// | Definition 1 (utilization) | [`model::system::System::solve_state`] | `system` tests; `tests/properties.rs` |
/// | Lemma 1 (uniqueness) | [`num::roots::solve_increasing`] over the gap function | `lemma1_unique_utilization_fixed_point` |
/// | Lemma 2 (aggregation) | [`model::aggregation`] | `lemma2_rescaling_is_invisible` property test |
/// | Theorem 1 (capacity/user effects) | [`model::effects::SystemEffects`] | finite-difference cross-checks |
/// | Definition 2 (elasticity) | [`model::elasticity`] | closed-form vs numeric tests |
/// | Theorem 2 (price effect, condition (7)) | [`model::effects::PriceEffects`] | per-CP sign agreement tests |
/// | Lemma 3 (subsidy monotonicity) | [`game::game::SubsidyGame::state`] | `lemma3_subsidy_monotonicity` |
/// | Definition 3 (Nash equilibrium) | [`game::nash::NashSolver`] | KKT + deviation certificates |
/// | Theorem 3 (characterization) | [`game::equilibrium`] (`τ_i`, KKT residuals) | `theorem3_equilibrium_characterization` |
/// | Theorem 4 (uniqueness) | [`game::structure::p_function_evidence`] | solver-agreement tests |
/// | Theorem 5 (profitability effect) | [`game::game::SubsidyGame::with_profitability`] | `theorem5_profitability_raises_subsidy` |
/// | Theorem 6 (equilibrium dynamics) | [`game::sensitivity::Sensitivity`] (+ `directional` along any [`game::game::Axis`]) | re-solved-equilibrium finite differences |
/// | Corollary 1 (deregulation) | [`game::policy::policy_effect`] (fixed price) | monotone sweeps |
/// | Theorem 7 (marginal revenue, Υ) | [`game::revenue::marginal_revenue_at`] | finite-difference cross-checks |
/// | Theorem 8 (policy effect) | [`game::policy::policy_effect`] (optimal price) | per-CP dθ/dq agreement |
/// | Corollary 2 (welfare) | [`game::welfare::corollary2`] | sign-consistency tests |
/// | Figures 4–11 | [`exp::figures`] | shape checks + `tests/figures_shape.rs` |
/// | beyond the paper: scenario corpus | [`exp::corpus`] (+ [`exp::golden`]) | golden snapshots, `tests/golden_scenarios.rs` |
/// | §6 capacity planning (future work) | [`game::capacity::CapacityPlanner`] | E2 experiment |
/// | §6 ISP competition (conjecture) | [`game::duopoly::Duopoly`] | E4 experiment |
/// | Lemma 2 limit (continuum) | [`model::continuum::ContinuumMarket`] | E5 experiment |
pub mod paper_map {}
