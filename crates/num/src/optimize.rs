//! Bounded optimization.
//!
//! Two families of problems occur in the paper:
//!
//! 1. **Scalar, box-constrained maximization** — each content provider's
//!    best-response subsidy maximizes `U_i(s_i; s_{-i})` over `s_i ∈ [0, q]`
//!    (Definition 3), and the ISP maximizes revenue `R(p)` over a price
//!    interval (Section 5). [`maximize_scalar`] handles both: a coarse grid
//!    scan localizes the global maximum (utilities can have a boundary
//!    maximum or, for pathological function families, several local ones),
//!    then golden-section + parabolic (Brent) polishing refines it.
//! 2. **n-dimensional box-constrained ascent** — the variational-inequality
//!    view of the game (Theorem 4/6 use `VI(F, K)` with `K = [0,q]^N`)
//!    needs a projected step primitive; [`project_box`] and
//!    [`projected_gradient_ascent`] provide it.
//!
//! Every routine reports function-evaluation counts for benchmarking.

use crate::error::{NumError, NumResult};
use crate::tol::Tolerance;

/// Result of a scalar maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarMax {
    /// Argmax location.
    pub x: f64,
    /// Objective value at [`ScalarMax::x`].
    pub value: f64,
    /// Function evaluations spent.
    pub evaluations: usize,
}

/// Golden-section search for the maximum of a unimodal `f` on `[a, b]`.
///
/// Linear convergence with ratio `1/φ ≈ 0.618`; derivative-free; never
/// leaves the interval. Converges when the interval width meets `tol`.
pub fn golden_max<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    a: f64,
    b: f64,
    tol: Tolerance,
) -> NumResult<ScalarMax> {
    if !(b >= a) {
        return Err(NumError::Domain { what: "golden_max requires b >= a", value: b - a });
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut lo = a;
    let mut hi = b;
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut evals = 2;
    for _ in 0..tol.max_iter {
        if tol.is_met(hi - lo, 0.5 * (hi + lo)) {
            break;
        }
        if f1 < f2 {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        } else {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        }
        evals += 1;
    }
    let (x, value) = if f1 >= f2 { (x1, f1) } else { (x2, f2) };
    if !value.is_finite() {
        return Err(NumError::NonFinite { what: "golden_max objective", at: x });
    }
    Ok(ScalarMax { x, value, evaluations: evals })
}

/// Brent's parabolic-interpolation maximizer on `[a, b]`.
///
/// Superlinear on smooth unimodal objectives; falls back to golden-section
/// steps when the parabolic model misbehaves. This is the standard `fmin`
/// algorithm with the objective negated.
pub fn brent_max<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    a: f64,
    b: f64,
    tol: Tolerance,
) -> NumResult<ScalarMax> {
    if !(b >= a) {
        return Err(NumError::Domain { what: "brent_max requires b >= a", value: b - a });
    }
    const CGOLD: f64 = 0.381_966_011_250_105_2;
    let neg = |x: f64| -f(x);
    let (mut lo, mut hi) = (a, b);
    let mut x = lo + CGOLD * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = neg(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;
    let mut evals = 1;
    for _ in 0..tol.max_iter {
        let xm = 0.5 * (lo + hi);
        let tol1 = tol.threshold(x).max(1e-15);
        let tol2 = 2.0 * tol1;
        if (x - xm).abs() <= tol2 - 0.5 * (hi - lo) {
            return Ok(ScalarMax { x, value: -fx, evaluations: evals });
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Fit a parabola through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let mut q = (x - v) * (fx - fw);
            let mut p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let etemp = e;
            e = d;
            if p.abs() < (0.5 * q * etemp).abs() && p > q * (lo - x) && p < q * (hi - x) {
                d = p / q;
                let u = x + d;
                if u - lo < tol2 || hi - u < tol2 {
                    d = tol1 * (xm - x).signum();
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x >= xm { lo - x } else { hi - x };
            d = CGOLD * e;
        }
        // The tol1-floor step may overshoot when x sits within tol1 of a
        // boundary; clamp so the iterate never leaves [a, b].
        let u = if d.abs() >= tol1 { x + d } else { x + tol1 * d.signum() }.clamp(a, b);
        let fu = neg(u);
        evals += 1;
        if fu <= fx {
            if u >= x {
                lo = x;
            } else {
                hi = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    Err(NumError::MaxIterations { max_iter: tol.max_iter, residual: hi - lo })
}

/// Evaluates `f` on `n + 1` equispaced points of `[a, b]` and returns the
/// best point together with the (clamped) bracketing cell around it.
pub fn grid_scan<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    a: f64,
    b: f64,
    n: usize,
) -> NumResult<(ScalarMax, f64, f64)> {
    grid_scan_ends(f, a, b, n).map(|g| (g.best, g.cell_lo, g.cell_hi))
}

/// Result of [`grid_scan_ends`]: the best grid point, its bracketing cell,
/// and the raw objective values at the interval endpoints (which the scan
/// always evaluates) so callers can reuse them instead of re-evaluating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridScanEnds {
    /// Best grid point found.
    pub best: ScalarMax,
    /// Left edge of the cell bracketing the best point.
    pub cell_lo: f64,
    /// Right edge of the cell bracketing the best point.
    pub cell_hi: f64,
    /// Raw `f(a)` (may be non-finite).
    pub f_a: f64,
    /// Raw `f(b)` (may be non-finite).
    pub f_b: f64,
}

/// [`grid_scan`] that also reports the endpoint values it computed.
pub fn grid_scan_ends<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    a: f64,
    b: f64,
    n: usize,
) -> NumResult<GridScanEnds> {
    if !(b >= a) {
        return Err(NumError::Domain { what: "grid_scan requires b >= a", value: b - a });
    }
    let n = n.max(1);
    let h = (b - a) / n as f64;
    // Pin the endpoints exactly: a + h*n can land a few ULPs outside b.
    let point = |i: usize| if i == n { b } else { a + h * i as f64 };
    let mut best_i = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    let mut end_a = f64::NAN;
    let mut end_b = f64::NAN;
    for i in 0..=n {
        let v = f(point(i));
        if i == 0 {
            end_a = v;
        }
        if i == n {
            end_b = v;
        }
        if v.is_finite() && v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    if !best_v.is_finite() {
        return Err(NumError::NonFinite { what: "grid_scan objective", at: a });
    }
    let x = point(best_i);
    let lo = if best_i == 0 { a } else { point(best_i - 1) };
    let hi = if best_i == n { b } else { point(best_i + 1) };
    Ok(GridScanEnds {
        best: ScalarMax { x, value: best_v, evaluations: n + 1 },
        cell_lo: lo,
        cell_hi: hi,
        f_a: end_a,
        f_b: end_b,
    })
}

/// Global-ish scalar maximization on `[a, b]`: grid scan to localize, then
/// Brent polish inside the bracketing cell, with explicit endpoint checks.
///
/// This is the routine used for best responses: utilities in the
/// subsidization game are typically unimodal in the own-subsidy, but corner
/// solutions at `0` and `q` are *expected* equilibria (Theorem 3), so
/// endpoints are always candidates.
///
/// ```
/// use subcomp_num::optimize::maximize_scalar;
/// use subcomp_num::Tolerance;
/// let f = |x: f64| -(x - 0.3).powi(2);
/// let m = maximize_scalar(&f, 0.0, 1.0, 16, Tolerance::default()).unwrap();
/// assert!((m.x - 0.3).abs() < 1e-8);
/// ```
pub fn maximize_scalar<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    a: f64,
    b: f64,
    grid: usize,
    tol: Tolerance,
) -> NumResult<ScalarMax> {
    maximize_scalar_core(f, a, b, grid, tol, false)
}

/// [`maximize_scalar`] reusing the endpoint values already computed by the
/// grid scan instead of re-evaluating `f(a)` and `f(b)` — the hot-path
/// variant for expensive objectives (each best-response evaluation solves
/// a congestion fixed point). The returned maximizer and value are
/// bit-identical to [`maximize_scalar`]; only `evaluations` differs (it
/// counts actual calls, two fewer).
pub fn maximize_scalar_reusing_ends<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    a: f64,
    b: f64,
    grid: usize,
    tol: Tolerance,
) -> NumResult<ScalarMax> {
    maximize_scalar_core(f, a, b, grid, tol, true)
}

fn maximize_scalar_core<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    a: f64,
    b: f64,
    grid: usize,
    tol: Tolerance,
    reuse_ends: bool,
) -> NumResult<ScalarMax> {
    if b == a {
        let v = f(a);
        if !v.is_finite() {
            return Err(NumError::NonFinite { what: "maximize_scalar objective", at: a });
        }
        return Ok(ScalarMax { x: a, value: v, evaluations: 1 });
    }
    let scan = grid_scan_ends(f, a, b, grid)?;
    let (coarse, lo, hi) = (scan.best, scan.cell_lo, scan.cell_hi);
    let polished = brent_max(f, lo, hi, tol).or_else(|_| golden_max(f, lo, hi, tol))?;
    let mut best = if polished.value >= coarse.value { polished } else { coarse };
    let mut evals = coarse.evaluations + polished.evaluations;
    // Endpoints are legitimate maximizers for corner equilibria. The scan
    // already evaluated both ends; re-evaluating (reuse_ends = false)
    // yields the same values from a pure objective, so both modes compare
    // identical numbers.
    for (x, cached) in [(a, scan.f_a), (b, scan.f_b)] {
        let v = if reuse_ends { cached } else { f(x) };
        if !reuse_ends {
            evals += 1;
        }
        if v.is_finite() && v > best.value {
            best = ScalarMax { x, value: v, evaluations: 0 };
        }
    }
    Ok(ScalarMax { x: best.x, value: best.value, evaluations: evals })
}

/// Projects `x` onto the box `[lo_i, hi_i]` component-wise, in place.
pub fn project_box(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    for i in 0..x.len() {
        x[i] = x[i].clamp(lo[i], hi[i]);
    }
}

/// Result of a projected gradient ascent run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectedAscent {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Objective value at the final iterate.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Sup-norm of the last projected step.
    pub last_step: f64,
    /// Whether the convergence criterion was met within the budget.
    pub converged: bool,
}

/// Projected gradient ascent on a box, with backtracking line search.
///
/// Maximizes `f` subject to `x ∈ [lo, hi]`. `grad` must fill the gradient
/// into its output slice. Convergence is declared when the projected step
/// falls below the tolerance. This is a baseline optimizer; game solvers in
/// `subcomp-core` use best-response iteration as their primary method and
/// this routine as an independent check.
pub fn projected_gradient_ascent<
    F: Fn(&[f64]) -> f64 + ?Sized,
    G: Fn(&[f64], &mut [f64]) + ?Sized,
>(
    f: &F,
    grad: &G,
    x0: &[f64],
    lo: &[f64],
    hi: &[f64],
    step0: f64,
    tol: Tolerance,
) -> NumResult<ProjectedAscent> {
    let n = x0.len();
    if lo.len() != n || hi.len() != n {
        return Err(NumError::DimensionMismatch { expected: n, actual: lo.len().min(hi.len()) });
    }
    if n == 0 {
        return Ok(ProjectedAscent {
            x: vec![],
            value: f(&[]),
            iterations: 0,
            last_step: 0.0,
            converged: true,
        });
    }
    let mut x = x0.to_vec();
    project_box(&mut x, lo, hi);
    let mut fx = f(&x);
    if !fx.is_finite() {
        return Err(NumError::NonFinite { what: "projected ascent objective", at: x[0] });
    }
    let mut g = vec![0.0; n];
    let mut last_step = f64::INFINITY;
    for iter in 0..tol.max_iter {
        grad(&x, &mut g);
        // Backtracking: shrink until ascent (Armijo-lite: any improvement).
        let mut step = step0;
        let mut accepted = false;
        let mut cand = x.clone();
        for _ in 0..40 {
            for i in 0..n {
                cand[i] = x[i] + step * g[i];
            }
            project_box(&mut cand, lo, hi);
            let fc = f(&cand);
            if fc.is_finite() && fc > fx {
                let delta = cand.iter().zip(&x).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
                x.copy_from_slice(&cand);
                fx = fc;
                last_step = delta;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            // No ascent direction within the box: stationary.
            return Ok(ProjectedAscent {
                x,
                value: fx,
                iterations: iter,
                last_step: 0.0,
                converged: true,
            });
        }
        let scale = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if tol.is_met(last_step, scale) {
            return Ok(ProjectedAscent {
                x,
                value: fx,
                iterations: iter + 1,
                last_step,
                converged: true,
            });
        }
    }
    Ok(ProjectedAscent { x, value: fx, iterations: tol.max_iter, last_step, converged: false })
}

/// Multi-start scalar maximization: runs [`maximize_scalar`] on `starts`
/// equal subintervals of `[a, b]` and returns the best result. Used for the
/// ISP's revenue curve, which can be multi-peaked once equilibrium subsidy
/// responses kick in and out at policy bounds.
pub fn maximize_multistart<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    a: f64,
    b: f64,
    starts: usize,
    grid: usize,
    tol: Tolerance,
) -> NumResult<ScalarMax> {
    let starts = starts.max(1);
    let h = (b - a) / starts as f64;
    let mut best: Option<ScalarMax> = None;
    let mut evals = 0;
    for k in 0..starts {
        let lo = a + h * k as f64;
        let hi = if k + 1 == starts { b } else { lo + h };
        let m = maximize_scalar(f, lo, hi, grid, tol)?;
        evals += m.evaluations;
        if best.map_or(true, |b| m.value > b.value) {
            best = Some(m);
        }
    }
    let mut best = best.expect("starts >= 1");
    best.evaluations = evals;
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_peak() {
        let f = |x: f64| 3.0 - (x - 1.25).powi(2);
        let m = golden_max(&f, 0.0, 4.0, Tolerance::new(1e-10, 1e-10).with_max_iter(200)).unwrap();
        // Argmin accuracy from value comparisons is limited to ~sqrt(eps).
        assert!((m.x - 1.25).abs() < 1e-6);
        assert!((m.value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn golden_boundary_maximum() {
        let f = |x: f64| x; // max at right endpoint
        let m = golden_max(&f, 0.0, 1.0, Tolerance::default()).unwrap();
        assert!(m.x > 1.0 - 1e-6);
    }

    #[test]
    fn golden_rejects_reversed_interval() {
        let f = |x: f64| x;
        assert!(matches!(
            golden_max(&f, 1.0, 0.0, Tolerance::default()),
            Err(NumError::Domain { .. })
        ));
    }

    #[test]
    fn brent_max_beats_golden_on_smooth() {
        let f = |x: f64| -(x - 0.7).powi(2) + (x * 0.1).sin();
        let tol = Tolerance::new(1e-11, 1e-11).with_max_iter(200);
        let bm = brent_max(&f, 0.0, 2.0, tol).unwrap();
        let gm = golden_max(&f, 0.0, 2.0, tol).unwrap();
        assert!((bm.value - gm.value).abs() < 1e-9);
        assert!(bm.evaluations <= gm.evaluations);
    }

    #[test]
    fn brent_max_flat_function() {
        let f = |_: f64| 2.0;
        let m = brent_max(&f, 0.0, 1.0, Tolerance::default()).unwrap();
        assert_eq!(m.value, 2.0);
    }

    #[test]
    fn grid_scan_locates_cell() {
        let f = |x: f64| -(x - 0.33).powi(2);
        let (best, lo, hi) = grid_scan(&f, 0.0, 1.0, 10).unwrap();
        assert!(lo <= 0.33 && 0.33 <= hi);
        assert!(best.value <= 0.0);
    }

    #[test]
    fn grid_scan_ignores_non_finite_cells() {
        let f = |x: f64| if x < 0.5 { f64::NAN } else { -(x - 0.75).powi(2) };
        let (best, _, _) = grid_scan(&f, 0.0, 1.0, 8).unwrap();
        assert!(best.x >= 0.5);
    }

    #[test]
    fn maximize_scalar_interior() {
        // U(s) = (v - s) e^{alpha s}: the paper's single-CP utility shape
        // (population response collapsed); argmax at v - 1/alpha.
        let (v, alpha) = (1.0, 4.0);
        let f = move |s: f64| (v - s) * (alpha * s).exp();
        let m = maximize_scalar(&f, 0.0, 2.0, 32, Tolerance::new(1e-12, 1e-12).with_max_iter(300))
            .unwrap();
        assert!((m.x - (v - 1.0 / alpha)).abs() < 1e-7, "x = {}", m.x);
    }

    #[test]
    fn maximize_scalar_corner_at_cap() {
        // Monotone increasing on the box: corner at b, as in Theorem 3's
        // s_i = q case.
        let f = |s: f64| s * 2.0 + 1.0;
        let m = maximize_scalar(&f, 0.0, 0.8, 16, Tolerance::default()).unwrap();
        assert_eq!(m.x, 0.8);
        assert!((m.value - 2.6).abs() < 1e-12);
    }

    #[test]
    fn maximize_scalar_corner_at_zero() {
        let f = |s: f64| -s;
        let m = maximize_scalar(&f, 0.0, 1.0, 16, Tolerance::default()).unwrap();
        assert_eq!(m.x, 0.0);
    }

    #[test]
    fn maximize_scalar_degenerate_interval() {
        let f = |s: f64| s + 1.0;
        let m = maximize_scalar(&f, 0.5, 0.5, 16, Tolerance::default()).unwrap();
        assert_eq!((m.x, m.value), (0.5, 1.5));
    }

    #[test]
    fn maximize_scalar_multimodal_picks_global() {
        // Two peaks; global at x ~ 2.2.
        let f = |x: f64| (-(x - 0.5).powi(2)).exp() + 1.5 * (-(x - 2.2).powi(2) * 4.0).exp();
        let m = maximize_scalar(&f, 0.0, 3.0, 64, Tolerance::default()).unwrap();
        assert!((m.x - 2.2).abs() < 0.05, "x = {}", m.x);
    }

    #[test]
    fn project_box_clamps() {
        let mut x = vec![-1.0, 0.5, 9.0];
        project_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn projected_ascent_concave_quadratic() {
        // f(x) = -|x - c|^2 over [0,1]^3 with c partially outside the box.
        let c = [0.5, 1.5, -0.5];
        let f = move |x: &[f64]| -x.iter().zip(&c).map(|(a, b)| (a - b).powi(2)).sum::<f64>();
        let grad = move |x: &[f64], g: &mut [f64]| {
            for i in 0..3 {
                g[i] = -2.0 * (x[i] - c[i]);
            }
        };
        let r = projected_gradient_ascent(
            &f,
            &grad,
            &[0.2, 0.2, 0.2],
            &[0.0; 3],
            &[1.0; 3],
            0.25,
            Tolerance::new(1e-10, 1e-10).with_max_iter(10_000),
        )
        .unwrap();
        assert!(r.converged);
        assert!((r.x[0] - 0.5).abs() < 1e-6);
        assert!((r.x[1] - 1.0).abs() < 1e-6); // clipped at the box
        assert!((r.x[2] - 0.0).abs() < 1e-6); // clipped at the box
    }

    #[test]
    fn projected_ascent_empty_input() {
        let f = |_: &[f64]| 0.0;
        let grad = |_: &[f64], _: &mut [f64]| {};
        let r =
            projected_gradient_ascent(&f, &grad, &[], &[], &[], 0.1, Tolerance::default()).unwrap();
        assert!(r.converged);
        assert!(r.x.is_empty());
    }

    #[test]
    fn projected_ascent_dimension_mismatch() {
        let f = |_: &[f64]| 0.0;
        let grad = |_: &[f64], _: &mut [f64]| {};
        assert!(matches!(
            projected_gradient_ascent(
                &f,
                &grad,
                &[0.0, 0.0],
                &[0.0],
                &[1.0],
                0.1,
                Tolerance::default()
            ),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn multistart_beats_single_on_spiky() {
        let f = |x: f64| {
            let spike = |c: f64, w: f64, h: f64| h * (-(x - c).powi(2) / w).exp();
            spike(0.1, 0.001, 1.0) + spike(1.9, 0.001, 2.0)
        };
        let m = maximize_multistart(&f, 0.0, 2.0, 8, 64, Tolerance::default()).unwrap();
        assert!((m.x - 1.9).abs() < 0.01, "x = {}", m.x);
        assert!((m.value - 2.0).abs() < 1e-6);
    }
}
