//! Summary statistics for simulation output.
//!
//! The flow-level and market simulators in `subcomp-sim` emit sampled
//! utilizations, throughputs and revenues; these helpers provide numerically
//! stable accumulation (Welford) and the quantile/confidence summaries the
//! sim-vs-theory experiments report.

use crate::error::{NumError, NumResult};

/// Numerically stable running mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; zero for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of an approximate 95% confidence interval for the mean
    /// (normal approximation, `1.96 σ / √n`); zero for n < 2.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Arithmetic mean of a slice.
///
/// Non-finite data is rejected with [`NumError::NonFinite`] so farm-scale
/// reports fail loudly instead of propagating NaN aggregates.
pub fn mean(xs: &[f64]) -> NumResult<f64> {
    if xs.is_empty() {
        return Err(NumError::Empty { what: "mean" });
    }
    screen_finite(xs, "mean")?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of a slice (copies + sorts).
///
/// Non-finite data is rejected with [`NumError::NonFinite`] (a NaN would
/// otherwise panic the comparison sort).
pub fn quantile(xs: &[f64], q: f64) -> NumResult<f64> {
    if xs.is_empty() {
        return Err(NumError::Empty { what: "quantile" });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(NumError::Domain { what: "quantile must lie in [0, 1]", value: q });
    }
    screen_finite(xs, "quantile")?;
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("screened above"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(v[lo])
    } else {
        Ok(v[lo] + (v[hi] - v[lo]) * (pos - lo as f64))
    }
}

/// Returns the first non-finite element of `xs` as a [`NumError::NonFinite`].
fn screen_finite(xs: &[f64], what: &'static str) -> NumResult<()> {
    match xs.iter().find(|v| !v.is_finite()) {
        Some(&bad) => Err(NumError::NonFinite { what, at: bad }),
        None => Ok(()),
    }
}

/// Relative error `|a - b| / max(|b|, floor)` — the sim-vs-theory metric.
pub fn relative_error(a: f64, b: f64, floor: f64) -> f64 {
    (a - b).abs() / b.abs().max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_variance() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-14);
        // Population variance is 4; sample variance = 4 * 8/7.
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn running_empty_defaults() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.ci95_half_width(), 0.0);
    }

    #[test]
    fn running_single_observation() {
        let mut r = Running::new();
        r.push(3.5);
        assert_eq!(r.mean(), 3.5);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 3.0 + 1.0).collect();
        let mut whole = Running::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Running::new();
        a.push(1.0);
        let b = Running::new();
        let mut a2 = a.clone();
        a2.merge(&b);
        assert_eq!(a2, a);
        let mut c = Running::new();
        c.merge(&a);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn mean_and_errors() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn nan_data_is_an_error_not_a_panic() {
        // Regression: `quantile` used to panic via the sort comparator on
        // NaN data, and `mean` silently returned NaN; both must surface
        // `NonFinite` instead.
        let with_nan = [1.0, f64::NAN, 3.0];
        assert!(matches!(
            quantile(&with_nan, 0.5),
            Err(NumError::NonFinite { what: "quantile", .. })
        ));
        assert!(matches!(mean(&with_nan), Err(NumError::NonFinite { what: "mean", .. })));
        let with_inf = [1.0, f64::INFINITY];
        assert!(quantile(&with_inf, 0.5).is_err());
        assert!(mean(&with_inf).is_err());
        // Clean data is unaffected.
        assert_eq!(quantile(&[2.0, 1.0], 1.0).unwrap(), 2.0);
        assert_eq!(mean(&[2.0, 4.0]).unwrap(), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.5);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn empty_slices_are_explicit_errors_not_panics() {
        // Regression pin for the report paths (latency windows, farm
        // summaries): a zero-sample window must surface as
        // `NumError::Empty` naming the statistic, never a panic and
        // never a NaN that poisons downstream aggregates.
        assert!(matches!(mean(&[]), Err(NumError::Empty { what: "mean" })));
        assert!(matches!(quantile(&[], 0.5), Err(NumError::Empty { what: "quantile" })));
        assert!(matches!(quantile(&[], 0.0), Err(NumError::Empty { what: "quantile" })));
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = Running::new();
        let mut large = Running::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn relative_error_with_floor() {
        assert_eq!(relative_error(1.1, 1.0, 1e-9), 0.10000000000000009);
        // Floor prevents blowup near zero.
        assert!(relative_error(1e-12, 0.0, 1e-6) < 1e-5);
    }
}
