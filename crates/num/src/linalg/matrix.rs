//! Dense row-major matrix type.

use crate::error::{NumError, NumResult};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major, heap-allocated `f64` matrix.
///
/// Sized for the problems in this workspace (Jacobians over provider sets,
/// i.e. tens of rows at most), so all operations are straightforward
/// triple-loop implementations with bounds-checked construction and
/// dimension-checked arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from nested row slices. All rows must have equal
    /// length.
    pub fn from_rows(rows: &[&[f64]]) -> NumResult<Self> {
        let r = rows.len();
        if r == 0 {
            return Ok(Matrix::zeros(0, 0));
        }
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(NumError::DimensionMismatch { expected: c, actual: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { rows: r, cols: c, data })
    }

    /// Creates a matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> NumResult<Self> {
        if data.len() != rows * cols {
            return Err(NumError::DimensionMismatch { expected: rows * cols, actual: data.len() });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds an `n × n` matrix from an entry generator `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a diagonal matrix from a slice.
    pub fn diag(d: &[f64]) -> Self {
        let mut m = Matrix::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> NumResult<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NumError::DimensionMismatch { expected: self.cols, actual: x.len() });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += row[j] * x[j];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Matrix–matrix product `A B`.
    pub fn matmul(&self, other: &Matrix) -> NumResult<Matrix> {
        if self.cols != other.rows {
            return Err(NumError::DimensionMismatch { expected: self.cols, actual: other.rows });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Scales every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|v| v * s).collect() }
    }

    /// Extracts the square submatrix with the given (sorted or unsorted)
    /// row/column indices — used to restrict Jacobians to the interior set
    /// `Ñ` in Theorem 6.
    pub fn submatrix(&self, idx: &[usize]) -> NumResult<Matrix> {
        for &i in idx {
            if i >= self.rows || i >= self.cols {
                return Err(NumError::DimensionMismatch {
                    expected: self.rows.min(self.cols),
                    actual: i,
                });
            }
        }
        let k = idx.len();
        let mut m = Matrix::zeros(k, k);
        for (a, &i) in idx.iter().enumerate() {
            for (b, &j) in idx.iter().enumerate() {
                m[(a, b)] = self[(i, j)];
            }
        }
        Ok(m)
    }

    /// Maximum absolute entry (the `max` norm).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0f64, f64::max)
    }

    /// True when all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "matrix add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "matrix sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matrix mul: inner dimension mismatch")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_rows_ragged_rejected() {
        assert!(matches!(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_vec_checks_size() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matvec_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let y = a.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_dimension_check() {
        let a = Matrix::identity(3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let ab = a.matmul(&b).unwrap();
        assert_eq!(ab, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]).unwrap());
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        let c = &a + &b;
        assert_eq!(c[(0, 0)], 2.0);
        let d = &c - &b;
        assert_eq!(d, a);
        assert_eq!(a.scale(2.0)[(1, 1)], 8.0);
    }

    #[test]
    fn submatrix_extracts_interior_block() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = a.submatrix(&[1, 3]).unwrap();
        assert_eq!(s, Matrix::from_rows(&[&[5.0, 7.0], &[13.0, 15.0]]).unwrap());
    }

    #[test]
    fn submatrix_out_of_range() {
        let a = Matrix::identity(2);
        assert!(a.submatrix(&[0, 5]).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 0.5]]).unwrap();
        assert_eq!(a.norm_max(), 3.0);
        assert_eq!(a.norm_inf(), 3.5);
    }

    #[test]
    fn diag_builder() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::identity(2);
        assert!(a.all_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.all_finite());
    }

    #[test]
    fn display_renders_rows() {
        let a = Matrix::identity(2);
        let s = format!("{a}");
        assert_eq!(s.lines().count(), 2);
    }
}
