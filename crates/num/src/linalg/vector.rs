//! Free functions on `&[f64]` vectors.
//!
//! Best-response iterations and equilibrium verification work on plain
//! slices of subsidies; these helpers keep that code free of ad-hoc loops.

/// Dot product. Panics on length mismatch (programming error, not input).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm_l2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Sum of absolute values.
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Maximum absolute value (sup norm); zero for the empty vector.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// Sup-norm distance between two equal-length vectors.
pub fn sub_inf_norm(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sub_inf_norm: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max)
}

/// In-place `y ← y + alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Out-of-place step `out ← s − gamma * f` (the projection-method update
/// before clamping). Panics on length mismatch.
pub fn step_into(s: &[f64], f: &[f64], gamma: f64, out: &mut [f64]) {
    assert_eq!(s.len(), f.len(), "step_into: length mismatch");
    assert_eq!(s.len(), out.len(), "step_into: length mismatch");
    for i in 0..s.len() {
        out[i] = s[i] - gamma * f[i];
    }
}

/// In-place component-wise clamp of `x` into the box `[lo, hi_i]` — the
/// projection onto a per-component-capped orthant. Panics on length
/// mismatch.
pub fn clamp_in_place(x: &mut [f64], lo: f64, hi: &[f64]) {
    assert_eq!(x.len(), hi.len(), "clamp_in_place: length mismatch");
    for (xi, &h) in x.iter_mut().zip(hi) {
        *xi = xi.clamp(lo, h);
    }
}

/// Clamped copy `dst ← clamp(src, lo, hi_i)` — an allocation-free
/// combination of copy and box projection. Panics on length mismatch.
pub fn copy_clamped(src: &[f64], lo: f64, hi: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "copy_clamped: length mismatch");
    assert_eq!(src.len(), hi.len(), "copy_clamped: length mismatch");
    for i in 0..src.len() {
        dst[i] = src[i].clamp(lo, hi[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norms_345() {
        assert_eq!(norm_l2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_l1(&[3.0, -4.0]), 7.0);
        assert_eq!(norm_inf(&[3.0, -4.0]), 4.0);
    }

    #[test]
    fn norms_empty() {
        assert_eq!(norm_l2(&[]), 0.0);
        assert_eq!(norm_l1(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn sup_distance() {
        assert_eq!(sub_inf_norm(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert_eq!(sub_inf_norm(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn step_into_matches_elementwise() {
        let mut out = vec![0.0; 3];
        step_into(&[1.0, 2.0, 3.0], &[0.5, -1.0, 0.0], 2.0, &mut out);
        assert_eq!(out, vec![0.0, 4.0, 3.0]);
    }

    #[test]
    fn clamp_in_place_projects() {
        let mut x = vec![-0.5, 0.5, 2.0];
        clamp_in_place(&mut x, 0.0, &[1.0, 1.0, 1.5]);
        assert_eq!(x, vec![0.0, 0.5, 1.5]);
    }

    #[test]
    fn copy_clamped_copies_and_projects() {
        let mut dst = vec![0.0; 3];
        copy_clamped(&[-1.0, 0.3, 9.0], 0.0, &[1.0, 1.0, 0.5], &mut dst);
        assert_eq!(dst, vec![0.0, 0.3, 0.5]);
    }

    #[test]
    #[should_panic(expected = "step_into: length mismatch")]
    fn step_into_length_mismatch_panics() {
        let mut out = vec![0.0; 2];
        step_into(&[1.0], &[1.0], 1.0, &mut out);
    }
}
