//! Small dense linear algebra.
//!
//! The sensitivity analysis of Theorem 6 requires inverting the Jacobian
//! `∇_s̃ ũ` of marginal utilities restricted to interior subsidizers —
//! `Ψ = (∇_s̃ ũ)^{-1}` — and the uniqueness/stability story of Theorem 4 and
//! Corollary 1 rests on *P-matrix* and *M-matrix* structure (Moré–Rheinboldt
//! P-functions; Gale–Nikaido univalence; Hawkins–Simon/Leontief stability).
//! Markets in the paper have a handful of provider types (8–9), so a plain
//! row-major dense [`Matrix`] with partial-pivot LU is the right tool; no
//! sparse or blocked machinery is warranted.
//!
//! Submodules:
//! * [`matrix`] — the dense matrix type and arithmetic;
//! * [`lu`] — LU factorization, linear solve, inverse, determinant;
//! * [`structure`] — P-matrix / M-matrix / Z-matrix / diagonal-dominance
//!   tests and spectral radius, used to *verify* the paper's equilibrium
//!   conditions numerically;
//! * [`vector`] — free functions on `&[f64]` (dot, norms, axpy).

pub mod lu;
pub mod matrix;
pub mod structure;
pub mod vector;

pub use lu::{LuDecomposition, LuError};
pub use matrix::Matrix;
pub use structure::{
    is_diagonally_dominant, is_m_matrix, is_p_matrix, is_z_matrix, leading_principal_minors,
    spectral_radius,
};
pub use vector::{axpy, dot, norm_inf, norm_l1, norm_l2, sub_inf_norm};
