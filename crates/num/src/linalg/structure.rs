//! Matrix structure tests backing the paper's equilibrium theory.
//!
//! * **P-matrix** (all principal minors positive): Theorem 4's uniqueness
//!   condition makes `-u` a *P-function* (Moré–Rheinboldt), whose Jacobian
//!   at any point is a P-matrix; Theorem 6 relies on `∇_s̃(-ũ)` being a
//!   P-matrix (hence nonsingular).
//! * **Z-matrix** (non-positive off-diagonal) and **M-matrix** (Z + P):
//!   Corollary 1's "off-diagonally monotone" condition turns `∇(-ũ)` into a
//!   Leontief/M-matrix, whose inverse is entrywise non-negative — exactly
//!   the step that yields `∂s/∂q ≥ 0`.
//! * **Hawkins–Simon**: for a Z-matrix, positivity of the *leading*
//!   principal minors is already equivalent to the M-matrix property, which
//!   gives a cheap `O(n^3)` certificate used on larger random markets.
//!
//! `is_p_matrix` enumerates all `2^n - 1` principal minors and is intended
//! for `n ≲ 20` — more than enough for provider-type markets (8–9 in the
//! paper).

use super::lu::LuDecomposition;
use super::matrix::Matrix;
use crate::error::{NumError, NumResult};

/// Computes the determinant of the principal submatrix indexed by `idx`.
fn principal_minor(a: &Matrix, idx: &[usize]) -> NumResult<f64> {
    let sub = a.submatrix(idx)?;
    match LuDecomposition::new(&sub) {
        Ok(lu) => Ok(lu.determinant()),
        // A singular principal submatrix has determinant (numerically) zero.
        Err(NumError::SingularMatrix { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

/// Returns the `n` leading principal minors `det A[0..k, 0..k]`, `k = 1..=n`.
pub fn leading_principal_minors(a: &Matrix) -> NumResult<Vec<f64>> {
    if !a.is_square() {
        return Err(NumError::DimensionMismatch { expected: a.rows(), actual: a.cols() });
    }
    let n = a.rows();
    let mut minors = Vec::with_capacity(n);
    let mut idx: Vec<usize> = Vec::with_capacity(n);
    for k in 0..n {
        idx.push(k);
        minors.push(principal_minor(a, &idx)?);
    }
    Ok(minors)
}

/// Tests whether `a` is a P-matrix: every principal minor is strictly
/// positive (tolerance `tol` guards the strictness numerically).
///
/// Exponential in `n` (all index subsets); fine for the market sizes here.
pub fn is_p_matrix(a: &Matrix, tol: f64) -> NumResult<bool> {
    if !a.is_square() {
        return Err(NumError::DimensionMismatch { expected: a.rows(), actual: a.cols() });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(true);
    }
    if n > 24 {
        return Err(NumError::Domain {
            what: "is_p_matrix: exhaustive minor enumeration limited to n <= 24",
            value: n as f64,
        });
    }
    let mut idx = Vec::with_capacity(n);
    for mask in 1u64..(1u64 << n) {
        idx.clear();
        for i in 0..n {
            if mask & (1 << i) != 0 {
                idx.push(i);
            }
        }
        if principal_minor(a, &idx)? <= tol {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Tests whether `a` is a Z-matrix: all off-diagonal entries `≤ tol`.
pub fn is_z_matrix(a: &Matrix, tol: f64) -> bool {
    if !a.is_square() {
        return false;
    }
    let n = a.rows();
    for i in 0..n {
        for j in 0..n {
            if i != j && a[(i, j)] > tol {
                return false;
            }
        }
    }
    true
}

/// Tests whether `a` is a (non-singular) M-matrix.
///
/// Uses the Hawkins–Simon criterion: a Z-matrix is an M-matrix iff its
/// leading principal minors are all strictly positive. Cost `O(n^4)` naive,
/// which is ample here.
pub fn is_m_matrix(a: &Matrix, tol: f64) -> NumResult<bool> {
    if !is_z_matrix(a, tol) {
        return Ok(false);
    }
    Ok(leading_principal_minors(a)?.iter().all(|&m| m > tol))
}

/// Tests strict row diagonal dominance: `|a_ii| > Σ_{j≠i} |a_ij|` for all i.
pub fn is_diagonally_dominant(a: &Matrix) -> bool {
    if !a.is_square() {
        return false;
    }
    let n = a.rows();
    (0..n).all(|i| {
        let off: f64 = (0..n).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
        a[(i, i)].abs() > off
    })
}

/// Estimates the spectral radius by power iteration on `|A|`-like dynamics.
///
/// Returns the dominant-eigenvalue magnitude estimate after convergence of
/// the Rayleigh quotient (or the iteration budget). Used to check the
/// contraction property of best-response maps in the game layer.
pub fn spectral_radius(a: &Matrix, max_iter: usize, tol: f64) -> NumResult<f64> {
    if !a.is_square() {
        return Err(NumError::DimensionMismatch { expected: a.rows(), actual: a.cols() });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(0.0);
    }
    // Deterministic start with all modes excited.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.01).collect();
    let mut lambda_prev = 0.0;
    for _ in 0..max_iter.max(1) {
        let w = a.matvec(&v)?;
        let norm = w.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        if norm == 0.0 {
            return Ok(0.0);
        }
        let lambda = {
            // Rayleigh-like quotient with the sup-norm normalized vector.
            let num: f64 = w.iter().zip(&v).map(|(a, b)| a * b).sum();
            let den: f64 = v.iter().map(|x| x * x).sum();
            (num / den).abs()
        };
        v = w.iter().map(|x| x / norm).collect();
        if (lambda - lambda_prev).abs() <= tol * (1.0 + lambda.abs()) {
            return Ok(lambda);
        }
        lambda_prev = lambda;
    }
    Ok(lambda_prev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_p_and_m() {
        let i = Matrix::identity(4);
        assert!(is_p_matrix(&i, 1e-12).unwrap());
        assert!(is_m_matrix(&i, 1e-12).unwrap());
        assert!(is_z_matrix(&i, 1e-12));
        assert!(is_diagonally_dominant(&i));
    }

    #[test]
    fn leading_minors_known() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let m = leading_principal_minors(&a).unwrap();
        assert_eq!(m.len(), 2);
        assert!((m[0] - 2.0).abs() < 1e-14);
        assert!((m[1] - 3.0).abs() < 1e-13);
    }

    #[test]
    fn p_matrix_positive_definite_example() {
        // Symmetric positive definite => P-matrix.
        let a =
            Matrix::from_rows(&[&[4.0, -1.0, 0.0], &[-1.0, 4.0, -1.0], &[0.0, -1.0, 4.0]]).unwrap();
        assert!(is_p_matrix(&a, 1e-12).unwrap());
    }

    #[test]
    fn p_matrix_rejects_negative_minor() {
        // Negative diagonal entry => 1x1 principal minor negative.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]).unwrap();
        assert!(!is_p_matrix(&a, 1e-12).unwrap());
    }

    #[test]
    fn p_matrix_rejects_hidden_negative_minor() {
        // Positive diagonal but 2x2 minor negative: [[1, 3], [3, 1]].
        let a = Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 1.0]]).unwrap();
        assert!(!is_p_matrix(&a, 1e-12).unwrap());
    }

    #[test]
    fn z_matrix_detection() {
        let a = Matrix::from_rows(&[&[2.0, -1.0], &[-0.5, 3.0]]).unwrap();
        assert!(is_z_matrix(&a, 1e-12));
        let b = Matrix::from_rows(&[&[2.0, 0.1], &[-0.5, 3.0]]).unwrap();
        assert!(!is_z_matrix(&b, 1e-12));
    }

    #[test]
    fn m_matrix_leontief_example() {
        // Classic Leontief I - A with spectral radius(A) < 1.
        let a = Matrix::from_rows(&[&[1.0, -0.3], &[-0.4, 1.0]]).unwrap();
        assert!(is_m_matrix(&a, 1e-12).unwrap());
        // Its inverse must be entrywise non-negative.
        let inv = super::super::lu::inverse(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(inv[(i, j)] >= 0.0);
            }
        }
    }

    #[test]
    fn m_matrix_rejects_unstable_leontief() {
        // Off-diagonal mass too large: loses the Hawkins-Simon condition.
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-2.0, 1.0]]).unwrap();
        assert!(!is_m_matrix(&a, 1e-12).unwrap());
    }

    #[test]
    fn diagonal_dominance() {
        let a = Matrix::from_rows(&[&[3.0, -1.0, -1.0], &[0.0, 2.0, -1.0], &[-1.0, -1.0, 4.0]])
            .unwrap();
        assert!(is_diagonally_dominant(&a));
        let b = Matrix::from_rows(&[&[1.0, -2.0], &[0.0, 1.0]]).unwrap();
        assert!(!is_diagonally_dominant(&b));
    }

    #[test]
    fn spectral_radius_diagonal() {
        let a = Matrix::diag(&[0.5, -0.9, 0.3]);
        let r = spectral_radius(&a, 500, 1e-12).unwrap();
        assert!((r - 0.9).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn spectral_radius_zero_matrix() {
        let a = Matrix::zeros(3, 3);
        assert_eq!(spectral_radius(&a, 100, 1e-12).unwrap(), 0.0);
    }

    #[test]
    fn spectral_radius_known_2x2() {
        // [[0, 1], [1, 0]] has eigenvalues ±1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let r = spectral_radius(&a, 1000, 1e-10).unwrap();
        assert!((r - 1.0).abs() < 1e-4, "r = {r}");
    }

    #[test]
    fn empty_matrix_trivially_p() {
        let a = Matrix::zeros(0, 0);
        assert!(is_p_matrix(&a, 1e-12).unwrap());
    }

    #[test]
    fn p_matrix_size_guard() {
        let a = Matrix::identity(30);
        assert!(matches!(is_p_matrix(&a, 1e-12), Err(NumError::Domain { .. })));
    }
}
