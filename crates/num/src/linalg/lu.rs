//! LU factorization with partial pivoting: solve, inverse, determinant.

use super::matrix::Matrix;
use crate::error::{NumError, NumResult};

/// Alias kept for API clarity: LU failures are ordinary [`NumError`]s.
pub type LuError = NumError;

/// A partially pivoted LU factorization `P A = L U`.
///
/// `L` (unit lower) and `U` (upper) are stored packed in a single matrix;
/// `perm` records row swaps; `sign` is the permutation parity, used by the
/// determinant. Construction fails with [`NumError::SingularMatrix`] when a
/// pivot underflows the singularity threshold.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

/// Relative pivot threshold below which a matrix is declared singular.
const PIVOT_RTOL: f64 = 1e-13;

impl LuDecomposition {
    /// Factorizes a square matrix.
    pub fn new(a: &Matrix) -> NumResult<Self> {
        if !a.is_square() {
            return Err(NumError::DimensionMismatch { expected: a.rows(), actual: a.cols() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.norm_max().max(f64::MIN_POSITIVE);
        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= PIVOT_RTOL * scale {
                return Err(NumError::SingularMatrix { pivot: k, magnitude: pivot_val });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(LuDecomposition { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> NumResult<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumError::DimensionMismatch { expected: n, actual: b.len() });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes `A^{-1}` column by column.
    pub fn inverse(&self) -> NumResult<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Determinant of the original matrix (product of U's diagonal times
    /// permutation parity).
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = self.sign;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// One-shot convenience: solves `A x = b`.
pub fn solve(a: &Matrix, b: &[f64]) -> NumResult<Vec<f64>> {
    LuDecomposition::new(a)?.solve(b)
}

/// One-shot convenience: inverts `A`.
pub fn inverse(a: &Matrix) -> NumResult<Matrix> {
    LuDecomposition::new(a)?.inverse()
}

/// One-shot convenience: determinant of `A`.
pub fn determinant(a: &Matrix) -> NumResult<f64> {
    Ok(LuDecomposition::new(a)?.determinant())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn near(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!(near(x[0], 1.0, 1e-14));
        assert!(near(x[1], 3.0, 1e-14));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn inverse_roundtrip() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        let eye = Matrix::identity(3);
        assert!((&prod - &eye).norm_max() < 1e-12);
    }

    #[test]
    fn determinant_triangular() {
        let a = Matrix::from_rows(&[&[2.0, 5.0], &[0.0, 3.0]]).unwrap();
        assert!(near(determinant(&a).unwrap(), 6.0, 1e-14));
    }

    #[test]
    fn determinant_permutation_parity() {
        // A row swap of the identity has determinant -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(near(determinant(&a).unwrap(), -1.0, 1e-14));
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(LuDecomposition::new(&a), Err(NumError::SingularMatrix { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(LuDecomposition::new(&a), Err(NumError::DimensionMismatch { .. })));
    }

    #[test]
    fn solve_dimension_mismatch() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn solve_hilbert_like_small() {
        // Moderately conditioned 4x4 Hilbert matrix: residual check.
        let a = Matrix::from_fn(4, 4, |i, j| 1.0 / ((i + j + 1) as f64));
        let b = vec![1.0, 0.0, -1.0, 2.0];
        let x = solve(&a, &b).unwrap();
        let r = a.matvec(&x).unwrap();
        for i in 0..4 {
            assert!(near(r[i], b[i], 1e-9), "residual row {i}: {} vs {}", r[i], b[i]);
        }
    }

    #[test]
    fn determinant_matches_cofactor_3x3() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 4.0, 5.0], &[1.0, 0.0, 6.0]]).unwrap();
        // det = 1*(24-0) - 2*(0-5) + 3*(0-4) = 24 + 10 - 12 = 22.
        assert!(near(determinant(&a).unwrap(), 22.0, 1e-13));
    }

    #[test]
    fn inverse_of_identity() {
        let inv = inverse(&Matrix::identity(5)).unwrap();
        assert!((&inv - &Matrix::identity(5)).norm_max() < 1e-15);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[4.0]]).unwrap();
        assert_eq!(solve(&a, &[8.0]).unwrap(), vec![2.0]);
        assert!(near(determinant(&a).unwrap(), 4.0, 0.0));
    }
}
