//! Scalar root finding.
//!
//! The congestion equilibrium of the paper (Definition 1) is the unique zero
//! of the strictly increasing *gap function*
//! `g(φ) = Θ(φ, µ) − Σ_k m_k λ_k(φ)` (Lemma 1). The model layer brackets
//! that zero with [`expand_upward`] and polishes it with [`brent`]; the other
//! methods here ([`bisection`], [`newton`], [`secant`]) exist both as
//! fallbacks and as cross-checks in tests.
//!
//! All methods return a [`RootResult`] with the root, the residual actually
//! achieved and the number of function evaluations, so callers can assert on
//! solver health rather than trusting convergence blindly.

use crate::error::{NumError, NumResult};
use crate::tol::Tolerance;

/// An interval `[a, b]` expected to bracket a sign change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bracket {
    /// Left endpoint.
    pub a: f64,
    /// Right endpoint.
    pub b: f64,
}

impl Bracket {
    /// Creates a bracket, swapping endpoints if given in reverse order.
    pub fn new(a: f64, b: f64) -> Self {
        if a <= b {
            Bracket { a, b }
        } else {
            Bracket { a: b, b: a }
        }
    }

    /// Width of the interval.
    #[inline]
    pub fn width(&self) -> f64 {
        self.b - self.a
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.a + self.b)
    }
}

/// Outcome of a scalar root solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootResult {
    /// Location of the root.
    pub x: f64,
    /// `f(x)` at the returned root.
    pub residual: f64,
    /// Number of function evaluations spent.
    pub evaluations: usize,
    /// Number of iterations of the outer loop.
    pub iterations: usize,
}

fn check_finite(what: &'static str, at: f64, v: f64) -> NumResult<f64> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(NumError::NonFinite { what, at })
    }
}

/// Expands `[lo, hi]` upward (geometrically) until `f` changes sign.
///
/// Intended for *increasing* functions that start negative — exactly the gap
/// function `g(φ)` of Lemma 1, which satisfies `g(0) < 0` whenever any
/// provider has users. Returns a valid [`Bracket`]. `hi` must exceed `lo`.
///
/// ```
/// use subcomp_num::roots::expand_upward;
/// let f = |x: f64| x - 100.0;
/// let br = expand_upward(&f, 0.0, 1.0, 64).unwrap();
/// assert!(br.a < 100.0 && br.b >= 100.0);
/// ```
pub fn expand_upward<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    lo: f64,
    hi: f64,
    max_doublings: usize,
) -> NumResult<Bracket> {
    if !(hi > lo) {
        return Err(NumError::Domain { what: "expand_upward requires hi > lo", value: hi - lo });
    }
    let flo = check_finite("expand_upward f(lo)", lo, f(lo))?;
    expand_upward_seeded(&mut |x| f(x), lo, flo, hi, max_doublings).map(|s| s.bracket)
}

/// A bracket located by [`expand_upward_seeded`], carrying the function
/// values at its endpoints (so the follow-up [`brent_seeded`] polish can
/// skip its own endpoint evaluations) and the evaluations spent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeededBracket {
    /// The sign-change bracket.
    pub bracket: Bracket,
    /// `f` at the bracket's left endpoint.
    pub fa: f64,
    /// `f` at the bracket's right endpoint.
    pub fb: f64,
    /// Function evaluations spent by the expansion.
    pub evaluations: usize,
}

/// [`expand_upward`] with `f(lo)` supplied by the caller — the hot-path
/// variant that skips the duplicate left-endpoint evaluation. Produces
/// bit-identical brackets to [`expand_upward`].
pub fn expand_upward_seeded<F: FnMut(f64) -> f64 + ?Sized>(
    f: &mut F,
    lo: f64,
    flo: f64,
    hi: f64,
    max_doublings: usize,
) -> NumResult<SeededBracket> {
    if !(hi > lo) {
        return Err(NumError::Domain { what: "expand_upward requires hi > lo", value: hi - lo });
    }
    let flo = check_finite("expand_upward f(lo)", lo, flo)?;
    if flo == 0.0 {
        return Ok(SeededBracket {
            bracket: Bracket::new(lo, lo),
            fa: 0.0,
            fb: 0.0,
            evaluations: 0,
        });
    }
    if flo > 0.0 {
        return Err(NumError::NoBracket { a: lo, b: hi, fa: flo, fb: flo });
    }
    let mut a = lo;
    let mut fa = flo;
    let mut b = hi;
    let mut fb = check_finite("expand_upward f(hi)", b, f(b))?;
    let mut evals = 1;
    let mut step = hi - lo;
    for _ in 0..max_doublings {
        if fb >= 0.0 {
            return Ok(SeededBracket { bracket: Bracket::new(a, b), fa, fb, evaluations: evals });
        }
        a = b;
        fa = fb;
        step *= 2.0;
        b += step;
        fb = check_finite("expand_upward f", b, f(b))?;
        evals += 1;
    }
    Err(NumError::NoBracket { a: lo, b, fa: flo, fb })
}

/// Classic bisection. Robust and derivative-free; linear convergence.
///
/// Converges when the bracket width meets `tol` (monitored at the midpoint
/// magnitude) or an endpoint evaluates exactly to zero.
pub fn bisection<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    bracket: Bracket,
    tol: Tolerance,
) -> NumResult<RootResult> {
    let Bracket { mut a, mut b } = bracket;
    let mut fa = check_finite("bisection f(a)", a, f(a))?;
    let fb = check_finite("bisection f(b)", b, f(b))?;
    let mut evals = 2;
    if fa == 0.0 {
        return Ok(RootResult { x: a, residual: 0.0, evaluations: evals, iterations: 0 });
    }
    if fb == 0.0 {
        return Ok(RootResult { x: b, residual: 0.0, evaluations: evals, iterations: 0 });
    }
    if fa * fb > 0.0 {
        return Err(NumError::NoBracket { a, b, fa, fb });
    }
    for iter in 0..tol.max_iter {
        let mid = 0.5 * (a + b);
        let fmid = check_finite("bisection f(mid)", mid, f(mid))?;
        evals += 1;
        if fmid == 0.0 || tol.is_met(b - a, mid) {
            return Ok(RootResult {
                x: mid,
                residual: fmid,
                evaluations: evals,
                iterations: iter + 1,
            });
        }
        if fa * fmid < 0.0 {
            b = mid;
        } else {
            a = mid;
            fa = fmid;
        }
    }
    Err(NumError::MaxIterations { max_iter: tol.max_iter, residual: b - a })
}

/// Brent's method: inverse quadratic interpolation + secant + bisection.
///
/// The workhorse root finder of the workspace: superlinear on smooth
/// functions, never worse than bisection. Implementation follows Brent
/// (1973) as presented in *Numerical Recipes*, with the tolerance adapted to
/// [`Tolerance`] semantics.
pub fn brent<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    bracket: Bracket,
    tol: Tolerance,
) -> NumResult<RootResult> {
    let fa = check_finite("brent f(a)", bracket.a, f(bracket.a))?;
    let fb = check_finite("brent f(b)", bracket.b, f(bracket.b))?;
    let mut result = brent_seeded(&mut |x| f(x), bracket, fa, fb, tol)?;
    result.evaluations += 2;
    Ok(result)
}

/// [`brent`] with the endpoint values `f(a)`, `f(b)` supplied by the
/// caller — the hot-path variant used after [`expand_upward_seeded`], which
/// already knows both values. The iterate sequence (and hence the root) is
/// bit-identical to [`brent`]; only the duplicate endpoint evaluations are
/// skipped, so `evaluations` counts the polish evaluations alone.
pub fn brent_seeded<F: FnMut(f64) -> f64 + ?Sized>(
    f: &mut F,
    bracket: Bracket,
    fa: f64,
    fb: f64,
    tol: Tolerance,
) -> NumResult<RootResult> {
    let Bracket { mut a, mut b } = bracket;
    let mut fa = check_finite("brent f(a)", a, fa)?;
    let mut fb = check_finite("brent f(b)", b, fb)?;
    let mut evals = 0;
    if fa == 0.0 {
        return Ok(RootResult { x: a, residual: 0.0, evaluations: evals, iterations: 0 });
    }
    if fb == 0.0 {
        return Ok(RootResult { x: b, residual: 0.0, evaluations: evals, iterations: 0 });
    }
    if fa * fb > 0.0 {
        return Err(NumError::NoBracket { a, b, fa, fb });
    }
    // c is the previous iterate; ensure |f(b)| <= |f(a)| throughout.
    let (mut c, mut fc) = (a, fa);
    let mut d = b - a;
    let mut e = d;
    for iter in 0..tol.max_iter {
        if fb.abs() > fc.abs() {
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 0.5 * tol.threshold(b).max(f64::EPSILON * b.abs() * 2.0);
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(RootResult { x: b, residual: fb, evaluations: evals, iterations: iter });
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation (secant if a == c).
            let s = fb / fa;
            let (mut p, mut q) = if a == c {
                (2.0 * xm * s, 1.0 - s)
            } else {
                let q0 = fa / fc;
                let r = fb / fc;
                (
                    s * (2.0 * xm * q0 * (q0 - r) - (b - a) * (r - 1.0)),
                    (q0 - 1.0) * (r - 1.0) * (s - 1.0),
                )
            };
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q.abs() - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        b += if d.abs() > tol1 { d } else { tol1 * xm.signum() };
        fb = check_finite("brent f", b, f(b))?;
        evals += 1;
        if (fb > 0.0) == (fc > 0.0) {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(NumError::MaxIterations { max_iter: tol.max_iter, residual: fb })
}

/// Newton's method with derivative, safeguarded by an optional bracket.
///
/// When a bracket is supplied, any Newton step that would leave it is
/// replaced by a bisection step, making the method globally convergent on
/// monotone functions while keeping the quadratic local rate.
pub fn newton<F: Fn(f64) -> f64 + ?Sized, D: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    df: &D,
    x0: f64,
    bracket: Option<Bracket>,
    tol: Tolerance,
) -> NumResult<RootResult> {
    let (mut lo, mut hi) = match bracket {
        Some(br) => (br.a, br.b),
        None => (f64::NEG_INFINITY, f64::INFINITY),
    };
    let mut x = x0.clamp(lo, hi);
    let mut evals = 0;
    for iter in 0..tol.max_iter {
        let fx = check_finite("newton f", x, f(x))?;
        let dfx = check_finite("newton df", x, df(x))?;
        evals += 2;
        if fx == 0.0 {
            return Ok(RootResult { x, residual: 0.0, evaluations: evals, iterations: iter });
        }
        // Maintain the bracket using the sign of f (assumes f increasing on
        // the bracketed case; harmless otherwise since it only guides the
        // bisection fallback).
        if bracket.is_some() {
            if fx > 0.0 {
                hi = x;
            } else {
                lo = x;
            }
        }
        let step = if dfx != 0.0 { fx / dfx } else { f64::INFINITY };
        let mut next = x - step;
        if !next.is_finite() || next <= lo || next >= hi {
            if bracket.is_some() && lo.is_finite() && hi.is_finite() {
                next = 0.5 * (lo + hi);
            } else if !next.is_finite() {
                return Err(NumError::NonFinite { what: "newton step", at: x });
            }
        }
        if tol.is_met(next - x, x) {
            let r = f(next);
            return Ok(RootResult {
                x: next,
                residual: r,
                evaluations: evals + 1,
                iterations: iter + 1,
            });
        }
        x = next;
    }
    Err(NumError::MaxIterations { max_iter: tol.max_iter, residual: f(x) })
}

/// Secant method (derivative-free, superlinear, not globally convergent).
pub fn secant<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    x0: f64,
    x1: f64,
    tol: Tolerance,
) -> NumResult<RootResult> {
    let mut xa = x0;
    let mut xb = x1;
    let mut fa = check_finite("secant f(x0)", xa, f(xa))?;
    let mut fb = check_finite("secant f(x1)", xb, f(xb))?;
    let mut evals = 2;
    for iter in 0..tol.max_iter {
        if fb == 0.0 {
            return Ok(RootResult { x: xb, residual: 0.0, evaluations: evals, iterations: iter });
        }
        let denom = fb - fa;
        if denom == 0.0 {
            return Err(NumError::Domain {
                what: "secant: flat chord (f(x0) == f(x1))",
                value: fb,
            });
        }
        let next = xb - fb * (xb - xa) / denom;
        if !next.is_finite() {
            return Err(NumError::NonFinite { what: "secant step", at: xb });
        }
        if tol.is_met(next - xb, xb) {
            let r = f(next);
            return Ok(RootResult {
                x: next,
                residual: r,
                evaluations: evals + 1,
                iterations: iter + 1,
            });
        }
        xa = xb;
        fa = fb;
        xb = next;
        fb = check_finite("secant f", xb, f(xb))?;
        evals += 1;
    }
    Err(NumError::MaxIterations { max_iter: tol.max_iter, residual: fb })
}

/// Solves `f(x) = 0` for a strictly increasing `f` with `f(lo) < 0` by
/// expanding a bracket upward and applying Brent's method.
///
/// This is the exact pattern needed for the utilization fixed point; exposed
/// here so that model code and tests share one implementation.
pub fn solve_increasing<F: Fn(f64) -> f64 + ?Sized>(
    f: &F,
    lo: f64,
    initial_step: f64,
    tol: Tolerance,
) -> NumResult<RootResult> {
    let flo = check_finite("solve_increasing f(lo)", lo, f(lo))?;
    if flo == 0.0 {
        return Ok(RootResult { x: lo, residual: 0.0, evaluations: 1, iterations: 0 });
    }
    if flo > 0.0 {
        // Strictly increasing with f(lo) > 0: no root to the right; the
        // caller's model guarantees this cannot happen for non-degenerate
        // inputs, so surface it as a bracket failure.
        return Err(NumError::NoBracket { a: lo, b: lo, fa: flo, fb: flo });
    }
    let bracket = expand_upward(f, lo, lo + initial_step.max(f64::MIN_POSITIVE), 128)?;
    brent(f, bracket, tol)
}

/// [`solve_increasing`] with `f(lo)` supplied by the caller — the hot-path
/// variant for callers that can compute `f(lo)` in closed form (e.g. the
/// congestion gap at `φ = 0`, which is just the negated peak demand). The
/// bracket expansion and every Brent iterate are bit-identical to
/// [`solve_increasing`]; the duplicate `f(lo)` and bracket-endpoint
/// evaluations are skipped, so `evaluations` counts actual calls only.
pub fn solve_increasing_seeded<F: FnMut(f64) -> f64 + ?Sized>(
    f: &mut F,
    lo: f64,
    flo: f64,
    initial_step: f64,
    tol: Tolerance,
) -> NumResult<RootResult> {
    let flo = check_finite("solve_increasing f(lo)", lo, flo)?;
    if flo == 0.0 {
        return Ok(RootResult { x: lo, residual: 0.0, evaluations: 0, iterations: 0 });
    }
    if flo > 0.0 {
        return Err(NumError::NoBracket { a: lo, b: lo, fa: flo, fb: flo });
    }
    let seeded = expand_upward_seeded(f, lo, flo, lo + initial_step.max(f64::MIN_POSITIVE), 128)?;
    let mut result = brent_seeded(f, seeded.bracket, seeded.fa, seeded.fb, tol)?;
    result.evaluations += seeded.evaluations;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cubic(x: f64) -> f64 {
        x * x * x - 2.0 * x - 5.0
    }
    // Real root of x^3 - 2x - 5 (Wilkinson's classic test value).
    const CUBIC_ROOT: f64 = 2.094_551_481_542_326_5;

    #[test]
    fn bracket_orders_endpoints() {
        let b = Bracket::new(3.0, -1.0);
        assert_eq!((b.a, b.b), (-1.0, 3.0));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.midpoint(), 1.0);
    }

    #[test]
    fn bisection_cubic() {
        let r = bisection(&cubic, Bracket::new(0.0, 3.0), Tolerance::default().with_max_iter(200))
            .unwrap();
        assert!((r.x - CUBIC_ROOT).abs() < 1e-9, "x = {}", r.x);
        assert!(r.evaluations > 2);
    }

    #[test]
    fn bisection_rejects_non_bracket() {
        let e = bisection(&cubic, Bracket::new(5.0, 6.0), Tolerance::default());
        assert!(matches!(e, Err(NumError::NoBracket { .. })));
    }

    #[test]
    fn bisection_exact_endpoint() {
        let f = |x: f64| x - 1.0;
        let r = bisection(&f, Bracket::new(1.0, 2.0), Tolerance::default()).unwrap();
        assert_eq!(r.x, 1.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn brent_cubic_fast_and_accurate() {
        let r = brent(&cubic, Bracket::new(0.0, 3.0), Tolerance::tight()).unwrap();
        assert!((r.x - CUBIC_ROOT).abs() < 1e-12, "x = {}", r.x);
        // Brent should need far fewer evaluations than bisection, which
        // needs ~48 at the `tight` tolerance on a width-3 bracket.
        assert!(r.evaluations < 40, "evaluations = {}", r.evaluations);
    }

    #[test]
    fn brent_matches_bisection() {
        let f = |x: f64| (x / 3.0).exp() - 7.0;
        let tol = Tolerance::new(1e-13, 1e-13).with_max_iter(300);
        let rb = brent(&f, Bracket::new(0.0, 20.0), tol).unwrap();
        let ri = bisection(&f, Bracket::new(0.0, 20.0), tol).unwrap();
        assert!((rb.x - ri.x).abs() < 1e-9);
        assert!((rb.x - 3.0 * 7f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn brent_rejects_non_bracket() {
        let e = brent(&cubic, Bracket::new(5.0, 6.0), Tolerance::default());
        assert!(matches!(e, Err(NumError::NoBracket { .. })));
    }

    #[test]
    fn brent_handles_root_at_endpoint() {
        let f = |x: f64| x * (x - 2.0);
        let r = brent(&f, Bracket::new(0.0, 1.0), Tolerance::default()).unwrap();
        assert_eq!(r.x, 0.0);
    }

    #[test]
    fn newton_quadratic_convergence() {
        let f = |x: f64| x * x - 2.0;
        let df = |x: f64| 2.0 * x;
        let r = newton(&f, &df, 1.0, None, Tolerance::tight()).unwrap();
        assert!((r.x - 2f64.sqrt()).abs() < 1e-12);
        assert!(r.iterations <= 8);
    }

    #[test]
    fn newton_safeguarded_by_bracket() {
        // f has a nearly flat region that throws raw Newton far away.
        let f = |x: f64| x.tanh() - 0.5;
        let df = |x: f64| 1.0 - x.tanh().powi(2);
        let r = newton(
            &f,
            &df,
            50.0,
            Some(Bracket::new(-100.0, 100.0)),
            Tolerance::default().with_max_iter(500),
        )
        .unwrap();
        assert!((r.x - 0.5f64.atanh()).abs() < 1e-8, "x = {}", r.x);
    }

    #[test]
    fn secant_exponential() {
        let f = |x: f64| x.exp() - 10.0;
        let r = secant(&f, 1.0, 3.0, Tolerance::default()).unwrap();
        assert!((r.x - 10f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn secant_flat_chord_error() {
        let f = |_: f64| 1.0;
        assert!(matches!(secant(&f, 0.0, 1.0, Tolerance::default()), Err(NumError::Domain { .. })));
    }

    #[test]
    fn expand_upward_finds_far_root() {
        let f = |x: f64| x - 1e6;
        let br = expand_upward(&f, 0.0, 1.0, 64).unwrap();
        assert!(f(br.a) <= 0.0 && f(br.b) >= 0.0);
    }

    #[test]
    fn expand_upward_rejects_positive_start() {
        let f = |x: f64| x + 1.0;
        assert!(matches!(expand_upward(&f, 0.0, 1.0, 64), Err(NumError::NoBracket { .. })));
    }

    #[test]
    fn expand_upward_root_at_start() {
        let f = |x: f64| x;
        let br = expand_upward(&f, 0.0, 1.0, 8).unwrap();
        assert_eq!(br.a, 0.0);
        assert_eq!(br.b, 0.0);
    }

    #[test]
    fn solve_increasing_gap_like_function() {
        // A miniature of Lemma 1's gap function: g(phi) = phi*mu - sum m e^{-b phi}.
        let mu = 1.0;
        let pairs = [(1.0f64, 1.0f64), (0.5, 3.0), (0.2, 5.0)];
        let g =
            move |phi: f64| phi * mu - pairs.iter().map(|(m, b)| m * (-b * phi).exp()).sum::<f64>();
        let r = solve_increasing(&g, 0.0, 0.5, Tolerance::tight()).unwrap();
        assert!(r.x > 0.0);
        assert!(g(r.x).abs() < 1e-10);
    }

    #[test]
    fn solve_increasing_zero_demand_edge() {
        // With zero demand the root is at the origin.
        let g = |phi: f64| phi;
        let r = solve_increasing(&g, 0.0, 1.0, Tolerance::default()).unwrap();
        assert_eq!(r.x, 0.0);
    }

    #[test]
    fn non_finite_detected() {
        let f = |x: f64| if x > 1.0 { f64::NAN } else { x - 2.0 };
        let e = expand_upward(&f, 0.0, 1.5, 8);
        assert!(matches!(e, Err(NumError::NonFinite { .. })));
    }

    #[test]
    fn brent_tolerance_respected() {
        // Loose tolerance returns quickly with correspondingly loose root.
        let r = brent(&cubic, Bracket::new(0.0, 3.0), Tolerance::new(1e-3, 0.0)).unwrap();
        assert!((r.x - CUBIC_ROOT).abs() < 1e-2);
    }
}
