//! # `subcomp-num` — numerical substrate
//!
//! A self-contained collection of the numerical routines needed to reproduce
//! *Subsidization Competition: Vitalizing the Neutral Internet* (Ma, CoNEXT
//! 2014). The paper's analysis requires, end to end:
//!
//! * scalar **root finding** for the congestion fixed point `g(φ) = 0`
//!   of Definition 1 / Lemma 1 ([`roots`]);
//! * bounded **one-dimensional maximization** for each content provider's
//!   best-response subsidy, and **n-dimensional projected ascent** used by
//!   the variational-inequality solvers ([`optimize`]);
//! * small dense **linear algebra** — LU factorization, matrix inversion and
//!   the P-matrix / M-matrix structure tests behind Theorems 4 and 6 and
//!   Corollary 1 ([`linalg`]);
//! * **numerical differentiation** to cross-check every closed-form
//!   derivative in the paper ([`diff`]);
//! * damped **fixed-point iteration** ([`fixedpoint`]), **ODE integration**
//!   for continuous best-response dynamics ([`ode`]), **interpolation** of
//!   simulator-measured curves ([`interp`]), **quadrature** for the
//!   continuum-of-providers extension ([`quad`]) and **summary statistics**
//!   for simulation output ([`stats`]).
//!
//! The crate has no dependencies and is deliberately boring: plain `f64`,
//! explicit tolerances, typed errors, and diagnostics (iteration counts,
//! achieved residuals) on every solver result. Design goals follow the
//! smoltcp school: simplicity and robustness over cleverness.
//!
//! ## Example
//!
//! ```
//! use subcomp_num::roots::{brent, Bracket};
//! use subcomp_num::tol::Tolerance;
//!
//! // Solve x^3 = 2.
//! let f = |x: f64| x * x * x - 2.0;
//! let root = brent(&f, Bracket::new(0.0, 2.0), Tolerance::default()).unwrap();
//! assert!((root.x - 2f64.cbrt()).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod error;
pub mod fixedpoint;
pub mod interp;
pub mod linalg;
pub mod ode;
pub mod optimize;
pub mod quad;
pub mod roots;
pub mod seq;
pub mod stats;
pub mod tol;

pub use error::{NumError, NumResult};
pub use tol::Tolerance;

/// Machine-level default absolute tolerance used across the workspace.
pub const DEFAULT_ABS_TOL: f64 = 1e-12;
/// Default relative tolerance used across the workspace.
pub const DEFAULT_REL_TOL: f64 = 1e-10;
/// Default iteration budget for iterative solvers.
pub const DEFAULT_MAX_ITER: usize = 200;
