//! Numerical quadrature.
//!
//! Used by the continuum-of-providers extension: Lemma 2 lets the model
//! aggregate provider *types*; integrating a density of types `(α, β, v)`
//! requires quadrature of smooth integrands, for which composite and
//! adaptive Simpson rules are entirely adequate.

use crate::error::{NumError, NumResult};

/// Composite Simpson rule with `2n` subintervals.
pub fn simpson(f: &dyn Fn(f64) -> f64, a: f64, b: f64, n: usize) -> NumResult<f64> {
    if n == 0 {
        return Err(NumError::Domain { what: "simpson requires n >= 1", value: 0.0 });
    }
    if a == b {
        return Ok(0.0);
    }
    let m = 2 * n;
    let h = (b - a) / m as f64;
    let mut acc = f(a) + f(b);
    for i in 1..m {
        let x = a + h * i as f64;
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(x);
    }
    let v = acc * h / 3.0;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(NumError::NonFinite { what: "simpson integrand", at: a })
    }
}

/// Adaptive Simpson quadrature with absolute tolerance `tol`.
pub fn adaptive_simpson(f: &dyn Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> NumResult<f64> {
    if !(tol > 0.0) {
        return Err(NumError::Domain { what: "adaptive_simpson requires tol > 0", value: tol });
    }
    if a == b {
        return Ok(0.0);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson_segment(a, b, fa, fm, fb);
    let v = adapt(f, a, b, fa, fm, fb, whole, tol, 60)?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(NumError::NonFinite { what: "adaptive simpson", at: a })
    }
}

fn simpson_segment(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adapt(
    f: &dyn Fn(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> NumResult<f64> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_segment(a, m, fa, flm, fm);
    let right = simpson_segment(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 {
        return Err(NumError::MaxIterations { max_iter: 60, residual: delta.abs() });
    }
    if delta.abs() <= 15.0 * tol {
        // Richardson correction term for Simpson's rule.
        return Ok(left + right + delta / 15.0);
    }
    let lv = adapt(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)?;
    let rv = adapt(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)?;
    Ok(lv + rv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_polynomial_exact() {
        // Simpson is exact for cubics.
        let f = |x: f64| x * x * x - 2.0 * x + 1.0;
        let v = simpson(&f, 0.0, 2.0, 1).unwrap();
        // Integral: x^4/4 - x^2 + x from 0 to 2 = 4 - 4 + 2 = 2.
        assert!((v - 2.0).abs() < 1e-13);
    }

    #[test]
    fn simpson_exponential() {
        let f = |x: f64| (-x).exp();
        let v = simpson(&f, 0.0, 5.0, 200).unwrap();
        // Composite Simpson error ~ (b-a) h^4 / 180 ~ 7e-10 at this n.
        assert!((v - (1.0 - (-5.0f64).exp())).abs() < 5e-9);
    }

    #[test]
    fn simpson_degenerate_interval() {
        let f = |_: f64| 1.0;
        assert_eq!(simpson(&f, 1.0, 1.0, 4).unwrap(), 0.0);
    }

    #[test]
    fn simpson_reversed_interval_signed() {
        let f = |_: f64| 1.0;
        let v = simpson(&f, 1.0, 0.0, 4).unwrap();
        assert!((v + 1.0).abs() < 1e-14);
    }

    #[test]
    fn adaptive_handles_peaked_integrand() {
        // Narrow Gaussian: adaptive refinement concentrates where needed.
        let f = |x: f64| (-(x - 0.5).powi(2) / 1e-4).exp();
        let v = adaptive_simpson(&f, 0.0, 1.0, 1e-12).unwrap();
        let exact = (std::f64::consts::PI * 1e-4).sqrt(); // erf ~ 1 over this range
        assert!((v - exact).abs() < 1e-9, "v = {v}, exact = {exact}");
    }

    #[test]
    fn adaptive_matches_composite() {
        let f = |x: f64| (3.0 * x).sin() * (-x).exp();
        let a = adaptive_simpson(&f, 0.0, 4.0, 1e-12).unwrap();
        let c = simpson(&f, 0.0, 4.0, 4000).unwrap();
        assert!((a - c).abs() < 1e-9);
    }

    #[test]
    fn adaptive_bad_tol() {
        let f = |x: f64| x;
        assert!(adaptive_simpson(&f, 0.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn simpson_zero_subintervals_rejected() {
        let f = |x: f64| x;
        assert!(simpson(&f, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn continuum_of_providers_aggregate_demand() {
        // Aggregate demand of a continuum of types alpha ~ U[1, 5] at price
        // p: integral of e^{-alpha p} / 4 d alpha over [1,5].
        let p = 0.8;
        let f = move |alpha: f64| (-alpha * p).exp() / 4.0;
        let v = adaptive_simpson(&f, 1.0, 5.0, 1e-13).unwrap();
        let exact = ((-p).exp() - (-5.0 * p).exp()) / (4.0 * p);
        assert!((v - exact).abs() < 1e-11);
    }
}
