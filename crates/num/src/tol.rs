//! Convergence tolerances shared by every iterative solver.

use crate::{DEFAULT_ABS_TOL, DEFAULT_MAX_ITER, DEFAULT_REL_TOL};

/// Absolute/relative tolerance plus an iteration budget.
///
/// A solver is considered converged when the quantity it monitors (bracket
/// width, step size, residual — documented per solver) drops below
/// `abs + rel * scale`, where `scale` is the magnitude of the current
/// iterate. The iteration budget bounds work when convergence is impossible.
///
/// ```
/// use subcomp_num::Tolerance;
/// let tol = Tolerance::new(1e-9, 1e-9).with_max_iter(500);
/// assert!(tol.is_met(5e-10, 0.0));
/// assert!(!tol.is_met(1e-3, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute tolerance; must be non-negative.
    pub abs: f64,
    /// Relative tolerance; must be non-negative.
    pub rel: f64,
    /// Iteration budget; must be at least 1.
    pub max_iter: usize,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance { abs: DEFAULT_ABS_TOL, rel: DEFAULT_REL_TOL, max_iter: DEFAULT_MAX_ITER }
    }
}

impl Tolerance {
    /// Creates a tolerance with the given absolute and relative parts and
    /// the default iteration budget. Negative inputs are clamped to zero.
    pub fn new(abs: f64, rel: f64) -> Self {
        Tolerance { abs: abs.max(0.0), rel: rel.max(0.0), max_iter: DEFAULT_MAX_ITER }
    }

    /// Returns a copy with the iteration budget replaced (minimum 1).
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// Returns a copy with the absolute tolerance replaced.
    pub fn with_abs(mut self, abs: f64) -> Self {
        self.abs = abs.max(0.0);
        self
    }

    /// Returns a copy with the relative tolerance replaced.
    pub fn with_rel(mut self, rel: f64) -> Self {
        self.rel = rel.max(0.0);
        self
    }

    /// The effective threshold at a given iterate magnitude.
    #[inline]
    pub fn threshold(&self, scale: f64) -> f64 {
        self.abs + self.rel * scale.abs()
    }

    /// Whether a monitored quantity `delta` meets the tolerance at `scale`.
    #[inline]
    pub fn is_met(&self, delta: f64, scale: f64) -> bool {
        delta.abs() <= self.threshold(scale)
    }

    /// A loose tolerance (1e-6 abs/rel) for expensive outer loops.
    pub fn loose() -> Self {
        Tolerance::new(1e-6, 1e-6)
    }

    /// A tight tolerance (1e-14 abs, 1e-13 rel) for substrate unit tests.
    pub fn tight() -> Self {
        Tolerance::new(1e-14, 1e-13).with_max_iter(500)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_crate_constants() {
        let t = Tolerance::default();
        assert_eq!(t.abs, DEFAULT_ABS_TOL);
        assert_eq!(t.rel, DEFAULT_REL_TOL);
        assert_eq!(t.max_iter, DEFAULT_MAX_ITER);
    }

    #[test]
    fn negative_inputs_clamped() {
        let t = Tolerance::new(-1.0, -2.0);
        assert_eq!(t.abs, 0.0);
        assert_eq!(t.rel, 0.0);
    }

    #[test]
    fn max_iter_at_least_one() {
        assert_eq!(Tolerance::default().with_max_iter(0).max_iter, 1);
    }

    #[test]
    fn threshold_scales_with_magnitude() {
        let t = Tolerance::new(1e-9, 1e-6);
        assert!((t.threshold(1000.0) - (1e-9 + 1e-3)).abs() < 1e-18);
        // scale sign is irrelevant
        assert_eq!(t.threshold(-1000.0), t.threshold(1000.0));
    }

    #[test]
    fn is_met_uses_absolute_delta() {
        let t = Tolerance::new(1e-3, 0.0);
        assert!(t.is_met(-5e-4, 123.0));
        assert!(!t.is_met(2e-3, 123.0));
    }

    #[test]
    fn builders_compose() {
        let t = Tolerance::default().with_abs(1e-4).with_rel(1e-5).with_max_iter(7);
        assert_eq!((t.abs, t.rel, t.max_iter), (1e-4, 1e-5, 7));
    }

    #[test]
    fn presets() {
        assert!(Tolerance::loose().abs > Tolerance::default().abs);
        assert!(Tolerance::tight().abs < Tolerance::default().abs);
    }
}
