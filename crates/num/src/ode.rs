//! Explicit ODE integration (RK4, adaptive RK45).
//!
//! Used by the game layer's *continuous best-response / gradient dynamics*:
//! `ṡ = Π_{[0,q]}(s + u(s)) − s`, a projected dynamical system whose
//! equilibria coincide with the Nash equilibria of the subsidization game.
//! The paper analyzes equilibria statically; integrating the dynamics shows
//! the off-equilibrium behaviour its Section 6 lists as a limitation.

use crate::error::{NumError, NumResult};

/// A single integration step record.
#[derive(Debug, Clone, PartialEq)]
pub struct OdeStep {
    /// Time at the end of the step.
    pub t: f64,
    /// State at the end of the step.
    pub y: Vec<f64>,
}

/// Fixed-step classical Runge–Kutta (RK4) from `t0` to `t1`.
///
/// `f(t, y, dy)` writes the derivative into `dy`. Returns the trajectory
/// including the initial state; `steps >= 1`.
pub fn rk4(
    f: &dyn Fn(f64, &[f64], &mut [f64]),
    t0: f64,
    t1: f64,
    y0: &[f64],
    steps: usize,
) -> NumResult<Vec<OdeStep>> {
    if steps == 0 {
        return Err(NumError::Domain { what: "rk4 requires steps >= 1", value: 0.0 });
    }
    if !(t1 > t0) {
        return Err(NumError::Domain { what: "rk4 requires t1 > t0", value: t1 - t0 });
    }
    let n = y0.len();
    let h = (t1 - t0) / steps as f64;
    let mut traj = Vec::with_capacity(steps + 1);
    let mut y = y0.to_vec();
    traj.push(OdeStep { t: t0, y: y.clone() });
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    for s in 0..steps {
        let t = t0 + h * s as f64;
        f(t, &y, &mut k1);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * h * k1[i];
        }
        f(t + 0.5 * h, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * h * k2[i];
        }
        f(t + 0.5 * h, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = y[i] + h * k3[i];
        }
        f(t + h, &tmp, &mut k4);
        for i in 0..n {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            if !y[i].is_finite() {
                return Err(NumError::NonFinite { what: "rk4 state", at: t });
            }
        }
        traj.push(OdeStep { t: t + h, y: y.clone() });
    }
    Ok(traj)
}

/// Adaptive Runge–Kutta–Fehlberg 4(5) from `t0` to `t1`.
///
/// Controls the local error against `abs_tol + rel_tol * |y|`; returns the
/// accepted steps. `h0` is the initial step suggestion.
#[allow(clippy::too_many_arguments)]
pub fn rk45(
    f: &dyn Fn(f64, &[f64], &mut [f64]),
    t0: f64,
    t1: f64,
    y0: &[f64],
    h0: f64,
    abs_tol: f64,
    rel_tol: f64,
    max_steps: usize,
) -> NumResult<Vec<OdeStep>> {
    if !(t1 > t0) {
        return Err(NumError::Domain { what: "rk45 requires t1 > t0", value: t1 - t0 });
    }
    if !(h0 > 0.0) {
        return Err(NumError::Domain { what: "rk45 requires h0 > 0", value: h0 });
    }
    // Fehlberg coefficients.
    const A: [[f64; 5]; 5] = [
        [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
        [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
        [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
        [-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0],
    ];
    const B5: [f64; 6] =
        [16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0, -9.0 / 50.0, 2.0 / 55.0];
    const B4: [f64; 6] = [25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0, -1.0 / 5.0, 0.0];

    let n = y0.len();
    let mut t = t0;
    let mut y = y0.to_vec();
    let mut h = h0.min(t1 - t0);
    let mut traj = vec![OdeStep { t, y: y.clone() }];
    let mut k = vec![vec![0.0; n]; 6];
    let mut tmp = vec![0.0; n];
    for _ in 0..max_steps {
        if t >= t1 {
            return Ok(traj);
        }
        h = h.min(t1 - t);
        f(t, &y, &mut k[0]);
        for stage in 0..5 {
            for i in 0..n {
                let mut acc = 0.0;
                for (j, kj) in k.iter().enumerate().take(stage + 1) {
                    acc += A[stage][j] * kj[i];
                }
                tmp[i] = y[i] + h * acc;
            }
            let c = [0.25, 0.375, 12.0 / 13.0, 1.0, 0.5][stage];
            let (head, tail) = k.split_at_mut(stage + 1);
            let _ = head;
            f(t + c * h, &tmp, &mut tail[0]);
        }
        // 5th and 4th order estimates and the local error.
        let mut err = 0.0f64;
        let mut y5 = vec![0.0; n];
        for i in 0..n {
            let mut acc5 = 0.0;
            let mut acc4 = 0.0;
            for j in 0..6 {
                acc5 += B5[j] * k[j][i];
                acc4 += B4[j] * k[j][i];
            }
            y5[i] = y[i] + h * acc5;
            let scale = abs_tol + rel_tol * y[i].abs().max(y5[i].abs());
            err = err.max((h * (acc5 - acc4)).abs() / scale);
        }
        if !err.is_finite() {
            return Err(NumError::NonFinite { what: "rk45 error estimate", at: t });
        }
        if err <= 1.0 {
            t += h;
            y = y5;
            traj.push(OdeStep { t, y: y.clone() });
        }
        // Standard step-size controller with safety factor.
        let factor = if err > 0.0 { 0.9 * err.powf(-0.2) } else { 5.0 };
        h *= factor.clamp(0.2, 5.0);
        if h < 1e-14 * (t1 - t0) {
            return Err(NumError::Domain { what: "rk45 step underflow", value: h });
        }
    }
    Err(NumError::MaxIterations { max_iter: max_steps, residual: t1 - t })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_exponential_decay() {
        // y' = -y, y(0) = 1 => y(1) = e^{-1}.
        let f = |_t: f64, y: &[f64], dy: &mut [f64]| dy[0] = -y[0];
        let traj = rk4(&f, 0.0, 1.0, &[1.0], 100).unwrap();
        let last = traj.last().unwrap();
        assert!((last.y[0] - (-1.0f64).exp()).abs() < 1e-8);
        assert_eq!(traj.len(), 101);
    }

    #[test]
    fn rk4_harmonic_oscillator_energy() {
        // y'' = -y as a system; energy conserved to O(h^4).
        let f = |_t: f64, y: &[f64], dy: &mut [f64]| {
            dy[0] = y[1];
            dy[1] = -y[0];
        };
        let traj = rk4(&f, 0.0, 2.0 * std::f64::consts::PI, &[1.0, 0.0], 400).unwrap();
        let last = traj.last().unwrap();
        assert!((last.y[0] - 1.0).abs() < 1e-6);
        assert!(last.y[1].abs() < 1e-6);
    }

    #[test]
    fn rk4_rejects_bad_args() {
        let f = |_: f64, _: &[f64], _: &mut [f64]| {};
        assert!(rk4(&f, 0.0, 1.0, &[1.0], 0).is_err());
        assert!(rk4(&f, 1.0, 0.0, &[1.0], 10).is_err());
    }

    #[test]
    fn rk45_matches_rk4_on_smooth_problem() {
        let f = |t: f64, y: &[f64], dy: &mut [f64]| dy[0] = t * y[0];
        // Solution: y = exp(t^2 / 2).
        let traj = rk45(&f, 0.0, 1.5, &[1.0], 0.1, 1e-10, 1e-10, 100_000).unwrap();
        let last = traj.last().unwrap();
        assert!((last.t - 1.5).abs() < 1e-12);
        assert!((last.y[0] - (1.5f64.powi(2) / 2.0).exp()).abs() < 1e-7);
    }

    #[test]
    fn rk45_adapts_step_count() {
        // Stiff-ish decay needs smaller steps early on.
        let f = |_t: f64, y: &[f64], dy: &mut [f64]| dy[0] = -50.0 * y[0];
        let traj = rk45(&f, 0.0, 1.0, &[1.0], 0.5, 1e-8, 1e-8, 100_000).unwrap();
        let last = traj.last().unwrap();
        assert!((last.y[0] - (-50.0f64).exp()).abs() < 1e-6);
        assert!(traj.len() > 10);
    }

    #[test]
    fn rk45_bad_args() {
        let f = |_: f64, _: &[f64], _: &mut [f64]| {};
        assert!(rk45(&f, 0.0, -1.0, &[1.0], 0.1, 1e-8, 1e-8, 100).is_err());
        assert!(rk45(&f, 0.0, 1.0, &[1.0], 0.0, 1e-8, 1e-8, 100).is_err());
    }

    #[test]
    fn projected_best_response_dynamics_settle() {
        // ds/dt = clamp(BR(s)) - s for a 2-player quadratic game; equilibrium
        // of the dynamics = Nash equilibrium.
        let br = |other: f64| (0.5 - 0.25 * other).clamp(0.0, 1.0);
        let f = move |_t: f64, s: &[f64], ds: &mut [f64]| {
            ds[0] = br(s[1]) - s[0];
            ds[1] = br(s[0]) - s[1];
        };
        let traj = rk4(&f, 0.0, 40.0, &[0.0, 1.0], 4000).unwrap();
        let last = traj.last().unwrap();
        // Symmetric equilibrium: s = 0.5 - 0.25 s => s = 0.4.
        assert!((last.y[0] - 0.4).abs() < 1e-6);
        assert!((last.y[1] - 0.4).abs() < 1e-6);
    }
}
