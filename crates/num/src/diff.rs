//! Numerical differentiation.
//!
//! Every closed-form derivative in the paper — the capacity/user effects of
//! Theorem 1, the price effect of Theorem 2, the marginal utilities behind
//! Theorem 3, the sensitivity matrices of Theorem 6, the marginal revenue of
//! Theorem 7 — is cross-validated in this repository against finite
//! differences from this module. Central differences with a
//! magnitude-adaptive step are the default; Richardson extrapolation is
//! available when an extra digit is needed.

use crate::error::{NumError, NumResult};

/// Chooses a central-difference step appropriate for the magnitude of `x`:
/// `h = cbrt(eps) * max(|x|, scale_floor)`, the standard trade-off between
/// truncation and rounding error for second-order schemes.
#[inline]
pub fn central_step(x: f64) -> f64 {
    const CBRT_EPS: f64 = 6.055_454_452_393_343e-6; // eps^(1/3)
    CBRT_EPS * x.abs().max(1.0)
}

/// First derivative by central difference, `O(h^2)` accurate.
pub fn derivative(f: &dyn Fn(f64) -> f64, x: f64) -> NumResult<f64> {
    derivative_with_step(f, x, central_step(x))
}

/// First derivative by central difference with an explicit step.
pub fn derivative_with_step(f: &dyn Fn(f64) -> f64, x: f64, h: f64) -> NumResult<f64> {
    if !(h > 0.0) {
        return Err(NumError::Domain { what: "derivative step must be positive", value: h });
    }
    let fp = f(x + h);
    let fm = f(x - h);
    let d = (fp - fm) / (2.0 * h);
    if d.is_finite() {
        Ok(d)
    } else {
        Err(NumError::NonFinite { what: "central difference", at: x })
    }
}

/// One-sided (forward) difference — used at domain boundaries such as
/// subsidy `s_i = 0` or policy cap `s_i = q`, where the symmetric stencil
/// would step outside the feasible box.
pub fn forward_derivative(f: &dyn Fn(f64) -> f64, x: f64, h: f64) -> NumResult<f64> {
    if !(h > 0.0) {
        return Err(NumError::Domain { what: "derivative step must be positive", value: h });
    }
    // Second-order one-sided stencil: (-3f(x) + 4f(x+h) - f(x+2h)) / 2h.
    let d = (-3.0 * f(x) + 4.0 * f(x + h) - f(x + 2.0 * h)) / (2.0 * h);
    if d.is_finite() {
        Ok(d)
    } else {
        Err(NumError::NonFinite { what: "forward difference", at: x })
    }
}

/// First derivative by Richardson-extrapolated central differences,
/// `O(h^4)` accurate; roughly two extra digits over [`derivative`].
pub fn derivative_richardson(f: &dyn Fn(f64) -> f64, x: f64) -> NumResult<f64> {
    let h = central_step(x) * 8.0;
    let d_h = derivative_with_step(f, x, h)?;
    let d_h2 = derivative_with_step(f, x, h / 2.0)?;
    // Central differences have error ~ c h^2: Richardson combination.
    Ok((4.0 * d_h2 - d_h) / 3.0)
}

/// Second derivative by the symmetric three-point stencil.
pub fn second_derivative(f: &dyn Fn(f64) -> f64, x: f64) -> NumResult<f64> {
    // Optimal step for second derivatives is ~ eps^(1/4).
    let h = 1.22e-4 * x.abs().max(1.0);
    let d = (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
    if d.is_finite() {
        Ok(d)
    } else {
        Err(NumError::NonFinite { what: "second difference", at: x })
    }
}

/// Gradient of a scalar field by central differences, written into `out`.
pub fn gradient(f: &dyn Fn(&[f64]) -> f64, x: &[f64], out: &mut [f64]) -> NumResult<()> {
    if out.len() != x.len() {
        return Err(NumError::DimensionMismatch { expected: x.len(), actual: out.len() });
    }
    let mut xw = x.to_vec();
    for i in 0..x.len() {
        let h = central_step(x[i]);
        let orig = xw[i];
        xw[i] = orig + h;
        let fp = f(&xw);
        xw[i] = orig - h;
        let fm = f(&xw);
        xw[i] = orig;
        let d = (fp - fm) / (2.0 * h);
        if !d.is_finite() {
            return Err(NumError::NonFinite { what: "gradient component", at: x[i] });
        }
        out[i] = d;
    }
    Ok(())
}

/// Jacobian of a vector field `F: R^n -> R^m` by central differences.
///
/// `f` must write `F(x)` into its second argument (length `m`). Returns a
/// row-major `m × n` matrix as `Vec<Vec<f64>>` to avoid coupling this module
/// to the matrix type; callers convert as needed.
pub fn jacobian(f: &dyn Fn(&[f64], &mut [f64]), x: &[f64], m: usize) -> NumResult<Vec<Vec<f64>>> {
    let n = x.len();
    let mut xw = x.to_vec();
    let mut fp = vec![0.0; m];
    let mut fm = vec![0.0; m];
    let mut jac = vec![vec![0.0; n]; m];
    for j in 0..n {
        let h = central_step(x[j]);
        let orig = xw[j];
        xw[j] = orig + h;
        f(&xw, &mut fp);
        xw[j] = orig - h;
        f(&xw, &mut fm);
        xw[j] = orig;
        for i in 0..m {
            let d = (fp[i] - fm[i]) / (2.0 * h);
            if !d.is_finite() {
                return Err(NumError::NonFinite { what: "jacobian entry", at: x[j] });
            }
            jac[i][j] = d;
        }
    }
    Ok(jac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivative_of_exp() {
        let f = |x: f64| x.exp();
        let d = derivative(&f, 1.0).unwrap();
        assert!((d - 1f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn derivative_of_paper_demand_form() {
        // m(t) = e^{-alpha t}: m'(t) = -alpha e^{-alpha t} (Assumption 2 family).
        let alpha = 3.0;
        let f = move |t: f64| (-alpha * t).exp();
        let d = derivative(&f, 0.7).unwrap();
        assert!((d + alpha * (-alpha * 0.7f64).exp()).abs() < 1e-8);
    }

    #[test]
    fn richardson_beats_plain_central() {
        let f = |x: f64| (x * x).sin();
        let x: f64 = 1.3;
        let exact = 2.0 * x * (x * x).cos();
        let plain = (derivative(&f, x).unwrap() - exact).abs();
        let rich = (derivative_richardson(&f, x).unwrap() - exact).abs();
        assert!(rich <= plain * 10.0, "richardson {rich} vs plain {plain}");
        assert!(rich < 1e-10);
    }

    #[test]
    fn forward_derivative_at_boundary() {
        // sqrt is undefined left of 0: forward stencil must still work.
        let f = |x: f64| x.sqrt();
        let d = forward_derivative(&f, 0.04, 1e-6).unwrap();
        assert!((d - 0.5 / 0.2).abs() < 1e-4, "d = {d}");
    }

    #[test]
    fn second_derivative_of_quadratic() {
        let f = |x: f64| 3.0 * x * x + x + 7.0;
        let d2 = second_derivative(&f, -2.0).unwrap();
        assert!((d2 - 6.0).abs() < 1e-5, "d2 = {d2}");
    }

    #[test]
    fn gradient_of_quadratic_field() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[0] * x[1] + x[1].powi(2);
        let x = [1.0, 2.0];
        let mut g = [0.0; 2];
        gradient(&f, &x, &mut g).unwrap();
        assert!((g[0] - (2.0 + 6.0)).abs() < 1e-7);
        assert!((g[1] - (3.0 + 4.0)).abs() < 1e-7);
    }

    #[test]
    fn gradient_dimension_mismatch() {
        let f = |_: &[f64]| 0.0;
        let mut g = [0.0; 1];
        assert!(gradient(&f, &[1.0, 2.0], &mut g).is_err());
    }

    #[test]
    fn jacobian_of_linear_map() {
        // F(x) = A x with A = [[1, 2], [3, 4], [5, 6]].
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = x[0] + 2.0 * x[1];
            out[1] = 3.0 * x[0] + 4.0 * x[1];
            out[2] = 5.0 * x[0] + 6.0 * x[1];
        };
        let j = jacobian(&f, &[0.3, -0.7], 3).unwrap();
        let expect = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]];
        for i in 0..3 {
            for k in 0..2 {
                assert!((j[i][k] - expect[i][k]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn bad_step_rejected() {
        let f = |x: f64| x;
        assert!(derivative_with_step(&f, 0.0, 0.0).is_err());
        assert!(forward_derivative(&f, 0.0, -1.0).is_err());
    }

    #[test]
    fn non_finite_detected() {
        let f = |x: f64| 1.0 / x;
        // Stencil straddles the pole at 0.
        assert!(derivative_with_step(&f, 0.0, 0.1).is_ok()); // (10 - -10)/0.2 finite
        let g = |x: f64| if x > 1.0 { f64::NAN } else { x };
        assert!(matches!(derivative_with_step(&g, 1.0, 0.5), Err(NumError::NonFinite { .. })));
    }
}
