//! Typed errors shared by every numerical routine in the workspace.
//!
//! Solvers in this crate never panic on bad input or non-convergence; they
//! return a [`NumError`] carrying enough context (iteration counts, achieved
//! residuals, offending values) for the caller to either recover — e.g. by
//! widening a bracket or relaxing a tolerance — or to surface a precise
//! diagnostic to the user.

use std::fmt;

/// Convenience alias used by every fallible routine in the crate.
pub type NumResult<T> = Result<T, NumError>;

/// The error type for numerical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// A root-bracketing interval does not actually bracket a sign change.
    NoBracket {
        /// Left end of the attempted bracket.
        a: f64,
        /// Right end of the attempted bracket.
        b: f64,
        /// Function value at `a`.
        fa: f64,
        /// Function value at `b`.
        fb: f64,
    },
    /// An iterative method exhausted its iteration budget.
    MaxIterations {
        /// The budget that was exhausted.
        max_iter: usize,
        /// Best residual (or step size) achieved before giving up.
        residual: f64,
    },
    /// The input lies outside the mathematical domain of the routine.
    Domain {
        /// Human-readable description of the violated requirement.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A matrix required to be invertible was (numerically) singular.
    SingularMatrix {
        /// Row/column index at which elimination broke down.
        pivot: usize,
        /// Magnitude of the offending pivot.
        magnitude: f64,
    },
    /// Dimensions of two operands do not agree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension actually provided.
        actual: usize,
    },
    /// A function evaluation produced a non-finite value.
    NonFinite {
        /// Where the non-finite value appeared.
        what: &'static str,
        /// The input at which the evaluation failed.
        at: f64,
    },
    /// An empty data set was provided where at least one element is needed.
    Empty {
        /// Which routine rejected the empty input.
        what: &'static str,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::NoBracket { a, b, fa, fb } => {
                write!(f, "no sign change on [{a}, {b}]: f(a) = {fa}, f(b) = {fb}")
            }
            NumError::MaxIterations { max_iter, residual } => write!(
                f,
                "failed to converge within {max_iter} iterations (best residual {residual:.3e})"
            ),
            NumError::Domain { what, value } => {
                write!(f, "domain error: {what} (got {value})")
            }
            NumError::SingularMatrix { pivot, magnitude } => {
                write!(f, "singular matrix: pivot {pivot} has magnitude {magnitude:.3e}")
            }
            NumError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumError::NonFinite { what, at } => {
                write!(f, "non-finite value encountered in {what} at input {at}")
            }
            NumError::Empty { what } => write!(f, "{what}: empty input"),
        }
    }
}

impl std::error::Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_no_bracket() {
        let e = NumError::NoBracket { a: 0.0, b: 1.0, fa: 2.0, fb: 3.0 };
        let s = e.to_string();
        assert!(s.contains("no sign change"));
        assert!(s.contains("[0, 1]"));
    }

    #[test]
    fn display_max_iterations() {
        let e = NumError::MaxIterations { max_iter: 50, residual: 1e-3 };
        assert!(e.to_string().contains("50 iterations"));
    }

    #[test]
    fn display_domain() {
        let e = NumError::Domain { what: "capacity must be positive", value: -1.0 };
        assert!(e.to_string().contains("capacity must be positive"));
    }

    #[test]
    fn display_singular() {
        let e = NumError::SingularMatrix { pivot: 2, magnitude: 0.0 };
        assert!(e.to_string().contains("pivot 2"));
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = NumError::DimensionMismatch { expected: 3, actual: 4 };
        assert!(e.to_string().contains("expected 3, got 4"));
    }

    #[test]
    fn display_non_finite_and_empty() {
        assert!(NumError::NonFinite { what: "f", at: 1.0 }.to_string().contains("non-finite"));
        assert!(NumError::Empty { what: "mean" }.to_string().contains("empty"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = NumError::Empty { what: "x" };
        let b = NumError::Empty { what: "x" };
        assert_eq!(a, b);
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(NumError::Empty { what: "q" });
        assert!(e.to_string().contains("q"));
    }
}
