//! Convergence tracking for iterative processes.
//!
//! Best-response dynamics, market simulations and damped fixed-point loops
//! all need the same bookkeeping: record sup-norm deltas between successive
//! iterates, detect convergence, and detect *stalls* (deltas that stop
//! shrinking) so a solver can switch strategy instead of burning its budget.

/// Tracks the convergence of a vector-valued iteration.
#[derive(Debug, Clone)]
pub struct ConvergenceTracker {
    deltas: Vec<f64>,
    last: Option<Vec<f64>>,
    stall_window: usize,
}

impl ConvergenceTracker {
    /// Creates a tracker; `stall_window` is the number of recent deltas
    /// inspected by [`ConvergenceTracker::is_stalled`] (minimum 2).
    pub fn new(stall_window: usize) -> Self {
        ConvergenceTracker { deltas: Vec::new(), last: None, stall_window: stall_window.max(2) }
    }

    /// Records an iterate; returns the sup-norm delta to the previous one
    /// (`None` for the first iterate).
    pub fn push(&mut self, x: &[f64]) -> Option<f64> {
        let delta = self.last.as_ref().map(|prev| {
            debug_assert_eq!(prev.len(), x.len(), "iterate dimension changed");
            prev.iter().zip(x).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max)
        });
        if let Some(d) = delta {
            self.deltas.push(d);
        }
        self.last = Some(x.to_vec());
        delta
    }

    /// All recorded deltas, oldest first.
    pub fn deltas(&self) -> &[f64] {
        &self.deltas
    }

    /// Most recent delta, if any.
    pub fn last_delta(&self) -> Option<f64> {
        self.deltas.last().copied()
    }

    /// Number of deltas recorded (iterations after the first).
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True when no deltas have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Whether the latest delta is below `threshold`.
    pub fn converged(&self, threshold: f64) -> bool {
        self.last_delta().is_some_and(|d| d <= threshold)
    }

    /// Whether the iteration has stalled: over the last `stall_window`
    /// deltas, the best (smallest) delta failed to improve on the delta just
    /// before the window by at least a factor of two.
    pub fn is_stalled(&self) -> bool {
        let w = self.stall_window;
        if self.deltas.len() < w + 1 {
            return false;
        }
        let before = self.deltas[self.deltas.len() - w - 1];
        let best_in_window =
            self.deltas[self.deltas.len() - w..].iter().copied().fold(f64::INFINITY, f64::min);
        best_in_window > 0.5 * before
    }

    /// Estimated geometric convergence rate from the last few deltas
    /// (`None` if fewer than three deltas or rates are inconsistent).
    pub fn estimated_rate(&self) -> Option<f64> {
        let n = self.deltas.len();
        if n < 3 {
            return None;
        }
        let r1 = self.deltas[n - 1] / self.deltas[n - 2].max(f64::MIN_POSITIVE);
        let r2 = self.deltas[n - 2] / self.deltas[n - 3].max(f64::MIN_POSITIVE);
        if r1.is_finite() && r2.is_finite() && r1 > 0.0 && r2 > 0.0 {
            Some((r1 * r2).sqrt())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_push_has_no_delta() {
        let mut t = ConvergenceTracker::new(4);
        assert_eq!(t.push(&[1.0, 2.0]), None);
        assert!(t.is_empty());
    }

    #[test]
    fn deltas_are_sup_norm() {
        let mut t = ConvergenceTracker::new(4);
        t.push(&[0.0, 0.0]);
        let d = t.push(&[0.5, -1.5]).unwrap();
        assert_eq!(d, 1.5);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn convergence_detection() {
        let mut t = ConvergenceTracker::new(4);
        t.push(&[1.0]);
        t.push(&[0.1]);
        assert!(!t.converged(1e-3));
        t.push(&[0.1000001]);
        assert!(t.converged(1e-3));
    }

    #[test]
    fn geometric_sequence_rate() {
        let mut t = ConvergenceTracker::new(4);
        let mut x = 1.0;
        t.push(&[x]);
        for _ in 0..6 {
            x *= 0.5; // deltas shrink by factor 0.5
            t.push(&[x]);
        }
        let rate = t.estimated_rate().unwrap();
        assert!((rate - 0.5).abs() < 1e-9, "rate = {rate}");
    }

    #[test]
    fn stall_detection() {
        let mut t = ConvergenceTracker::new(3);
        // Deltas: 1.0 then plateau at ~0.9.
        t.push(&[0.0]);
        t.push(&[1.0]);
        t.push(&[1.9]);
        t.push(&[2.8]);
        t.push(&[3.7]);
        t.push(&[4.6]);
        assert!(t.is_stalled());
    }

    #[test]
    fn healthy_convergence_not_stalled() {
        let mut t = ConvergenceTracker::new(3);
        let mut x = 0.0;
        let mut step = 1.0;
        t.push(&[x]);
        for _ in 0..8 {
            step *= 0.3;
            x += step;
            t.push(&[x]);
        }
        assert!(!t.is_stalled());
    }

    #[test]
    fn too_few_deltas_never_stalled() {
        let mut t = ConvergenceTracker::new(5);
        t.push(&[0.0]);
        t.push(&[1.0]);
        assert!(!t.is_stalled());
        assert_eq!(t.estimated_rate(), None);
    }
}
