//! Interpolation of tabulated curves.
//!
//! The flow-level simulator measures per-user throughput at discrete
//! utilization levels; to compare against the analytic `λ(φ)` families (and
//! to feed measured curves *back* into the model as a custom
//! `ThroughputFn`), we interpolate. Monotone (Fritsch–Carlson) cubic
//! interpolation preserves the monotonicity that Assumption 1 demands, which
//! plain cubic splines would not.

use crate::error::{NumError, NumResult};

/// Piecewise-linear interpolant over strictly increasing knots.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterp {
    /// Builds the interpolant; `xs` must be strictly increasing and at
    /// least two points are required.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> NumResult<Self> {
        validate_knots(&xs, &ys)?;
        Ok(LinearInterp { xs, ys })
    }

    /// Evaluates with constant extrapolation beyond the knot range.
    ///
    /// Non-finite queries are rejected with [`NumError::NonFinite`] (a NaN
    /// would otherwise defeat the ordered binary search).
    pub fn eval(&self, x: f64) -> NumResult<f64> {
        validate_query(x)?;
        let n = self.xs.len();
        if x <= self.xs[0] {
            return Ok(self.ys[0]);
        }
        if x >= self.xs[n - 1] {
            return Ok(self.ys[n - 1]);
        }
        let k = upper_index(&self.xs, x);
        let (x0, x1) = (self.xs[k - 1], self.xs[k]);
        let (y0, y1) = (self.ys[k - 1], self.ys[k]);
        Ok(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }

    /// Knot range `[min, max]`.
    pub fn range(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().unwrap())
    }
}

/// Monotone cubic Hermite interpolant (Fritsch–Carlson limiter).
///
/// If the data are monotone, the interpolant is monotone — no spline
/// overshoot. Evaluation is C¹.
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneCubic {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Endpoint-slope-adjusted tangents at each knot.
    tangents: Vec<f64>,
}

impl MonotoneCubic {
    /// Builds the interpolant; `xs` must be strictly increasing with at
    /// least two points.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> NumResult<Self> {
        validate_knots(&xs, &ys)?;
        let n = xs.len();
        let mut d = vec![0.0; n - 1]; // secant slopes
        for k in 0..n - 1 {
            d[k] = (ys[k + 1] - ys[k]) / (xs[k + 1] - xs[k]);
        }
        let mut m = vec![0.0; n];
        m[0] = d[0];
        m[n - 1] = d[n - 2];
        for k in 1..n - 1 {
            m[k] = if d[k - 1] * d[k] <= 0.0 { 0.0 } else { 0.5 * (d[k - 1] + d[k]) };
        }
        // Fritsch–Carlson limiting to guarantee monotonicity.
        for k in 0..n - 1 {
            if d[k] == 0.0 {
                m[k] = 0.0;
                m[k + 1] = 0.0;
            } else {
                let a = m[k] / d[k];
                let b = m[k + 1] / d[k];
                let s = a * a + b * b;
                if s > 9.0 {
                    let tau = 3.0 / s.sqrt();
                    m[k] = tau * a * d[k];
                    m[k + 1] = tau * b * d[k];
                }
            }
        }
        Ok(MonotoneCubic { xs, ys, tangents: m })
    }

    /// Evaluates with constant extrapolation beyond the knot range.
    ///
    /// Non-finite queries are rejected with [`NumError::NonFinite`].
    pub fn eval(&self, x: f64) -> NumResult<f64> {
        validate_query(x)?;
        let n = self.xs.len();
        if x <= self.xs[0] {
            return Ok(self.ys[0]);
        }
        if x >= self.xs[n - 1] {
            return Ok(self.ys[n - 1]);
        }
        let k = upper_index(&self.xs, x) - 1;
        let h = self.xs[k + 1] - self.xs[k];
        let t = (x - self.xs[k]) / h;
        let (t2, t3) = (t * t, t * t * t);
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        Ok(h00 * self.ys[k]
            + h10 * h * self.tangents[k]
            + h01 * self.ys[k + 1]
            + h11 * h * self.tangents[k + 1])
    }

    /// Derivative of the interpolant (C⁰).
    ///
    /// Non-finite queries are rejected with [`NumError::NonFinite`].
    pub fn derivative(&self, x: f64) -> NumResult<f64> {
        validate_query(x)?;
        let n = self.xs.len();
        if x <= self.xs[0] {
            return Ok(self.tangents[0]);
        }
        if x >= self.xs[n - 1] {
            return Ok(self.tangents[n - 1]);
        }
        let k = upper_index(&self.xs, x) - 1;
        let h = self.xs[k + 1] - self.xs[k];
        let t = (x - self.xs[k]) / h;
        let t2 = t * t;
        let dh00 = (6.0 * t2 - 6.0 * t) / h;
        let dh10 = 3.0 * t2 - 4.0 * t + 1.0;
        let dh01 = (-6.0 * t2 + 6.0 * t) / h;
        let dh11 = 3.0 * t2 - 2.0 * t;
        Ok(dh00 * self.ys[k]
            + dh10 * self.tangents[k]
            + dh01 * self.ys[k + 1]
            + dh11 * self.tangents[k + 1])
    }
}

/// Rejects NaN/infinite query points before they reach `upper_index`,
/// whose ordered binary search would panic on an incomparable value.
fn validate_query(x: f64) -> NumResult<()> {
    if !x.is_finite() {
        return Err(NumError::NonFinite { what: "interpolation query", at: x });
    }
    Ok(())
}

fn validate_knots(xs: &[f64], ys: &[f64]) -> NumResult<()> {
    if xs.len() < 2 {
        return Err(NumError::Empty { what: "interpolation needs >= 2 knots" });
    }
    if xs.len() != ys.len() {
        return Err(NumError::DimensionMismatch { expected: xs.len(), actual: ys.len() });
    }
    for w in xs.windows(2) {
        if !(w[1] > w[0]) {
            return Err(NumError::Domain {
                what: "knots must be strictly increasing",
                value: w[1] - w[0],
            });
        }
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(NumError::NonFinite { what: "interpolation knots", at: 0.0 });
    }
    Ok(())
}

/// Smallest index `k` with `xs[k] > x` (xs strictly increasing, x interior).
fn upper_index(xs: &[f64], x: f64) -> usize {
    match xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
        Ok(k) => k + 1,
        Err(k) => k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_exact_on_line() {
        let li = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![1.0, 3.0, 5.0]).unwrap();
        assert_eq!(li.eval(0.5).unwrap(), 2.0);
        assert_eq!(li.eval(1.5).unwrap(), 4.0);
        assert_eq!(li.eval(1.0).unwrap(), 3.0);
    }

    #[test]
    fn linear_constant_extrapolation() {
        let li = LinearInterp::new(vec![0.0, 1.0], vec![2.0, 4.0]).unwrap();
        assert_eq!(li.eval(-5.0).unwrap(), 2.0);
        assert_eq!(li.eval(9.0).unwrap(), 4.0);
        assert_eq!(li.range(), (0.0, 1.0));
    }

    #[test]
    fn knot_validation() {
        assert!(LinearInterp::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, f64::NAN], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn monotone_cubic_interpolates_knots() {
        let xs = vec![0.0, 0.5, 1.0, 2.0];
        let ys = vec![1.0, 0.6, 0.35, 0.1];
        let mc = MonotoneCubic::new(xs.clone(), ys.clone()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((mc.eval(*x).unwrap() - y).abs() < 1e-14);
        }
    }

    #[test]
    fn monotone_cubic_preserves_monotonicity() {
        // Sampled e^{-2 phi}: the interpolant must be decreasing everywhere,
        // as Assumption 1 requires of a throughput function.
        let xs: Vec<f64> = (0..=10).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (-2.0 * x).exp()).collect();
        let mc = MonotoneCubic::new(xs, ys).unwrap();
        let mut prev = mc.eval(0.0).unwrap();
        let mut x = 0.01;
        while x < 3.0 {
            let y = mc.eval(x).unwrap();
            assert!(y <= prev + 1e-12, "not monotone at {x}: {y} > {prev}");
            prev = y;
            x += 0.01;
        }
    }

    #[test]
    fn monotone_cubic_close_to_smooth_truth() {
        let xs: Vec<f64> = (0..=20).map(|i| i as f64 * 0.15).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (-x).exp()).collect();
        let mc = MonotoneCubic::new(xs, ys).unwrap();
        // Hermite with secant-averaged tangents is O(h^3): at h = 0.15 a few
        // 1e-3 of absolute error is the expected accuracy class.
        for i in 0..100 {
            let x = i as f64 * 0.029;
            assert!((mc.eval(x).unwrap() - (-x).exp()).abs() < 3e-3);
        }
    }

    #[test]
    fn monotone_cubic_derivative_sign() {
        let xs: Vec<f64> = (0..=10).map(|i| i as f64 * 0.2).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (-3.0 * x).exp()).collect();
        let mc = MonotoneCubic::new(xs, ys).unwrap();
        for i in 1..19 {
            let x = i as f64 * 0.1;
            assert!(mc.derivative(x).unwrap() <= 1e-12, "derivative positive at {x}");
        }
    }

    #[test]
    fn non_finite_query_is_an_error_not_a_panic() {
        // Regression: a NaN query used to reach `upper_index` and panic in
        // `partial_cmp(..).unwrap()`; it must surface as `NonFinite`.
        let li = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![1.0, 3.0, 5.0]).unwrap();
        let mc = MonotoneCubic::new(vec![0.0, 1.0, 2.0], vec![1.0, 0.5, 0.2]).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                li.eval(bad),
                Err(NumError::NonFinite { what: "interpolation query", .. })
            ));
            assert!(matches!(
                mc.eval(bad),
                Err(NumError::NonFinite { what: "interpolation query", .. })
            ));
            assert!(matches!(
                mc.derivative(bad),
                Err(NumError::NonFinite { what: "interpolation query", .. })
            ));
        }
        // Finite queries are untouched by the screen.
        assert_eq!(li.eval(0.5).unwrap(), 2.0);
    }

    #[test]
    fn monotone_cubic_flat_segment() {
        let mc = MonotoneCubic::new(vec![0.0, 1.0, 2.0], vec![1.0, 1.0, 0.5]).unwrap();
        assert!((mc.eval(0.5).unwrap() - 1.0).abs() < 1e-14);
    }
}
