//! Damped fixed-point (Picard) iteration with optional Aitken acceleration.
//!
//! The utilization equilibrium of Definition 1 is a fixed point
//! `φ = Φ(Σ m_k λ_k(φ), µ)`; the model layer solves it by root finding on
//! the gap function (Lemma 1), but this module provides the direct iteration
//! both as an independent cross-check and for maps — like the Jacobi
//! best-response dynamics of the game layer — that are naturally expressed
//! as `x ← T(x)`.

use crate::error::{NumError, NumResult};
use crate::tol::Tolerance;

/// Outcome of a scalar fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPoint {
    /// The fixed point.
    pub x: f64,
    /// `|T(x) - x|` at the returned point.
    pub residual: f64,
    /// Iterations spent.
    pub iterations: usize,
}

/// Damped Picard iteration `x ← (1-ω) x + ω T(x)` for scalar maps.
///
/// `omega ∈ (0, 1]` trades speed for stability: `1.0` is the raw iteration;
/// values below one enforce convergence for maps whose derivative magnitude
/// at the fixed point approaches (or slightly exceeds) one.
pub fn picard(
    t: &dyn Fn(f64) -> f64,
    x0: f64,
    omega: f64,
    tol: Tolerance,
) -> NumResult<FixedPoint> {
    if !(omega > 0.0 && omega <= 1.0) {
        return Err(NumError::Domain { what: "picard damping must lie in (0, 1]", value: omega });
    }
    let mut x = x0;
    let mut residual = f64::INFINITY;
    for iter in 0..tol.max_iter {
        let tx = t(x);
        if !tx.is_finite() {
            return Err(NumError::NonFinite { what: "picard map", at: x });
        }
        residual = (tx - x).abs();
        let next = (1.0 - omega) * x + omega * tx;
        if tol.is_met(residual, x) {
            return Ok(FixedPoint { x: next, residual, iterations: iter + 1 });
        }
        x = next;
    }
    Err(NumError::MaxIterations { max_iter: tol.max_iter, residual })
}

/// Aitken Δ²-accelerated Picard iteration (Steffensen-style) for scalar
/// maps: quadratic convergence near the fixed point when `T` is smooth.
pub fn aitken(t: &dyn Fn(f64) -> f64, x0: f64, tol: Tolerance) -> NumResult<FixedPoint> {
    let mut x = x0;
    let mut residual = f64::INFINITY;
    for iter in 0..tol.max_iter {
        let x1 = t(x);
        let x2 = t(x1);
        if !x1.is_finite() || !x2.is_finite() {
            return Err(NumError::NonFinite { what: "aitken map", at: x });
        }
        residual = (x1 - x).abs();
        if tol.is_met(residual, x) {
            return Ok(FixedPoint { x: x1, residual, iterations: iter + 1 });
        }
        let denom = x2 - 2.0 * x1 + x;
        let accel = if denom != 0.0 { x - (x1 - x).powi(2) / denom } else { x2 };
        x = if accel.is_finite() { accel } else { x2 };
    }
    Err(NumError::MaxIterations { max_iter: tol.max_iter, residual })
}

/// Outcome of a vector fixed-point iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorFixedPoint {
    /// The fixed point.
    pub x: Vec<f64>,
    /// Sup-norm of `T(x) - x` at the returned point.
    pub residual: f64,
    /// Iterations spent.
    pub iterations: usize,
}

/// Damped Picard iteration for vector maps `T: R^n → R^n`.
///
/// `t` must write `T(x)` into its second argument.
pub fn picard_vec(
    t: &dyn Fn(&[f64], &mut [f64]),
    x0: &[f64],
    omega: f64,
    tol: Tolerance,
) -> NumResult<VectorFixedPoint> {
    if !(omega > 0.0 && omega <= 1.0) {
        return Err(NumError::Domain { what: "picard damping must lie in (0, 1]", value: omega });
    }
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut tx = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for iter in 0..tol.max_iter {
        t(&x, &mut tx);
        residual = 0.0;
        for i in 0..n {
            if !tx[i].is_finite() {
                return Err(NumError::NonFinite { what: "picard_vec map", at: x[i] });
            }
            residual = residual.max((tx[i] - x[i]).abs());
        }
        let scale = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            x[i] = (1.0 - omega) * x[i] + omega * tx[i];
        }
        if tol.is_met(residual, scale) {
            return Ok(VectorFixedPoint { x, residual, iterations: iter + 1 });
        }
    }
    Err(NumError::MaxIterations { max_iter: tol.max_iter, residual })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picard_cosine_fixed_point() {
        // The Dottie number: cos(x) = x at ~0.739085.
        let fp = picard(&|x: f64| x.cos(), 1.0, 1.0, Tolerance::new(1e-12, 0.0).with_max_iter(200))
            .unwrap();
        assert!((fp.x - 0.739_085_133_215_160_6).abs() < 1e-9);
    }

    #[test]
    fn picard_damping_stabilizes_oscillation() {
        // T(x) = -0.999 x + 1 has derivative near -1: raw iteration crawls,
        // damped converges to the fixed point 1/1.999.
        let t = |x: f64| -0.999 * x + 1.0;
        let tol = Tolerance::new(1e-10, 0.0).with_max_iter(20_000);
        let fp = picard(&t, 0.0, 0.5, tol).unwrap();
        assert!((fp.x - 1.0 / 1.999).abs() < 1e-6);
    }

    #[test]
    fn picard_rejects_bad_damping() {
        assert!(picard(&|x| x, 0.0, 0.0, Tolerance::default()).is_err());
        assert!(picard(&|x| x, 0.0, 1.5, Tolerance::default()).is_err());
    }

    #[test]
    fn picard_divergent_map_errors() {
        let t = |x: f64| 2.0 * x + 1.0;
        let e = picard(&t, 1.0, 1.0, Tolerance::default().with_max_iter(50));
        assert!(matches!(e, Err(NumError::MaxIterations { .. })));
    }

    #[test]
    fn aitken_accelerates_slow_map() {
        // T(x) = exp(-x): fixed point ~0.567143 (Omega constant).
        let t = |x: f64| (-x).exp();
        let tol = Tolerance::new(1e-13, 0.0).with_max_iter(100);
        let fp = aitken(&t, 0.5, tol).unwrap();
        assert!((fp.x - 0.567_143_290_409_783_8).abs() < 1e-10);
        assert!(fp.iterations < 10, "iterations = {}", fp.iterations);
    }

    #[test]
    fn picard_vec_linear_contraction() {
        // T(x) = A x + b with ||A|| < 1 converges to (I - A)^{-1} b.
        let t = |x: &[f64], out: &mut [f64]| {
            out[0] = 0.3 * x[0] + 0.1 * x[1] + 1.0;
            out[1] = 0.2 * x[0] + 0.4 * x[1] + 2.0;
        };
        let fp = picard_vec(&t, &[0.0, 0.0], 1.0, Tolerance::new(1e-12, 0.0).with_max_iter(500))
            .unwrap();
        // Solve (I-A)x = b by hand: [0.7, -0.1; -0.2, 0.6] x = [1, 2].
        let det = 0.7 * 0.6 - 0.02;
        let x0 = (0.6 * 1.0 + 0.1 * 2.0) / det;
        let x1 = (0.2 * 1.0 + 0.7 * 2.0) / det;
        assert!((fp.x[0] - x0).abs() < 1e-8);
        assert!((fp.x[1] - x1).abs() < 1e-8);
    }

    #[test]
    fn picard_vec_empty() {
        let t = |_: &[f64], _: &mut [f64]| {};
        let fp = picard_vec(&t, &[], 1.0, Tolerance::default()).unwrap();
        assert!(fp.x.is_empty());
        assert_eq!(fp.residual, 0.0);
    }

    #[test]
    fn utilization_fixed_point_matches_root_solve() {
        // Definition 1 on the paper's exponential example: phi = (1/mu) sum m e^{-b phi}.
        let mu = 1.0;
        let cps = [(0.8f64, 1.0f64), (0.6, 3.0), (0.4, 5.0)];
        let t = move |phi: f64| cps.iter().map(|(m, b)| m * (-b * phi).exp()).sum::<f64>() / mu;
        let fp = picard(&t, 0.5, 0.7, Tolerance::new(1e-12, 0.0).with_max_iter(10_000)).unwrap();
        let g =
            move |phi: f64| phi * mu - cps.iter().map(|(m, b)| m * (-b * phi).exp()).sum::<f64>();
        let root = crate::roots::solve_increasing(&g, 0.0, 0.5, Tolerance::tight()).unwrap();
        assert!((fp.x - root.x).abs() < 1e-8, "picard {} vs root {}", fp.x, root.x);
    }
}
