//! Property-based tests for the numerical substrate.

use proptest::prelude::*;
use subcomp_num::linalg::lu::{inverse, solve, LuDecomposition};
use subcomp_num::linalg::Matrix;
use subcomp_num::optimize::{golden_max, maximize_scalar};
use subcomp_num::roots::{brent, expand_upward, solve_increasing, Bracket};
use subcomp_num::stats::{quantile, Running};
use subcomp_num::Tolerance;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn brent_finds_root_of_shifted_cubic(shift in -50.0f64..50.0) {
        // x^3 + x - shift has a unique real root for all shifts.
        let f = move |x: f64| x * x * x + x - shift;
        let r = brent(&f, Bracket::new(-40.0, 40.0), Tolerance::tight()).unwrap();
        prop_assert!(f(r.x).abs() < 1e-8, "residual {}", f(r.x));
    }

    #[test]
    fn expand_upward_always_brackets_monotone(
        slope in 0.01f64..100.0,
        root in 0.0f64..1e6,
    ) {
        let f = move |x: f64| slope * (x - root) - 1e-9;
        let br = expand_upward(&f, 0.0, 1.0, 128).unwrap();
        prop_assert!(f(br.a) <= 0.0);
        prop_assert!(f(br.b) >= 0.0);
    }

    #[test]
    fn solve_increasing_gap_functions(
        m1 in 0.01f64..5.0,
        m2 in 0.01f64..5.0,
        b1 in 0.2f64..6.0,
        b2 in 0.2f64..6.0,
        mu in 0.2f64..4.0,
    ) {
        // Lemma 1-style gap functions always solve.
        let g = move |phi: f64| phi * mu - m1 * (-b1 * phi).exp() - m2 * (-b2 * phi).exp();
        let r = solve_increasing(&g, 0.0, 1.0, Tolerance::tight()).unwrap();
        prop_assert!(r.x > 0.0);
        prop_assert!(g(r.x).abs() < 1e-9);
    }

    #[test]
    fn solve_increasing_random_increasing_functions(
        root in -5.0f64..500.0,
        lin in 0.05f64..20.0,
        cub in 0.0f64..5.0,
        atn in 0.0f64..10.0,
        lo_off in 0.01f64..50.0,
        step in 0.05f64..8.0,
    ) {
        // Lemma 1 path: any strictly increasing function that starts
        // negative must converge to its unique bracketed root, for random
        // starting points and random initial bracket-expansion steps.
        let f = move |x: f64| {
            let d = x - root;
            lin * d + cub * d * d * d + atn * d.atan()
        };
        let lo = root - lo_off;
        let r = solve_increasing(&f, lo, step, Tolerance::tight()).unwrap();
        prop_assert!(
            (r.x - root).abs() < 1e-6 * (1.0 + root.abs()),
            "root {} found {} (err {:.2e})", root, r.x, (r.x - root).abs()
        );
        prop_assert!(f(r.x).abs() < 1e-5, "residual {:.2e}", f(r.x));
    }

    #[test]
    fn golden_max_parabola(center in -10.0f64..10.0, height in -5.0f64..5.0) {
        let f = move |x: f64| height - (x - center).powi(2);
        let m = golden_max(&f, -12.0, 12.0, Tolerance::new(1e-10, 1e-10).with_max_iter(300)).unwrap();
        prop_assert!((m.x - center).abs() < 1e-4);
        prop_assert!((m.value - height).abs() < 1e-8);
    }

    #[test]
    fn maximize_scalar_never_below_endpoints(
        a in -5.0f64..0.0,
        b in 0.1f64..5.0,
        w1 in -3.0f64..3.0,
        w2 in -3.0f64..3.0,
    ) {
        let f = move |x: f64| w1 * x + w2 * (x * 1.7).sin();
        let m = maximize_scalar(&f, a, b, 24, Tolerance::default()).unwrap();
        prop_assert!(m.value >= f(a) - 1e-9);
        prop_assert!(m.value >= f(b) - 1e-9);
        prop_assert!(m.x >= a && m.x <= b);
    }

    #[test]
    fn lu_solve_residual_small(
        entries in proptest::collection::vec(-3.0f64..3.0, 9),
        rhs in proptest::collection::vec(-3.0f64..3.0, 3),
    ) {
        // Diagonally boost to avoid (near-)singular draws.
        let mut a = Matrix::from_vec(3, 3, entries).unwrap();
        for i in 0..3 {
            let boost = 10.0 + a[(i, i)].abs();
            a[(i, i)] += if a[(i, i)] >= 0.0 { boost } else { -boost };
        }
        let x = solve(&a, &rhs).unwrap();
        let back = a.matvec(&x).unwrap();
        for i in 0..3 {
            prop_assert!((back[i] - rhs[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_inverse_roundtrip(entries in proptest::collection::vec(-2.0f64..2.0, 16)) {
        let mut a = Matrix::from_vec(4, 4, entries).unwrap();
        for i in 0..4 {
            a[(i, i)] += 9.0;
        }
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!((&prod - &Matrix::identity(4)).norm_max() < 1e-9);
    }

    #[test]
    fn determinant_multiplicative(
        e1 in proptest::collection::vec(-2.0f64..2.0, 4),
        e2 in proptest::collection::vec(-2.0f64..2.0, 4),
    ) {
        let mut a = Matrix::from_vec(2, 2, e1).unwrap();
        let mut b = Matrix::from_vec(2, 2, e2).unwrap();
        a[(0, 0)] += 5.0;
        a[(1, 1)] += 5.0;
        b[(0, 0)] += 5.0;
        b[(1, 1)] += 5.0;
        let det_ab = LuDecomposition::new(&a.matmul(&b).unwrap()).unwrap().determinant();
        let det_a = LuDecomposition::new(&a).unwrap().determinant();
        let det_b = LuDecomposition::new(&b).unwrap().determinant();
        prop_assert!((det_ab - det_a * det_b).abs() < 1e-8 * det_ab.abs().max(1.0));
    }

    #[test]
    fn running_stats_match_direct(xs in proptest::collection::vec(-100.0f64..100.0, 2..60)) {
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((r.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        prop_assert!((r.variance() - var).abs() < 1e-7 * (1.0 + var.abs()));
    }

    #[test]
    fn quantiles_are_order_statistics(xs in proptest::collection::vec(-50.0f64..50.0, 1..40)) {
        let lo = quantile(&xs, 0.0).unwrap();
        let hi = quantile(&xs, 1.0).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(lo, min);
        prop_assert_eq!(hi, max);
        let med = quantile(&xs, 0.5).unwrap();
        prop_assert!(med >= min && med <= max);
    }
}
