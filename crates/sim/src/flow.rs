//! Stochastic flow-level simulation of the shared access link.
//!
//! The analytic model compresses all packet/flow dynamics into
//! `λ_i(φ)` and the Definition 1 fixed point. This simulator re-expands
//! one level of detail:
//!
//! * **Discrete users.** CP `i`'s user pool is an M/M/∞ birth–death
//!   process whose stationary mean is the demand level `m_i(t_i)·scale`:
//!   arrivals are Poisson at rate `churn · m_i(t_i) · scale`, each user
//!   departs at rate `churn`.
//! * **Congestion adaptation.** In [`SharingMode::Adaptive`] every active
//!   user runs at `λ_i(φ̂)` where `φ̂` is the utilization *observed one
//!   tick ago* — the lagged tâtonnement whose rest point is exactly the
//!   fixed point of Definition 1.
//! * **Emergent sharing.** In [`SharingMode::ProcessorSharing`] users
//!   instead demand their uncongested peak and the link imposes max-min
//!   fairness; per-user throughput then *emerges* from contention, and
//!   [`FlowSim::measure_curve`] extracts an empirical `λ(φ)` curve that
//!   [`crate::measured::MeasuredThroughput`] can feed back into the
//!   analytic machinery.
//!
//! The report compares simulated time-averages against the analytic
//! state — the E3 sim-vs-theory experiment.

use crate::rng::SimRng;
use crate::trace::{Series, Trace};
use subcomp_model::system::System;
use subcomp_num::{NumError, NumResult};

/// How the link allocates capacity among active users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// Users self-adapt to observed congestion via their `λ_i(φ)` (the
    /// paper's abstraction, made dynamic).
    Adaptive,
    /// Users demand their peak rate; the link enforces max-min fairness.
    /// Per-user throughput emerges from contention.
    ProcessorSharing,
}

/// Configuration for a flow-level run.
#[derive(Debug, Clone, Copy)]
pub struct FlowSimConfig {
    /// Discretization: simulated users per unit of model population.
    pub user_scale: f64,
    /// Churn rate (per user per time unit); higher = faster mixing.
    pub churn: f64,
    /// Tick length.
    pub dt: f64,
    /// Total ticks.
    pub ticks: usize,
    /// Warm-up ticks excluded from summaries.
    pub warmup: usize,
    /// Sharing mode.
    pub mode: SharingMode,
    /// Multiplies every CP's target population — the load knob used by
    /// [`FlowSim::measure_curve`] to sweep the link through utilization
    /// levels without touching prices.
    pub demand_multiplier: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            user_scale: 400.0,
            churn: 1.0,
            dt: 0.05,
            ticks: 4000,
            warmup: 800,
            mode: SharingMode::Adaptive,
            demand_multiplier: 1.0,
            seed: 0xC0FFEE,
        }
    }
}

/// Summary of a flow-level run.
#[derive(Debug, Clone)]
pub struct FlowSimReport {
    /// Time-averaged utilization (post warm-up).
    pub phi_mean: f64,
    /// 95% CI half-width of the utilization estimate.
    pub phi_ci95: f64,
    /// Time-averaged *offered load* (aggregate demand over capacity).
    /// Equals `phi_mean` in [`SharingMode::Adaptive`]; exceeds it past
    /// saturation in [`SharingMode::ProcessorSharing`], where achieved
    /// utilization pins at 1 — this is the x-axis a measurement campaign
    /// would use for congestion-response curves.
    pub offered_mean: f64,
    /// Time-averaged per-CP throughput.
    pub theta_mean: Vec<f64>,
    /// Time-averaged per-CP population (model units).
    pub m_mean: Vec<f64>,
    /// The analytic fixed point for the same effective prices.
    pub analytic_phi: f64,
    /// Analytic per-CP throughput.
    pub analytic_theta: Vec<f64>,
    /// Relative error of the simulated vs analytic utilization.
    pub phi_rel_error: f64,
    /// Full recorded trace (`phi` plus one series per CP throughput).
    pub trace: Trace,
}

/// The flow-level simulator.
#[derive(Debug, Clone)]
pub struct FlowSim<'a> {
    system: &'a System,
    effective_prices: Vec<f64>,
    cfg: FlowSimConfig,
}

impl<'a> FlowSim<'a> {
    /// Creates a simulator for a system at given per-CP effective prices.
    pub fn new(
        system: &'a System,
        effective_prices: Vec<f64>,
        cfg: FlowSimConfig,
    ) -> NumResult<Self> {
        if effective_prices.len() != system.n() {
            return Err(NumError::DimensionMismatch {
                expected: system.n(),
                actual: effective_prices.len(),
            });
        }
        if !(cfg.user_scale > 0.0)
            || !(cfg.dt > 0.0)
            || !(cfg.churn > 0.0)
            || !(cfg.demand_multiplier > 0.0)
        {
            return Err(NumError::Domain {
                what: "user_scale, dt, churn, demand_multiplier must be positive",
                value: cfg.dt,
            });
        }
        if cfg.churn * cfg.dt > 0.5 {
            return Err(NumError::Domain {
                what: "churn * dt must stay below 0.5 for a stable birth-death step",
                value: cfg.churn * cfg.dt,
            });
        }
        Ok(FlowSim { system, effective_prices, cfg })
    }

    /// Runs the simulation and summarizes against the analytic model.
    pub fn run(&self) -> NumResult<FlowSimReport> {
        let n = self.system.n();
        let cfg = &self.cfg;
        let mut rng = SimRng::new(cfg.seed);
        let targets: Vec<f64> = self
            .system
            .populations(&self.effective_prices)?
            .iter()
            .map(|m| m * cfg.demand_multiplier * cfg.user_scale)
            .collect();
        // Start pools at their stationary means to shorten warm-up.
        let mut users: Vec<u64> = targets.iter().map(|t| t.round().max(0.0) as u64).collect();

        let mut trace = Trace::new();
        let phi_idx = trace.add(Series::new("phi", cfg.warmup));
        let offered_idx = trace.add(Series::new("offered", cfg.warmup));
        let theta_idx: Vec<usize> =
            (0..n).map(|i| trace.add(Series::new(format!("theta_{i}"), cfg.warmup))).collect();
        let m_idx: Vec<usize> =
            (0..n).map(|i| trace.add(Series::new(format!("m_{i}"), cfg.warmup))).collect();

        let mut phi_hat = 0.0; // last observed utilization
        for _ in 0..cfg.ticks {
            // Birth-death churn toward the demand target.
            for i in 0..n {
                let arrivals = rng.poisson(cfg.churn * targets[i] * cfg.dt);
                let departures = rng.poisson(cfg.churn * users[i] as f64 * cfg.dt).min(users[i]);
                users[i] = users[i] + arrivals - departures;
            }
            // Per-user rates under the sharing mode.
            let mut theta = vec![0.0; n];
            let offered: f64;
            match cfg.mode {
                SharingMode::Adaptive => {
                    for i in 0..n {
                        let rate = self.system.cp(i).lambda(phi_hat);
                        theta[i] = users[i] as f64 / cfg.user_scale * rate;
                    }
                    // Adaptive users offer exactly what they achieve.
                    offered = theta.iter().sum::<f64>() / self.system.mu();
                }
                SharingMode::ProcessorSharing => {
                    // Max-min fairness with homogeneous peaks per CP class:
                    // water-fill the capacity across users.
                    let peaks: Vec<f64> =
                        (0..n).map(|i| self.system.cp(i).throughput().peak()).collect();
                    let capacity = self.system.mu() * cfg.user_scale;
                    let fair = waterfill(&users, &peaks, capacity);
                    let mut demand = 0.0;
                    for i in 0..n {
                        theta[i] = users[i] as f64 / cfg.user_scale * peaks[i].min(fair);
                        demand += users[i] as f64 / cfg.user_scale * peaks[i];
                    }
                    offered = demand / self.system.mu();
                }
            }
            let total_theta: f64 = theta.iter().sum();
            let phi = self.system.utilization_fn().phi(total_theta.max(1e-300), self.system.mu());
            let phi = if phi.is_finite() { phi } else { phi_hat };
            // Record.
            trace.series_mut(phi_idx).push(phi);
            trace.series_mut(offered_idx).push(offered);
            for i in 0..n {
                trace.series_mut(theta_idx[i]).push(theta[i]);
                trace.series_mut(m_idx[i]).push(users[i] as f64 / cfg.user_scale);
            }
            phi_hat = phi;
        }

        // Analytic reference at the same (multiplied) demand level.
        let analytic_m: Vec<f64> = self
            .system
            .populations(&self.effective_prices)?
            .iter()
            .map(|m| m * cfg.demand_multiplier)
            .collect();
        let analytic = self.system.solve_state(&analytic_m)?;
        let phi_mean = trace.series(phi_idx).mean();
        let report = FlowSimReport {
            phi_mean,
            phi_ci95: trace.series(phi_idx).ci95(),
            offered_mean: trace.series(offered_idx).mean(),
            theta_mean: theta_idx.iter().map(|&k| trace.series(k).mean()).collect(),
            m_mean: m_idx.iter().map(|&k| trace.series(k).mean()).collect(),
            analytic_phi: analytic.phi,
            analytic_theta: analytic.theta_i.clone(),
            phi_rel_error: subcomp_num::stats::relative_error(phi_mean, analytic.phi, 1e-9),
            trace,
        };
        Ok(report)
    }

    /// Measures an empirical per-user-throughput vs congestion curve by
    /// sweeping the demand scale in [`SharingMode::ProcessorSharing`].
    ///
    /// Returns `(offered_load, per_user_rate)` pairs for CP `cp_index`,
    /// sorted by offered load — the raw material for
    /// [`crate::measured::MeasuredThroughput`]. Offered load is the
    /// congestion axis (achieved utilization saturates at 1 under
    /// processor sharing, offered load keeps growing past it).
    pub fn measure_curve(&self, cp_index: usize, scales: &[f64]) -> NumResult<Vec<(f64, f64)>> {
        if cp_index >= self.system.n() {
            return Err(NumError::DimensionMismatch {
                expected: self.system.n(),
                actual: cp_index,
            });
        }
        let mut out = Vec::with_capacity(scales.len());
        for (k, &scale) in scales.iter().enumerate() {
            if !(scale > 0.0) {
                return Err(NumError::Domain {
                    what: "demand scale must be positive",
                    value: scale,
                });
            }
            let cfg = FlowSimConfig {
                mode: SharingMode::ProcessorSharing,
                demand_multiplier: self.cfg.demand_multiplier * scale,
                seed: self.cfg.seed.wrapping_add(k as u64),
                ..self.cfg
            };
            let sim = FlowSim {
                system: self.system,
                effective_prices: self.effective_prices.clone(),
                cfg,
            };
            let rep = sim.run()?;
            let m_i = rep.m_mean[cp_index].max(1e-12);
            out.push((rep.offered_mean, rep.theta_mean[cp_index] / m_i));
        }
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        Ok(out)
    }
}

/// Max-min fair share: the water level `r` with
/// `Σ_i users_i · min(peak_i, r) = capacity` (or `r = max peak` if the
/// link is underloaded).
fn waterfill(users: &[u64], peaks: &[f64], capacity: f64) -> f64 {
    let total_demand: f64 = users.iter().zip(peaks).map(|(&u, &p)| u as f64 * p).sum();
    if total_demand <= capacity {
        return peaks.iter().copied().fold(0.0, f64::max);
    }
    // Bisection on the water level.
    let mut lo = 0.0;
    let mut hi = peaks.iter().copied().fold(0.0, f64::max);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        let used: f64 = users.iter().zip(peaks).map(|(&u, &p)| u as f64 * p.min(mid)).sum();
        if used > capacity {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn test_system() -> System {
        build_system(
            &[
                ExpCpSpec::unit(2.0, 2.0, 1.0),
                ExpCpSpec::unit(5.0, 5.0, 0.5),
                ExpCpSpec::unit(3.0, 1.0, 1.0),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn adaptive_mode_recovers_fixed_point() {
        // The headline validation: simulated mean utilization matches the
        // Definition 1 fixed point within a few percent.
        let sys = test_system();
        let sim = FlowSim::new(&sys, vec![0.5; 3], FlowSimConfig::default()).unwrap();
        let rep = sim.run().unwrap();
        assert!(
            rep.phi_rel_error < 0.03,
            "phi sim {} vs analytic {} (rel err {})",
            rep.phi_mean,
            rep.analytic_phi,
            rep.phi_rel_error
        );
        // Per-CP throughputs close too.
        for i in 0..3 {
            let err =
                subcomp_num::stats::relative_error(rep.theta_mean[i], rep.analytic_theta[i], 1e-9);
            assert!(
                err < 0.06,
                "CP {i}: sim {} vs analytic {}",
                rep.theta_mean[i],
                rep.analytic_theta[i]
            );
        }
    }

    #[test]
    fn populations_track_demand() {
        let sys = test_system();
        let prices = vec![0.3, 0.8, 0.1];
        let sim = FlowSim::new(&sys, prices.clone(), FlowSimConfig::default()).unwrap();
        let rep = sim.run().unwrap();
        let expect = sys.populations(&prices).unwrap();
        for i in 0..3 {
            // CP 1's population at t = 0.8 is ~0.018, i.e. ~7 simulated
            // users: allow the Poisson noise its due.
            let err = subcomp_num::stats::relative_error(rep.m_mean[i], expect[i], 1e-9);
            assert!(err < 0.10, "CP {i}: sim m {} vs demand {}", rep.m_mean[i], expect[i]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sys = test_system();
        let a = FlowSim::new(&sys, vec![0.5; 3], FlowSimConfig::default()).unwrap().run().unwrap();
        let b = FlowSim::new(&sys, vec![0.5; 3], FlowSimConfig::default()).unwrap().run().unwrap();
        assert_eq!(a.phi_mean, b.phi_mean);
        let c = FlowSim::new(&sys, vec![0.5; 3], FlowSimConfig { seed: 9, ..Default::default() })
            .unwrap()
            .run()
            .unwrap();
        assert_ne!(a.phi_mean, c.phi_mean);
    }

    #[test]
    fn subsidy_lowers_effective_price_and_raises_usage() {
        let sys = test_system();
        let base =
            FlowSim::new(&sys, vec![0.6; 3], FlowSimConfig::default()).unwrap().run().unwrap();
        let subsidized = FlowSim::new(&sys, vec![0.6, 0.2, 0.6], FlowSimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(subsidized.m_mean[1] > base.m_mean[1]);
        assert!(subsidized.phi_mean > base.phi_mean);
    }

    #[test]
    fn processor_sharing_under_and_overload() {
        let sys = test_system();
        // Very high price: few users, no contention -> everyone at peak.
        let light = FlowSim::new(
            &sys,
            vec![3.0; 3],
            FlowSimConfig { mode: SharingMode::ProcessorSharing, ..Default::default() },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(light.phi_mean < 0.6);
        // Negative effective price (heavy subsidy): overload, fairness caps.
        let heavy = FlowSim::new(
            &sys,
            vec![-0.3; 3],
            FlowSimConfig { mode: SharingMode::ProcessorSharing, ..Default::default() },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(
            heavy.phi_mean <= 1.0 + 1e-9,
            "PS cannot exceed capacity, phi = {}",
            heavy.phi_mean
        );
        assert!(heavy.phi_mean > light.phi_mean);
    }

    #[test]
    fn measured_curve_is_decreasing() {
        // Scales straddle the saturation point (total peak demand at
        // t = 0.2 is ~1.62, so the PS link saturates at scale ~0.62): the
        // offered-load axis keeps growing past it while the per-user rate
        // flattens below and falls above.
        let sys = test_system();
        let cfg = FlowSimConfig { ticks: 1500, warmup: 400, ..Default::default() };
        let sim = FlowSim::new(&sys, vec![0.2; 3], cfg).unwrap();
        let curve = sim.measure_curve(0, &[0.3, 0.6, 1.0, 1.5, 2.0]).unwrap();
        assert_eq!(curve.len(), 5);
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0, "offered load must increase with demand scale: {curve:?}");
            assert!(w[0].1 >= w[1].1 - 1e-9, "per-user rate must not increase with load");
        }
        // The overloaded tail is strictly contention-limited: rate ~ 1/load.
        let last = curve.len() - 1;
        assert!(curve[last].1 < curve[1].1, "deep overload must cut the per-user rate");
    }

    #[test]
    fn waterfill_underload_gives_peaks() {
        let r = waterfill(&[10, 10], &[1.0, 2.0], 100.0);
        assert_eq!(r, 2.0);
    }

    #[test]
    fn waterfill_overload_conserves_capacity() {
        let users = [30u64, 10];
        let peaks = [1.0, 2.0];
        let cap = 25.0;
        let r = waterfill(&users, &peaks, cap);
        let used: f64 = users.iter().zip(&peaks).map(|(&u, &p)| u as f64 * p.min(r)).sum();
        assert!((used - cap).abs() < 1e-6, "used {used} vs cap {cap}");
    }

    #[test]
    fn config_validation() {
        let sys = test_system();
        assert!(FlowSim::new(&sys, vec![0.5; 2], FlowSimConfig::default()).is_err());
        let bad = FlowSimConfig { dt: 0.0, ..Default::default() };
        assert!(FlowSim::new(&sys, vec![0.5; 3], bad).is_err());
        let unstable = FlowSimConfig { churn: 20.0, dt: 0.05, ..Default::default() };
        assert!(FlowSim::new(&sys, vec![0.5; 3], unstable).is_err());
    }
}
