//! Deterministic random sampling for the simulators.
//!
//! Thin wrapper over `rand`'s `StdRng` with the distributions the
//! simulators need (exponential inter-arrival times, Poisson counts,
//! Gaussian perturbations via Box–Muller). Every simulator takes an
//! explicit seed so runs are exactly reproducible — a property the
//! sim-vs-theory tests rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded random source used across the simulators.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Creates an independent sub-stream of a master seed.
    ///
    /// Components that draw from logically separate random sources (key
    /// choice vs. operation choice in a load generator, arrivals vs.
    /// service in a simulator) must not share one sequence: interleaving
    /// couples them, so adding a draw to one component perturbs the
    /// other. `stream` derives a decorrelated child seed by running
    /// `(master, stream)` through a SplitMix64-style avalanche, the same
    /// discipline the farm ensemble uses for per-game seeds.
    pub fn stream(master: u64, stream: u64) -> Self {
        SimRng::new(SimRng::stream_seed(master, stream))
    }

    /// The derived child seed [`SimRng::stream`] builds its generator
    /// from. Exposed so layered generators (e.g. a multi-market load
    /// generator handing each market its own *master* seed, which that
    /// market then splits into sub-streams of its own) can compose the
    /// avalanche without chaining `SimRng` constructions.
    pub fn stream_seed(master: u64, stream: u64) -> u64 {
        let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Exponential sample with the given rate (`mean = 1/rate`).
    ///
    /// # Panics
    /// If `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // Inversion; guard log(0).
        let u = 1.0 - self.uniform();
        -u.ln() / rate
    }

    /// Poisson sample with the given mean.
    ///
    /// Knuth's multiplication method for small means, normal approximation
    /// (rounded, clamped at zero) beyond 30 where Knuth underflows.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson mean must be non-negative");
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let g = self.gaussian(mean, mean.sqrt());
            return g.round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Gaussian sample via Box–Muller.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Bernoulli sample.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Uniform integer in `[0, n)` by rejection sampling on the raw
    /// 64-bit output — exact, with no float rounding, so a discrete
    /// choice over `n` arms can never alias an out-of-range arm the way
    /// `uniform_in(0.0, n as f64) as usize` can.
    ///
    /// # Panics
    /// If `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below requires a non-empty range");
        // Reject the top partial copy of [0, n) so every residue is
        // equally likely. At most one value in 2^64 is rejected per
        // iteration for small n, so the loop terminates immediately in
        // practice.
        let rem = (u64::MAX % n + 1) % n;
        let limit = u64::MAX - rem;
        loop {
            let x = self.inner.next_u64();
            if x <= limit {
                return x % n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        let mut c = SimRng::new(8);
        assert_ne!(SimRng::new(7).uniform(), c.uniform());
    }

    #[test]
    fn streams_are_deterministic_and_decorrelated() {
        // Same (master, stream) → same sequence.
        let mut a = SimRng::stream(7, 3);
        let mut b = SimRng::stream(7, 3);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        // Different streams of one master, and the master itself, all
        // start differently — adding draws to one stream cannot shift
        // another.
        let first = |mut r: SimRng| r.uniform();
        let s0 = first(SimRng::stream(7, 0));
        let s1 = first(SimRng::stream(7, 1));
        let s2 = first(SimRng::stream(7, 2));
        let root = first(SimRng::new(7));
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_ne!(s0, s2);
        assert_ne!(s0, root);
        // Nearby masters do not collide on the same stream index.
        assert_ne!(first(SimRng::stream(7, 1)), first(SimRng::stream(8, 1)));
    }

    #[test]
    fn stream_seed_matches_stream() {
        // `stream(m, s)` is exactly `new(stream_seed(m, s))`, so layered
        // generators composing the avalanche by hand stay bit-compatible.
        let mut via_stream = SimRng::stream(7, 3);
        let mut via_seed = SimRng::new(SimRng::stream_seed(7, 3));
        for _ in 0..50 {
            assert_eq!(via_stream.uniform(), via_seed.uniform());
        }
        assert_ne!(SimRng::stream_seed(7, 3), SimRng::stream_seed(7, 4));
        assert_ne!(SimRng::stream_seed(7, 3), SimRng::stream_seed(8, 3));
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::new(6);
        for n in [1u64, 2, 3, 7, 100] {
            for _ in 0..500 {
                assert!(rng.below(n) < n);
            }
        }
        // n = 1 is the degenerate single-arm choice.
        assert_eq!(rng.below(1), 0);
        // Every arm of a 3-way choice is drawn with frequency ~1/3.
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.below(3) as usize] += 1;
        }
        for (arm, &c) in counts.iter().enumerate() {
            let freq = c as f64 / 30_000.0;
            assert!((freq - 1.0 / 3.0).abs() < 0.02, "arm {arm} frequency {freq}");
        }
    }

    #[test]
    fn below_is_deterministic() {
        let draws = |seed: u64| -> Vec<u64> {
            let mut rng = SimRng::new(seed);
            (0..100).map(|_| rng.below(10)).collect()
        };
        assert_eq!(draws(9), draws(9));
        assert_ne!(draws(9), draws(10));
    }

    #[test]
    #[should_panic(expected = "below requires a non-empty range")]
    fn below_rejects_empty_range() {
        SimRng::new(0).below(0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(42);
        let rate = 2.5;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = SimRng::new(1);
        let mean = 3.0;
        let n = 20_000;
        let avg: f64 = (0..n).map(|_| rng.poisson(mean) as f64).sum::<f64>() / n as f64;
        assert!((avg - mean).abs() < 0.06, "avg {avg}");
    }

    #[test]
    fn poisson_large_mean_normal_approx() {
        let mut rng = SimRng::new(2);
        let mean = 200.0;
        let n = 5_000;
        let avg: f64 = (0..n).map(|_| rng.poisson(mean) as f64).sum::<f64>() / n as f64;
        assert!((avg - mean).abs() < 1.5, "avg {avg}");
    }

    #[test]
    fn poisson_zero() {
        let mut rng = SimRng::new(3);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::new(11);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian(5.0, 2.0)).collect();
        let mean: f64 = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            let x = rng.uniform_in(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::new(5);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_bad_rate() {
        SimRng::new(0).exponential(0.0);
    }
}
