//! Time-series capture for simulator runs.

use subcomp_num::stats::Running;

/// A named scalar time series with summary statistics over a measurement
/// window (warm-up samples are recorded but excluded from the summary).
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    samples: Vec<f64>,
    warmup: usize,
    summary: Running,
}

impl Series {
    /// Creates a series; the first `warmup` samples are excluded from the
    /// summary statistics.
    pub fn new(name: impl Into<String>, warmup: usize) -> Self {
        Series { name: name.into(), samples: Vec::new(), warmup, summary: Running::new() }
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        if self.samples.len() >= self.warmup {
            self.summary.push(x);
        }
        self.samples.push(x);
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All samples including warm-up.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Post-warm-up mean.
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Post-warm-up standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.summary.std_dev()
    }

    /// Post-warm-up 95% CI half width.
    pub fn ci95(&self) -> f64 {
        self.summary.ci95_half_width()
    }

    /// Post-warm-up sample count.
    pub fn measured_count(&self) -> u64 {
        self.summary.count()
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<f64> {
        self.samples.last().copied()
    }
}

/// A labelled collection of series sharing a time axis.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    series: Vec<Series>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Adds a series and returns its index.
    pub fn add(&mut self, series: Series) -> usize {
        self.series.push(series);
        self.series.len() - 1
    }

    /// The series at an index.
    pub fn series(&self, idx: usize) -> &Series {
        &self.series[idx]
    }

    /// Mutable access for recording.
    pub fn series_mut(&mut self, idx: usize) -> &mut Series {
        &mut self.series[idx]
    }

    /// Looks a series up by name.
    pub fn by_name(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_excluded_from_summary() {
        let mut s = Series::new("phi", 2);
        for x in [100.0, 100.0, 1.0, 2.0, 3.0] {
            s.push(x);
        }
        assert_eq!(s.samples().len(), 5);
        assert_eq!(s.measured_count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let s = Series::new("x", 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn trace_lookup() {
        let mut t = Trace::new();
        let i = t.add(Series::new("phi", 0));
        let j = t.add(Series::new("theta", 0));
        t.series_mut(i).push(0.5);
        t.series_mut(j).push(1.5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.by_name("phi").unwrap().last(), Some(0.5));
        assert!(t.by_name("nope").is_none());
    }

    #[test]
    fn ci_shrinks() {
        let mut s = Series::new("x", 0);
        for i in 0..10 {
            s.push((i % 2) as f64);
        }
        let early = s.ci95();
        for i in 0..1000 {
            s.push((i % 2) as f64);
        }
        assert!(s.ci95() < early);
    }
}
