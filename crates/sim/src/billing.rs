//! Usage metering and settlement.
//!
//! The subsidization mechanism is, operationally, an accounting scheme
//! (paper §6: access ISPs can meter traffic toward their users; AT&T's
//! sponsored-data plan is the `s_i = p` special case). This module meters
//! per-CP traffic over a billing period and settles the three-way money
//! flow: users pay the discounted rate `t_i = p − s_i`, CPs pay subsidies
//! `s_i`, the ISP receives the full price `p` per unit — so the ISP's
//! revenue is *invariant* to who pays, which is exactly why subsidization
//! keeps the network neutral.

use subcomp_num::{NumError, NumResult};

/// Settled money flows for one billing period.
#[derive(Debug, Clone, PartialEq)]
pub struct Ledger {
    /// Traffic volume per CP over the period.
    pub volume: Vec<f64>,
    /// What users of each CP paid (`t_i × volume_i`).
    pub user_payments: Vec<f64>,
    /// What each CP paid in subsidies (`s_i × volume_i`).
    pub cp_subsidies: Vec<f64>,
    /// ISP revenue (`p × total volume`).
    pub isp_revenue: f64,
}

impl Ledger {
    /// Settles a billing period.
    ///
    /// `theta` are per-CP throughput rates, `duration` the period length,
    /// `p` the ISP price, `s` the subsidies. Effective user price is
    /// `p − s_i` (may be negative: the CP is paying users' entire bill and
    /// then some — AT&T sponsored data is `s_i = p`, i.e. exactly zero).
    pub fn settle(theta: &[f64], duration: f64, p: f64, s: &[f64]) -> NumResult<Ledger> {
        if theta.len() != s.len() {
            return Err(NumError::DimensionMismatch { expected: theta.len(), actual: s.len() });
        }
        if !(duration > 0.0) {
            return Err(NumError::Domain {
                what: "billing duration must be positive",
                value: duration,
            });
        }
        if !(p >= 0.0) {
            return Err(NumError::Domain { what: "price must be non-negative", value: p });
        }
        let n = theta.len();
        let mut volume = Vec::with_capacity(n);
        let mut user_payments = Vec::with_capacity(n);
        let mut cp_subsidies = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            if !(theta[i] >= 0.0) {
                return Err(NumError::Domain {
                    what: "throughput must be non-negative",
                    value: theta[i],
                });
            }
            let vol = theta[i] * duration;
            volume.push(vol);
            user_payments.push((p - s[i]) * vol);
            cp_subsidies.push(s[i] * vol);
            total += vol;
        }
        Ok(Ledger { volume, user_payments, cp_subsidies, isp_revenue: p * total })
    }

    /// Number of CPs in the ledger.
    pub fn n(&self) -> usize {
        self.volume.len()
    }

    /// Accounting identity: user payments + subsidies = ISP revenue.
    pub fn conservation_error(&self) -> f64 {
        let users: f64 = self.user_payments.iter().sum();
        let cps: f64 = self.cp_subsidies.iter().sum();
        (users + cps - self.isp_revenue).abs()
    }

    /// Merges another period into this one.
    pub fn merge(&mut self, other: &Ledger) -> NumResult<()> {
        if other.n() != self.n() {
            return Err(NumError::DimensionMismatch { expected: self.n(), actual: other.n() });
        }
        for i in 0..self.n() {
            self.volume[i] += other.volume[i];
            self.user_payments[i] += other.user_payments[i];
            self.cp_subsidies[i] += other.cp_subsidies[i];
        }
        self.isp_revenue += other.isp_revenue;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settle_and_conserve() {
        let ledger = Ledger::settle(&[2.0, 1.0], 10.0, 0.5, &[0.2, 0.0]).unwrap();
        assert_eq!(ledger.volume, vec![20.0, 10.0]);
        assert!((ledger.isp_revenue - 15.0).abs() < 1e-12);
        assert!((ledger.user_payments[0] - 0.3 * 20.0).abs() < 1e-12);
        assert!((ledger.cp_subsidies[0] - 0.2 * 20.0).abs() < 1e-12);
        assert!(ledger.conservation_error() < 1e-12);
    }

    #[test]
    fn sponsored_data_special_case() {
        // s_i = p: users pay nothing (AT&T sponsored data); the CP's
        // subsidy covers the ISP's entire revenue.
        let ledger = Ledger::settle(&[3.0], 1.0, 0.4, &[0.4]).unwrap();
        assert_eq!(ledger.user_payments[0], 0.0);
        assert!((ledger.cp_subsidies[0] - ledger.isp_revenue).abs() < 1e-12);
    }

    #[test]
    fn oversubsidized_users_get_paid() {
        // s_i > p: negative user payment (the paper's unclamped regime).
        let ledger = Ledger::settle(&[1.0], 1.0, 0.3, &[0.5]).unwrap();
        assert!(ledger.user_payments[0] < 0.0);
        assert!(ledger.conservation_error() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Ledger::settle(&[1.0, 1.0], 1.0, 0.5, &[0.1, 0.2]).unwrap();
        let b = Ledger::settle(&[2.0, 0.5], 2.0, 0.5, &[0.1, 0.2]).unwrap();
        let expected_rev = a.isp_revenue + b.isp_revenue;
        a.merge(&b).unwrap();
        assert!((a.isp_revenue - expected_rev).abs() < 1e-12);
        assert_eq!(a.volume[0], 1.0 + 4.0);
        assert!(a.conservation_error() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(Ledger::settle(&[1.0], 0.0, 0.5, &[0.0]).is_err());
        assert!(Ledger::settle(&[1.0], 1.0, -0.5, &[0.0]).is_err());
        assert!(Ledger::settle(&[-1.0], 1.0, 0.5, &[0.0]).is_err());
        assert!(Ledger::settle(&[1.0, 2.0], 1.0, 0.5, &[0.0]).is_err());
        let a = Ledger::settle(&[1.0], 1.0, 0.5, &[0.0]).unwrap();
        let mut b = Ledger::settle(&[1.0, 2.0], 1.0, 0.5, &[0.0, 0.0]).unwrap();
        assert!(b.merge(&a).is_err());
    }
}
