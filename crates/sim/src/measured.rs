//! Feeding simulator-measured curves back into the analytic model.
//!
//! [`MeasuredThroughput`] wraps an empirical `(φ, per-user rate)` curve —
//! e.g. from [`crate::flow::FlowSim::measure_curve`] — as a
//! [`ThroughputFn`], closing the loop: *measure* the congestion response
//! of a (simulated) real link, then run every piece of the paper's
//! analysis on the measured curve instead of the stylized exponential.
//!
//! Assumption 1 requires `λ` strictly decreasing with a vanishing tail;
//! raw measurements are noisy and bounded, so construction (a) enforces
//! monotonicity by isotonic pruning, (b) interpolates with a monotone
//! cubic, and (c) extrapolates beyond the last knot with an exponential
//! tail matched to the end slope.

use subcomp_model::throughput::ThroughputFn;
use subcomp_num::interp::MonotoneCubic;
use subcomp_num::{NumError, NumResult};

/// A throughput function backed by measured samples.
#[derive(Debug, Clone)]
pub struct MeasuredThroughput {
    curve: MonotoneCubic,
    /// Last knot (start of the extrapolated tail).
    phi_max: f64,
    /// Value at the last knot.
    lambda_end: f64,
    /// Tail decay rate.
    tail_rate: f64,
    /// Value at φ = 0 (peak).
    peak: f64,
}

impl MeasuredThroughput {
    /// Builds from `(φ, rate)` samples (any order). Requires at least
    /// three distinct φ values and positive rates.
    pub fn from_samples(samples: &[(f64, f64)]) -> NumResult<Self> {
        if samples.len() < 3 {
            return Err(NumError::Empty { what: "MeasuredThroughput needs >= 3 samples" });
        }
        let mut pts: Vec<(f64, f64)> = samples.to_vec();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in samples"));
        for &(phi, rate) in &pts {
            if !(phi >= 0.0) || !phi.is_finite() || !(rate > 0.0) || !rate.is_finite() {
                return Err(NumError::Domain {
                    what: "samples must have phi >= 0, rate > 0",
                    value: rate,
                });
            }
        }
        // Isotonic pruning: enforce strictly decreasing rates by dropping
        // any point that does not strictly decrease (noise-tolerant).
        let mut xs = vec![pts[0].0];
        let mut ys = vec![pts[0].1];
        for &(phi, rate) in &pts[1..] {
            if phi > *xs.last().unwrap() + 1e-12 && rate < *ys.last().unwrap() * (1.0 - 1e-9) {
                xs.push(phi);
                ys.push(rate);
            }
        }
        if xs.len() < 3 {
            return Err(NumError::Domain {
                what: "samples must contain >= 3 strictly decreasing points",
                value: xs.len() as f64,
            });
        }
        // Anchor a phi = 0 knot if the data starts later (flat extension).
        if xs[0] > 0.0 {
            xs.insert(0, 0.0);
            ys.insert(0, ys[0] * 1.0001);
        }
        let n = xs.len();
        let phi_max = xs[n - 1];
        let lambda_end = ys[n - 1];
        // Tail decay matched to the last secant slope, floored so the tail
        // actually vanishes.
        let end_slope = (ys[n - 2] - ys[n - 1]) / (xs[n - 1] - xs[n - 2]);
        let tail_rate = (end_slope / lambda_end).max(0.1);
        let peak = ys[0];
        let curve = MonotoneCubic::new(xs, ys)?;
        Ok(MeasuredThroughput { curve, phi_max, lambda_end, tail_rate, peak })
    }

    /// Number of knots retained after pruning is at least 3 by
    /// construction; exposes the usable φ range for diagnostics.
    pub fn measured_range(&self) -> (f64, f64) {
        (0.0, self.phi_max)
    }
}

impl ThroughputFn for MeasuredThroughput {
    fn lambda(&self, phi: f64) -> f64 {
        if phi <= self.phi_max {
            // The trait returns a bare f64; a non-finite query propagates
            // as NaN, matching the analytic `ThroughputFn` families.
            self.curve.eval(phi).unwrap_or(f64::NAN)
        } else {
            self.lambda_end * (-self.tail_rate * (phi - self.phi_max)).exp()
        }
    }
    fn dlambda_dphi(&self, phi: f64) -> f64 {
        if phi <= self.phi_max {
            // The monotone cubic derivative can be exactly zero on flat
            // segments; nudge it negative so Lemma 1's strict monotonicity
            // survives.
            let d = self.curve.derivative(phi).unwrap_or(f64::NAN);
            if d < -1e-12 {
                d
            } else {
                -1e-9 * self.peak
            }
        } else {
            -self.tail_rate * self.lambda(phi)
        }
    }
    fn name(&self) -> &'static str {
        "measured"
    }
    fn boxed_clone(&self) -> Box<dyn ThroughputFn> {
        Box::new(self.clone())
    }
    fn scaled(&self, kappa: f64) -> Box<dyn ThroughputFn> {
        let mut scaled = self.clone();
        // Rescale the stored curve by reconstructing from scaled samples.
        let knots: Vec<(f64, f64)> = (0..=40)
            .map(|k| {
                let phi = self.phi_max * k as f64 / 40.0;
                (phi, self.lambda(phi) * kappa)
            })
            .collect();
        if let Ok(m) = MeasuredThroughput::from_samples(&knots) {
            scaled = m;
        }
        Box::new(scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_samples(beta: f64, n: usize, phi_max: f64) -> Vec<(f64, f64)> {
        (0..=n)
            .map(|k| {
                let phi = phi_max * k as f64 / n as f64;
                (phi, (-beta * phi).exp())
            })
            .collect()
    }

    #[test]
    fn reproduces_exponential_within_range() {
        let m = MeasuredThroughput::from_samples(&exp_samples(2.0, 20, 2.0)).unwrap();
        for k in 0..50 {
            let phi = k as f64 * 0.04;
            let err = (m.lambda(phi) - (-2.0 * phi).exp()).abs();
            assert!(err < 5e-3, "phi {phi}: err {err}");
        }
    }

    #[test]
    fn tail_vanishes() {
        let m = MeasuredThroughput::from_samples(&exp_samples(2.0, 10, 1.5)).unwrap();
        assert!(m.lambda(50.0) < 1e-3);
        assert!(m.lambda(8.0) < m.lambda(2.0));
    }

    #[test]
    fn strictly_decreasing_everywhere() {
        let m = MeasuredThroughput::from_samples(&exp_samples(3.0, 15, 2.0)).unwrap();
        let mut prev = m.lambda(0.0);
        for k in 1..200 {
            let phi = k as f64 * 0.025;
            let cur = m.lambda(phi);
            assert!(cur < prev + 1e-12, "not decreasing at {phi}");
            prev = cur;
        }
    }

    #[test]
    fn derivative_negative() {
        let m = MeasuredThroughput::from_samples(&exp_samples(2.0, 15, 2.0)).unwrap();
        for k in 0..100 {
            let phi = k as f64 * 0.05;
            assert!(m.dlambda_dphi(phi) < 0.0, "derivative not negative at {phi}");
        }
    }

    #[test]
    fn tolerates_noisy_non_monotone_samples() {
        let mut s = exp_samples(2.0, 20, 2.0);
        s[5].1 *= 1.2; // a noise spike that breaks monotonicity
        s[11].1 *= 1.15;
        let m = MeasuredThroughput::from_samples(&s).unwrap();
        let mut prev = m.lambda(0.0);
        for k in 1..80 {
            let phi = k as f64 * 0.025;
            let cur = m.lambda(phi);
            assert!(cur <= prev + 1e-9);
            prev = cur;
        }
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(MeasuredThroughput::from_samples(&[(0.0, 1.0), (1.0, 0.5)]).is_err());
        assert!(MeasuredThroughput::from_samples(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]).is_err());
        assert!(MeasuredThroughput::from_samples(&[(0.0, -1.0), (1.0, 0.5), (2.0, 0.2)]).is_err());
    }

    #[test]
    fn usable_inside_a_system() {
        // End-to-end: a System built on a measured curve still solves its
        // fixed point (Definition 1 on measured physics).
        use subcomp_model::cp::ContentProvider;
        use subcomp_model::demand::ExpDemand;
        use subcomp_model::system::System;
        use subcomp_model::utilization::LinearUtilization;

        let measured = MeasuredThroughput::from_samples(&exp_samples(3.0, 20, 2.5)).unwrap();
        let cp = ContentProvider::builder("measured-cp")
            .demand(ExpDemand::new(1.0, 2.0))
            .throughput(measured)
            .profitability(1.0)
            .build();
        let sys = System::new(vec![cp], 1.0, LinearUtilization).unwrap();
        let state = sys.state_at_uniform_price(0.4).unwrap();
        assert!(state.phi > 0.0);
        assert!(state.residual(&sys) < 1e-8);
        // Close to the true exponential system's fixed point.
        let exact = {
            use subcomp_model::throughput::ExpThroughput;
            let cp = ContentProvider::builder("exact")
                .demand(ExpDemand::new(1.0, 2.0))
                .throughput(ExpThroughput::new(1.0, 3.0))
                .profitability(1.0)
                .build();
            System::new(vec![cp], 1.0, LinearUtilization)
                .unwrap()
                .state_at_uniform_price(0.4)
                .unwrap()
                .phi
        };
        assert!((state.phi - exact).abs() < 0.01, "measured {} vs exact {exact}", state.phi);
    }

    #[test]
    fn scaled_preserves_shape() {
        let m = MeasuredThroughput::from_samples(&exp_samples(2.0, 15, 2.0)).unwrap();
        let s = m.scaled(2.0);
        for k in 0..20 {
            let phi = k as f64 * 0.1;
            assert!((s.lambda(phi) - 2.0 * m.lambda(phi)).abs() < 0.02 * m.lambda(phi).max(1e-9));
        }
    }
}
