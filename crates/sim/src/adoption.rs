//! Million-user adoption dynamics under network externalities
//! (Weber–Guérin cost-subsidization dynamics, PAPERS.md).
//!
//! The paper's demand side is static: a mass `m_i(t_i) = m⁰_i e^{-α_i t_i}`
//! of users adopts CP `i` at the discounted price `t_i = p − s_i`. This
//! module makes that mass *emergent*: a population of `N` heterogeneous
//! users (millions), each with a CP type and a private valuation
//! `v ~ Exp(α_i)`, adopts and churns tick by tick under
//! externality-dependent hazards. A user's per-tick surplus is
//!
//! ```text
//! surplus = v · gain_i − t_eff_i
//! ```
//!
//! where `gain_i` is the network-externality multiplier for type `i`
//! (typically `1 + γ·θ_i` from a served equilibrium snapshot) and
//! `t_eff_i` the effective price. Idle users adopt with probability
//! [`AdoptionParams::adopt`] when surplus is positive (and
//! [`AdoptionParams::explore`] otherwise); adopters drop with probability
//! [`AdoptionParams::churn`] when surplus is non-positive (and
//! [`AdoptionParams::decay`] otherwise). In the default
//! explore = decay = 0 regime the stationary state of a user is exactly
//! `indicator(v·gain > t_eff)`, so the expected adopted mass of type `i`
//! is `m⁰_i e^{-α_i t_eff_i / gain_i}` — the paper's demand curve — which
//! is what the large-N cross-validation against `model/continuum.rs`
//! pins (`tests/adoption_tier.rs`).
//!
//! # Engine layout and the determinism contract
//!
//! The population is a structure of arrays split into fixed-size
//! [`Block`]s (per-field `uid`/`valuation`/`state` arrays). Within each
//! block users are **counting-sorted by CP type** at build time and the
//! per-type runs recorded as segments, so the inner tick loop hoists the
//! per-type drive out of the loop and runs branch-light over each
//! segment (the state flip is a XOR, the hazard pick a table index —
//! autovectorizable, no data-dependent branches).
//!
//! Per-tick randomness uses a **two-level counter scheme** over
//! [`SimRng::stream_seed`] instead of sequential generator state: each
//! tick derives `key = stream_seed(tick_root, tick)` and each user's
//! draw is the avalanche `h = stream_seed(key, uid)`, compared against a
//! precomputed `u64` threshold (`p·2⁶⁴`). A user's trajectory is
//! therefore a pure function of `(seed, uid, drive history)` —
//! independent of block layout and of which thread steps which block —
//! so results are **bit-identical across thread counts and chunk
//! sizes**. Per-type adopter tallies are integer counts scaled by the
//! constant per-user mass quantum, which makes the aggregated masses
//! exact and summation-order-free.
//!
//! After [`Population::build`], a tick performs **zero heap
//! allocations** (pinned in `tests/alloc_free.rs`). Blocks are owned,
//! disjoint chunks, so the parallel driver in `subcomp-exp`
//! (`exp::adoption::step_population`) fans them out over
//! `sweep::parallel_map_mut` without sharing or locking.

use crate::rng::SimRng;
use subcomp_num::{NumError, NumResult};

/// Stream index deriving the build-time (type + valuation) randomness.
const BUILD_STREAM: u64 = 0xAD0B_0001;
/// Stream index deriving the per-tick hazard randomness.
const TICK_STREAM: u64 = 0xAD0B_0002;
/// Stream index separating the valuation draw from the type draw.
const VALUATION_STREAM: u64 = 0xAD0B_0003;

/// Top 53 bits of an avalanched hash as a uniform in `[0, 1)`.
#[inline]
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A per-tick probability as a `u64` firing threshold: the event fires
/// iff the user's 64-bit hash is strictly below it. `p = 0` never fires;
/// `p = 1` maps to `u64::MAX` (misses only the single all-ones hash, a
/// 2⁻⁶⁴ corner the tolerance tiers absorb).
#[inline]
fn threshold(p: f64) -> u64 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        u64::MAX
    } else {
        (p * (u64::MAX as f64 + 1.0)) as u64
    }
}

/// One user type: the discretized counterpart of a CP's demand curve
/// (`m⁰` total mass, valuations `v ~ Exp(α)` — so the stationary adopted
/// mass at effective price `t` is `m⁰ e^{-αt}`, Assumption 2's form).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeSpec {
    /// Total user mass of the type (the paper's `m⁰_i`); must be positive.
    pub mass: f64,
    /// Valuation rate (the paper's demand elasticity `α_i`); must be positive.
    pub alpha: f64,
}

impl TypeSpec {
    /// Expected stationary adopted mass at effective price `t_eff` under
    /// externality gain `gain`, in the explore = decay = 0 regime:
    /// `m⁰ · P(v·gain > t_eff) = m⁰ e^{-α·t_eff/gain}` (all of `m⁰` when
    /// the surplus is positive for free). This is the analytic target of
    /// the large-N cross-validation.
    pub fn stationary_mass(&self, t_eff: f64, gain: f64) -> f64 {
        if !(gain > 0.0) {
            return 0.0;
        }
        let cut = t_eff / gain;
        if cut <= 0.0 {
            self.mass
        } else {
            self.mass * (-self.alpha * cut).exp()
        }
    }
}

/// Hazard configuration for the adoption process. All four rates are
/// per-tick probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdoptionParams {
    /// Master seed; the only source of randomness.
    pub seed: u64,
    /// P(idle → adopted) per tick when surplus is positive.
    pub adopt: f64,
    /// P(idle → adopted) per tick when surplus is non-positive
    /// (exploration noise; 0 makes the positive-surplus set absorbing).
    pub explore: f64,
    /// P(adopted → idle) per tick when surplus is non-positive.
    pub churn: f64,
    /// P(adopted → idle) per tick when surplus is positive
    /// (spontaneous decay; 0 makes adoption sticky under surplus).
    pub decay: f64,
}

impl Default for AdoptionParams {
    /// The deterministic-relaxation regime: adopt/churn at rate 1, no
    /// exploration or decay — one tick reaches the stationary indicator
    /// state, which is what the continuum cross-check uses.
    fn default() -> Self {
        AdoptionParams { seed: 0, adopt: 1.0, explore: 0.0, churn: 1.0, decay: 0.0 }
    }
}

impl AdoptionParams {
    fn validate(&self) -> NumResult<()> {
        for (what, p) in [
            ("adopt rate must be a probability in [0, 1]", self.adopt),
            ("explore rate must be a probability in [0, 1]", self.explore),
            ("churn rate must be a probability in [0, 1]", self.churn),
            ("decay rate must be a probability in [0, 1]", self.decay),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(NumError::Domain { what, value: p });
            }
        }
        Ok(())
    }

    /// Firing thresholds indexed by `(state << 1) | (surplus > 0)`:
    /// `[explore, adopt, churn, decay]`.
    fn thresholds(&self) -> [u64; 4] {
        [
            threshold(self.explore),
            threshold(self.adopt),
            threshold(self.churn),
            threshold(self.decay),
        ]
    }
}

/// Per-type drive for one tick: the externality term read from the
/// served equilibrium snapshot. Lengths must match the population's
/// type count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickDrive {
    /// Effective price `t_eff_i` per type (typically `max(p − s_i, 0)`).
    pub t_eff: Vec<f64>,
    /// Externality gain `gain_i` per type (typically `1 + γ·θ_i`);
    /// must be non-negative.
    pub gain: Vec<f64>,
}

impl TickDrive {
    /// A uniform drive: every type at effective price `t`, unit gain.
    pub fn uniform(n_types: usize, t: f64) -> TickDrive {
        TickDrive { t_eff: vec![t; n_types], gain: vec![1.0; n_types] }
    }
}

/// One contiguous type-sorted run inside a [`Block`].
#[derive(Debug, Clone, Copy)]
struct Seg {
    /// CP type of every user in the run.
    cp: u32,
    /// First index of the run within the block's arrays.
    start: u32,
    /// Run length.
    len: u32,
}

/// Precomputed per-tick constants handed to every block step: the tick's
/// counter key and the four hazard thresholds. `Copy`, so the parallel
/// driver shares it by value.
#[derive(Debug, Clone, Copy)]
pub struct TickCtx {
    key: u64,
    thresholds: [u64; 4],
}

/// One owned, fixed-size chunk of the user population (structure of
/// arrays, counting-sorted by CP type). Blocks partition the uid space
/// into contiguous ranges; stepping a block touches no memory outside
/// it, which is what lets the parallel driver hand each block to a
/// worker with no sharing.
#[derive(Debug, Clone)]
pub struct Block {
    /// Global user ids (scrambled within the block by the type sort).
    uid: Vec<u64>,
    /// Private valuations `v`, aligned with `uid`.
    valuation: Vec<f64>,
    /// Adoption state (0 idle, 1 adopted), aligned with `uid`.
    state: Vec<u8>,
    /// Type-sorted runs covering the block.
    segs: Vec<Seg>,
    /// Per-type adopter tallies after the last step.
    counts: Vec<u64>,
}

impl Block {
    /// Advances every user in the block by one tick and refreshes the
    /// block's per-type adopter tallies. Allocation-free; pure in
    /// `(ctx, drive)` and the block's own arrays.
    pub fn step(&mut self, ctx: &TickCtx, drive: &TickDrive) {
        for c in self.counts.iter_mut() {
            *c = 0;
        }
        for seg in &self.segs {
            let t = seg.cp as usize;
            let t_eff = drive.t_eff[t];
            let gain = drive.gain[t];
            let lo = seg.start as usize;
            let hi = lo + seg.len as usize;
            let mut adopted = 0u64;
            for j in lo..hi {
                let surplus = self.valuation[j] * gain - t_eff;
                let st = self.state[j];
                let idx = ((st as usize) << 1) | usize::from(surplus > 0.0);
                let h = SimRng::stream_seed(ctx.key, self.uid[j]);
                let fire = u8::from(h < ctx.thresholds[idx]);
                let ns = st ^ fire;
                self.state[j] = ns;
                adopted += u64::from(ns);
            }
            self.counts[t] += adopted;
        }
    }

    /// Number of users in the block.
    pub fn len(&self) -> usize {
        self.uid.len()
    }

    /// Whether the block is empty (never true for built populations).
    pub fn is_empty(&self) -> bool {
        self.uid.is_empty()
    }
}

/// A structure-of-arrays user population stepping under adoption/churn
/// hazards. See the module docs for the layout and the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct Population {
    types: Vec<TypeSpec>,
    params: AdoptionParams,
    thresholds: [u64; 4],
    tick_root: u64,
    n_users: usize,
    unit: f64,
    tick: u64,
    blocks: Vec<Block>,
    masses: Vec<f64>,
    adopted: u64,
}

impl Population {
    /// Builds a population of `n_users` users over the given types,
    /// split into blocks of `chunk` users (the last block may be
    /// shorter). Each user's type is drawn proportionally to the type
    /// mass shares and its valuation from `Exp(α_type)`, both as pure
    /// functions of `(params.seed, uid)` — so two builds with different
    /// chunk sizes hold bit-identical user sets, just partitioned
    /// differently.
    pub fn build(
        types: &[TypeSpec],
        n_users: usize,
        chunk: usize,
        params: AdoptionParams,
    ) -> NumResult<Population> {
        if types.is_empty() || types.len() > u32::MAX as usize {
            return Err(NumError::Domain {
                what: "adoption population needs between 1 and u32::MAX types",
                value: types.len() as f64,
            });
        }
        if n_users == 0 {
            return Err(NumError::Domain {
                what: "adoption population must have at least one user",
                value: 0.0,
            });
        }
        if chunk == 0 || chunk > u32::MAX as usize {
            return Err(NumError::Domain {
                what: "adoption chunk size must be in [1, u32::MAX]",
                value: chunk as f64,
            });
        }
        params.validate()?;
        let mut total = 0.0;
        for ty in types {
            if !(ty.mass > 0.0) || !ty.mass.is_finite() {
                return Err(NumError::Domain {
                    what: "type mass must be positive and finite",
                    value: ty.mass,
                });
            }
            if !(ty.alpha > 0.0) || !ty.alpha.is_finite() {
                return Err(NumError::Domain {
                    what: "type alpha must be positive and finite",
                    value: ty.alpha,
                });
            }
            total += ty.mass;
        }
        // Cumulative mass shares for the proportional type draw.
        let mut cum = Vec::with_capacity(types.len());
        let mut acc = 0.0;
        for ty in types {
            acc += ty.mass / total;
            cum.push(acc);
        }
        let n_types = types.len();
        let build_key = SimRng::stream_seed(params.seed, BUILD_STREAM);
        // Type of user `uid` as a pure function of the seed: shared by
        // the counting pass and the scatter pass below.
        let type_of = |uid: u64| -> usize {
            let u = u01(SimRng::stream_seed(build_key, uid));
            cum.iter().position(|&c| u < c).unwrap_or(n_types - 1)
        };
        let mut blocks = Vec::with_capacity(n_users.div_ceil(chunk));
        let mut offsets = vec![0usize; n_types + 1];
        for block_start in (0..n_users).step_by(chunk) {
            let block_len = chunk.min(n_users - block_start);
            // Counting sort by type: count, prefix, scatter.
            offsets.iter_mut().for_each(|o| *o = 0);
            for uid in block_start..block_start + block_len {
                offsets[type_of(uid as u64) + 1] += 1;
            }
            for t in 0..n_types {
                offsets[t + 1] += offsets[t];
            }
            let mut segs = Vec::new();
            for t in 0..n_types {
                let len = offsets[t + 1] - offsets[t];
                if len > 0 {
                    segs.push(Seg { cp: t as u32, start: offsets[t] as u32, len: len as u32 });
                }
            }
            let mut uid_arr = vec![0u64; block_len];
            let mut val_arr = vec![0.0f64; block_len];
            let mut cursor = offsets.clone();
            for uid in block_start..block_start + block_len {
                let uid = uid as u64;
                let h = SimRng::stream_seed(build_key, uid);
                let t = type_of(uid);
                let slot = cursor[t];
                cursor[t] += 1;
                let uv = u01(SimRng::stream_seed(h, VALUATION_STREAM));
                uid_arr[slot] = uid;
                val_arr[slot] = -(1.0 - uv).ln() / types[t].alpha;
            }
            blocks.push(Block {
                uid: uid_arr,
                valuation: val_arr,
                state: vec![0u8; block_len],
                segs,
                counts: vec![0u64; n_types],
            });
        }
        Ok(Population {
            types: types.to_vec(),
            thresholds: params.thresholds(),
            tick_root: SimRng::stream_seed(params.seed, TICK_STREAM),
            params,
            n_users,
            unit: total / n_users as f64,
            tick: 0,
            blocks,
            masses: vec![0.0; n_types],
            adopted: 0,
        })
    }

    /// Validates the drive against this population and opens the next
    /// tick: bumps the tick counter and returns the per-tick context for
    /// [`Block::step`]. Split from [`Population::step`] so a parallel
    /// driver can fan [`Population::blocks_mut`] out itself; call
    /// [`Population::refresh_masses`] once every block has stepped.
    pub fn prepare_tick(&mut self, drive: &TickDrive) -> NumResult<TickCtx> {
        let n = self.types.len();
        if drive.t_eff.len() != n {
            return Err(NumError::DimensionMismatch { expected: n, actual: drive.t_eff.len() });
        }
        if drive.gain.len() != n {
            return Err(NumError::DimensionMismatch { expected: n, actual: drive.gain.len() });
        }
        for &t in &drive.t_eff {
            if !t.is_finite() {
                return Err(NumError::Domain { what: "tick drive t_eff must be finite", value: t });
            }
        }
        for &g in &drive.gain {
            if !(g >= 0.0) || !g.is_finite() {
                return Err(NumError::Domain {
                    what: "tick drive gain must be non-negative and finite",
                    value: g,
                });
            }
        }
        self.tick += 1;
        Ok(TickCtx {
            key: SimRng::stream_seed(self.tick_root, self.tick),
            thresholds: self.thresholds,
        })
    }

    /// The owned, disjoint blocks — the unit of parallel distribution.
    pub fn blocks_mut(&mut self) -> &mut [Block] {
        &mut self.blocks
    }

    /// Re-aggregates per-type adopted masses from the block tallies:
    /// integer adopter counts times the constant per-user mass quantum,
    /// so the result is exact and independent of block layout and
    /// summation order. Allocation-free.
    pub fn refresh_masses(&mut self) {
        self.masses.iter_mut().for_each(|m| *m = 0.0);
        let mut adopted = 0u64;
        for block in &self.blocks {
            for (t, &c) in block.counts.iter().enumerate() {
                self.masses[t] += c as f64;
                adopted += c;
            }
        }
        // Integer tallies scale once at the end; counts stay exact in u64.
        for m in self.masses.iter_mut() {
            *m *= self.unit;
        }
        self.adopted = adopted;
    }

    /// Advances the whole population by one tick, serially, and
    /// refreshes the aggregated masses. Zero heap allocations.
    pub fn step(&mut self, drive: &TickDrive) -> NumResult<()> {
        let ctx = self.prepare_tick(drive)?;
        for block in &mut self.blocks {
            block.step(&ctx, drive);
        }
        self.refresh_masses();
        Ok(())
    }

    /// Per-type adopted mass after the last stepped tick.
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Total adopted user count after the last stepped tick.
    pub fn adopted_users(&self) -> u64 {
        self.adopted
    }

    /// Fraction of users currently adopted.
    pub fn adopted_fraction(&self) -> f64 {
        self.adopted as f64 / self.n_users as f64
    }

    /// The type specs the population was built over.
    pub fn types(&self) -> &[TypeSpec] {
        &self.types
    }

    /// Hazard configuration.
    pub fn params(&self) -> &AdoptionParams {
        &self.params
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of types.
    pub fn n_types(&self) -> usize {
        self.types.len()
    }

    /// Mass carried by each user (`Σ m⁰ / N`).
    pub fn unit_mass(&self) -> f64 {
        self.unit
    }

    /// Ticks stepped so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Expected stationary per-type masses under `drive` in the
    /// explore = decay = 0 regime (see [`TypeSpec::stationary_mass`]).
    pub fn stationary_masses(&self, drive: &TickDrive) -> Vec<f64> {
        self.types
            .iter()
            .enumerate()
            .map(|(t, ty)| ty.stationary_mass(drive.t_eff[t], drive.gain[t]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_types() -> Vec<TypeSpec> {
        vec![TypeSpec { mass: 2.0, alpha: 2.0 }, TypeSpec { mass: 1.0, alpha: 5.0 }]
    }

    #[test]
    fn build_validates_inputs() {
        let p = AdoptionParams::default();
        assert!(Population::build(&[], 10, 4, p).is_err());
        assert!(Population::build(&two_types(), 0, 4, p).is_err());
        assert!(Population::build(&two_types(), 10, 0, p).is_err());
        let bad_mass = vec![TypeSpec { mass: 0.0, alpha: 1.0 }];
        assert!(Population::build(&bad_mass, 10, 4, p).is_err());
        let bad_alpha = vec![TypeSpec { mass: 1.0, alpha: -1.0 }];
        assert!(Population::build(&bad_alpha, 10, 4, p).is_err());
        let bad_rate = AdoptionParams { adopt: 1.5, ..p };
        assert!(Population::build(&two_types(), 10, 4, bad_rate).is_err());
    }

    #[test]
    fn step_validates_drive() {
        let mut pop = Population::build(&two_types(), 100, 32, AdoptionParams::default()).unwrap();
        assert!(pop.step(&TickDrive::uniform(1, 0.1)).is_err());
        let mut bad = TickDrive::uniform(2, 0.1);
        bad.gain[1] = -1.0;
        assert!(pop.step(&bad).is_err());
        let mut nan = TickDrive::uniform(2, 0.1);
        nan.t_eff[0] = f64::NAN;
        assert!(pop.step(&nan).is_err());
    }

    #[test]
    fn masses_are_exact_multiples_of_the_unit() {
        let mut pop =
            Population::build(&two_types(), 10_000, 1024, AdoptionParams::default()).unwrap();
        pop.step(&TickDrive::uniform(2, 0.2)).unwrap();
        let unit = pop.unit_mass();
        let total = pop.adopted_users();
        assert!(total > 0);
        for &m in pop.masses() {
            let users = m / unit;
            assert!((users - users.round()).abs() < 1e-6, "mass {m} not an integer multiple");
        }
    }

    #[test]
    fn chunk_size_does_not_change_the_trajectory() {
        let params = AdoptionParams { seed: 42, adopt: 0.7, churn: 0.6, ..Default::default() };
        let drive = TickDrive::uniform(2, 0.15);
        let run = |chunk: usize| {
            let mut pop = Population::build(&two_types(), 5_000, chunk, params).unwrap();
            for _ in 0..5 {
                pop.step(&drive).unwrap();
            }
            (pop.masses().to_vec(), pop.adopted_users())
        };
        let (m1, a1) = run(5_000);
        for chunk in [1, 7, 128, 1024, 4_999] {
            let (m, a) = run(chunk);
            assert_eq!(m, m1, "chunk {chunk} diverged");
            assert_eq!(a, a1, "chunk {chunk} diverged");
        }
    }

    #[test]
    fn stationary_state_matches_the_demand_curve() {
        // adopt = churn = 1, explore = decay = 0: one tick reaches the
        // indicator state, whose expected mass is m⁰ e^{-α t}.
        let types = two_types();
        let n = 200_000;
        let mut pop =
            Population::build(&types, n, 8_192, AdoptionParams { seed: 9, ..Default::default() })
                .unwrap();
        let drive = TickDrive::uniform(2, 0.3);
        pop.step(&drive).unwrap();
        let expect = pop.stationary_masses(&drive);
        for (t, (&m, &e)) in pop.masses().iter().zip(&expect).enumerate() {
            let rel = (m - e).abs() / e;
            assert!(rel < 0.02, "type {t}: mass {m} vs expected {e} (rel {rel})");
        }
        // A second tick with the same drive is a fixed point: the state
        // is absorbing, so masses must not move at all.
        let before = pop.masses().to_vec();
        pop.step(&drive).unwrap();
        assert_eq!(pop.masses(), &before[..]);
    }

    #[test]
    fn free_service_adopts_everyone_and_churn_drops_them() {
        let types = two_types();
        let mut pop = Population::build(&types, 1_000, 100, AdoptionParams::default()).unwrap();
        pop.step(&TickDrive::uniform(2, -0.5)).unwrap();
        // Negative effective price: everyone has positive surplus.
        assert_eq!(pop.adopted_users(), 1_000);
        let total: f64 = pop.masses().iter().sum();
        let expected: f64 = types.iter().map(|t| t.mass).sum();
        assert!((total - expected).abs() < 1e-9);
        // An unaffordable price churns everyone (v·gain − t_eff < 0 for
        // all finite valuations at gain 0).
        let mut off = TickDrive::uniform(2, 1.0);
        off.gain.iter_mut().for_each(|g| *g = 0.0);
        pop.step(&off).unwrap();
        assert_eq!(pop.adopted_users(), 0);
    }

    #[test]
    fn thresholds_cover_the_edge_probabilities() {
        assert_eq!(threshold(0.0), 0);
        assert_eq!(threshold(-1.0), 0);
        assert_eq!(threshold(1.0), u64::MAX);
        assert_eq!(threshold(2.0), u64::MAX);
        let half = threshold(0.5);
        assert!(half > u64::MAX / 2 - 2 && half < u64::MAX / 2 + 2);
    }

    #[test]
    fn type_shares_follow_the_mass_split() {
        let pop =
            Population::build(&two_types(), 30_000, 30_000, AdoptionParams::default()).unwrap();
        // Type 0 carries 2/3 of the mass; its user share must match.
        let block = &pop.blocks[0];
        let seg0 = block.segs.iter().find(|s| s.cp == 0).unwrap();
        let share = seg0.len as f64 / 30_000.0;
        assert!((share - 2.0 / 3.0).abs() < 0.01, "share {share}");
        // Valuations of type 0 average 1/α = 0.5.
        let lo = seg0.start as usize;
        let hi = lo + seg0.len as usize;
        let mean: f64 = block.valuation[lo..hi].iter().sum::<f64>() / seg0.len as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean valuation {mean}");
    }
}
