//! Agent-based market simulation.
//!
//! The paper's equilibrium analysis presumes rational, instantaneous
//! adjustment; §6 concedes it cannot capture "short-term off-equilibrium
//! types of system dynamics, where players' decisions are not rational or
//! optimal". This simulator provides exactly that missing layer:
//!
//! * **Users** churn gradually: each day the population relaxes a fraction
//!   `adjust_rate` of the way toward the demand level `m_i(t_i)`, with
//!   multiplicative noise — nobody re-reads the price sheet daily.
//! * **CPs** know neither the demand curves nor each other's strategies.
//!   Each review period, one CP (round-robin) runs an A/B experiment on
//!   its own subsidy: it perturbs `s_i` by `±step`, observes realized
//!   profit `(v_i − s_i)·volume` over the next period, and keeps the
//!   perturbation only if profit improved. Steps decay over time.
//! * **Money** is settled daily by [`crate::billing::Ledger`].
//!
//! Despite all this myopia, the long-run subsidies land near the analytic
//! Nash equilibrium — the strongest validation the repository offers that
//! the paper's static solution concept describes where a decentralized
//! market actually goes.

use crate::billing::Ledger;
use crate::rng::SimRng;
use crate::trace::{Series, Trace};
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::NashSolver;
use subcomp_num::{NumError, NumResult};

/// Configuration for the market simulation.
#[derive(Debug, Clone, Copy)]
pub struct MarketSimConfig {
    /// Days to simulate.
    pub days: usize,
    /// Daily population adjustment fraction in `(0, 1]`.
    pub adjust_rate: f64,
    /// Population noise amplitude (multiplicative, per day).
    pub noise: f64,
    /// Days between one CP's subsidy experiments.
    pub review_period: usize,
    /// Initial experiment step.
    pub initial_step: f64,
    /// Multiplicative step decay applied after each full CP rotation.
    pub step_decay: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MarketSimConfig {
    fn default() -> Self {
        MarketSimConfig {
            days: 6000,
            // High enough that populations mostly re-equilibrate within
            // one review period, keeping A/B profit comparisons honest.
            adjust_rate: 0.45,
            noise: 0.0015,
            review_period: 6,
            initial_step: 0.1,
            // Slow decay: the climb must be able to travel the full
            // strategy box (sum of accepted steps ≈ initial/(1-decay)/2)
            // before the step collapses.
            step_decay: 0.99,
            seed: 0xBEEF,
        }
    }
}

/// Result of a market simulation run.
#[derive(Debug, Clone)]
pub struct MarketSimReport {
    /// Final subsidies after the last day.
    pub final_subsidies: Vec<f64>,
    /// The analytic Nash equilibrium for the same `(p, q)`.
    pub nash_subsidies: Vec<f64>,
    /// Sup-norm distance between the two.
    pub distance_to_nash: f64,
    /// Cumulative settled ledger over the whole run.
    pub ledger: Ledger,
    /// Day-indexed traces: utilization plus one subsidy series per CP.
    pub trace: Trace,
}

/// The agent-based market simulator.
#[derive(Debug, Clone)]
pub struct MarketSim<'a> {
    game: &'a SubsidyGame,
    cfg: MarketSimConfig,
}

impl<'a> MarketSim<'a> {
    /// Creates a simulator over a game (price and cap fixed for the run).
    pub fn new(game: &'a SubsidyGame, cfg: MarketSimConfig) -> NumResult<Self> {
        if !(cfg.adjust_rate > 0.0 && cfg.adjust_rate <= 1.0) {
            return Err(NumError::Domain {
                what: "adjust_rate must lie in (0, 1]",
                value: cfg.adjust_rate,
            });
        }
        if cfg.review_period == 0 || cfg.days == 0 {
            return Err(NumError::Domain {
                what: "days and review_period must be positive",
                value: 0.0,
            });
        }
        Ok(MarketSim { game, cfg })
    }

    /// Runs the simulation and compares against the analytic equilibrium
    /// (solved internally at tolerance 1e-8).
    pub fn run(&self) -> NumResult<MarketSimReport> {
        let nash = NashSolver::default().with_tol(1e-8).solve(self.game)?;
        self.run_against(&nash.subsidies)
    }

    /// Runs the simulation comparing against a caller-supplied reference
    /// profile — typically an already-solved Nash equilibrium. Skips the
    /// internal re-solve, so batch runners (the scenario corpus, sweeps)
    /// measure distance against *exactly* the equilibrium they snapshot.
    pub fn run_against(&self, nash_subsidies: &[f64]) -> NumResult<MarketSimReport> {
        let game = self.game;
        let cfg = &self.cfg;
        let n = game.n();
        if nash_subsidies.len() != n {
            return Err(NumError::DimensionMismatch { expected: n, actual: nash_subsidies.len() });
        }
        let mut rng = SimRng::new(cfg.seed);

        // Start at the no-subsidy baseline with populations at demand.
        let mut s = vec![0.0; n];
        let mut m = game.system().populations(&game.effective_prices(&s))?;
        let mut step = cfg.initial_step;

        let mut trace = Trace::new();
        let phi_idx = trace.add(Series::new("phi", cfg.days / 4));
        let s_idx: Vec<usize> =
            (0..n).map(|i| trace.add(Series::new(format!("s_{i}"), cfg.days / 4))).collect();

        let mut ledger = Ledger::settle(&vec![0.0; n], 1.0, game.price(), &s)?;
        // Experiment state: the CP currently mid-experiment, its baseline
        // profit and pre-experiment subsidy.
        let mut experiment: Option<(usize, f64, f64)> = None;
        let mut rotation = 0usize;
        let mut profit_window = vec![0.0; n];
        let mut window_days = 0usize;

        for day in 0..cfg.days {
            // 1. Users churn toward the demand level (with noise).
            let targets = game.system().populations(&game.effective_prices(&s))?;
            for i in 0..n {
                let noise = 1.0 + cfg.noise * rng.gaussian(0.0, 1.0);
                m[i] += cfg.adjust_rate * (targets[i] - m[i]);
                m[i] = (m[i] * noise).max(0.0);
            }
            // 2. The network settles within the day (fixed point at m).
            let state = game.system().solve_state(&m)?;
            // 3. Settle money and accumulate per-CP realized profits.
            let daily = Ledger::settle(&state.theta_i, 1.0, game.price(), &s)?;
            ledger.merge(&daily)?;
            for i in 0..n {
                profit_window[i] += (game.profitability(i) - s[i]) * state.theta_i[i];
            }
            window_days += 1;
            // 4. Record.
            trace.series_mut(phi_idx).push(state.phi);
            for i in 0..n {
                trace.series_mut(s_idx[i]).push(s[i]);
            }
            // 5. Subsidy experiments at review boundaries.
            if (day + 1) % cfg.review_period == 0 {
                let avg_profit: Vec<f64> =
                    profit_window.iter().map(|p| p / window_days as f64).collect();
                match experiment.take() {
                    None => {
                        // Start a new experiment for the next CP in rotation.
                        let i = rotation % n;
                        rotation += 1;
                        if rotation % n == 0 {
                            step *= cfg.step_decay;
                        }
                        let cap = game.effective_cap(i);
                        if cap > 0.0 {
                            let dir = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
                            let trial = (s[i] + dir * step).clamp(0.0, cap);
                            if (trial - s[i]).abs() > 1e-12 {
                                experiment = Some((i, avg_profit[i], s[i]));
                                s[i] = trial;
                            }
                        }
                    }
                    Some((i, baseline_profit, old_s)) => {
                        // Judge the experiment on realized profit.
                        if avg_profit[i] < baseline_profit {
                            s[i] = old_s; // revert
                        }
                    }
                }
                profit_window.iter_mut().for_each(|p| *p = 0.0);
                window_days = 0;
            }
        }

        let distance_to_nash =
            s.iter().zip(nash_subsidies).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        Ok(MarketSimReport {
            final_subsidies: s,
            nash_subsidies: nash_subsidies.to_vec(),
            distance_to_nash,
            ledger,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn two_cp_game() -> SubsidyGame {
        let specs = [ExpCpSpec::unit(5.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 4.0, 0.4)];
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), 0.7, 1.0).unwrap()
    }

    #[test]
    fn market_converges_near_nash() {
        let game = two_cp_game();
        let report = MarketSim::new(&game, MarketSimConfig::default()).unwrap().run().unwrap();
        assert!(
            report.distance_to_nash < 0.1,
            "final {:?} vs nash {:?} (dist {})",
            report.final_subsidies,
            report.nash_subsidies,
            report.distance_to_nash
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let game = two_cp_game();
        let a = MarketSim::new(&game, MarketSimConfig { days: 300, ..Default::default() })
            .unwrap()
            .run()
            .unwrap();
        let b = MarketSim::new(&game, MarketSimConfig { days: 300, ..Default::default() })
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.final_subsidies, b.final_subsidies);
    }

    #[test]
    fn ledger_conserves_money() {
        let game = two_cp_game();
        let report = MarketSim::new(&game, MarketSimConfig { days: 400, ..Default::default() })
            .unwrap()
            .run()
            .unwrap();
        assert!(report.ledger.conservation_error() < 1e-6 * report.ledger.isp_revenue.abs());
        assert!(report.ledger.isp_revenue > 0.0);
    }

    #[test]
    fn zero_cap_market_never_subsidizes() {
        let specs = [ExpCpSpec::unit(5.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 4.0, 0.4)];
        let game = SubsidyGame::new(build_system(&specs, 1.0).unwrap(), 0.7, 0.0).unwrap();
        let report = MarketSim::new(&game, MarketSimConfig { days: 300, ..Default::default() })
            .unwrap()
            .run()
            .unwrap();
        assert!(report.final_subsidies.iter().all(|&s| s == 0.0));
        assert!(report.distance_to_nash < 1e-12);
    }

    #[test]
    fn config_validation() {
        let game = two_cp_game();
        let bad1 = MarketSimConfig { adjust_rate: 0.0, ..Default::default() };
        assert!(MarketSim::new(&game, bad1).is_err());
        let bad2 = MarketSimConfig { review_period: 0, ..Default::default() };
        assert!(MarketSim::new(&game, bad2).is_err());
    }

    #[test]
    fn run_against_matches_run_and_checks_arity() {
        let game = two_cp_game();
        let cfg = MarketSimConfig { days: 300, ..Default::default() };
        let sim = MarketSim::new(&game, cfg).unwrap();
        let auto = sim.run().unwrap();
        let manual = sim.run_against(&auto.nash_subsidies).unwrap();
        // Same trajectory (the reference only affects the comparison).
        assert_eq!(auto.final_subsidies, manual.final_subsidies);
        assert_eq!(auto.distance_to_nash, manual.distance_to_nash);
        assert!(sim.run_against(&[0.0; 5]).is_err(), "wrong arity must be rejected");
    }

    #[test]
    fn trace_has_expected_series() {
        let game = two_cp_game();
        let report = MarketSim::new(&game, MarketSimConfig { days: 100, ..Default::default() })
            .unwrap()
            .run()
            .unwrap();
        assert!(report.trace.by_name("phi").is_some());
        assert!(report.trace.by_name("s_0").is_some());
        assert!(report.trace.by_name("s_1").is_some());
        assert_eq!(report.trace.by_name("phi").unwrap().samples().len(), 100);
    }
}
