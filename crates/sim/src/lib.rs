//! # `subcomp-sim` — simulation substrate for model validation
//!
//! The paper's model is macroscopic and its evaluation is purely numerical:
//! no market data existed in 2014 (§6), and the stylized forms
//! `λ(φ) = e^{-βφ}`, `m(t) = e^{-αt}` are assumptions. This crate builds
//! the two simulators that stand in for what a measurement campaign or a
//! deployed sponsored-data market would provide:
//!
//! * [`flow`] — a stochastic **fluid/flow-level access-link simulator**:
//!   discrete users arrive and depart (M/M/∞ churn around the demand level
//!   `m_i(t_i)`), active users adapt their rate to the observed congestion,
//!   and the link aggregates them. The *emergent* time-averaged utilization
//!   reproduces the Definition 1 fixed point, and a measured
//!   throughput-vs-utilization curve can be fed back into the analytic
//!   model via [`measured::MeasuredThroughput`].
//! * [`market`] — an **agent-based market simulator** at day granularity:
//!   user populations relax toward demand, CPs adjust subsidies by noisy
//!   hill-climbing on realized profit (no oracle access to utilities), and
//!   the usage-based money flows are metered by [`billing`]. Its long-run
//!   state is compared against the analytic Nash equilibrium of
//!   `subcomp-core` — the sim-vs-theory experiment (EXPERIMENTS.md, E3).
//! * [`adoption`] — a million-user **structure-of-arrays adoption engine**
//!   (Weber–Guérin externality dynamics): per-field user arrays
//!   counting-sorted by CP type, counter-keyed randomness so ticks are
//!   bit-identical across thread counts and chunk sizes, zero heap
//!   allocation per tick. The heavy-traffic demand side of the closed
//!   simulate → re-solve loop (`subcomp-exp`'s `adoption` module).
//!
//! Randomness is deterministic per seed ([`rng`]); traces are recorded by
//! [`trace`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adoption;
pub mod billing;
pub mod flow;
pub mod market;
pub mod measured;
pub mod rng;
pub mod trace;

/// One-stop imports for simulator usage.
pub mod prelude {
    pub use crate::adoption::{AdoptionParams, Population, TickDrive, TypeSpec};
    pub use crate::billing::Ledger;
    pub use crate::flow::{FlowSim, FlowSimConfig, FlowSimReport};
    pub use crate::market::{MarketSim, MarketSimConfig, MarketSimReport};
    pub use crate::measured::MeasuredThroughput;
    pub use crate::rng::SimRng;
}
