//! Content providers.
//!
//! A [`ContentProvider`] bundles the per-CP primitives of the paper: a
//! demand function `m_i(t_i)` (Assumption 2), a throughput function
//! `λ_i(φ)` (Assumption 1), and the average per-unit traffic profitability
//! `v_i` that drives the subsidization game (`U_i = (v_i − s_i) θ_i`). By
//! Lemma 2, one `ContentProvider` can stand for a whole *class* of
//! providers with similar traffic characteristics — which is exactly how
//! the paper's numerical sections use 8–9 "types".

use crate::demand::DemandFn;
use crate::throughput::ThroughputFn;

/// A content provider (or an aggregated provider class, per Lemma 2).
#[derive(Clone)]
pub struct ContentProvider {
    name: String,
    demand: Box<dyn DemandFn>,
    throughput: Box<dyn ThroughputFn>,
    profitability: f64,
}

impl ContentProvider {
    /// Starts a builder; `name` identifies the provider in reports.
    pub fn builder(name: impl Into<String>) -> CpBuilder {
        CpBuilder { name: name.into(), demand: None, throughput: None, profitability: 0.0 }
    }

    /// Provider name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The demand function `m_i(·)`.
    pub fn demand(&self) -> &dyn DemandFn {
        self.demand.as_ref()
    }

    /// The throughput function `λ_i(·)`.
    pub fn throughput(&self) -> &dyn ThroughputFn {
        self.throughput.as_ref()
    }

    /// Average per-unit traffic profit `v_i ≥ 0`.
    pub fn profitability(&self) -> f64 {
        self.profitability
    }

    /// Population at effective price `t`.
    pub fn population(&self, t: f64) -> f64 {
        self.demand.m(t)
    }

    /// Per-user throughput at utilization `φ`.
    pub fn lambda(&self, phi: f64) -> f64 {
        self.throughput.lambda(phi)
    }

    /// Returns a Lemma 2 rescaling of this provider: population scale
    /// multiplied by `1/κ`, peak throughput by `κ`. The product
    /// `m_i λ_i(0)` — and hence the provider's effect on the system — is
    /// invariant.
    pub fn rescaled(&self, kappa: f64) -> ContentProvider {
        ContentProvider {
            name: format!("{} (×{kappa})", self.name),
            demand: self.demand.scaled(1.0 / kappa),
            throughput: self.throughput.scaled(kappa),
            profitability: self.profitability,
        }
    }

    /// Returns a copy with a different profitability — used by Theorem 5
    /// (profitability effect) experiments.
    pub fn with_profitability(&self, v: f64) -> ContentProvider {
        assert!(v >= 0.0 && v.is_finite(), "profitability must be non-negative");
        ContentProvider { profitability: v, ..self.clone() }
    }

    /// Replaces the profitability in place — a single scalar write, no
    /// cloning of the demand/throughput primitives. This is the mutator
    /// behind the allocation-free `v`-axis continuation sweeps
    /// (`System::set_profitability`); [`ContentProvider::with_profitability`]
    /// is the cloning convenience on top of the same invariant.
    pub fn set_profitability(&mut self, v: f64) {
        assert!(v >= 0.0 && v.is_finite(), "profitability must be non-negative");
        self.profitability = v;
    }
}

impl std::fmt::Debug for ContentProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentProvider")
            .field("name", &self.name)
            .field("demand", &self.demand.name())
            .field("throughput", &self.throughput.name())
            .field("profitability", &self.profitability)
            .finish()
    }
}

/// Builder for [`ContentProvider`].
pub struct CpBuilder {
    name: String,
    demand: Option<Box<dyn DemandFn>>,
    throughput: Option<Box<dyn ThroughputFn>>,
    profitability: f64,
}

impl CpBuilder {
    /// Sets the demand function (required).
    pub fn demand(mut self, d: impl DemandFn + 'static) -> Self {
        self.demand = Some(Box::new(d));
        self
    }

    /// Sets the demand function from an existing boxed object.
    pub fn demand_boxed(mut self, d: Box<dyn DemandFn>) -> Self {
        self.demand = Some(d);
        self
    }

    /// Sets the throughput function (required).
    pub fn throughput(mut self, t: impl ThroughputFn + 'static) -> Self {
        self.throughput = Some(Box::new(t));
        self
    }

    /// Sets the throughput function from an existing boxed object.
    pub fn throughput_boxed(mut self, t: Box<dyn ThroughputFn>) -> Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the per-unit profitability `v_i ≥ 0` (default 0: a provider
    /// that cannot afford to subsidize).
    pub fn profitability(mut self, v: f64) -> Self {
        assert!(v >= 0.0 && v.is_finite(), "profitability must be non-negative");
        self.profitability = v;
        self
    }

    /// Finalizes the provider.
    ///
    /// # Panics
    /// If the demand or throughput function was not set — these are
    /// construction-time programming errors, not runtime conditions.
    pub fn build(self) -> ContentProvider {
        ContentProvider {
            name: self.name,
            demand: self.demand.expect("ContentProvider requires a demand function"),
            throughput: self.throughput.expect("ContentProvider requires a throughput function"),
            profitability: self.profitability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::ExpDemand;
    use crate::throughput::ExpThroughput;

    fn sample() -> ContentProvider {
        ContentProvider::builder("video")
            .demand(ExpDemand::new(1.0, 2.0))
            .throughput(ExpThroughput::new(1.0, 5.0))
            .profitability(0.8)
            .build()
    }

    #[test]
    fn builder_roundtrip() {
        let cp = sample();
        assert_eq!(cp.name(), "video");
        assert_eq!(cp.profitability(), 0.8);
        assert!((cp.population(0.5) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((cp.lambda(0.2) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires a demand function")]
    fn builder_missing_demand_panics() {
        ContentProvider::builder("x").throughput(ExpThroughput::new(1.0, 1.0)).build();
    }

    #[test]
    #[should_panic(expected = "requires a throughput function")]
    fn builder_missing_throughput_panics() {
        ContentProvider::builder("x").demand(ExpDemand::new(1.0, 1.0)).build();
    }

    #[test]
    fn rescaled_preserves_mass() {
        // Lemma 2: m * lambda(0) invariant under the kappa rescaling.
        let cp = sample();
        let r = cp.rescaled(4.0);
        for t in [0.0, 0.3, 1.0] {
            let orig = cp.population(t) * cp.lambda(0.0);
            let resc = r.population(t) * r.lambda(0.0);
            assert!((orig - resc).abs() < 1e-12);
        }
    }

    #[test]
    fn with_profitability_replaces_v_only() {
        let cp = sample();
        let cp2 = cp.with_profitability(1.5);
        assert_eq!(cp2.profitability(), 1.5);
        assert_eq!(cp2.population(0.4), cp.population(0.4));
        assert_eq!(cp2.name(), cp.name());
    }

    #[test]
    #[should_panic(expected = "profitability must be non-negative")]
    fn negative_profitability_rejected() {
        sample().with_profitability(-1.0);
    }

    #[test]
    fn clone_is_deep_enough() {
        let cp = sample();
        let c = cp.clone();
        assert_eq!(cp.population(0.7), c.population(0.7));
        assert_eq!(format!("{cp:?}"), format!("{c:?}"));
    }

    #[test]
    fn debug_shows_family_names() {
        let s = format!("{:?}", sample());
        assert!(s.contains("exponential"));
        assert!(s.contains("video"));
    }
}
