//! One-sided ISP pricing (§3.2): the status-quo market.
//!
//! The access ISP charges all traffic a uniform usage price `p`; providers
//! cannot react (no subsidies yet). The market object wraps a [`System`]
//! and exposes the price-indexed quantities of Figures 4 and 5: utilization
//! `φ(p)`, per-CP and aggregate throughput `θ_i(p)`, `θ(p)`, ISP revenue
//! `R(p) = p·θ(p)`, and CP utilities `U_i = v_i θ_i` — plus the
//! revenue-maximizing price, which the paper's Figure 4 shows is interior
//! (revenue is single-peaked).

use crate::system::{System, SystemState};
use subcomp_num::optimize::maximize_multistart;
use subcomp_num::{NumResult, Tolerance};

/// The §3.2 one-sided-pricing market over a system.
#[derive(Debug, Clone, Copy)]
pub struct OneSidedMarket<'a> {
    system: &'a System,
}

/// A point on the one-sided market's price sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PricePoint {
    /// The uniform price `p`.
    pub p: f64,
    /// The solved system state at `p`.
    pub state: SystemState,
    /// ISP revenue `R = p θ`.
    pub revenue: f64,
    /// CP utilities `U_i = v_i θ_i` (no subsidies in the one-sided model).
    pub utilities: Vec<f64>,
}

impl<'a> OneSidedMarket<'a> {
    /// Wraps a system.
    pub fn new(system: &'a System) -> Self {
        OneSidedMarket { system }
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        self.system
    }

    /// Solves the state at uniform price `p`.
    pub fn state(&self, p: f64) -> NumResult<SystemState> {
        self.system.state_at_uniform_price(p)
    }

    /// ISP revenue `R(p) = p · θ(p)`.
    pub fn revenue(&self, p: f64) -> NumResult<f64> {
        Ok(p * self.state(p)?.theta())
    }

    /// Full evaluation at one price.
    pub fn evaluate(&self, p: f64) -> NumResult<PricePoint> {
        let state = self.state(p)?;
        let revenue = p * state.theta();
        let utilities = self
            .system
            .cps()
            .iter()
            .zip(&state.theta_i)
            .map(|(cp, &th)| cp.profitability() * th)
            .collect();
        Ok(PricePoint { p, state, revenue, utilities })
    }

    /// Sweeps a price grid (Figure 4/5 driver).
    pub fn sweep(&self, prices: &[f64]) -> NumResult<Vec<PricePoint>> {
        prices.iter().map(|&p| self.evaluate(p)).collect()
    }

    /// Finds the revenue-maximizing price on `[lo, hi]`.
    ///
    /// Figure 4 shows `R(p)` is single-peaked for the paper's family, but
    /// we use a multi-start search so alternative families are safe too.
    pub fn revenue_maximizing_price(&self, lo: f64, hi: f64) -> NumResult<(f64, f64)> {
        let f = |p: f64| self.revenue(p).unwrap_or(f64::NEG_INFINITY);
        let m = maximize_multistart(&f, lo, hi, 4, 32, Tolerance::new(1e-10, 1e-10))?;
        Ok((m.x, m.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::{build_system, ExpCpSpec};

    fn paper_specs() -> Vec<ExpCpSpec> {
        let mut specs = Vec::new();
        for &alpha in &[1.0, 3.0, 5.0] {
            for &beta in &[1.0, 3.0, 5.0] {
                specs.push(ExpCpSpec::unit(alpha, beta, 1.0));
            }
        }
        specs
    }

    #[test]
    fn revenue_is_price_times_throughput() {
        let sys = build_system(&paper_specs(), 1.0).unwrap();
        let market = OneSidedMarket::new(&sys);
        let pt = market.evaluate(0.8).unwrap();
        assert!((pt.revenue - 0.8 * pt.state.theta()).abs() < 1e-12);
    }

    #[test]
    fn throughput_monotone_decreasing_in_price() {
        // Figure 4 left panel / Theorem 2.
        let sys = build_system(&paper_specs(), 1.0).unwrap();
        let market = OneSidedMarket::new(&sys);
        let prices: Vec<f64> = (0..=20).map(|i| i as f64 * 0.15).collect();
        let sweep = market.sweep(&prices).unwrap();
        for w in sweep.windows(2) {
            assert!(w[1].state.theta() < w[0].state.theta());
        }
    }

    #[test]
    fn revenue_single_peaked_on_paper_family() {
        // Figure 4 right panel: revenue rises then falls.
        let sys = build_system(&paper_specs(), 1.0).unwrap();
        let market = OneSidedMarket::new(&sys);
        let prices: Vec<f64> = (1..=60).map(|i| i as f64 * 0.05).collect();
        let rev: Vec<f64> = market.sweep(&prices).unwrap().iter().map(|pt| pt.revenue).collect();
        // Identify the peak and check monotone up then monotone down.
        let peak = rev.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(peak > 0 && peak < rev.len() - 1, "peak must be interior, at {peak}");
        for i in 1..=peak {
            assert!(rev[i] >= rev[i - 1] - 1e-12, "rising flank broken at {i}");
        }
        for i in peak + 1..rev.len() {
            assert!(rev[i] <= rev[i - 1] + 1e-12, "falling flank broken at {i}");
        }
    }

    #[test]
    fn optimal_price_matches_grid_peak() {
        let sys = build_system(&paper_specs(), 1.0).unwrap();
        let market = OneSidedMarket::new(&sys);
        let (p_star, r_star) = market.revenue_maximizing_price(0.0, 3.0).unwrap();
        // Compare against a fine grid.
        let grid: Vec<f64> = (0..=300).map(|i| i as f64 * 0.01).collect();
        let best = market
            .sweep(&grid)
            .unwrap()
            .into_iter()
            .max_by(|a, b| a.revenue.partial_cmp(&b.revenue).unwrap())
            .unwrap();
        assert!((p_star - best.p).abs() < 0.02, "p* = {p_star} vs grid {}", best.p);
        assert!(r_star >= best.revenue - 1e-9);
    }

    #[test]
    fn utilities_scale_with_profitability() {
        let mut specs = paper_specs();
        specs[0].v = 2.0;
        let sys = build_system(&specs, 1.0).unwrap();
        let market = OneSidedMarket::new(&sys);
        let pt = market.evaluate(0.5).unwrap();
        assert!((pt.utilities[0] - 2.0 * pt.state.theta_i[0]).abs() < 1e-12);
        assert!((pt.utilities[1] - pt.state.theta_i[1]).abs() < 1e-12);
    }

    #[test]
    fn zero_price_maximizes_throughput_not_revenue() {
        let sys = build_system(&paper_specs(), 1.0).unwrap();
        let market = OneSidedMarket::new(&sys);
        let at0 = market.evaluate(0.0).unwrap();
        let at_half = market.evaluate(0.5).unwrap();
        assert!(at0.state.theta() > at_half.state.theta());
        assert_eq!(at0.revenue, 0.0);
        assert!(at_half.revenue > 0.0);
    }
}
