//! Comparative statics: Theorem 1 (capacity & user effects) and Theorem 2
//! (price effect) in closed form.
//!
//! All formulas are evaluated at a solved [`SystemState`] and normalized by
//! the gap slope `dg/dφ` of Equation (2), exactly as in the paper:
//!
//! * `∂φ/∂µ = −(dg/dφ)^{-1} ∂Θ/∂µ < 0`                      (Eq. 3)
//! * `∂φ/∂m_i = (dg/dφ)^{-1} λ_i > 0`                        (Eq. 4)
//! * `∂θ_i/∂µ = m_i λ_i' ∂φ/∂µ > 0`, `∂θ_i/∂m_i > 0`, `∂θ_j/∂m_i < 0`
//! * `∂φ/∂p = (dg/dφ)^{-1} Σ_k m_k'(p) λ_k ≤ 0`              (Eq. 5)
//! * `dθ/dp ≤ 0` (Eq. 6) and the per-CP sign condition (7).
//!
//! Every quantity has a finite-difference cross-check in the tests.

use crate::system::{System, SystemState};
use subcomp_num::{NumError, NumResult};

/// Closed-form capacity and user effects (Theorem 1) at a state.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemEffects {
    /// `∂φ/∂µ` (negative).
    pub dphi_dmu: f64,
    /// `∂φ/∂m_i` per provider (positive).
    pub dphi_dm: Vec<f64>,
    /// `∂θ_i/∂µ` per provider (positive).
    pub dtheta_dmu: Vec<f64>,
    /// `∂θ_j/∂m_i` as a row-major `n × n` table indexed `[j][i]`:
    /// diagonal positive, off-diagonal negative.
    pub dtheta_dm: Vec<Vec<f64>>,
}

impl SystemEffects {
    /// Evaluates Theorem 1's formulas at a solved state.
    pub fn compute(system: &System, state: &SystemState) -> NumResult<SystemEffects> {
        let n = system.n();
        if state.n() != n {
            return Err(NumError::DimensionMismatch { expected: n, actual: state.n() });
        }
        let dg = state.dg_dphi;
        if !(dg > 0.0) {
            return Err(NumError::Domain {
                what: "gap slope must be positive (Lemma 1)",
                value: dg,
            });
        }
        let u = system.utilization_fn();
        let dphi_dmu = -u.dtheta_dmu(state.phi, system.mu()) / dg;
        let dphi_dm: Vec<f64> = state.lambda.iter().map(|l| l / dg).collect();
        let dlambda: Vec<f64> =
            system.cps().iter().map(|cp| cp.throughput().dlambda_dphi(state.phi)).collect();
        let dtheta_dmu: Vec<f64> = (0..n).map(|i| state.m[i] * dlambda[i] * dphi_dmu).collect();
        let mut dtheta_dm = vec![vec![0.0; n]; n];
        for j in 0..n {
            for i in 0..n {
                // ∂θ_j/∂m_i = δ_{ij} λ_i + m_j λ_j' ∂φ/∂m_i.
                let indirect = state.m[j] * dlambda[j] * dphi_dm[i];
                dtheta_dm[j][i] = if i == j { state.lambda[i] + indirect } else { indirect };
            }
        }
        Ok(SystemEffects { dphi_dmu, dphi_dm, dtheta_dmu, dtheta_dm })
    }

    /// Verifies the sign structure Theorem 1 asserts; returns the first
    /// violated claim, if any (used by property tests).
    pub fn check_signs(&self) -> Option<&'static str> {
        if !(self.dphi_dmu < 0.0) {
            return Some("dphi/dmu must be negative");
        }
        for &d in &self.dphi_dm {
            if !(d > 0.0) {
                return Some("dphi/dm_i must be positive");
            }
        }
        for &d in &self.dtheta_dmu {
            if !(d > 0.0) {
                return Some("dtheta_i/dmu must be positive");
            }
        }
        let n = self.dphi_dm.len();
        for j in 0..n {
            for i in 0..n {
                let v = self.dtheta_dm[j][i];
                if i == j && !(v > 0.0) {
                    return Some("dtheta_i/dm_i must be positive");
                }
                if i != j && !(v < 0.0) {
                    return Some("dtheta_j/dm_i must be negative");
                }
            }
        }
        None
    }
}

/// Closed-form price effects (Theorem 2) under uniform one-sided pricing
/// `t_i = p`, evaluated at the state solved for that price.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceEffects {
    /// The uniform price at which the effects are evaluated.
    pub p: f64,
    /// `∂φ/∂p` (non-positive), Equation (5).
    pub dphi_dp: f64,
    /// `dθ_i/dp` per provider (sign depends on condition (7)).
    pub dtheta_dp: Vec<f64>,
    /// `dθ/dp` aggregate (non-positive), Equation (6).
    pub dtheta_total_dp: f64,
    /// Left-hand side of condition (7), `ε^m_p / ε^λ_φ`, per provider.
    pub condition7_lhs: Vec<f64>,
    /// Right-hand side of condition (7), `−ε^φ_p` (shared by all CPs).
    pub condition7_rhs: f64,
}

impl PriceEffects {
    /// Evaluates Theorem 2's formulas. `state` must be the solved state at
    /// uniform price `p`.
    pub fn compute(system: &System, state: &SystemState, p: f64) -> NumResult<PriceEffects> {
        let n = system.n();
        if state.n() != n {
            return Err(NumError::DimensionMismatch { expected: n, actual: state.n() });
        }
        let dg = state.dg_dphi;
        if !(dg > 0.0) {
            return Err(NumError::Domain {
                what: "gap slope must be positive (Lemma 1)",
                value: dg,
            });
        }
        let dm_dp: Vec<f64> = system.cps().iter().map(|cp| cp.demand().dm_dt(p)).collect();
        let dphi_dp = dm_dp.iter().zip(&state.lambda).map(|(dm, l)| dm * l).sum::<f64>() / dg;
        let mut dtheta_dp = Vec::with_capacity(n);
        for i in 0..n {
            let dlambda = system.cp(i).throughput().dlambda_dphi(state.phi);
            dtheta_dp.push(dm_dp[i] * state.lambda[i] + state.m[i] * dlambda * dphi_dp);
        }
        let dtheta_total_dp = dtheta_dp.iter().sum();
        // Condition (7): theta_i increases iff eps^m_p / eps^lambda_phi < -eps^phi_p.
        let phi = state.phi;
        let condition7_rhs = if phi > 0.0 { -dphi_dp * p / phi } else { 0.0 };
        let mut condition7_lhs = Vec::with_capacity(n);
        for i in 0..n {
            let eps_m = if state.m[i] > 0.0 { dm_dp[i] * p / state.m[i] } else { 0.0 };
            let eps_l = system.cp(i).throughput().elasticity(phi);
            condition7_lhs.push(if eps_l != 0.0 { eps_m / eps_l } else { f64::INFINITY });
        }
        Ok(PriceEffects { p, dphi_dp, dtheta_dp, dtheta_total_dp, condition7_lhs, condition7_rhs })
    }

    /// Whether condition (7) predicts `θ_i` to be *increasing* in `p`.
    pub fn throughput_increasing(&self, i: usize) -> bool {
        self.condition7_lhs[i] < self.condition7_rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::ContentProvider;
    use crate::demand::ExpDemand;
    use crate::throughput::ExpThroughput;
    use crate::utilization::LinearUtilization;
    use subcomp_num::diff::derivative;

    fn paper_system() -> System {
        let mut cps = Vec::new();
        for &alpha in &[1.0, 3.0, 5.0] {
            for &beta in &[1.0, 3.0, 5.0] {
                cps.push(
                    ContentProvider::builder(format!("a{alpha}-b{beta}"))
                        .demand(ExpDemand::new(1.0, alpha))
                        .throughput(ExpThroughput::new(1.0, beta))
                        .profitability(1.0)
                        .build(),
                );
            }
        }
        System::new(cps, 1.0, LinearUtilization).unwrap()
    }

    #[test]
    fn theorem1_signs_hold_on_paper_system() {
        let sys = paper_system();
        let state = sys.state_at_uniform_price(0.4).unwrap();
        let eff = SystemEffects::compute(&sys, &state).unwrap();
        assert_eq!(eff.check_signs(), None);
    }

    #[test]
    fn dphi_dmu_matches_finite_difference() {
        let sys = paper_system();
        let m = sys.populations(&[0.5; 9]).unwrap();
        let state = sys.solve_state(&m).unwrap();
        let eff = SystemEffects::compute(&sys, &state).unwrap();
        let fd =
            derivative(&|mu| sys.with_capacity(mu).unwrap().solve_state(&m).unwrap().phi, sys.mu())
                .unwrap();
        assert!((eff.dphi_dmu - fd).abs() < 1e-6, "{} vs {fd}", eff.dphi_dmu);
    }

    #[test]
    fn dphi_dm_matches_finite_difference() {
        let sys = paper_system();
        let m = sys.populations(&[0.5; 9]).unwrap();
        let state = sys.solve_state(&m).unwrap();
        let eff = SystemEffects::compute(&sys, &state).unwrap();
        for i in [0usize, 4, 8] {
            let fd = derivative(
                &|mi| {
                    let mut mm = m.clone();
                    mm[i] = mi;
                    sys.solve_state(&mm).unwrap().phi
                },
                m[i],
            )
            .unwrap();
            assert!((eff.dphi_dm[i] - fd).abs() < 1e-6, "CP {i}: {} vs {fd}", eff.dphi_dm[i]);
        }
    }

    #[test]
    fn dtheta_dm_matches_finite_difference() {
        let sys = paper_system();
        let m = sys.populations(&[0.6; 9]).unwrap();
        let state = sys.solve_state(&m).unwrap();
        let eff = SystemEffects::compute(&sys, &state).unwrap();
        // Probe own and cross derivatives for a few pairs.
        for (j, i) in [(0usize, 0usize), (1, 0), (5, 3), (8, 8)] {
            let fd = derivative(
                &|mi| {
                    let mut mm = m.clone();
                    mm[i] = mi;
                    sys.solve_state(&mm).unwrap().theta_i[j]
                },
                m[i],
            )
            .unwrap();
            assert!(
                (eff.dtheta_dm[j][i] - fd).abs() < 1e-6,
                "dtheta_{j}/dm_{i}: {} vs {fd}",
                eff.dtheta_dm[j][i]
            );
        }
    }

    #[test]
    fn dtheta_dmu_matches_finite_difference() {
        let sys = paper_system();
        let m = sys.populations(&[0.6; 9]).unwrap();
        let state = sys.solve_state(&m).unwrap();
        let eff = SystemEffects::compute(&sys, &state).unwrap();
        for i in [0usize, 8] {
            let fd = derivative(
                &|mu| sys.with_capacity(mu).unwrap().solve_state(&m).unwrap().theta_i[i],
                sys.mu(),
            )
            .unwrap();
            assert!((eff.dtheta_dmu[i] - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn theorem2_dphi_dp_matches_finite_difference() {
        let sys = paper_system();
        let p = 0.5;
        let state = sys.state_at_uniform_price(p).unwrap();
        let pe = PriceEffects::compute(&sys, &state, p).unwrap();
        let fd = derivative(&|pp| sys.state_at_uniform_price(pp).unwrap().phi, p).unwrap();
        assert!((pe.dphi_dp - fd).abs() < 1e-6, "{} vs {fd}", pe.dphi_dp);
        assert!(pe.dphi_dp < 0.0);
    }

    #[test]
    fn theorem2_aggregate_throughput_decreases() {
        let sys = paper_system();
        for p in [0.1, 0.5, 1.0, 1.8] {
            let state = sys.state_at_uniform_price(p).unwrap();
            let pe = PriceEffects::compute(&sys, &state, p).unwrap();
            assert!(pe.dtheta_total_dp <= 0.0, "p = {p}");
            let fd = derivative(&|pp| sys.state_at_uniform_price(pp).unwrap().theta(), p).unwrap();
            assert!(
                (pe.dtheta_total_dp - fd).abs() < 1e-5,
                "p = {p}: {} vs {fd}",
                pe.dtheta_total_dp
            );
        }
    }

    #[test]
    fn condition7_predicts_throughput_direction() {
        // Paper Figure 5: at small p, CPs with small alpha/beta ratio have
        // *increasing* throughput. CP (alpha=1, beta=5) is index 2 in our
        // row-major (alpha, beta) ordering.
        let sys = paper_system();
        let p = 0.05;
        let state = sys.state_at_uniform_price(p).unwrap();
        let pe = PriceEffects::compute(&sys, &state, p).unwrap();
        for i in 0..9 {
            let fd =
                derivative(&|pp| sys.state_at_uniform_price(pp).unwrap().theta_i[i], p).unwrap();
            assert_eq!(
                pe.throughput_increasing(i),
                fd > 0.0,
                "condition (7) disagrees with finite difference for CP {i} (fd = {fd})"
            );
            assert!((pe.dtheta_dp[i] - fd).abs() < 1e-5);
        }
        // And the paper's qualitative claim: (1,5) increasing at small p.
        assert!(pe.throughput_increasing(2), "low-alpha/high-beta CP should gain");
        // (5,1) decreasing.
        assert!(!pe.throughput_increasing(6), "high-alpha/low-beta CP should lose");
    }

    #[test]
    fn paper_closed_form_dphi_dp() {
        // For the exponential example, dphi/dp = -sum(alpha_i theta_i) /
        // (mu + sum(beta_i theta_i)) (derivation before Eq. 8).
        let sys = paper_system();
        let p = 0.6;
        let state = sys.state_at_uniform_price(p).unwrap();
        let pe = PriceEffects::compute(&sys, &state, p).unwrap();
        let alphas = [1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 5.0, 5.0, 5.0];
        let betas = [1.0, 3.0, 5.0, 1.0, 3.0, 5.0, 1.0, 3.0, 5.0];
        let num: f64 = (0..9).map(|i| alphas[i] * state.theta_i[i]).sum();
        let den: f64 = sys.mu() + (0..9).map(|i| betas[i] * state.theta_i[i]).sum::<f64>();
        assert!((pe.dphi_dp + num / den).abs() < 1e-10);
    }

    #[test]
    fn effects_reject_mismatched_state() {
        let sys = paper_system();
        let other = System::new(vec![], 1.0, LinearUtilization).unwrap();
        let state = other.solve_state(&[]).unwrap();
        assert!(SystemEffects::compute(&sys, &state).is_err());
        assert!(PriceEffects::compute(&sys, &state, 0.5).is_err());
    }
}
