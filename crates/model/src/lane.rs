//! Structure-of-arrays view of K same-shape systems — the model half of
//! the lane-batched farm engine.
//!
//! A *lane* is one game's physical system; a [`LaneSystem`] packs K lanes
//! of identical market shape (same provider count `n`, the paper's
//! exponential demand/throughput families on the linear utilization) into
//! contiguous per-field arrays, lane-major: field `x` of provider `j` in
//! lane `l` lives at `x[l * n + j]`. The batch solver in `subcomp-core`
//! then sweeps best responses across all lanes in lockstep, touching
//! nothing but these flat arrays.
//!
//! **Bit-exactness contract.** Every per-lane computation here mirrors the
//! scalar [`crate::system::System`] kernel expression-for-expression: the
//! same merged domain-check/peak pass, the same bracket seed, the same
//! specialized `g(φ) = φµ − Σ_j m_j (λ₀_j e^{-β_j φ})` closure evaluated
//! through a per-lane distinct-`β` table built with the same bitwise
//! first-appearance deduplication, and the same root-finder tolerance
//! copied from the source system. `exp` is a pure function, so a lane
//! solve produces the identical bits the scalar solve of that lane's
//! system would — pinned by `tests/lane_equivalence.rs`.
//!
//! **Tiling note.** The pinned stable toolchain has no `std::simd`, so the
//! lane-wide array loops in the solver (copy, residual, mask bookkeeping)
//! are hand-tiled scalar chunks the autovectorizer handles; the per-lane
//! root iterations are inherently data-dependent and stay scalar.

use crate::system::System;
use subcomp_num::roots::solve_increasing_seeded;
use subcomp_num::{NumError, NumResult, Tolerance};

/// Per-lane distinct-`β` tables, flattened. Mirrors the scalar
/// `SystemKernel`'s deduplication: within a lane, `β` values are compared
/// bitwise and kept in first-appearance order, so providers sharing a `β`
/// read the identical `e^{-βφ}` the scalar kernel hands them.
#[derive(Debug, Clone, Default)]
pub struct LaneKernel {
    /// Local slot of provider `(lane, j)` within its lane's `β` table
    /// (lane-major, `lanes * n`).
    beta_idx: Vec<usize>,
    /// Distinct `β` values, lane after lane.
    betas: Vec<f64>,
    /// `betas` offsets per lane (`lanes + 1` entries).
    beta_off: Vec<usize>,
    /// Peak throughput `λ_j(0)` per provider (lane-major) — for the
    /// exponential family this is exactly `λ₀ · e^0 = λ₀`, the same bits
    /// the scalar kernel caches.
    peaks: Vec<f64>,
    /// Widest per-lane `β` table (scratch sizing).
    max_distinct: usize,
}

/// K same-shape systems as contiguous per-field arrays.
#[derive(Debug, Clone)]
pub struct LaneSystem {
    lanes: usize,
    n: usize,
    /// Demand scale `m₀` per provider (lane-major).
    m0: Vec<f64>,
    /// Demand sensitivity `α` per provider (lane-major).
    alpha: Vec<f64>,
    /// Throughput scale `λ₀` per provider (lane-major).
    lambda0: Vec<f64>,
    /// Profitability `v` per provider (lane-major).
    v: Vec<f64>,
    /// Capacity `µ` per lane.
    mu: Vec<f64>,
    /// Fixed-point tolerance per lane (copied from the source system so
    /// batched φ-solves stop at exactly the scalar criterion).
    tol: Vec<Tolerance>,
    kernel: LaneKernel,
}

impl LaneSystem {
    /// Packs systems into lanes. Returns `None` when the batch is not
    /// lane-eligible: mixed provider counts, an empty batch, `n = 0`, a
    /// non-exponential demand or throughput family, or a non-linear
    /// utilization. Declining is always safe — callers fall back to the
    /// scalar path.
    pub fn from_systems(systems: &[&System]) -> Option<LaneSystem> {
        let (first, rest) = systems.split_first()?;
        let n = first.n();
        if n == 0 || rest.iter().any(|s| s.n() != n) {
            return None;
        }
        let lanes = systems.len();
        let mut m0 = Vec::with_capacity(lanes * n);
        let mut alpha = Vec::with_capacity(lanes * n);
        let mut lambda0 = Vec::with_capacity(lanes * n);
        let mut v = Vec::with_capacity(lanes * n);
        let mut mu = Vec::with_capacity(lanes);
        let mut tol = Vec::with_capacity(lanes);
        let mut kernel = LaneKernel {
            beta_idx: Vec::with_capacity(lanes * n),
            betas: Vec::new(),
            beta_off: Vec::with_capacity(lanes + 1),
            peaks: Vec::with_capacity(lanes * n),
            max_distinct: 0,
        };
        kernel.beta_off.push(0);
        for sys in systems {
            if !sys.utilization_fn().is_linear() {
                return None;
            }
            let lane_base = kernel.betas.len();
            for cp in sys.cps() {
                let (dm0, dalpha) = cp.demand().exp_coeffs()?;
                let (l0, beta) = cp.throughput().exp_coeffs()?;
                m0.push(dm0);
                alpha.push(dalpha);
                lambda0.push(l0);
                v.push(cp.profitability());
                kernel.peaks.push(cp.throughput().peak());
                // Same dedup as the scalar kernel: bitwise, first wins.
                let lane_betas = &kernel.betas[lane_base..];
                let slot = lane_betas
                    .iter()
                    .position(|b| b.to_bits() == beta.to_bits())
                    .unwrap_or_else(|| {
                        kernel.betas.push(beta);
                        kernel.betas.len() - 1 - lane_base
                    });
                kernel.beta_idx.push(slot);
            }
            kernel.beta_off.push(kernel.betas.len());
            kernel.max_distinct = kernel.max_distinct.max(kernel.betas.len() - lane_base);
            mu.push(sys.mu());
            tol.push(sys.tolerance());
        }
        Some(LaneSystem { lanes, n, m0, alpha, lambda0, v, mu, tol, kernel })
    }

    /// Number of lanes K.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Providers per lane.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Widest per-lane distinct-`β` table — size one shared `exp` scratch
    /// to this and every lane fits.
    pub fn max_distinct_betas(&self) -> usize {
        self.kernel.max_distinct
    }

    /// Capacity of one lane.
    pub fn mu_of(&self, lane: usize) -> f64 {
        self.mu[lane]
    }

    /// Profitability `v_j` of provider `j` in `lane`.
    pub fn profitability(&self, lane: usize, j: usize) -> f64 {
        self.v[lane * self.n + j]
    }

    #[inline]
    fn lane_betas(&self, lane: usize) -> &[f64] {
        &self.kernel.betas[self.kernel.beta_off[lane]..self.kernel.beta_off[lane + 1]]
    }

    #[inline]
    fn field(&self, xs: &[f64], lane: usize, j: usize) -> f64 {
        xs[lane * self.n + j]
    }

    /// Population `m_j(t) = m₀ e^{-αt}` — the identical expression
    /// `ExpDemand::m` computes.
    #[inline]
    pub fn population(&self, lane: usize, j: usize, t: f64) -> f64 {
        self.field(&self.m0, lane, j) * (-self.field(&self.alpha, lane, j) * t).exp()
    }

    /// `dm/dt = -α m(t)` — the identical expression `ExpDemand::dm_dt`
    /// computes (including the recomputation of `m(t)`).
    #[inline]
    pub fn dm_dt(&self, lane: usize, j: usize, t: f64) -> f64 {
        -self.field(&self.alpha, lane, j) * self.population(lane, j, t)
    }

    /// `λ_j(φ) = λ₀ e^{-βφ}` — the identical expression the scalar kernel's
    /// `lambda_of` computes.
    #[inline]
    pub fn lambda_of(&self, lane: usize, j: usize, phi: f64) -> f64 {
        let beta = self.lane_betas(lane)[self.kernel.beta_idx[lane * self.n + j]];
        self.field(&self.lambda0, lane, j) * (-beta * phi).exp()
    }

    /// `dλ/dφ = -β λ(φ)` — the identical expression `ExpThroughput`
    /// computes.
    #[inline]
    pub fn dlambda_dphi(&self, lane: usize, j: usize, phi: f64) -> f64 {
        let beta = self.lane_betas(lane)[self.kernel.beta_idx[lane * self.n + j]];
        -beta * self.lambda_of(lane, j, phi)
    }

    /// Solves one lane's congestion fixed point (Definition 1) given that
    /// lane's populations. Mirrors the scalar `System::solve_phi_with`
    /// specialization for the exponential/linear setting line by line, so
    /// the returned root carries identical bits. `exp` must hold at least
    /// [`LaneSystem::max_distinct_betas`] slots.
    pub fn solve_phi(&self, lane: usize, m: &[f64], exp: &mut [f64]) -> NumResult<f64> {
        if m.len() != self.n {
            return Err(NumError::DimensionMismatch { expected: self.n, actual: m.len() });
        }
        let base = lane * self.n;
        let lambda0 = &self.lambda0[base..base + self.n];
        let beta_idx = &self.kernel.beta_idx[base..base + self.n];
        let peaks = &self.kernel.peaks[base..base + self.n];
        let betas = self.lane_betas(lane);
        let exp = &mut exp[..betas.len()];
        // One pass merges the population domain checks with the peak-demand
        // accumulation, exactly as the scalar kernel does.
        let mut peak_demand = 0.0;
        for (&mi, &pk) in m.iter().zip(peaks) {
            if !(mi >= 0.0) || !mi.is_finite() {
                return Err(NumError::Domain {
                    what: "populations must be non-negative and finite",
                    value: mi,
                });
            }
            peak_demand += mi * pk;
        }
        if peak_demand == 0.0 {
            return Ok(0.0);
        }
        let mu = self.mu[lane];
        // Initial bracket guess: Φ(peak, µ) = peak/µ on the linear family.
        let guess = peak_demand / mu;
        let step = if guess.is_finite() && guess > 0.0 { guess } else { 1.0 };
        // g(0) in closed form: Θ(0, µ) − peak_demand, with Θ(0, µ) written
        // as `0.0 * µ` so the bits match the scalar `theta_inv(0.0)`.
        let g0 = 0.0 * mu - peak_demand;
        let mut g = |phi: f64| {
            for (e, &b) in exp.iter_mut().zip(betas) {
                *e = (-b * phi).exp();
            }
            let mut demand = 0.0;
            for j in 0..m.len() {
                demand += m[j] * (lambda0[j] * exp[beta_idx[j]]);
            }
            phi * mu - demand
        };
        Ok(solve_increasing_seeded(&mut g, 0.0, g0, step, self.tol[lane])?.x)
    }

    /// The gap slope `dg/dφ = µ − Σ_j m_j dλ_j/dφ` of one lane — the
    /// scalar `dgap_dphi_with` on the lane's table (fills `exp` at `phi`,
    /// accumulates in provider order).
    pub fn dgap_dphi(&self, lane: usize, phi: f64, m: &[f64], exp: &mut [f64]) -> f64 {
        let base = lane * self.n;
        let lambda0 = &self.lambda0[base..base + self.n];
        let beta_idx = &self.kernel.beta_idx[base..base + self.n];
        let betas = self.lane_betas(lane);
        let exp = &mut exp[..betas.len()];
        for (e, &b) in exp.iter_mut().zip(betas) {
            *e = (-b * phi).exp();
        }
        let mut demand_slope = 0.0;
        for j in 0..m.len() {
            let dl = -betas[beta_idx[j]] * (lambda0[j] * exp[beta_idx[j]]);
            demand_slope += m[j] * dl;
        }
        self.mu[lane] - demand_slope
    }

    /// Assembles one lane's converged state — `λ_j` and `θ_j = m_j λ_j`
    /// per provider plus the gap slope — exactly as the scalar
    /// `state_at_phi_into` does (one exp fill shared by all three).
    /// Returns `dg/dφ`.
    pub fn state_into(
        &self,
        lane: usize,
        phi: f64,
        m: &[f64],
        exp: &mut [f64],
        lambda_out: &mut [f64],
        theta_out: &mut [f64],
    ) -> f64 {
        let base = lane * self.n;
        let lambda0 = &self.lambda0[base..base + self.n];
        let beta_idx = &self.kernel.beta_idx[base..base + self.n];
        let betas = self.lane_betas(lane);
        let exp = &mut exp[..betas.len()];
        for (e, &b) in exp.iter_mut().zip(betas) {
            *e = (-b * phi).exp();
        }
        for j in 0..self.n {
            lambda_out[j] = lambda0[j] * exp[beta_idx[j]];
        }
        for j in 0..self.n {
            theta_out[j] = m[j] * lambda_out[j];
        }
        let mut demand_slope = 0.0;
        for j in 0..m.len() {
            let dl = -betas[beta_idx[j]] * (lambda0[j] * exp[beta_idx[j]]);
            demand_slope += m[j] * dl;
        }
        self.mu[lane] - demand_slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::{build_system, ExpCpSpec};
    use crate::cp::ContentProvider;
    use crate::demand::LinearDemand;
    use crate::throughput::ExpThroughput;
    use crate::utilization::LinearUtilization;

    fn sys(mu: f64, seedish: f64) -> System {
        let specs = [
            ExpCpSpec::unit(1.0 + seedish, 2.0, 1.0),
            ExpCpSpec::unit(3.0, 2.0, 0.5),
            ExpCpSpec::unit(5.0, 4.0 + seedish, 1.0),
        ];
        build_system(&specs, mu).unwrap()
    }

    #[test]
    fn packs_and_solves_bit_identically() {
        let systems = [sys(1.0, 0.0), sys(1.4, 0.25), sys(0.8, 1.5)];
        let refs: Vec<&System> = systems.iter().collect();
        let lane = LaneSystem::from_systems(&refs).expect("exp/linear systems are eligible");
        assert_eq!(lane.lanes(), 3);
        assert_eq!(lane.n(), 3);
        let mut exp = vec![0.0; lane.max_distinct_betas()];
        for (l, s) in systems.iter().enumerate() {
            let t = [0.3, 0.5, 0.1];
            let m: Vec<f64> = (0..3).map(|j| s.cp(j).population(t[j])).collect();
            let mut scratch = s.make_scratch();
            let scalar_phi = s.solve_phi_with(&m, &mut scratch).unwrap();
            let lane_phi = lane.solve_phi(l, &m, &mut exp).unwrap();
            assert_eq!(lane_phi.to_bits(), scalar_phi.to_bits(), "lane {l} phi drifted");
            // Populations, throughputs and slopes match bitwise too.
            for j in 0..3 {
                assert_eq!(
                    lane.population(l, j, t[j]).to_bits(),
                    s.cp(j).population(t[j]).to_bits()
                );
                assert_eq!(
                    lane.lambda_of(l, j, scalar_phi).to_bits(),
                    s.lambda_of(j, scalar_phi).to_bits()
                );
            }
            assert_eq!(
                lane.dgap_dphi(l, scalar_phi, &m, &mut exp).to_bits(),
                s.dgap_dphi_with(scalar_phi, &m, &mut scratch).to_bits()
            );
        }
    }

    #[test]
    fn beta_dedup_matches_scalar_kernel() {
        // Two providers share β = 2.0: the lane table must hold 2 distinct
        // betas for that lane, in first-appearance order.
        let systems = [sys(1.0, 0.0)];
        let refs: Vec<&System> = systems.iter().collect();
        let lane = LaneSystem::from_systems(&refs).unwrap();
        assert_eq!(lane.max_distinct_betas(), 2);
    }

    #[test]
    fn declines_mixed_shapes_and_families() {
        let a = sys(1.0, 0.0);
        let small = build_system(&[ExpCpSpec::unit(2.0, 2.0, 1.0)], 1.0).unwrap();
        assert!(LaneSystem::from_systems(&[&a, &small]).is_none(), "mixed n must decline");
        assert!(LaneSystem::from_systems(&[]).is_none(), "empty batch must decline");
        let generic = System::new(
            vec![ContentProvider::builder("lin")
                .demand(LinearDemand::new(1.0, 2.0).unwrap())
                .throughput(ExpThroughput::new(1.0, 2.0))
                .profitability(1.0)
                .build()],
            1.0,
            LinearUtilization,
        )
        .unwrap();
        assert!(
            LaneSystem::from_systems(&[&generic]).is_none(),
            "non-exponential demand must decline"
        );
    }

    #[test]
    fn zero_demand_lane_is_phi_zero() {
        let systems = [sys(1.0, 0.0)];
        let refs: Vec<&System> = systems.iter().collect();
        let lane = LaneSystem::from_systems(&refs).unwrap();
        let mut exp = vec![0.0; lane.max_distinct_betas()];
        assert_eq!(lane.solve_phi(0, &[0.0, 0.0, 0.0], &mut exp).unwrap(), 0.0);
        assert!(lane.solve_phi(0, &[f64::NAN, 0.0, 0.0], &mut exp).is_err());
    }
}
