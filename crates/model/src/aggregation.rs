//! Provider aggregation and rescaling (Lemma 2).
//!
//! Lemma 2 states that a provider can be replaced by any rescaling that
//! preserves the product `m_i λ_i(0)` and the φ-elasticity profile of
//! `λ_i`, without changing the system utilization or anyone's throughput.
//! Operationally this licenses the paper's numerics to model a *group* of
//! similar CPs as one aggregate "type" — and licenses us to replace the
//! per-CP primitives by simulator-measured aggregates.
//!
//! This module provides the exponential-family spec type used throughout
//! the experiments (the paper's `(α, β, v)` types), the Lemma 2 rescaling,
//! and aggregation of same-elasticity specs.

use crate::cp::ContentProvider;
use crate::demand::ExpDemand;
use crate::system::System;
use crate::throughput::ExpThroughput;
use subcomp_num::{NumError, NumResult};

/// A provider of the paper's exponential family:
/// `m(t) = m₀ e^{-αt}`, `λ(φ) = λ₀ e^{-βφ}`, per-unit profitability `v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpCpSpec {
    /// Population scale `m₀`.
    pub m0: f64,
    /// Price sensitivity `α`.
    pub alpha: f64,
    /// Peak per-user throughput `λ₀`.
    pub lambda0: f64,
    /// Congestion sensitivity `β`.
    pub beta: f64,
    /// Per-unit traffic profit `v`.
    pub v: f64,
}

impl ExpCpSpec {
    /// The paper's canonical unit type: `m₀ = λ₀ = 1`.
    pub fn unit(alpha: f64, beta: f64, v: f64) -> Self {
        ExpCpSpec { m0: 1.0, alpha, lambda0: 1.0, beta, v }
    }

    /// Builds the [`ContentProvider`].
    pub fn build(&self, name: impl Into<String>) -> ContentProvider {
        ContentProvider::builder(name)
            .demand(ExpDemand::new(self.m0, self.alpha))
            .throughput(ExpThroughput::new(self.lambda0, self.beta))
            .profitability(self.v)
            .build()
    }

    /// The Lemma 2 rescaling: `m₀ ← m₀/κ`, `λ₀ ← κ λ₀`. The product
    /// `m₀ λ₀` — and hence all system-level quantities — is invariant.
    pub fn rescaled(&self, kappa: f64) -> NumResult<ExpCpSpec> {
        if !(kappa > 0.0) || !kappa.is_finite() {
            return Err(NumError::Domain {
                what: "rescaling factor must be positive",
                value: kappa,
            });
        }
        Ok(ExpCpSpec { m0: self.m0 / kappa, lambda0: self.lambda0 * kappa, ..*self })
    }

    /// Whether two specs share demand and congestion elasticity profiles
    /// (same `α` and `β`) and profitability, making them aggregable.
    pub fn aggregable_with(&self, other: &ExpCpSpec, tol: f64) -> bool {
        (self.alpha - other.alpha).abs() <= tol
            && (self.beta - other.beta).abs() <= tol
            && (self.v - other.v).abs() <= tol
    }
}

/// Aggregates same-type specs into one (Lemma 2): the aggregate carries
/// `m₀ λ₀ = Σ_i m₀_i λ₀_i` with `λ₀ = 1`. Errors if the specs disagree in
/// `α`, `β` or `v` beyond `tol`, or if the list is empty.
pub fn aggregate(specs: &[ExpCpSpec], tol: f64) -> NumResult<ExpCpSpec> {
    let first = specs.first().ok_or(NumError::Empty { what: "aggregate" })?;
    let mut mass = 0.0;
    for s in specs {
        if !s.aggregable_with(first, tol) {
            return Err(NumError::Domain {
                what: "aggregate requires identical (alpha, beta, v)",
                value: (s.alpha - first.alpha).abs().max((s.beta - first.beta).abs()),
            });
        }
        mass += s.m0 * s.lambda0;
    }
    Ok(ExpCpSpec { m0: mass, alpha: first.alpha, lambda0: 1.0, beta: first.beta, v: first.v })
}

/// Builds a [`System`] from exponential specs with the paper's `Φ = θ/µ`.
pub fn build_system(specs: &[ExpCpSpec], mu: f64) -> NumResult<System> {
    build_system_with(specs, mu, crate::utilization::LinearUtilization)
}

/// Builds a [`System`] from exponential specs under an arbitrary
/// utilization family — the ablation/scenario knob behind Assumption 1.
pub fn build_system_with(
    specs: &[ExpCpSpec],
    mu: f64,
    utilization: impl crate::utilization::UtilizationFn + 'static,
) -> NumResult<System> {
    let cps = specs
        .iter()
        .enumerate()
        .map(|(i, s)| s.build(format!("cp{i}-a{}-b{}-v{}", s.alpha, s.beta, s.v)))
        .collect();
    System::new(cps, mu, utilization)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescaling_preserves_utilization() {
        // Lemma 2 end-to-end: replace CP 0 by its kappa-rescaling; the
        // system utilization and every other CP's throughput are unchanged.
        let specs = vec![ExpCpSpec::unit(2.0, 3.0, 1.0), ExpCpSpec::unit(4.0, 1.0, 0.5)];
        let sys = build_system(&specs, 1.0).unwrap();
        let base = sys.state_at_uniform_price(0.5).unwrap();

        for kappa in [0.25, 2.0, 10.0] {
            let mut specs2 = specs.clone();
            specs2[0] = specs[0].rescaled(kappa).unwrap();
            let sys2 = build_system(&specs2, 1.0).unwrap();
            let st2 = sys2.state_at_uniform_price(0.5).unwrap();
            assert!((st2.phi - base.phi).abs() < 1e-12, "kappa {kappa}");
            assert!((st2.theta_i[1] - base.theta_i[1]).abs() < 1e-12);
            // The rescaled CP's own aggregate throughput is invariant too.
            assert!((st2.theta_i[0] - base.theta_i[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn single_big_user_equivalence() {
        // The paper's remark: treat CP i as one big user m = 1 with peak
        // m_i lambda_i(0).
        let spec = ExpCpSpec { m0: 5.0, alpha: 2.0, lambda0: 0.2, beta: 3.0, v: 1.0 };
        let one_user = spec.rescaled(spec.m0).unwrap();
        assert!((one_user.m0 - 1.0).abs() < 1e-12);
        assert!((one_user.m0 * one_user.lambda0 - spec.m0 * spec.lambda0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_matches_explicit_group() {
        // A group of same-type CPs behaves exactly like its aggregate.
        let group = vec![
            ExpCpSpec { m0: 0.5, alpha: 3.0, lambda0: 1.0, beta: 2.0, v: 1.0 },
            ExpCpSpec { m0: 0.3, alpha: 3.0, lambda0: 2.0, beta: 2.0, v: 1.0 },
            ExpCpSpec { m0: 0.2, alpha: 3.0, lambda0: 0.5, beta: 2.0, v: 1.0 },
        ];
        let other = ExpCpSpec::unit(1.0, 4.0, 0.5);
        let agg = aggregate(&group, 1e-12).unwrap();

        let mut full = group.clone();
        full.push(other);
        let sys_full = build_system(&full, 1.0).unwrap();
        let sys_agg = build_system(&[agg, other], 1.0).unwrap();

        for p in [0.1, 0.5, 1.2] {
            let a = sys_full.state_at_uniform_price(p).unwrap();
            let b = sys_agg.state_at_uniform_price(p).unwrap();
            assert!((a.phi - b.phi).abs() < 1e-11, "p = {p}: {} vs {}", a.phi, b.phi);
            // Group total throughput equals aggregate throughput.
            let group_theta: f64 = a.theta_i[..3].iter().sum();
            assert!((group_theta - b.theta_i[0]).abs() < 1e-11);
            // The outsider is unaffected.
            assert!((a.theta_i[3] - b.theta_i[1]).abs() < 1e-11);
        }
    }

    #[test]
    fn aggregate_rejects_mixed_types() {
        let specs = vec![ExpCpSpec::unit(1.0, 2.0, 1.0), ExpCpSpec::unit(3.0, 2.0, 1.0)];
        assert!(aggregate(&specs, 1e-9).is_err());
    }

    #[test]
    fn aggregate_rejects_empty() {
        assert!(matches!(aggregate(&[], 1e-9), Err(NumError::Empty { .. })));
    }

    #[test]
    fn rescale_rejects_bad_kappa() {
        let s = ExpCpSpec::unit(1.0, 1.0, 1.0);
        assert!(s.rescaled(0.0).is_err());
        assert!(s.rescaled(-2.0).is_err());
    }

    #[test]
    fn build_system_with_honours_the_family() {
        let specs = [ExpCpSpec::unit(2.0, 3.0, 1.0)];
        let linear = build_system(&specs, 2.0).unwrap();
        let power =
            build_system_with(&specs, 2.0, crate::utilization::PowerUtilization::new(2.0).unwrap())
                .unwrap();
        assert_ne!(linear.utilization_fn().name(), power.utilization_fn().name());
        // Same demand, different congestion law, different fixed point.
        let a = linear.state_at_uniform_price(0.2).unwrap();
        let b = power.state_at_uniform_price(0.2).unwrap();
        assert!((a.phi - b.phi).abs() > 1e-6);
    }

    #[test]
    fn build_names_are_informative() {
        let sys = build_system(&[ExpCpSpec::unit(2.0, 5.0, 0.5)], 1.0).unwrap();
        assert!(sys.cp(0).name().contains("a2-b5"));
    }
}
