//! Per-user throughput functions `λ(φ)` (Assumption 1, second half).
//!
//! A CP's users obtain average throughput `λ_i(φ)`: strictly decreasing in
//! the system utilization `φ` (congestion) and vanishing as `φ → ∞`. The
//! paper's evaluation uses the exponential family `λ(φ) = λ₀ e^{-βφ}`,
//! where `β` is the *congestion sensitivity*: its φ-elasticity is exactly
//! `ε^λ_φ = -βφ`, which is what makes the paper's conditions (7)/(8) neat.
//!
//! [`PowerThroughput`] and [`LogisticThroughput`] satisfy the same axioms
//! with different tail behaviour and are used in robustness experiments.

use subcomp_num::{NumError, NumResult};

/// A per-user throughput function `λ(φ)` with derivative and elasticity.
pub trait ThroughputFn: Send + Sync {
    /// Throughput at utilization `φ ≥ 0`.
    fn lambda(&self, phi: f64) -> f64;

    /// Derivative `dλ/dφ` (strictly negative on `φ > 0`).
    fn dlambda_dphi(&self, phi: f64) -> f64;

    /// φ-elasticity `ε^λ_φ = (dλ/dφ)(φ/λ)` (Definition 2); non-positive.
    fn elasticity(&self, phi: f64) -> f64 {
        let l = self.lambda(phi);
        if l == 0.0 {
            0.0
        } else {
            self.dlambda_dphi(phi) * phi / l
        }
    }

    /// Peak (uncongested) throughput `λ(0)`.
    fn peak(&self) -> f64 {
        self.lambda(0.0)
    }

    /// Human-readable family name for reports.
    fn name(&self) -> &'static str;

    /// Clones into a boxed trait object.
    fn boxed_clone(&self) -> Box<dyn ThroughputFn>;

    /// Returns a copy whose peak `λ(0)` is scaled by `κ`, preserving the
    /// φ-elasticity profile — the scaling Lemma 2 builds on.
    fn scaled(&self, kappa: f64) -> Box<dyn ThroughputFn>;

    /// If this is the exponential family `λ(φ) = λ₀ e^{-βφ}`, its
    /// `(λ₀, β)` coefficients. The system's hot congestion loop uses this
    /// to share one `e^{-βφ}` evaluation among all providers with the same
    /// `β` (bit-identical to evaluating each [`ThroughputFn::lambda`],
    /// since `exp` is a pure function of the identical argument `-βφ`).
    /// Non-exponential families return `None` and are evaluated through
    /// the trait object as before.
    fn exp_coeffs(&self) -> Option<(f64, f64)> {
        None
    }
}

impl Clone for Box<dyn ThroughputFn> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// The paper's exponential throughput `λ(φ) = λ₀ e^{-βφ}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpThroughput {
    lambda0: f64,
    beta: f64,
}

impl ExpThroughput {
    /// Creates `λ₀ e^{-βφ}`; requires `λ₀ > 0`, `β > 0`.
    pub fn new(lambda0: f64, beta: f64) -> Self {
        assert!(lambda0 > 0.0 && lambda0.is_finite(), "peak throughput must be positive");
        assert!(beta > 0.0 && beta.is_finite(), "congestion sensitivity must be positive");
        ExpThroughput { lambda0, beta }
    }

    /// Congestion sensitivity `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl ThroughputFn for ExpThroughput {
    fn lambda(&self, phi: f64) -> f64 {
        self.lambda0 * (-self.beta * phi).exp()
    }
    fn dlambda_dphi(&self, phi: f64) -> f64 {
        -self.beta * self.lambda(phi)
    }
    fn elasticity(&self, phi: f64) -> f64 {
        // Closed form: ε^λ_φ = -βφ.
        -self.beta * phi
    }
    fn name(&self) -> &'static str {
        "exponential"
    }
    fn boxed_clone(&self) -> Box<dyn ThroughputFn> {
        Box::new(*self)
    }
    fn scaled(&self, kappa: f64) -> Box<dyn ThroughputFn> {
        Box::new(ExpThroughput::new(self.lambda0 * kappa, self.beta))
    }
    fn exp_coeffs(&self) -> Option<(f64, f64)> {
        Some((self.lambda0, self.beta))
    }
}

/// Power-law throughput `λ(φ) = λ₀ (1 + φ)^{-β}`: heavier tail than the
/// exponential family (throughput degrades polynomially, not exponentially).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerThroughput {
    lambda0: f64,
    beta: f64,
}

impl PowerThroughput {
    /// Creates `λ₀ (1+φ)^{-β}`; requires `λ₀ > 0`, `β > 0`.
    pub fn new(lambda0: f64, beta: f64) -> Self {
        assert!(lambda0 > 0.0 && lambda0.is_finite(), "peak throughput must be positive");
        assert!(beta > 0.0 && beta.is_finite(), "congestion sensitivity must be positive");
        PowerThroughput { lambda0, beta }
    }
}

impl ThroughputFn for PowerThroughput {
    fn lambda(&self, phi: f64) -> f64 {
        self.lambda0 * (1.0 + phi).powf(-self.beta)
    }
    fn dlambda_dphi(&self, phi: f64) -> f64 {
        -self.beta * self.lambda0 * (1.0 + phi).powf(-self.beta - 1.0)
    }
    fn elasticity(&self, phi: f64) -> f64 {
        // Closed form: -β φ / (1 + φ).
        -self.beta * phi / (1.0 + phi)
    }
    fn name(&self) -> &'static str {
        "power-law"
    }
    fn boxed_clone(&self) -> Box<dyn ThroughputFn> {
        Box::new(*self)
    }
    fn scaled(&self, kappa: f64) -> Box<dyn ThroughputFn> {
        Box::new(PowerThroughput::new(self.lambda0 * kappa, self.beta))
    }
}

/// Logistic throughput `λ(φ) = λ₀ · (1 + e^{-kφ₀}) / (1 + e^{k(φ - φ₀)})`.
///
/// Nearly flat below the knee `φ₀`, then collapses — models applications
/// that tolerate congestion up to a quality cliff (e.g. video with fixed
/// bitrate ladders). Normalized so `λ(0) = λ₀`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticThroughput {
    lambda0: f64,
    k: f64,
    knee: f64,
    norm: f64,
}

impl LogisticThroughput {
    /// Creates the family member; requires `λ₀ > 0`, steepness `k > 0`,
    /// knee `φ₀ ≥ 0`.
    pub fn new(lambda0: f64, k: f64, knee: f64) -> NumResult<Self> {
        if !(lambda0 > 0.0) || !(k > 0.0) || !(knee >= 0.0) {
            return Err(NumError::Domain {
                what: "LogisticThroughput requires lambda0 > 0, k > 0, knee >= 0",
                value: lambda0.min(k).min(knee),
            });
        }
        let norm = 1.0 + (-k * knee).exp();
        Ok(LogisticThroughput { lambda0, k, knee, norm })
    }
}

impl ThroughputFn for LogisticThroughput {
    fn lambda(&self, phi: f64) -> f64 {
        self.lambda0 * self.norm / (1.0 + (self.k * (phi - self.knee)).exp())
    }
    fn dlambda_dphi(&self, phi: f64) -> f64 {
        let e = (self.k * (phi - self.knee)).exp();
        -self.lambda0 * self.norm * self.k * e / (1.0 + e).powi(2)
    }
    fn name(&self) -> &'static str {
        "logistic"
    }
    fn boxed_clone(&self) -> Box<dyn ThroughputFn> {
        Box::new(*self)
    }
    fn scaled(&self, kappa: f64) -> Box<dyn ThroughputFn> {
        Box::new(LogisticThroughput { lambda0: self.lambda0 * kappa, ..*self })
    }
}

/// Numerically verifies the throughput axioms on a φ-grid: positive,
/// strictly decreasing, vanishing tail, derivative consistent with finite
/// differences. Returns the max derivative error observed.
pub fn check_throughput_axioms(t: &dyn ThroughputFn, phis: &[f64]) -> NumResult<f64> {
    let mut max_err = 0.0f64;
    let mut prev: Option<f64> = None;
    for &phi in phis {
        let l = t.lambda(phi);
        if !(l > 0.0) || !l.is_finite() {
            return Err(NumError::Domain { what: "lambda must be positive and finite", value: l });
        }
        if let Some(p) = prev {
            if l >= p {
                return Err(NumError::Domain {
                    what: "lambda must strictly decrease",
                    value: l - p,
                });
            }
        }
        prev = Some(l);
        let fd = subcomp_num::diff::derivative(&|x| t.lambda(x.max(0.0)), phi.max(1e-4))?;
        let an = t.dlambda_dphi(phi.max(1e-4));
        max_err = max_err.max((fd - an).abs() / an.abs().max(1e-9));
    }
    // Vanishing tail.
    let tail = t.lambda(1e4);
    if !(tail < 1e-3 * t.peak()) {
        return Err(NumError::Domain { what: "lambda must vanish as phi grows", value: tail });
    }
    Ok(max_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phis() -> Vec<f64> {
        vec![0.1, 0.3, 0.7, 1.2, 2.0, 3.5]
    }

    #[test]
    fn exp_axioms() {
        let t = ExpThroughput::new(2.0, 3.0);
        let err = check_throughput_axioms(&t, &phis()).unwrap();
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn power_axioms() {
        let t = PowerThroughput::new(1.5, 4.0);
        let err = check_throughput_axioms(&t, &phis()).unwrap();
        assert!(err < 1e-6);
    }

    #[test]
    fn logistic_axioms() {
        let t = LogisticThroughput::new(1.0, 6.0, 0.8).unwrap();
        let err = check_throughput_axioms(&t, &phis()).unwrap();
        assert!(err < 1e-6);
    }

    #[test]
    fn exp_elasticity_closed_form() {
        // The paper: epsilon^lambda_phi = -beta*phi for the exponential family.
        let t = ExpThroughput::new(1.0, 2.5);
        for phi in phis() {
            assert!((t.elasticity(phi) + 2.5 * phi).abs() < 1e-12);
        }
    }

    #[test]
    fn power_elasticity_closed_form() {
        let t = PowerThroughput::new(1.0, 3.0);
        for phi in phis() {
            assert!((t.elasticity(phi) + 3.0 * phi / (1.0 + phi)).abs() < 1e-12);
        }
    }

    #[test]
    fn elasticity_default_impl_matches_closed_form() {
        // The default (derivative-based) elasticity must agree with the
        // overridden closed forms.
        struct Raw(ExpThroughput);
        impl ThroughputFn for Raw {
            fn lambda(&self, phi: f64) -> f64 {
                self.0.lambda(phi)
            }
            fn dlambda_dphi(&self, phi: f64) -> f64 {
                self.0.dlambda_dphi(phi)
            }
            fn name(&self) -> &'static str {
                "raw"
            }
            fn boxed_clone(&self) -> Box<dyn ThroughputFn> {
                Box::new(Raw(self.0))
            }
            fn scaled(&self, kappa: f64) -> Box<dyn ThroughputFn> {
                self.0.scaled(kappa)
            }
        }
        let raw = Raw(ExpThroughput::new(1.3, 2.0));
        for phi in phis() {
            assert!((raw.elasticity(phi) - raw.0.elasticity(phi)).abs() < 1e-12);
        }
    }

    #[test]
    fn peak_is_lambda_at_zero() {
        assert_eq!(ExpThroughput::new(2.0, 1.0).peak(), 2.0);
        let lg = LogisticThroughput::new(1.7, 4.0, 0.5).unwrap();
        assert!((lg.peak() - 1.7).abs() < 1e-12, "normalization broken: {}", lg.peak());
    }

    #[test]
    fn scaled_preserves_elasticity() {
        // Lemma 2's scaling: kappa * lambda0 leaves epsilon^lambda_phi intact.
        let t = ExpThroughput::new(1.0, 3.0);
        let s = t.scaled(4.0);
        for phi in phis() {
            assert!((s.elasticity(phi) - t.elasticity(phi)).abs() < 1e-12);
            assert!((s.lambda(phi) - 4.0 * t.lambda(phi)).abs() < 1e-12);
        }
    }

    #[test]
    fn scaled_preserves_elasticity_all_families() {
        let fams: Vec<Box<dyn ThroughputFn>> = vec![
            Box::new(ExpThroughput::new(1.0, 2.0)),
            Box::new(PowerThroughput::new(1.0, 2.0)),
            Box::new(LogisticThroughput::new(1.0, 5.0, 0.7).unwrap()),
        ];
        for t in &fams {
            let s = t.scaled(2.5);
            for phi in phis() {
                let et = t.elasticity(phi);
                let es = s.elasticity(phi);
                assert!((et - es).abs() < 1e-9, "{}: {et} vs {es}", t.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "congestion sensitivity must be positive")]
    fn exp_rejects_bad_beta() {
        ExpThroughput::new(1.0, 0.0);
    }

    #[test]
    fn logistic_rejects_bad_params() {
        assert!(LogisticThroughput::new(0.0, 1.0, 1.0).is_err());
        assert!(LogisticThroughput::new(1.0, -1.0, 1.0).is_err());
        assert!(LogisticThroughput::new(1.0, 1.0, -0.1).is_err());
    }

    #[test]
    fn boxed_clone_works() {
        let t: Box<dyn ThroughputFn> = Box::new(PowerThroughput::new(1.0, 2.0));
        let c = t.clone();
        assert_eq!(t.lambda(0.4), c.lambda(0.4));
    }
}
