//! # `subcomp-model` — the macroscopic Internet model (paper §3)
//!
//! Implements the physical layer of *Subsidization Competition: Vitalizing
//! the Neutral Internet* (Ma, CoNEXT 2014): an access ISP of capacity `µ`
//! shared by the users of a set of content providers (CPs).
//!
//! The model is built from three function families, each behind a trait so
//! the paper's exponential forms, alternative families, and even simulator-
//! measured curves are interchangeable:
//!
//! * [`utilization::UtilizationFn`] — `φ = Φ(θ, µ)`, how aggregate
//!   throughput and capacity map to utilization (Assumption 1);
//! * [`throughput::ThroughputFn`] — `λ_i(φ)`, per-user throughput as a
//!   decreasing function of utilization (congestion sensitivity);
//! * [`demand::DemandFn`] — `m_i(t_i)`, user population as a decreasing
//!   function of the effective per-unit price (Assumption 2).
//!
//! A [`system::System`] combines a CP population with a capacity and solves
//! the **congestion fixed point** of Definition 1: the unique utilization
//! `φ` with `Θ(φ, µ) = Σ_k m_k λ_k(φ)` (Lemma 1). On top of that sit the
//! closed-form comparative statics of Theorem 1 (capacity and user effects)
//! and Theorem 2 (price effect) in [`effects`], the elasticity toolkit of
//! Definition 2 in [`elasticity`], the Lemma 2 aggregation machinery in
//! [`aggregation`], and the one-sided-pricing market of §3.2 in [`pricing`].
//!
//! ## Quick example: the paper's §3.2 numerical setting
//!
//! ```
//! use subcomp_model::prelude::*;
//!
//! // 9 CP types with (alpha, beta) in {1,3,5}^2, mu = 1 (paper Figure 4/5).
//! let mut cps = Vec::new();
//! for &alpha in &[1.0, 3.0, 5.0] {
//!     for &beta in &[1.0, 3.0, 5.0] {
//!         cps.push(
//!             ContentProvider::builder(format!("a{alpha}b{beta}"))
//!                 .demand(ExpDemand::new(1.0, alpha))
//!                 .throughput(ExpThroughput::new(1.0, beta))
//!                 .profitability(1.0)
//!                 .build(),
//!         );
//!     }
//! }
//! let system = System::new(cps, 1.0, LinearUtilization).unwrap();
//! let market = OneSidedMarket::new(&system);
//! let state = market.state(0.5).unwrap();
//! assert!(state.phi > 0.0);
//! // Theorem 2: aggregate throughput decreases with price.
//! let lower = market.state(0.6).unwrap();
//! assert!(lower.theta() < state.theta());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregation;
pub mod continuum;
pub mod cp;
pub mod demand;
pub mod effects;
pub mod elasticity;
pub mod lane;
pub mod pricing;
pub mod system;
pub mod throughput;
pub mod utilization;

/// One-stop imports for typical model usage.
pub mod prelude {
    pub use crate::cp::{ContentProvider, CpBuilder};
    pub use crate::demand::{DemandFn, ExpDemand, IsoelasticDemand, LinearDemand, LogisticDemand};
    pub use crate::effects::{PriceEffects, SystemEffects};
    pub use crate::pricing::OneSidedMarket;
    pub use crate::system::{System, SystemState};
    pub use crate::throughput::{ExpThroughput, LogisticThroughput, PowerThroughput, ThroughputFn};
    pub use crate::utilization::{
        LinearUtilization, PowerUtilization, QueueUtilization, UtilizationFn,
    };
}
