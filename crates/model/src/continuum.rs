//! A continuum of provider types (extension of Lemma 2).
//!
//! Lemma 2 lets the paper collapse groups of similar CPs into discrete
//! "types". Taken to its limit, a content market is a *continuum* of
//! types: a density `w(ω)` over a type index `ω ∈ [lo, hi]` with smooth
//! parameter profiles `α(ω)`, `β(ω)` for the paper's exponential family.
//! The aggregate throughput demand at utilization `φ` and uniform price
//! `p` becomes
//!
//! ```text
//! D(φ, p) = ∫ w(ω) e^{−α(ω) p} e^{−β(ω) φ} dω
//! ```
//!
//! evaluated by adaptive Simpson quadrature; Definition 1's fixed point
//! and Lemma 1's uniqueness argument carry over verbatim because `D` is
//! still strictly decreasing in `φ`. [`ContinuumMarket::discretize`]
//! produces the midpoint-rule panel of [`ExpCpSpec`] types, and the tests
//! show the discrete systems converge to the continuum as the panel
//! refines — which justifies the paper's 8-type and 9-type panels as
//! approximations of richer markets.

use crate::aggregation::ExpCpSpec;
use subcomp_num::quad::adaptive_simpson;
use subcomp_num::roots::solve_increasing;
use subcomp_num::{NumError, NumResult, Tolerance};

/// Smooth profile of provider parameters over the type index.
pub type Profile = Box<dyn Fn(f64) -> f64 + Send + Sync>;

/// A market with a continuum of exponential-family provider types.
pub struct ContinuumMarket {
    mu: f64,
    lo: f64,
    hi: f64,
    weight: Profile,
    alpha: Profile,
    beta: Profile,
    profitability: Profile,
    quad_tol: f64,
}

impl ContinuumMarket {
    /// Creates a continuum market over `ω ∈ [lo, hi]` with capacity `µ`.
    ///
    /// `weight` is the type density (need not be normalized), `alpha`
    /// and `beta` the demand/congestion sensitivity profiles, and
    /// `profitability` the per-unit profit profile `v(ω)`.
    pub fn new(
        mu: f64,
        (lo, hi): (f64, f64),
        weight: impl Fn(f64) -> f64 + Send + Sync + 'static,
        alpha: impl Fn(f64) -> f64 + Send + Sync + 'static,
        beta: impl Fn(f64) -> f64 + Send + Sync + 'static,
        profitability: impl Fn(f64) -> f64 + Send + Sync + 'static,
    ) -> NumResult<Self> {
        if !(mu > 0.0) {
            return Err(NumError::Domain { what: "capacity must be positive", value: mu });
        }
        if !(hi > lo) {
            return Err(NumError::Domain {
                what: "type interval must be non-degenerate",
                value: hi - lo,
            });
        }
        Ok(ContinuumMarket {
            mu,
            lo,
            hi,
            weight: Box::new(weight),
            alpha: Box::new(alpha),
            beta: Box::new(beta),
            profitability: Box::new(profitability),
            quad_tol: 1e-11,
        })
    }

    /// Capacity `µ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Aggregate throughput demand `D(φ, p)` by adaptive quadrature.
    pub fn aggregate_demand(&self, phi: f64, p: f64) -> NumResult<f64> {
        let f = |omega: f64| {
            (self.weight)(omega)
                * (-(self.alpha)(omega) * p).exp()
                * (-(self.beta)(omega) * phi).exp()
        };
        adaptive_simpson(&f, self.lo, self.hi, self.quad_tol)
    }

    /// Solves the Definition 1 fixed point at uniform price `p` (linear
    /// utilization `Φ = θ/µ`, as in the paper's numerics).
    pub fn utilization(&self, p: f64) -> NumResult<f64> {
        let g = |phi: f64| match self.aggregate_demand(phi, p) {
            Ok(d) => phi * self.mu - d,
            Err(_) => f64::NAN,
        };
        let demand0 = self.aggregate_demand(0.0, p)?;
        if demand0 <= 0.0 {
            return Ok(0.0);
        }
        let guess = demand0 / self.mu;
        Ok(solve_increasing(
            &g,
            0.0,
            guess.max(1e-6),
            Tolerance::new(1e-12, 1e-12).with_max_iter(300),
        )?
        .x)
    }

    /// Aggregate welfare density `∫ w v θ_ω dω` at utilization `φ`,
    /// price `p` (per-type throughput weighted by profitability).
    pub fn welfare(&self, phi: f64, p: f64) -> NumResult<f64> {
        let f = |omega: f64| {
            (self.weight)(omega)
                * (self.profitability)(omega)
                * (-(self.alpha)(omega) * p).exp()
                * (-(self.beta)(omega) * phi).exp()
        };
        adaptive_simpson(&f, self.lo, self.hi, self.quad_tol)
    }

    /// Midpoint-rule discretization into `n` exponential types, suitable
    /// for the full game machinery of `subcomp-core`.
    pub fn discretize(&self, n: usize) -> NumResult<Vec<ExpCpSpec>> {
        if n == 0 {
            return Err(NumError::Domain { what: "discretization needs n >= 1", value: 0.0 });
        }
        let h = (self.hi - self.lo) / n as f64;
        Ok((0..n)
            .map(|k| {
                let omega = self.lo + h * (k as f64 + 0.5);
                ExpCpSpec {
                    m0: (self.weight)(omega) * h,
                    alpha: (self.alpha)(omega),
                    lambda0: 1.0,
                    beta: (self.beta)(omega),
                    v: (self.profitability)(omega),
                }
            })
            .collect())
    }
}

impl std::fmt::Debug for ContinuumMarket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContinuumMarket")
            .field("mu", &self.mu)
            .field("omega", &(self.lo, self.hi))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::build_system;

    /// Types spread over alpha in [1, 5] with beta moving oppositely.
    fn sample_market() -> ContinuumMarket {
        ContinuumMarket::new(
            1.0,
            (0.0, 1.0),
            |_| 1.0,
            |w| 1.0 + 4.0 * w,
            |w| 5.0 - 4.0 * w,
            |w| 0.5 + 0.5 * w,
        )
        .unwrap()
    }

    #[test]
    fn fixed_point_exists_and_is_consistent() {
        let m = sample_market();
        let p = 0.4;
        let phi = m.utilization(p).unwrap();
        assert!(phi > 0.0);
        // Definition 1: demand at phi equals supply phi * mu.
        let d = m.aggregate_demand(phi, p).unwrap();
        assert!((d - phi * m.mu()).abs() < 1e-9, "gap {}", d - phi);
    }

    #[test]
    fn utilization_decreases_with_price() {
        let m = sample_market();
        let mut prev = f64::INFINITY;
        for k in 0..6 {
            let phi = m.utilization(0.3 * k as f64).unwrap();
            assert!(phi < prev);
            prev = phi;
        }
    }

    #[test]
    fn discretization_converges_to_continuum() {
        let m = sample_market();
        let p = 0.5;
        let exact = m.utilization(p).unwrap();
        let mut errs = Vec::new();
        for n in [2usize, 8, 32] {
            let specs = m.discretize(n).unwrap();
            let sys = build_system(&specs, 1.0).unwrap();
            let phi = sys.state_at_uniform_price(p).unwrap().phi;
            errs.push((phi - exact).abs());
        }
        assert!(errs[1] < errs[0]);
        assert!(errs[2] < errs[1]);
        assert!(errs[2] < 1e-4, "32-type panel should be within 1e-4: {errs:?}");
    }

    #[test]
    fn welfare_positive_and_decreasing_in_price() {
        let m = sample_market();
        let (p1, p2) = (0.3, 1.0);
        let w1 = m.welfare(m.utilization(p1).unwrap(), p1).unwrap();
        let w2 = m.welfare(m.utilization(p2).unwrap(), p2).unwrap();
        assert!(w1 > w2);
        assert!(w2 > 0.0);
    }

    #[test]
    fn zero_weight_market_idles() {
        let m = ContinuumMarket::new(1.0, (0.0, 1.0), |_| 0.0, |_| 2.0, |_| 2.0, |_| 1.0).unwrap();
        assert_eq!(m.utilization(0.5).unwrap(), 0.0);
    }

    #[test]
    fn constructor_validation() {
        assert!(ContinuumMarket::new(0.0, (0.0, 1.0), |_| 1.0, |_| 1.0, |_| 1.0, |_| 1.0).is_err());
        assert!(ContinuumMarket::new(1.0, (1.0, 1.0), |_| 1.0, |_| 1.0, |_| 1.0, |_| 1.0).is_err());
        let m = sample_market();
        assert!(m.discretize(0).is_err());
    }

    #[test]
    fn uniform_point_mass_matches_single_type() {
        // A continuum concentrated on constant profiles equals one type
        // with m0 = total weight.
        let m = ContinuumMarket::new(1.0, (0.0, 1.0), |_| 0.7, |_| 3.0, |_| 2.0, |_| 1.0).unwrap();
        let spec = ExpCpSpec { m0: 0.7, alpha: 3.0, lambda0: 1.0, beta: 2.0, v: 1.0 };
        let sys = build_system(&[spec], 1.0).unwrap();
        for p in [0.1, 0.5, 1.2] {
            let a = m.utilization(p).unwrap();
            let b = sys.state_at_uniform_price(p).unwrap().phi;
            assert!((a - b).abs() < 1e-9, "p = {p}: {a} vs {b}");
        }
    }
}
