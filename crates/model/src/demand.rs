//! User-demand functions `m(t)` (Assumption 2).
//!
//! A CP's user population is a continuously differentiable, decreasing
//! function of the *effective* per-unit price `t = p − s` its users face
//! (ISP price minus the CP's subsidy), with `m(t) → 0` as `t → ∞`. As the
//! paper notes, this nests valuation-distribution models: `m(t)` is the mass
//! of users whose valuation exceeds `t`.
//!
//! The paper's numerics use the exponential family `m(t) = m₀ e^{-αt}`,
//! whose price elasticity is `ε^m_t = -αt`. Note the paper places no lower
//! bound on `t`: with a subsidy exceeding the price the effective price goes
//! negative and `m(t) > m₀` — users are being *paid* to consume. All
//! families here are therefore defined on the whole real line (the
//! isoelastic family documents its own domain handling).

use subcomp_num::{NumError, NumResult};

/// A demand function `m(t)` with derivative and elasticity.
pub trait DemandFn: Send + Sync {
    /// Population at effective price `t`.
    fn m(&self, t: f64) -> f64;

    /// Derivative `dm/dt` (non-positive).
    fn dm_dt(&self, t: f64) -> f64;

    /// t-elasticity `ε^m_t = (dm/dt)(t/m)` (Definition 2); non-positive for
    /// positive prices.
    fn elasticity(&self, t: f64) -> f64 {
        let m = self.m(t);
        if m == 0.0 {
            0.0
        } else {
            self.dm_dt(t) * t / m
        }
    }

    /// Human-readable family name for reports.
    fn name(&self) -> &'static str;

    /// Clones into a boxed trait object.
    fn boxed_clone(&self) -> Box<dyn DemandFn>;

    /// Returns a copy whose population scale is multiplied by `κ`
    /// (Lemma 2's population scaling).
    fn scaled(&self, kappa: f64) -> Box<dyn DemandFn>;

    /// For the exponential family `m(t) = m₀ e^{-αt}`, returns `(m₀, α)`;
    /// `None` for every other family. The lane engine uses this to lay a
    /// system's demand side out as plain coefficient arrays.
    fn exp_coeffs(&self) -> Option<(f64, f64)> {
        None
    }
}

impl Clone for Box<dyn DemandFn> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// The paper's exponential demand `m(t) = m₀ e^{-αt}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpDemand {
    m0: f64,
    alpha: f64,
}

impl ExpDemand {
    /// Creates `m₀ e^{-αt}`; requires `m₀ > 0`, `α > 0`.
    pub fn new(m0: f64, alpha: f64) -> Self {
        assert!(m0 > 0.0 && m0.is_finite(), "population scale must be positive");
        assert!(alpha > 0.0 && alpha.is_finite(), "price sensitivity must be positive");
        ExpDemand { m0, alpha }
    }

    /// Price sensitivity `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl DemandFn for ExpDemand {
    fn m(&self, t: f64) -> f64 {
        self.m0 * (-self.alpha * t).exp()
    }
    fn dm_dt(&self, t: f64) -> f64 {
        -self.alpha * self.m(t)
    }
    fn elasticity(&self, t: f64) -> f64 {
        // Closed form: ε^m_t = -αt.
        -self.alpha * t
    }
    fn name(&self) -> &'static str {
        "exponential"
    }
    fn boxed_clone(&self) -> Box<dyn DemandFn> {
        Box::new(*self)
    }
    fn scaled(&self, kappa: f64) -> Box<dyn DemandFn> {
        Box::new(ExpDemand::new(self.m0 * kappa, self.alpha))
    }
    fn exp_coeffs(&self) -> Option<(f64, f64)> {
        Some((self.m0, self.alpha))
    }
}

/// Linear demand `m(t) = max(0, m₀ (1 − t / t_max))`: a uniform valuation
/// distribution on `[0, t_max]`, saturating at `m₀` for `t ≤ 0`.
///
/// Not differentiable exactly at the kinks `t = 0` (saturation) and
/// `t = t_max` (exhaustion); the derivative returns the interior value at
/// the kink, which is the convention finite-difference tests use too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearDemand {
    m0: f64,
    t_max: f64,
}

impl LinearDemand {
    /// Creates the family member; requires `m₀ > 0`, `t_max > 0`.
    pub fn new(m0: f64, t_max: f64) -> NumResult<Self> {
        if !(m0 > 0.0) || !(t_max > 0.0) {
            return Err(NumError::Domain {
                what: "LinearDemand requires m0 > 0, t_max > 0",
                value: m0.min(t_max),
            });
        }
        Ok(LinearDemand { m0, t_max })
    }
}

impl DemandFn for LinearDemand {
    fn m(&self, t: f64) -> f64 {
        if t <= 0.0 {
            self.m0
        } else if t >= self.t_max {
            0.0
        } else {
            self.m0 * (1.0 - t / self.t_max)
        }
    }
    fn dm_dt(&self, t: f64) -> f64 {
        if t < 0.0 || t > self.t_max {
            0.0
        } else {
            -self.m0 / self.t_max
        }
    }
    fn name(&self) -> &'static str {
        "linear"
    }
    fn boxed_clone(&self) -> Box<dyn DemandFn> {
        Box::new(*self)
    }
    fn scaled(&self, kappa: f64) -> Box<dyn DemandFn> {
        Box::new(LinearDemand { m0: self.m0 * kappa, t_max: self.t_max })
    }
}

/// Isoelastic demand `m(t) = m₀ (1 + t)^{-α}` — constant-ish elasticity
/// with a finite value at `t = 0` (the `1 +` offset keeps Assumption 2's
/// differentiability on the whole line: for `t < -1` the population is
/// capped at the `t = -1` value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsoelasticDemand {
    m0: f64,
    alpha: f64,
}

impl IsoelasticDemand {
    /// Creates the family member; requires `m₀ > 0`, `α > 0`.
    pub fn new(m0: f64, alpha: f64) -> NumResult<Self> {
        if !(m0 > 0.0) || !(alpha > 0.0) {
            return Err(NumError::Domain {
                what: "IsoelasticDemand requires m0 > 0, alpha > 0",
                value: m0.min(alpha),
            });
        }
        Ok(IsoelasticDemand { m0, alpha })
    }
}

impl DemandFn for IsoelasticDemand {
    fn m(&self, t: f64) -> f64 {
        // Cap below t = -0.5 to keep the function bounded and decreasing on
        // the subsidized-past-free region (the model never needs t < -p).
        let t_eff = t.max(-0.5);
        self.m0 * (1.0 + t_eff).powf(-self.alpha)
    }
    fn dm_dt(&self, t: f64) -> f64 {
        if t < -0.5 {
            0.0
        } else {
            -self.alpha * self.m0 * (1.0 + t).powf(-self.alpha - 1.0)
        }
    }
    fn name(&self) -> &'static str {
        "isoelastic"
    }
    fn boxed_clone(&self) -> Box<dyn DemandFn> {
        Box::new(*self)
    }
    fn scaled(&self, kappa: f64) -> Box<dyn DemandFn> {
        Box::new(IsoelasticDemand { m0: self.m0 * kappa, alpha: self.alpha })
    }
}

/// Logistic demand `m(t) = m₀ (1 + e^{-k t₀}) / (1 + e^{k(t - t₀)})`:
/// a smooth S-curve with mass concentrated around the reference valuation
/// `t₀`. Normalized so `m(0) = m₀`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticDemand {
    m0: f64,
    k: f64,
    t0: f64,
    norm: f64,
}

impl LogisticDemand {
    /// Creates the family member; requires `m₀ > 0`, steepness `k > 0`.
    pub fn new(m0: f64, k: f64, t0: f64) -> NumResult<Self> {
        if !(m0 > 0.0) || !(k > 0.0) {
            return Err(NumError::Domain {
                what: "LogisticDemand requires m0 > 0, k > 0",
                value: m0.min(k),
            });
        }
        let norm = 1.0 + (-k * t0).exp();
        Ok(LogisticDemand { m0, k, t0, norm })
    }
}

impl DemandFn for LogisticDemand {
    fn m(&self, t: f64) -> f64 {
        self.m0 * self.norm / (1.0 + (self.k * (t - self.t0)).exp())
    }
    fn dm_dt(&self, t: f64) -> f64 {
        let e = (self.k * (t - self.t0)).exp();
        -self.m0 * self.norm * self.k * e / (1.0 + e).powi(2)
    }
    fn name(&self) -> &'static str {
        "logistic"
    }
    fn boxed_clone(&self) -> Box<dyn DemandFn> {
        Box::new(*self)
    }
    fn scaled(&self, kappa: f64) -> Box<dyn DemandFn> {
        Box::new(LogisticDemand { m0: self.m0 * kappa, ..*self })
    }
}

/// Numerically verifies Assumption 2 on a grid of effective prices:
/// non-negative, non-increasing, vanishing tail, derivative consistent with
/// finite differences away from kinks. Returns the max derivative error.
pub fn check_assumption2(d: &dyn DemandFn, ts: &[f64]) -> NumResult<f64> {
    let mut prev: Option<f64> = None;
    let mut max_err = 0.0f64;
    for &t in ts {
        let m = d.m(t);
        if !(m >= 0.0) || !m.is_finite() {
            return Err(NumError::Domain {
                what: "m(t) must be non-negative and finite",
                value: m,
            });
        }
        if let Some(p) = prev {
            if m > p + 1e-12 {
                return Err(NumError::Domain { what: "m(t) must be non-increasing", value: m - p });
            }
        }
        prev = Some(m);
        let fd = subcomp_num::diff::derivative(&|x| d.m(x), t)?;
        let an = d.dm_dt(t);
        max_err = max_err.max((fd - an).abs() / an.abs().max(1e-6));
    }
    let tail = d.m(1e4);
    if !(tail <= 1e-3 * d.m(0.0).max(1e-300)) {
        return Err(NumError::Domain { what: "m(t) must vanish as t grows", value: tail });
    }
    Ok(max_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts() -> Vec<f64> {
        vec![0.05, 0.2, 0.5, 0.9, 1.5, 2.5]
    }

    #[test]
    fn exp_assumption2() {
        let d = ExpDemand::new(1.0, 3.0);
        assert!(check_assumption2(&d, &ts()).unwrap() < 1e-6);
    }

    #[test]
    fn linear_assumption2_interior() {
        let d = LinearDemand::new(2.0, 3.0).unwrap();
        assert!(check_assumption2(&d, &ts()).unwrap() < 1e-6);
        assert_eq!(d.m(5.0), 0.0);
        assert_eq!(d.m(-1.0), 2.0);
    }

    #[test]
    fn isoelastic_assumption2() {
        let d = IsoelasticDemand::new(1.0, 2.0).unwrap();
        assert!(check_assumption2(&d, &ts()).unwrap() < 1e-6);
    }

    #[test]
    fn logistic_assumption2() {
        let d = LogisticDemand::new(1.0, 4.0, 1.0).unwrap();
        assert!(check_assumption2(&d, &ts()).unwrap() < 1e-6);
        assert!((d.m(0.0) - 1.0).abs() < 1e-12, "normalization");
    }

    #[test]
    fn exp_elasticity_closed_form() {
        // The paper: epsilon^m_p = -alpha*p for the exponential family.
        let d = ExpDemand::new(1.0, 2.0);
        for t in ts() {
            assert!((d.elasticity(t) + 2.0 * t).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_effective_price_grows_population() {
        // Subsidy beyond price: t < 0, m(t) > m0 for the exponential family
        // (the paper's Figure 8/9 regime at small p, large q).
        let d = ExpDemand::new(1.0, 2.0);
        assert!(d.m(-0.5) > 1.0);
        assert!(d.dm_dt(-0.5) < 0.0);
    }

    #[test]
    fn scaled_multiplies_population() {
        let fams: Vec<Box<dyn DemandFn>> = vec![
            Box::new(ExpDemand::new(1.0, 2.0)),
            Box::new(LinearDemand::new(1.0, 2.0).unwrap()),
            Box::new(IsoelasticDemand::new(1.0, 2.0).unwrap()),
            Box::new(LogisticDemand::new(1.0, 3.0, 0.5).unwrap()),
        ];
        for d in &fams {
            let s = d.scaled(3.0);
            for t in ts() {
                assert!((s.m(t) - 3.0 * d.m(t)).abs() < 1e-9, "{}", d.name());
                // Elasticity is scale-invariant.
                assert!((s.elasticity(t) - d.elasticity(t)).abs() < 1e-9, "{}", d.name());
            }
        }
    }

    #[test]
    fn elasticity_default_matches_closed_form() {
        struct Raw(ExpDemand);
        impl DemandFn for Raw {
            fn m(&self, t: f64) -> f64 {
                self.0.m(t)
            }
            fn dm_dt(&self, t: f64) -> f64 {
                self.0.dm_dt(t)
            }
            fn name(&self) -> &'static str {
                "raw"
            }
            fn boxed_clone(&self) -> Box<dyn DemandFn> {
                Box::new(Raw(self.0))
            }
            fn scaled(&self, kappa: f64) -> Box<dyn DemandFn> {
                self.0.scaled(kappa)
            }
        }
        let raw = Raw(ExpDemand::new(1.5, 2.0));
        for t in ts() {
            assert!((raw.elasticity(t) - raw.0.elasticity(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn isoelastic_capped_below() {
        let d = IsoelasticDemand::new(1.0, 2.0).unwrap();
        assert_eq!(d.m(-0.8), d.m(-0.5));
        assert_eq!(d.dm_dt(-0.8), 0.0);
    }

    #[test]
    #[should_panic(expected = "price sensitivity must be positive")]
    fn exp_rejects_bad_alpha() {
        ExpDemand::new(1.0, -2.0);
    }

    #[test]
    fn constructors_reject_bad_params() {
        assert!(LinearDemand::new(0.0, 1.0).is_err());
        assert!(IsoelasticDemand::new(1.0, 0.0).is_err());
        assert!(LogisticDemand::new(1.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn boxed_clone_works() {
        let d: Box<dyn DemandFn> = Box::new(ExpDemand::new(1.0, 1.0));
        let c = d.clone();
        assert_eq!(d.m(0.3), c.m(0.3));
    }
}
