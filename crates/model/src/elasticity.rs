//! Elasticity machinery (Definition 2) and the Υ decomposition.
//!
//! Definition 2: the x-elasticity of y is `ε^y_x = (∂y/∂x)(x/y)` — the
//! percentage response of `y` to a percentage change in `x`. The paper's
//! equilibrium characterizations (Theorem 3's threshold `τ_i`, condition
//! (7), Theorem 7's marginal revenue, Theorem 8's condition (17)) are all
//! phrased in elasticities; this module computes them at a solved state.
//!
//! The decomposition of Equation (14),
//! `ε^φ_{m_j} ε^{λ_j}_φ = m_j (dλ_j/dφ) (dg/dφ)^{-1}`,
//! and the Theorem 7 factor `Υ = 1 + Σ_j ε^{λ_j}_{m_j}` live here too.

use crate::system::{System, SystemState};
use subcomp_num::{NumError, NumResult};

/// Point elasticity `ε^y_x = (dy/dx) · (x/y)`; zero when `y = 0`.
pub fn elasticity(dy_dx: f64, x: f64, y: f64) -> f64 {
    if y == 0.0 {
        0.0
    } else {
        dy_dx * x / y
    }
}

/// All per-provider elasticities at a solved state under uniform price `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateElasticities {
    /// `ε^λ_φ` per provider (non-positive): congestion sensitivity.
    pub lambda_phi: Vec<f64>,
    /// `ε^m_p` per provider (non-positive): price sensitivity of demand.
    pub m_p: Vec<f64>,
    /// `ε^φ_{m_i}` per provider (non-negative): user impact on congestion.
    pub phi_m: Vec<f64>,
    /// `ε^{λ_i}_{m_i} = ε^φ_{m_i} ε^{λ_i}_φ` per provider (Equation 14).
    pub lambda_m: Vec<f64>,
}

impl StateElasticities {
    /// Computes every elasticity at the state solved for uniform price `p`.
    pub fn compute(system: &System, state: &SystemState, p: f64) -> NumResult<StateElasticities> {
        let n = system.n();
        if state.n() != n {
            return Err(NumError::DimensionMismatch { expected: n, actual: state.n() });
        }
        let dg = state.dg_dphi;
        if !(dg > 0.0) {
            return Err(NumError::Domain { what: "gap slope must be positive", value: dg });
        }
        let phi = state.phi;
        let mut lambda_phi = Vec::with_capacity(n);
        let mut m_p = Vec::with_capacity(n);
        let mut phi_m = Vec::with_capacity(n);
        let mut lambda_m = Vec::with_capacity(n);
        for i in 0..n {
            let cp = system.cp(i);
            lambda_phi.push(cp.throughput().elasticity(phi));
            m_p.push(elasticity(cp.demand().dm_dt(p), p, state.m[i]));
            // ε^φ_{m_i} = (∂φ/∂m_i)(m_i/φ) = λ_i m_i / (dg/dφ · φ).
            let pm = if phi > 0.0 { state.lambda[i] * state.m[i] / (dg * phi) } else { 0.0 };
            phi_m.push(pm);
            // Equation (14): ε^φ_{m_i} ε^{λ_i}_φ = m_i λ_i'(φ) / (dg/dφ).
            lambda_m.push(state.m[i] * cp.throughput().dlambda_dphi(phi) / dg);
        }
        Ok(StateElasticities { lambda_phi, m_p, phi_m, lambda_m })
    }

    /// The Theorem 7 factor `Υ = 1 + Σ_j ε^{λ_j}_{m_j}`.
    pub fn upsilon(&self) -> f64 {
        1.0 + self.lambda_m.iter().sum::<f64>()
    }
}

/// Verifies Equation (14) numerically: the product `ε^φ_{m_j} · ε^{λ_j}_φ`
/// must equal the direct expression `m_j λ_j'(φ) / (dg/dφ)`. Returns the
/// max discrepancy across providers.
pub fn check_eq14(e: &StateElasticities) -> f64 {
    e.phi_m
        .iter()
        .zip(&e.lambda_phi)
        .zip(&e.lambda_m)
        .map(|((pm, lp), lm)| (pm * lp - lm).abs())
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::ContentProvider;
    use crate::demand::ExpDemand;
    use crate::throughput::ExpThroughput;
    use crate::utilization::LinearUtilization;

    fn small_system() -> System {
        let cps = vec![
            ContentProvider::builder("a")
                .demand(ExpDemand::new(1.0, 2.0))
                .throughput(ExpThroughput::new(1.0, 3.0))
                .profitability(1.0)
                .build(),
            ContentProvider::builder("b")
                .demand(ExpDemand::new(0.8, 4.0))
                .throughput(ExpThroughput::new(1.2, 1.5))
                .profitability(0.5)
                .build(),
        ];
        System::new(cps, 1.0, LinearUtilization).unwrap()
    }

    #[test]
    fn point_elasticity_basics() {
        use crate::demand::DemandFn;
        assert_eq!(elasticity(2.0, 3.0, 6.0), 1.0);
        assert_eq!(elasticity(5.0, 1.0, 0.0), 0.0);
        // Exponential demand: elasticity -alpha*t.
        let d = ExpDemand::new(1.0, 3.0);
        let t = 0.4;
        assert!((elasticity(d.dm_dt(t), t, d.m(t)) + 3.0 * t).abs() < 1e-12);
    }

    #[test]
    fn exponential_closed_forms() {
        let sys = small_system();
        let p = 0.5;
        let state = sys.state_at_uniform_price(p).unwrap();
        let e = StateElasticities::compute(&sys, &state, p).unwrap();
        // eps^lambda_phi = -beta*phi, eps^m_p = -alpha*p.
        assert!((e.lambda_phi[0] + 3.0 * state.phi).abs() < 1e-12);
        assert!((e.lambda_phi[1] + 1.5 * state.phi).abs() < 1e-12);
        assert!((e.m_p[0] + 2.0 * p).abs() < 1e-12);
        assert!((e.m_p[1] + 4.0 * p).abs() < 1e-12);
    }

    #[test]
    fn equation14_holds() {
        let sys = small_system();
        let p = 0.3;
        let state = sys.state_at_uniform_price(p).unwrap();
        let e = StateElasticities::compute(&sys, &state, p).unwrap();
        assert!(check_eq14(&e) < 1e-12);
    }

    #[test]
    fn phi_m_matches_finite_difference_elasticity() {
        let sys = small_system();
        let p = 0.4;
        let state = sys.state_at_uniform_price(p).unwrap();
        let e = StateElasticities::compute(&sys, &state, p).unwrap();
        for i in 0..2 {
            let fd = subcomp_num::diff::derivative(
                &|mi| {
                    let mut m = state.m.clone();
                    m[i] = mi;
                    sys.solve_state(&m).unwrap().phi
                },
                state.m[i],
            )
            .unwrap();
            let eps_fd = elasticity(fd, state.m[i], state.phi);
            assert!((e.phi_m[i] - eps_fd).abs() < 1e-6, "CP {i}: {} vs {eps_fd}", e.phi_m[i]);
        }
    }

    #[test]
    fn upsilon_between_zero_and_one_for_light_load() {
        // Upsilon = 1 + sum(eps^lambda_m) with eps^lambda_m in (-1, 0] under
        // Lemma 1 (the demand-slope term is a fraction of dg/dphi).
        let sys = small_system();
        for p in [0.1, 0.5, 1.0, 2.0] {
            let state = sys.state_at_uniform_price(p).unwrap();
            let e = StateElasticities::compute(&sys, &state, p).unwrap();
            let u = e.upsilon();
            assert!(u > 0.0 && u <= 1.0, "p = {p}: upsilon = {u}");
        }
    }

    #[test]
    fn elasticities_signs() {
        let sys = small_system();
        let p = 0.7;
        let state = sys.state_at_uniform_price(p).unwrap();
        let e = StateElasticities::compute(&sys, &state, p).unwrap();
        for i in 0..2 {
            assert!(e.lambda_phi[i] < 0.0);
            assert!(e.m_p[i] < 0.0);
            assert!(e.phi_m[i] > 0.0);
            assert!(e.lambda_m[i] < 0.0);
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let sys = small_system();
        let empty = System::new(vec![], 1.0, LinearUtilization).unwrap();
        let state = empty.solve_state(&[]).unwrap();
        assert!(StateElasticities::compute(&sys, &state, 0.5).is_err());
    }
}
