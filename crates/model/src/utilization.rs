//! Utilization functions `φ = Φ(θ, µ)` and their inverses (Assumption 1).
//!
//! Assumption 1 of the paper requires `Φ` to be differentiable, strictly
//! increasing in aggregate throughput `θ`, strictly decreasing in capacity
//! `µ`, and to vanish as `θ → 0`. The analysis works with the inverse
//! `Θ(φ, µ) = Φ^{-1}(φ, µ)` — the throughput the system must carry to sit at
//! utilization `φ` — which is strictly increasing in both arguments.
//!
//! The paper's numerical sections use the linear form `Φ(θ, µ) = θ/µ`
//! ([`LinearUtilization`]); [`PowerUtilization`] and [`QueueUtilization`]
//! are alternative families satisfying the same axioms, used for
//! sensitivity/ablation experiments and property tests.

use subcomp_num::{NumError, NumResult};

/// A utilization function `Φ(θ, µ)` with its inverse and partials.
///
/// Implementors must satisfy Assumption 1 on the domain `θ ≥ 0`, `µ > 0`;
/// [`check_assumption1`] verifies the axioms numerically and is exercised by
/// every implementation's tests.
pub trait UtilizationFn: Send + Sync {
    /// Utilization `φ = Φ(θ, µ)`.
    fn phi(&self, theta: f64, mu: f64) -> f64;

    /// Inverse `Θ(φ, µ)`: the throughput inducing utilization `φ`.
    fn theta(&self, phi: f64, mu: f64) -> f64;

    /// Partial `∂Θ/∂φ` (strictly positive).
    fn dtheta_dphi(&self, phi: f64, mu: f64) -> f64;

    /// Partial `∂Θ/∂µ` (strictly positive).
    fn dtheta_dmu(&self, phi: f64, mu: f64) -> f64;

    /// Human-readable family name for reports.
    fn name(&self) -> &'static str;

    /// Clones into a boxed trait object.
    fn boxed_clone(&self) -> Box<dyn UtilizationFn>;

    /// Whether this is exactly the paper's linear family `Θ(φ, µ) = φµ`.
    /// The system's hot congestion loop uses this to inline the inverse
    /// (`φ * µ`, bit-identical to [`UtilizationFn::theta`] for the linear
    /// family) instead of paying a virtual call per gap evaluation.
    fn is_linear(&self) -> bool {
        false
    }
}

impl Clone for Box<dyn UtilizationFn> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

impl UtilizationFn for Box<dyn UtilizationFn> {
    fn phi(&self, theta: f64, mu: f64) -> f64 {
        (**self).phi(theta, mu)
    }
    fn theta(&self, phi: f64, mu: f64) -> f64 {
        (**self).theta(phi, mu)
    }
    fn dtheta_dphi(&self, phi: f64, mu: f64) -> f64 {
        (**self).dtheta_dphi(phi, mu)
    }
    fn dtheta_dmu(&self, phi: f64, mu: f64) -> f64 {
        (**self).dtheta_dmu(phi, mu)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn boxed_clone(&self) -> Box<dyn UtilizationFn> {
        (**self).boxed_clone()
    }
    fn is_linear(&self) -> bool {
        (**self).is_linear()
    }
}

/// The paper's utilization metric: per-capacity throughput, `Φ(θ, µ) = θ/µ`.
///
/// `Θ(φ, µ) = φ µ`, `∂Θ/∂φ = µ`, `∂Θ/∂µ = φ`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinearUtilization;

impl UtilizationFn for LinearUtilization {
    fn phi(&self, theta: f64, mu: f64) -> f64 {
        theta / mu
    }
    fn theta(&self, phi: f64, mu: f64) -> f64 {
        phi * mu
    }
    fn dtheta_dphi(&self, _phi: f64, mu: f64) -> f64 {
        mu
    }
    fn dtheta_dmu(&self, phi: f64, _mu: f64) -> f64 {
        phi
    }
    fn name(&self) -> &'static str {
        "linear (theta/mu)"
    }
    fn boxed_clone(&self) -> Box<dyn UtilizationFn> {
        Box::new(*self)
    }
    fn is_linear(&self) -> bool {
        true
    }
}

/// Power-law utilization `Φ(θ, µ) = (θ/µ)^γ`, `γ > 0`.
///
/// `γ > 1` models congestion that sharpens as load approaches capacity;
/// `γ < 1` models early-onset congestion. `γ = 1` recovers the linear form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerUtilization {
    gamma: f64,
}

impl PowerUtilization {
    /// Creates the family member with exponent `gamma > 0`.
    pub fn new(gamma: f64) -> NumResult<Self> {
        if !(gamma > 0.0) || !gamma.is_finite() {
            return Err(NumError::Domain {
                what: "PowerUtilization requires gamma > 0",
                value: gamma,
            });
        }
        Ok(PowerUtilization { gamma })
    }

    /// The exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl UtilizationFn for PowerUtilization {
    fn phi(&self, theta: f64, mu: f64) -> f64 {
        (theta / mu).powf(self.gamma)
    }
    fn theta(&self, phi: f64, mu: f64) -> f64 {
        phi.powf(1.0 / self.gamma) * mu
    }
    fn dtheta_dphi(&self, phi: f64, mu: f64) -> f64 {
        // d/dφ [φ^{1/γ} µ]; guard the φ = 0 boundary for γ > 1 where the
        // derivative diverges — callers stay interior but tests probe edges.
        let g = 1.0 / self.gamma;
        if phi == 0.0 {
            if g >= 1.0 {
                if g == 1.0 {
                    mu
                } else {
                    0.0
                }
            } else {
                f64::INFINITY
            }
        } else {
            g * phi.powf(g - 1.0) * mu
        }
    }
    fn dtheta_dmu(&self, phi: f64, _mu: f64) -> f64 {
        phi.powf(1.0 / self.gamma)
    }
    fn name(&self) -> &'static str {
        "power ((theta/mu)^gamma)"
    }
    fn boxed_clone(&self) -> Box<dyn UtilizationFn> {
        Box::new(*self)
    }
}

/// Queueing-delay-like utilization `Φ(θ, µ) = θ / (µ - θ)` for `θ < µ`,
/// the normalized M/M/1 mean queue length.
///
/// Utilization (and hence congestion) blows up as load approaches capacity,
/// which is the behaviour of real bottleneck links. The inverse is
/// `Θ(φ, µ) = φ µ / (1 + φ)` — note `Θ < µ` always: this family cannot be
/// pushed past capacity, unlike the linear one.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueueUtilization;

impl UtilizationFn for QueueUtilization {
    fn phi(&self, theta: f64, mu: f64) -> f64 {
        if theta >= mu {
            f64::INFINITY
        } else {
            theta / (mu - theta)
        }
    }
    fn theta(&self, phi: f64, mu: f64) -> f64 {
        phi * mu / (1.0 + phi)
    }
    fn dtheta_dphi(&self, phi: f64, mu: f64) -> f64 {
        mu / (1.0 + phi).powi(2)
    }
    fn dtheta_dmu(&self, phi: f64, _mu: f64) -> f64 {
        phi / (1.0 + phi)
    }
    fn name(&self) -> &'static str {
        "queue (theta/(mu-theta))"
    }
    fn boxed_clone(&self) -> Box<dyn UtilizationFn> {
        Box::new(*self)
    }
}

/// Numerically verifies Assumption 1 for a utilization family on a grid:
/// `Φ` increasing in `θ`, decreasing in `µ`, `Φ(0, µ) = 0`, and `Θ` is the
/// inverse of `Φ`. Returns the maximum inversion error observed.
pub fn check_assumption1(u: &dyn UtilizationFn, thetas: &[f64], mus: &[f64]) -> NumResult<f64> {
    let mut max_inv_err = 0.0f64;
    for &mu in mus {
        if !(mu > 0.0) {
            return Err(NumError::Domain { what: "capacity must be positive", value: mu });
        }
        // Φ(θ→0) = 0.
        let phi0 = u.phi(1e-300, mu);
        if !(phi0.abs() < 1e-6) {
            return Err(NumError::Domain { what: "Phi(0, mu) must vanish", value: phi0 });
        }
        let mut prev_phi: Option<f64> = None;
        for &theta in thetas {
            let phi = u.phi(theta, mu);
            if !phi.is_finite() {
                continue; // families capped at capacity (queueing) may saturate
            }
            if let Some(p) = prev_phi {
                if phi <= p {
                    return Err(NumError::Domain {
                        what: "Phi must increase in theta",
                        value: phi - p,
                    });
                }
            }
            prev_phi = Some(phi);
            // Inverse property.
            let back = u.theta(phi, mu);
            max_inv_err = max_inv_err.max((back - theta).abs() / theta.abs().max(1.0));
            // Monotone decreasing in mu.
            let phi_bigger_mu = u.phi(theta, mu * 1.5);
            if phi_bigger_mu.is_finite() && phi_bigger_mu >= phi {
                return Err(NumError::Domain {
                    what: "Phi must decrease in mu",
                    value: phi_bigger_mu - phi,
                });
            }
        }
    }
    Ok(max_inv_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_num::diff::derivative;

    fn grid() -> (Vec<f64>, Vec<f64>) {
        let thetas = vec![0.05, 0.1, 0.3, 0.6, 0.9];
        let mus = vec![0.5, 1.0, 2.0];
        (thetas, mus)
    }

    #[test]
    fn linear_assumption1() {
        let (t, m) = grid();
        let err = check_assumption1(&LinearUtilization, &t, &m).unwrap();
        assert!(err < 1e-12);
    }

    #[test]
    fn power_assumption1() {
        let (t, m) = grid();
        for gamma in [0.5, 1.0, 2.0] {
            let u = PowerUtilization::new(gamma).unwrap();
            let err = check_assumption1(&u, &t, &m).unwrap();
            assert!(err < 1e-10, "gamma {gamma}: err {err}");
        }
    }

    #[test]
    fn queue_assumption1() {
        let (t, m) = grid();
        let err = check_assumption1(&QueueUtilization, &t, &m).unwrap();
        assert!(err < 1e-10);
    }

    #[test]
    fn linear_partials_exact() {
        let u = LinearUtilization;
        assert_eq!(u.theta(0.7, 2.0), 1.4);
        assert_eq!(u.dtheta_dphi(0.7, 2.0), 2.0);
        assert_eq!(u.dtheta_dmu(0.7, 2.0), 0.7);
    }

    #[test]
    fn power_partials_match_finite_difference() {
        let u = PowerUtilization::new(1.7).unwrap();
        let (phi, mu) = (0.6, 1.3);
        let dphi = derivative(&|p| u.theta(p, mu), phi).unwrap();
        let dmu = derivative(&|m| u.theta(phi, m), mu).unwrap();
        assert!((u.dtheta_dphi(phi, mu) - dphi).abs() < 1e-7);
        assert!((u.dtheta_dmu(phi, mu) - dmu).abs() < 1e-7);
    }

    #[test]
    fn queue_partials_match_finite_difference() {
        let u = QueueUtilization;
        let (phi, mu) = (2.5, 0.8);
        let dphi = derivative(&|p| u.theta(p, mu), phi).unwrap();
        let dmu = derivative(&|m| u.theta(phi, m), mu).unwrap();
        assert!((u.dtheta_dphi(phi, mu) - dphi).abs() < 1e-7);
        assert!((u.dtheta_dmu(phi, mu) - dmu).abs() < 1e-7);
    }

    #[test]
    fn queue_saturates_at_capacity() {
        let u = QueueUtilization;
        assert!(u.phi(1.0, 1.0).is_infinite());
        assert!(u.phi(2.0, 1.0).is_infinite());
        // Theta never reaches capacity.
        assert!(u.theta(1e9, 1.0) < 1.0);
    }

    #[test]
    fn power_rejects_bad_gamma() {
        assert!(PowerUtilization::new(0.0).is_err());
        assert!(PowerUtilization::new(-1.0).is_err());
        assert!(PowerUtilization::new(f64::NAN).is_err());
    }

    #[test]
    fn power_gamma_one_equals_linear() {
        let p = PowerUtilization::new(1.0).unwrap();
        for theta in [0.1, 0.5, 2.0] {
            for mu in [0.5, 1.0, 3.0] {
                assert!((p.phi(theta, mu) - LinearUtilization.phi(theta, mu)).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn boxed_clone_preserves_behaviour() {
        let u: Box<dyn UtilizationFn> = Box::new(PowerUtilization::new(2.0).unwrap());
        let c = u.clone();
        assert_eq!(u.phi(0.5, 1.0), c.phi(0.5, 1.0));
        assert_eq!(u.name(), c.name());
    }

    #[test]
    fn check_assumption1_rejects_bad_capacity() {
        assert!(check_assumption1(&LinearUtilization, &[0.1], &[0.0]).is_err());
    }
}
