//! The system `(m, µ)` and its congestion fixed point (Definition 1).
//!
//! Given user populations `m` and capacity `µ`, the system settles at the
//! unique utilization `φ` where supply meets demand:
//!
//! ```text
//! φ = Φ( Σ_k m_k λ_k(φ), µ )      ⇔      g(φ) := Θ(φ, µ) − Σ_k m_k λ_k(φ) = 0
//! ```
//!
//! Lemma 1 shows `g` is strictly increasing with a sign change, so the root
//! is unique; [`System::solve_state`] brackets it by geometric expansion and
//! polishes with Brent's method, returning a [`SystemState`] with every
//! quantity downstream analysis needs (per-CP populations, throughputs, the
//! gap slope `dg/dφ` of Equation (2)).

use crate::cp::ContentProvider;
use crate::utilization::UtilizationFn;
use subcomp_num::roots::solve_increasing;
use subcomp_num::{NumError, NumResult, Tolerance};

/// An access network shared by a set of content providers.
///
/// Holds the CP population (with their demand/throughput primitives), the
/// ISP capacity `µ`, and the utilization family `Φ`. The *state* of the
/// system for specific populations or effective prices is computed by
/// [`System::solve_state`] / [`System::state_at_prices`].
#[derive(Clone)]
pub struct System {
    cps: Vec<ContentProvider>,
    mu: f64,
    utilization: Box<dyn UtilizationFn>,
    tol: Tolerance,
}

impl System {
    /// Creates a system; requires `µ > 0`.
    pub fn new(
        cps: Vec<ContentProvider>,
        mu: f64,
        utilization: impl UtilizationFn + 'static,
    ) -> NumResult<Self> {
        if !(mu > 0.0) || !mu.is_finite() {
            return Err(NumError::Domain {
                what: "capacity must be positive and finite",
                value: mu,
            });
        }
        Ok(System {
            cps,
            mu,
            utilization: Box::new(utilization),
            tol: Tolerance::new(1e-13, 1e-13).with_max_iter(300),
        })
    }

    /// Number of providers.
    pub fn n(&self) -> usize {
        self.cps.len()
    }

    /// The providers.
    pub fn cps(&self) -> &[ContentProvider] {
        &self.cps
    }

    /// Provider `i`.
    pub fn cp(&self, i: usize) -> &ContentProvider {
        &self.cps[i]
    }

    /// Capacity `µ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The utilization family.
    pub fn utilization_fn(&self) -> &dyn UtilizationFn {
        self.utilization.as_ref()
    }

    /// Returns a copy with capacity `µ'` — Theorem 1 capacity sweeps and
    /// the ISP's investment extension both use this.
    pub fn with_capacity(&self, mu: f64) -> NumResult<System> {
        if !(mu > 0.0) || !mu.is_finite() {
            return Err(NumError::Domain {
                what: "capacity must be positive and finite",
                value: mu,
            });
        }
        Ok(System { mu, ..self.clone() })
    }

    /// Returns a copy with the fixed-point solver tolerance replaced.
    pub fn with_tolerance(&self, tol: Tolerance) -> System {
        System { tol, ..self.clone() }
    }

    /// Populations induced by per-CP effective prices `t`.
    pub fn populations(&self, t: &[f64]) -> NumResult<Vec<f64>> {
        if t.len() != self.n() {
            return Err(NumError::DimensionMismatch { expected: self.n(), actual: t.len() });
        }
        Ok(self.cps.iter().zip(t).map(|(cp, &ti)| cp.population(ti)).collect())
    }

    /// The gap function `g(φ) = Θ(φ, µ) − Σ_k m_k λ_k(φ)` of Lemma 1.
    pub fn gap(&self, phi: f64, m: &[f64]) -> f64 {
        let demand: f64 = self.cps.iter().zip(m).map(|(cp, &mi)| mi * cp.lambda(phi)).sum();
        self.utilization.theta(phi, self.mu) - demand
    }

    /// The gap slope `dg/dφ = ∂Θ/∂φ − Σ_k m_k dλ_k/dφ` (Equation (2));
    /// strictly positive.
    pub fn dgap_dphi(&self, phi: f64, m: &[f64]) -> f64 {
        let demand_slope: f64 =
            self.cps.iter().zip(m).map(|(cp, &mi)| mi * cp.throughput().dlambda_dphi(phi)).sum();
        self.utilization.dtheta_dphi(phi, self.mu) - demand_slope
    }

    /// Solves the congestion fixed point of Definition 1 for populations
    /// `m`, returning the full [`SystemState`].
    pub fn solve_state(&self, m: &[f64]) -> NumResult<SystemState> {
        if m.len() != self.n() {
            return Err(NumError::DimensionMismatch { expected: self.n(), actual: m.len() });
        }
        for &mi in m {
            if !(mi >= 0.0) || !mi.is_finite() {
                return Err(NumError::Domain {
                    what: "populations must be non-negative and finite",
                    value: mi,
                });
            }
        }
        // Zero demand: phi = 0 exactly (limit case of Assumption 1).
        let peak_demand: f64 =
            self.cps.iter().zip(m).map(|(cp, &mi)| mi * cp.throughput().peak()).sum();
        let phi = if peak_demand == 0.0 {
            0.0
        } else {
            // Initial bracket guess: utilization if nobody slowed down.
            let guess = self.utilization.phi(peak_demand, self.mu);
            let step = if guess.is_finite() && guess > 0.0 { guess } else { 1.0 };
            let g = |phi: f64| self.gap(phi, m);
            solve_increasing(&g, 0.0, step, self.tol)?.x
        };
        self.state_at_phi(phi, m)
    }

    /// Assembles the state at a *given* utilization (no solving) — also
    /// used by tests to probe off-equilibrium points.
    pub fn state_at_phi(&self, phi: f64, m: &[f64]) -> NumResult<SystemState> {
        if m.len() != self.n() {
            return Err(NumError::DimensionMismatch { expected: self.n(), actual: m.len() });
        }
        let lambda: Vec<f64> = self.cps.iter().map(|cp| cp.lambda(phi)).collect();
        let theta_i: Vec<f64> = lambda.iter().zip(m).map(|(l, &mi)| mi * l).collect();
        let dg_dphi = self.dgap_dphi(phi, m);
        Ok(SystemState { phi, m: m.to_vec(), lambda, theta_i, dg_dphi })
    }

    /// Solves the fixed point for the populations induced by effective
    /// prices `t` (i.e. `m_i = m_i(t_i)` first, then Definition 1).
    pub fn state_at_prices(&self, t: &[f64]) -> NumResult<SystemState> {
        let m = self.populations(t)?;
        self.solve_state(&m)
    }

    /// Solves the fixed point under a *uniform* effective price, the
    /// one-sided-pricing case `t_i = p` of §3.2.
    pub fn state_at_uniform_price(&self, p: f64) -> NumResult<SystemState> {
        let t = vec![p; self.n()];
        self.state_at_prices(&t)
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("n_cps", &self.n())
            .field("mu", &self.mu)
            .field("utilization", &self.utilization.name())
            .finish()
    }
}

/// A solved (or probed) system state: everything Definition 1 determines.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemState {
    /// System utilization `φ`.
    pub phi: f64,
    /// Per-CP user populations `m_i`.
    pub m: Vec<f64>,
    /// Per-CP per-user throughput `λ_i(φ)`.
    pub lambda: Vec<f64>,
    /// Per-CP aggregate throughput `θ_i = m_i λ_i(φ)`.
    pub theta_i: Vec<f64>,
    /// Gap slope `dg/dφ` at `φ` (Equation (2)); positive by Lemma 1.
    pub dg_dphi: f64,
}

impl SystemState {
    /// Aggregate throughput `θ = Σ_i θ_i`.
    pub fn theta(&self) -> f64 {
        self.theta_i.iter().sum()
    }

    /// Number of providers.
    pub fn n(&self) -> usize {
        self.theta_i.len()
    }

    /// Residual of the Definition 1 fixed point under a given system —
    /// `|g(φ)|`; small for solved states.
    pub fn residual(&self, system: &System) -> f64 {
        system.gap(self.phi, &self.m).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::ExpDemand;
    use crate::throughput::ExpThroughput;
    use crate::utilization::{LinearUtilization, QueueUtilization};

    /// The paper's §3.2 example: 9 CPs, (alpha, beta) in {1,3,5}^2, mu = 1.
    pub(crate) fn paper_section3_system() -> System {
        let mut cps = Vec::new();
        for &alpha in &[1.0, 3.0, 5.0] {
            for &beta in &[1.0, 3.0, 5.0] {
                cps.push(
                    ContentProvider::builder(format!("a{alpha}-b{beta}"))
                        .demand(ExpDemand::new(1.0, alpha))
                        .throughput(ExpThroughput::new(1.0, beta))
                        .profitability(1.0)
                        .build(),
                );
            }
        }
        System::new(cps, 1.0, LinearUtilization).unwrap()
    }

    #[test]
    fn fixed_point_satisfies_definition1() {
        let sys = paper_section3_system();
        let state = sys.state_at_uniform_price(0.5).unwrap();
        // phi = Phi(theta, mu) must hold at the solution.
        let lhs = state.phi;
        let rhs = sys.utilization_fn().phi(state.theta(), sys.mu());
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
        assert!(state.residual(&sys) < 1e-10);
    }

    #[test]
    fn gap_is_strictly_increasing() {
        // Lemma 1.
        let sys = paper_section3_system();
        let m = sys.populations(&[0.4; 9]).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..50 {
            let phi = i as f64 * 0.1;
            let g = sys.gap(phi, &m);
            assert!(g > prev, "gap not increasing at phi = {phi}");
            prev = g;
        }
    }

    #[test]
    fn dgap_matches_finite_difference() {
        let sys = paper_section3_system();
        let m = sys.populations(&[0.3; 9]).unwrap();
        for phi in [0.2, 0.8, 1.5] {
            let fd = subcomp_num::diff::derivative(&|x| sys.gap(x, &m), phi).unwrap();
            let an = sys.dgap_dphi(phi, &m);
            assert!((fd - an).abs() < 1e-6, "phi {phi}: {fd} vs {an}");
        }
    }

    #[test]
    fn zero_population_zero_utilization() {
        let sys = paper_section3_system();
        let state = sys.solve_state(&[0.0; 9]).unwrap();
        assert_eq!(state.phi, 0.0);
        assert_eq!(state.theta(), 0.0);
    }

    #[test]
    fn empty_system() {
        let sys = System::new(vec![], 1.0, LinearUtilization).unwrap();
        let state = sys.solve_state(&[]).unwrap();
        assert_eq!(state.phi, 0.0);
        assert_eq!(state.n(), 0);
    }

    #[test]
    fn capacity_must_be_positive() {
        assert!(System::new(vec![], 0.0, LinearUtilization).is_err());
        assert!(System::new(vec![], -1.0, LinearUtilization).is_err());
        let sys = paper_section3_system();
        assert!(sys.with_capacity(0.0).is_err());
    }

    #[test]
    fn populations_reject_wrong_arity() {
        let sys = paper_section3_system();
        assert!(sys.populations(&[0.5]).is_err());
        assert!(sys.solve_state(&[0.5]).is_err());
    }

    #[test]
    fn negative_population_rejected() {
        let sys = paper_section3_system();
        let mut m = vec![0.1; 9];
        m[3] = -0.1;
        assert!(sys.solve_state(&m).is_err());
    }

    #[test]
    fn more_capacity_less_utilization() {
        // Theorem 1 (capacity direction), verified end to end.
        let sys = paper_section3_system();
        let m = sys.populations(&[0.4; 9]).unwrap();
        let s1 = sys.solve_state(&m).unwrap();
        let s2 = sys.with_capacity(2.0).unwrap().solve_state(&m).unwrap();
        assert!(s2.phi < s1.phi);
        assert!(s2.theta() > s1.theta());
    }

    #[test]
    fn more_users_more_utilization() {
        // Theorem 1 (user direction).
        let sys = paper_section3_system();
        let m1 = vec![0.4; 9];
        let mut m2 = m1.clone();
        m2[0] += 0.2;
        let s1 = sys.solve_state(&m1).unwrap();
        let s2 = sys.solve_state(&m2).unwrap();
        assert!(s2.phi > s1.phi);
        // CP 0 gains throughput; all others lose.
        assert!(s2.theta_i[0] > s1.theta_i[0]);
        for j in 1..9 {
            assert!(s2.theta_i[j] < s1.theta_i[j], "CP {j} should lose throughput");
        }
    }

    #[test]
    fn queue_family_stays_below_capacity() {
        let cps = vec![ContentProvider::builder("heavy")
            .demand(ExpDemand::new(5.0, 1.0))
            .throughput(ExpThroughput::new(2.0, 1.0))
            .profitability(1.0)
            .build()];
        let sys = System::new(cps, 1.0, QueueUtilization).unwrap();
        let state = sys.state_at_uniform_price(0.1).unwrap();
        assert!(state.theta() < 1.0, "theta {} must stay below mu", state.theta());
        assert!(state.phi.is_finite());
        assert!(state.residual(&sys) < 1e-9);
    }

    #[test]
    fn uniform_price_equals_explicit_vector() {
        let sys = paper_section3_system();
        let a = sys.state_at_uniform_price(0.7).unwrap();
        let b = sys.state_at_prices(&[0.7; 9]).unwrap();
        assert!((a.phi - b.phi).abs() < 1e-14);
    }

    #[test]
    fn heavier_demand_raises_utilization_price_lowers_it() {
        let sys = paper_section3_system();
        let hi = sys.state_at_uniform_price(0.1).unwrap();
        let lo = sys.state_at_uniform_price(1.5).unwrap();
        assert!(hi.phi > lo.phi);
    }

    #[test]
    fn debug_format() {
        let sys = paper_section3_system();
        let s = format!("{sys:?}");
        assert!(s.contains("n_cps: 9"));
    }
}
