//! The system `(m, µ)` and its congestion fixed point (Definition 1).
//!
//! Given user populations `m` and capacity `µ`, the system settles at the
//! unique utilization `φ` where supply meets demand:
//!
//! ```text
//! φ = Φ( Σ_k m_k λ_k(φ), µ )      ⇔      g(φ) := Θ(φ, µ) − Σ_k m_k λ_k(φ) = 0
//! ```
//!
//! Lemma 1 shows `g` is strictly increasing with a sign change, so the root
//! is unique; [`System::solve_state`] brackets it by geometric expansion and
//! polishes with Brent's method, returning a [`SystemState`] with every
//! quantity downstream analysis needs (per-CP populations, throughputs, the
//! gap slope `dg/dφ` of Equation (2)).

use crate::cp::ContentProvider;
use crate::utilization::UtilizationFn;
use subcomp_num::roots::solve_increasing_seeded;
use subcomp_num::{NumError, NumResult, Tolerance};

/// Precompiled hot-loop view of the provider list, built once per
/// [`System`] so the congestion gap `g(φ)` can be evaluated without
/// virtual dispatch and with one `e^{-βφ}` per *distinct* `β` instead of
/// one per provider. Exponential-family deduplication is bit-exact: `exp`
/// is a pure function, so providers sharing the same `β` bits receive the
/// identical value they would have computed through
/// [`crate::throughput::ThroughputFn::lambda`].
#[derive(Debug, Clone, Default)]
struct SystemKernel {
    /// Peak throughput `λ_k(0)` per provider.
    peaks: Vec<f64>,
    /// `λ₀` per provider (unused entries for non-exponential providers).
    lambda0: Vec<f64>,
    /// Index into [`SystemKernel::betas`]; `usize::MAX` marks a provider
    /// outside the exponential family (evaluated through the trait object).
    beta_idx: Vec<usize>,
    /// Distinct `β` values (bitwise comparison, first-appearance order).
    betas: Vec<f64>,
    /// Whether every provider is exponential-family (fast loop, no branch).
    all_exp: bool,
    /// Whether the utilization family is the paper's linear `Θ = φµ`.
    linear: bool,
}

const GENERIC_CP: usize = usize::MAX;

impl SystemKernel {
    /// Fills `exp[j] = e^{-β_j φ}` for every distinct `β` — the one
    /// expression the kernel's bit-exactness argument hinges on, kept in
    /// exactly one place so the demand, slope and assembly paths cannot
    /// drift apart.
    #[inline]
    fn fill_exp(&self, phi: f64, exp: &mut [f64]) {
        debug_assert_eq!(exp.len(), self.betas.len(), "scratch not prepared for this system");
        for (e, &b) in exp.iter_mut().zip(&self.betas) {
            *e = (-b * phi).exp();
        }
    }

    fn build(cps: &[ContentProvider], utilization: &dyn UtilizationFn) -> SystemKernel {
        let n = cps.len();
        let mut peaks = Vec::with_capacity(n);
        let mut lambda0 = Vec::with_capacity(n);
        let mut beta_idx = Vec::with_capacity(n);
        let mut betas: Vec<f64> = Vec::new();
        let mut all_exp = true;
        for cp in cps {
            peaks.push(cp.throughput().peak());
            match cp.throughput().exp_coeffs() {
                Some((l0, beta)) => {
                    let idx = betas
                        .iter()
                        .position(|b| b.to_bits() == beta.to_bits())
                        .unwrap_or_else(|| {
                            betas.push(beta);
                            betas.len() - 1
                        });
                    lambda0.push(l0);
                    beta_idx.push(idx);
                }
                None => {
                    lambda0.push(0.0);
                    beta_idx.push(GENERIC_CP);
                    all_exp = false;
                }
            }
        }
        SystemKernel { peaks, lambda0, beta_idx, betas, all_exp, linear: utilization.is_linear() }
    }

    /// Re-derives the kernel slot of provider `idx` after `cps[idx]` was
    /// replaced: cached peak, `λ₀`, and the distinct-`β` assignment. A new
    /// `β` is appended to the table (results do not depend on table order:
    /// every provider's `λ_j = λ₀_j e^{-β_j φ}` is computed from its own
    /// slot and accumulated in provider order, so any table holding the
    /// right bits is bit-identical to a fresh
    /// [`SystemKernel::build`]). Returns `true` when the provider's *old*
    /// `β` slot became unreferenced — the caller should then rebuild the
    /// kernel so the distinct-`β` table does not accumulate dead entries
    /// across long patch sequences.
    fn patch_slot(&mut self, idx: usize, cp: &ContentProvider) -> bool {
        let old_slot = self.beta_idx[idx];
        self.peaks[idx] = cp.throughput().peak();
        match cp.throughput().exp_coeffs() {
            Some((l0, beta)) => {
                let slot =
                    self.betas.iter().position(|b| b.to_bits() == beta.to_bits()).unwrap_or_else(
                        || {
                            self.betas.push(beta);
                            self.betas.len() - 1
                        },
                    );
                self.lambda0[idx] = l0;
                self.beta_idx[idx] = slot;
            }
            None => {
                self.lambda0[idx] = 0.0;
                self.beta_idx[idx] = GENERIC_CP;
            }
        }
        self.all_exp = self.beta_idx.iter().all(|&s| s != GENERIC_CP);
        old_slot != GENERIC_CP
            && old_slot != self.beta_idx[idx]
            && !self.beta_idx.contains(&old_slot)
    }
}

/// Reusable scratch space for the allocation-free state solvers
/// ([`System::solve_state_into`] and friends). Create one per worker with
/// [`System::make_scratch`] (or default-construct and let the solvers size
/// it); after the first solve of a given system no further heap
/// allocation occurs, and a scratch can be reused across systems of any
/// size (buffers only ever grow).
#[derive(Debug, Clone, Default)]
pub struct StateScratch {
    /// `e^{-βφ}` per distinct `β` of the current system.
    exp: Vec<f64>,
    /// Population buffer for [`System::state_at_prices_into`].
    m: Vec<f64>,
}

/// An access network shared by a set of content providers.
///
/// Holds the CP population (with their demand/throughput primitives), the
/// ISP capacity `µ`, and the utilization family `Φ`. The *state* of the
/// system for specific populations or effective prices is computed by
/// [`System::solve_state`] / [`System::state_at_prices`].
#[derive(Clone)]
pub struct System {
    cps: Vec<ContentProvider>,
    mu: f64,
    utilization: Box<dyn UtilizationFn>,
    tol: Tolerance,
    kernel: SystemKernel,
}

impl System {
    /// Creates a system; requires `µ > 0`.
    pub fn new(
        cps: Vec<ContentProvider>,
        mu: f64,
        utilization: impl UtilizationFn + 'static,
    ) -> NumResult<Self> {
        if !(mu > 0.0) || !mu.is_finite() {
            return Err(NumError::Domain {
                what: "capacity must be positive and finite",
                value: mu,
            });
        }
        let utilization: Box<dyn UtilizationFn> = Box::new(utilization);
        let kernel = SystemKernel::build(&cps, utilization.as_ref());
        Ok(System {
            cps,
            mu,
            utilization,
            tol: Tolerance::new(1e-13, 1e-13).with_max_iter(300),
            kernel,
        })
    }

    /// Number of providers.
    pub fn n(&self) -> usize {
        self.cps.len()
    }

    /// The providers.
    pub fn cps(&self) -> &[ContentProvider] {
        &self.cps
    }

    /// Provider `i`.
    pub fn cp(&self, i: usize) -> &ContentProvider {
        &self.cps[i]
    }

    /// Capacity `µ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The utilization family.
    pub fn utilization_fn(&self) -> &dyn UtilizationFn {
        self.utilization.as_ref()
    }

    /// Sets the capacity `µ` in place — a single scalar write. The
    /// precompiled [`SystemKernel`] caches only provider-side quantities
    /// (peaks, `λ₀`, the distinct-`β` table) plus the utilization-family
    /// flag, none of which depend on `µ`, so reparameterizing a `µ`-sweep
    /// point costs nothing beyond validation and results are bit-identical
    /// to rebuilding the system at the new capacity (pinned by
    /// `tests/axis_continuation.rs`).
    pub fn set_mu(&mut self, mu: f64) -> NumResult<()> {
        if !(mu > 0.0) || !mu.is_finite() {
            return Err(NumError::Domain {
                what: "capacity must be positive and finite",
                value: mu,
            });
        }
        self.mu = mu;
        Ok(())
    }

    /// Sets provider `i`'s profitability `v_i` in place — a single scalar
    /// write. Profitability never enters the congestion kernel (it only
    /// scales utilities downstream), so the kernel is untouched and the
    /// write is allocation-free; the `v`-axis continuation sweeps rely on
    /// this.
    pub fn set_profitability(&mut self, i: usize, v: f64) -> NumResult<()> {
        if i >= self.n() {
            return Err(NumError::DimensionMismatch { expected: self.n(), actual: i });
        }
        if !(v >= 0.0) || !v.is_finite() {
            return Err(NumError::Domain {
                what: "profitability must be non-negative and finite",
                value: v,
            });
        }
        self.cps[i].set_profitability(v);
        Ok(())
    }

    /// Replaces whole providers in place, surgically patching the
    /// precompiled kernel instead of rebuilding it: only the affected
    /// slots' cached peaks, `λ₀`s and distinct-`β` assignments are
    /// re-derived (a genuinely new `β` appends one table entry; the one
    /// slow path — a patch orphaning the *last* reference to an old `β` —
    /// falls back to a full kernel rebuild so the table stays minimal).
    /// Results are bit-identical to `System::new` on the patched provider
    /// list for any patch sequence, pinned by `tests/axis_continuation.rs`.
    ///
    /// Indices are validated up front; an out-of-range index leaves the
    /// system untouched.
    pub fn patch_cps(
        &mut self,
        patches: impl IntoIterator<Item = (usize, ContentProvider)>,
    ) -> NumResult<()> {
        let patches: Vec<(usize, ContentProvider)> = patches.into_iter().collect();
        for &(i, _) in &patches {
            if i >= self.n() {
                return Err(NumError::DimensionMismatch { expected: self.n(), actual: i });
            }
        }
        let mut needs_rebuild = false;
        for (i, cp) in patches {
            self.cps[i] = cp;
            needs_rebuild |= self.kernel.patch_slot(i, &self.cps[i]);
        }
        if needs_rebuild {
            self.kernel = SystemKernel::build(&self.cps, self.utilization.as_ref());
        }
        Ok(())
    }

    /// Returns a copy with capacity `µ'` — Theorem 1 capacity sweeps and
    /// the ISP's investment extension both use this. A thin shim over the
    /// in-place [`System::set_mu`].
    pub fn with_capacity(&self, mu: f64) -> NumResult<System> {
        let mut sys = self.clone();
        sys.set_mu(mu)?;
        Ok(sys)
    }

    /// Returns a copy with the fixed-point solver tolerance replaced.
    pub fn with_tolerance(&self, tol: Tolerance) -> System {
        System { tol, ..self.clone() }
    }

    /// The fixed-point solver tolerance. The lane engine copies this so
    /// batched φ-solves stop at exactly the same criterion as scalar ones.
    pub fn tolerance(&self) -> Tolerance {
        self.tol
    }

    /// Populations induced by per-CP effective prices `t`.
    pub fn populations(&self, t: &[f64]) -> NumResult<Vec<f64>> {
        if t.len() != self.n() {
            return Err(NumError::DimensionMismatch { expected: self.n(), actual: t.len() });
        }
        Ok(self.cps.iter().zip(t).map(|(cp, &ti)| cp.population(ti)).collect())
    }

    /// The gap function `g(φ) = Θ(φ, µ) − Σ_k m_k λ_k(φ)` of Lemma 1.
    pub fn gap(&self, phi: f64, m: &[f64]) -> f64 {
        let demand: f64 = self.cps.iter().zip(m).map(|(cp, &mi)| mi * cp.lambda(phi)).sum();
        self.utilization.theta(phi, self.mu) - demand
    }

    /// The gap slope `dg/dφ = ∂Θ/∂φ − Σ_k m_k dλ_k/dφ` (Equation (2));
    /// strictly positive.
    pub fn dgap_dphi(&self, phi: f64, m: &[f64]) -> f64 {
        let demand_slope: f64 =
            self.cps.iter().zip(m).map(|(cp, &mi)| mi * cp.throughput().dlambda_dphi(phi)).sum();
        self.utilization.dtheta_dphi(phi, self.mu) - demand_slope
    }

    /// Solves the congestion fixed point of Definition 1 for populations
    /// `m`, returning the full [`SystemState`].
    pub fn solve_state(&self, m: &[f64]) -> NumResult<SystemState> {
        let mut scratch = self.make_scratch();
        let mut state = SystemState::empty();
        self.solve_state_into(m, &mut scratch, &mut state)?;
        Ok(state)
    }

    /// Assembles the state at a *given* utilization (no solving) — also
    /// used by tests to probe off-equilibrium points.
    pub fn state_at_phi(&self, phi: f64, m: &[f64]) -> NumResult<SystemState> {
        let mut scratch = self.make_scratch();
        let mut state = SystemState::empty();
        self.state_at_phi_into(phi, m, &mut scratch, &mut state)?;
        Ok(state)
    }

    /// Solves the fixed point for the populations induced by effective
    /// prices `t` (i.e. `m_i = m_i(t_i)` first, then Definition 1).
    pub fn state_at_prices(&self, t: &[f64]) -> NumResult<SystemState> {
        let m = self.populations(t)?;
        self.solve_state(&m)
    }

    // --- Allocation-free state engine -----------------------------------
    //
    // The `_into` family below is the workhorse behind every solver hot
    // path: all outputs land in caller-owned buffers, all transient work
    // uses a caller-owned [`StateScratch`], and after warm-up a solve
    // performs zero heap allocation. Results are bit-identical to the
    // allocating wrappers above (which now delegate here), as pinned by
    // the golden-snapshot tier and the workspace-equivalence proptests.

    /// Creates a [`StateScratch`] pre-sized for this system.
    pub fn make_scratch(&self) -> StateScratch {
        let mut scratch = StateScratch::default();
        self.prepare_scratch(&mut scratch);
        scratch
    }

    /// Resizes `scratch` for this system (no-op once warm; never shrinks
    /// capacity, so a scratch can hop between systems without churn).
    pub fn prepare_scratch(&self, scratch: &mut StateScratch) {
        scratch.exp.resize(self.kernel.betas.len(), 0.0);
    }

    /// The inverse utilization `Θ(φ, µ)` with the linear family inlined.
    #[inline]
    fn theta_inv(&self, phi: f64) -> f64 {
        if self.kernel.linear {
            phi * self.mu
        } else {
            self.utilization.theta(phi, self.mu)
        }
    }

    /// Aggregate demand `Σ_k m_k λ_k(φ)` through the kernel: one `exp` per
    /// distinct `β`, accumulated in provider order (bit-identical to the
    /// naive per-provider evaluation in [`System::gap`]).
    #[inline]
    fn demand_with(&self, phi: f64, m: &[f64], exp: &mut [f64]) -> f64 {
        let k = &self.kernel;
        k.fill_exp(phi, exp);
        let mut demand = 0.0;
        if k.all_exp {
            for j in 0..m.len() {
                demand += m[j] * (k.lambda0[j] * exp[k.beta_idx[j]]);
            }
        } else {
            for j in 0..m.len() {
                let lam = if k.beta_idx[j] != GENERIC_CP {
                    k.lambda0[j] * exp[k.beta_idx[j]]
                } else {
                    self.cps[j].lambda(phi)
                };
                demand += m[j] * lam;
            }
        }
        demand
    }

    /// [`System::gap`] evaluated through the kernel — bit-identical values,
    /// no allocation, no per-provider virtual dispatch.
    pub fn gap_with(&self, phi: f64, m: &[f64], scratch: &mut StateScratch) -> f64 {
        self.prepare_scratch(scratch);
        self.theta_inv(phi) - self.demand_with(phi, m, &mut scratch.exp)
    }

    /// Solves Definition 1 for the utilization `φ` alone — the innermost
    /// loop of every best-response evaluation. Bit-identical to the root
    /// [`System::solve_state`] finds; allocation-free given a warm scratch.
    pub fn solve_phi_with(&self, m: &[f64], scratch: &mut StateScratch) -> NumResult<f64> {
        self.solve_phi_inner(m, scratch)
    }

    fn solve_phi_inner(&self, m: &[f64], scratch: &mut StateScratch) -> NumResult<f64> {
        if m.len() != self.n() {
            return Err(NumError::DimensionMismatch { expected: self.n(), actual: m.len() });
        }
        self.prepare_scratch(scratch);
        let k = &self.kernel;
        // One pass merges the population domain checks with the peak-demand
        // accumulation (zero demand means phi = 0 exactly, the limit case
        // of Assumption 1). Detection order matches the two-pass layout:
        // the first offending population errors before any solving starts.
        let mut peak_demand = 0.0;
        for (&mi, pk) in m.iter().zip(&k.peaks) {
            if !(mi >= 0.0) || !mi.is_finite() {
                return Err(NumError::Domain {
                    what: "populations must be non-negative and finite",
                    value: mi,
                });
            }
            peak_demand += mi * pk;
        }
        if peak_demand == 0.0 {
            return Ok(0.0);
        }
        // Initial bracket guess: utilization if nobody slowed down.
        let guess = self.utilization.phi(peak_demand, self.mu);
        let step = if guess.is_finite() && guess > 0.0 { guess } else { 1.0 };
        // g(0) in closed form: λ_k(0) = λ₀ e^0 = λ₀ is exactly the peak,
        // so the demand term at φ = 0 is exactly `peak_demand` — reusing it
        // skips one full gap evaluation with identical bits.
        let g0 = self.theta_inv(0.0) - peak_demand;
        if k.all_exp && k.linear {
            // Fully specialized hot loop (the paper's setting: exponential
            // throughputs on the linear utilization): slices hoisted out of
            // the kernel so the root finder's inner loop is straight-line
            // array math. Bit-identical to the general closure below.
            let mu = self.mu;
            let (lambda0, beta_idx, betas) = (&k.lambda0[..], &k.beta_idx[..], &k.betas[..]);
            let exp = &mut scratch.exp[..];
            let mut g = |phi: f64| {
                for (e, &b) in exp.iter_mut().zip(betas) {
                    *e = (-b * phi).exp(); // = SystemKernel::fill_exp, slice-hoisted
                }
                let mut demand = 0.0;
                for j in 0..m.len() {
                    demand += m[j] * (lambda0[j] * exp[beta_idx[j]]);
                }
                phi * mu - demand
            };
            Ok(solve_increasing_seeded(&mut g, 0.0, g0, step, self.tol)?.x)
        } else {
            let exp = &mut scratch.exp;
            let mut g = |phi: f64| self.theta_inv(phi) - self.demand_with(phi, m, exp);
            Ok(solve_increasing_seeded(&mut g, 0.0, g0, step, self.tol)?.x)
        }
    }

    /// Provider `j`'s per-user throughput `λ_j(φ)` through the kernel —
    /// bit-identical to `cp(j).lambda(phi)` (same expression), without the
    /// virtual call for exponential-family providers.
    #[inline]
    pub fn lambda_of(&self, j: usize, phi: f64) -> f64 {
        let k = &self.kernel;
        if k.beta_idx[j] != GENERIC_CP {
            k.lambda0[j] * (-k.betas[k.beta_idx[j]] * phi).exp()
        } else {
            self.cps[j].lambda(phi)
        }
    }

    /// [`System::dgap_dphi`] through the kernel: for exponential-family
    /// providers `dλ/dφ = −β · (λ₀ e^{-βφ})` — the identical association
    /// [`crate::throughput::ExpThroughput`] computes — with one `exp` per
    /// distinct `β`. Bit-identical values, no per-provider dispatch.
    pub fn dgap_dphi_with(&self, phi: f64, m: &[f64], scratch: &mut StateScratch) -> f64 {
        self.prepare_scratch(scratch);
        self.kernel.fill_exp(phi, &mut scratch.exp);
        self.dgap_from_exp(phi, m, &scratch.exp)
    }

    /// The gap slope given an exp table already filled at this `phi`.
    fn dgap_from_exp(&self, phi: f64, m: &[f64], exp: &[f64]) -> f64 {
        let k = &self.kernel;
        let mut demand_slope = 0.0;
        for j in 0..m.len() {
            let dl = if k.beta_idx[j] != GENERIC_CP {
                -k.betas[k.beta_idx[j]] * (k.lambda0[j] * exp[k.beta_idx[j]])
            } else {
                self.cps[j].throughput().dlambda_dphi(phi)
            };
            demand_slope += m[j] * dl;
        }
        self.utilization.dtheta_dphi(phi, self.mu) - demand_slope
    }

    /// Populations induced by effective prices `t`, written into `out`
    /// (resized as needed; allocation-free once warm).
    pub fn populations_into(&self, t: &[f64], out: &mut Vec<f64>) -> NumResult<()> {
        if t.len() != self.n() {
            return Err(NumError::DimensionMismatch { expected: self.n(), actual: t.len() });
        }
        out.resize(self.n(), 0.0);
        for ((o, cp), &ti) in out.iter_mut().zip(&self.cps).zip(t) {
            *o = cp.population(ti);
        }
        Ok(())
    }

    /// [`System::state_at_phi`] into a caller-owned [`SystemState`].
    pub fn state_at_phi_into(
        &self,
        phi: f64,
        m: &[f64],
        scratch: &mut StateScratch,
        out: &mut SystemState,
    ) -> NumResult<()> {
        if m.len() != self.n() {
            return Err(NumError::DimensionMismatch { expected: self.n(), actual: m.len() });
        }
        self.prepare_scratch(scratch);
        let n = self.n();
        out.phi = phi;
        out.m.resize(n, 0.0);
        out.m.copy_from_slice(m);
        out.lambda.resize(n, 0.0);
        let k = &self.kernel;
        k.fill_exp(phi, &mut scratch.exp);
        for j in 0..n {
            out.lambda[j] = if k.beta_idx[j] != GENERIC_CP {
                k.lambda0[j] * scratch.exp[k.beta_idx[j]]
            } else {
                self.cps[j].lambda(phi)
            };
        }
        out.theta_i.resize(n, 0.0);
        for j in 0..n {
            out.theta_i[j] = m[j] * out.lambda[j];
        }
        // The exp table already holds e^{-βφ} at exactly this φ; the
        // kernelized slope is bit-identical to `dgap_dphi` (same
        // association as ExpThroughput::dlambda_dphi).
        out.dg_dphi = self.dgap_from_exp(phi, m, &scratch.exp);
        Ok(())
    }

    /// [`System::solve_state`] into a caller-owned [`SystemState`].
    pub fn solve_state_into(
        &self,
        m: &[f64],
        scratch: &mut StateScratch,
        out: &mut SystemState,
    ) -> NumResult<()> {
        let phi = self.solve_phi_inner(m, scratch)?;
        self.state_at_phi_into(phi, m, scratch, out)
    }

    /// [`System::state_at_prices`] into a caller-owned [`SystemState`].
    pub fn state_at_prices_into(
        &self,
        t: &[f64],
        scratch: &mut StateScratch,
        out: &mut SystemState,
    ) -> NumResult<()> {
        // Detach the population buffer so the scratch stays usable for the
        // solve; `mem::take` swaps in an empty Vec (no allocation).
        let mut m = std::mem::take(&mut scratch.m);
        let result =
            self.populations_into(t, &mut m).and_then(|()| self.solve_state_into(&m, scratch, out));
        scratch.m = m;
        result
    }

    /// Solves the fixed point under a *uniform* effective price, the
    /// one-sided-pricing case `t_i = p` of §3.2.
    pub fn state_at_uniform_price(&self, p: f64) -> NumResult<SystemState> {
        let t = vec![p; self.n()];
        self.state_at_prices(&t)
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("n_cps", &self.n())
            .field("mu", &self.mu)
            .field("utilization", &self.utilization.name())
            .finish()
    }
}

/// A solved (or probed) system state: everything Definition 1 determines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemState {
    /// System utilization `φ`.
    pub phi: f64,
    /// Per-CP user populations `m_i`.
    pub m: Vec<f64>,
    /// Per-CP per-user throughput `λ_i(φ)`.
    pub lambda: Vec<f64>,
    /// Per-CP aggregate throughput `θ_i = m_i λ_i(φ)`.
    pub theta_i: Vec<f64>,
    /// Gap slope `dg/dφ` at `φ` (Equation (2)); positive by Lemma 1.
    pub dg_dphi: f64,
}

impl SystemState {
    /// An empty state to use as a reusable output buffer for the `_into`
    /// solvers ([`System::solve_state_into`] and friends); its vectors are
    /// resized in place on each solve, so one buffer serves systems of any
    /// size without churn.
    pub fn empty() -> SystemState {
        SystemState::default()
    }

    /// Aggregate throughput `θ = Σ_i θ_i`.
    pub fn theta(&self) -> f64 {
        self.theta_i.iter().sum()
    }

    /// Number of providers.
    pub fn n(&self) -> usize {
        self.theta_i.len()
    }

    /// Residual of the Definition 1 fixed point under a given system —
    /// `|g(φ)|`; small for solved states.
    pub fn residual(&self, system: &System) -> f64 {
        system.gap(self.phi, &self.m).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::ExpDemand;
    use crate::throughput::ExpThroughput;
    use crate::utilization::{LinearUtilization, QueueUtilization};

    /// The paper's §3.2 example: 9 CPs, (alpha, beta) in {1,3,5}^2, mu = 1.
    pub(crate) fn paper_section3_system() -> System {
        let mut cps = Vec::new();
        for &alpha in &[1.0, 3.0, 5.0] {
            for &beta in &[1.0, 3.0, 5.0] {
                cps.push(
                    ContentProvider::builder(format!("a{alpha}-b{beta}"))
                        .demand(ExpDemand::new(1.0, alpha))
                        .throughput(ExpThroughput::new(1.0, beta))
                        .profitability(1.0)
                        .build(),
                );
            }
        }
        System::new(cps, 1.0, LinearUtilization).unwrap()
    }

    #[test]
    fn fixed_point_satisfies_definition1() {
        let sys = paper_section3_system();
        let state = sys.state_at_uniform_price(0.5).unwrap();
        // phi = Phi(theta, mu) must hold at the solution.
        let lhs = state.phi;
        let rhs = sys.utilization_fn().phi(state.theta(), sys.mu());
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
        assert!(state.residual(&sys) < 1e-10);
    }

    #[test]
    fn gap_is_strictly_increasing() {
        // Lemma 1.
        let sys = paper_section3_system();
        let m = sys.populations(&[0.4; 9]).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..50 {
            let phi = i as f64 * 0.1;
            let g = sys.gap(phi, &m);
            assert!(g > prev, "gap not increasing at phi = {phi}");
            prev = g;
        }
    }

    #[test]
    fn dgap_matches_finite_difference() {
        let sys = paper_section3_system();
        let m = sys.populations(&[0.3; 9]).unwrap();
        for phi in [0.2, 0.8, 1.5] {
            let fd = subcomp_num::diff::derivative(&|x| sys.gap(x, &m), phi).unwrap();
            let an = sys.dgap_dphi(phi, &m);
            assert!((fd - an).abs() < 1e-6, "phi {phi}: {fd} vs {an}");
        }
    }

    #[test]
    fn zero_population_zero_utilization() {
        let sys = paper_section3_system();
        let state = sys.solve_state(&[0.0; 9]).unwrap();
        assert_eq!(state.phi, 0.0);
        assert_eq!(state.theta(), 0.0);
    }

    #[test]
    fn empty_system() {
        let sys = System::new(vec![], 1.0, LinearUtilization).unwrap();
        let state = sys.solve_state(&[]).unwrap();
        assert_eq!(state.phi, 0.0);
        assert_eq!(state.n(), 0);
    }

    #[test]
    fn capacity_must_be_positive() {
        assert!(System::new(vec![], 0.0, LinearUtilization).is_err());
        assert!(System::new(vec![], -1.0, LinearUtilization).is_err());
        let sys = paper_section3_system();
        assert!(sys.with_capacity(0.0).is_err());
        let mut sys = paper_section3_system();
        assert!(sys.set_mu(0.0).is_err());
        assert!(sys.set_mu(f64::NAN).is_err());
        assert_eq!(sys.mu(), 1.0, "failed set_mu must leave the capacity unchanged");
    }

    #[test]
    fn set_mu_matches_rebuild_bit_exactly() {
        let base = paper_section3_system();
        let m = base.populations(&[0.4; 9]).unwrap();
        let mut patched = base.clone();
        for mu in [0.25, 0.8, 2.0, 7.5] {
            patched.set_mu(mu).unwrap();
            let fresh = {
                let mut cps = Vec::new();
                for &alpha in &[1.0, 3.0, 5.0] {
                    for &beta in &[1.0, 3.0, 5.0] {
                        cps.push(
                            ContentProvider::builder(format!("a{alpha}-b{beta}"))
                                .demand(ExpDemand::new(1.0, alpha))
                                .throughput(ExpThroughput::new(1.0, beta))
                                .profitability(1.0)
                                .build(),
                        );
                    }
                }
                System::new(cps, mu, LinearUtilization).unwrap()
            };
            let a = patched.solve_state(&m).unwrap();
            let b = fresh.solve_state(&m).unwrap();
            assert_eq!(a.phi.to_bits(), b.phi.to_bits(), "mu = {mu}");
            for j in 0..9 {
                assert_eq!(a.theta_i[j].to_bits(), b.theta_i[j].to_bits(), "mu = {mu}, cp {j}");
            }
        }
    }

    #[test]
    fn set_profitability_validates_and_writes_in_place() {
        let mut sys = paper_section3_system();
        sys.set_profitability(3, 2.5).unwrap();
        assert_eq!(sys.cp(3).profitability(), 2.5);
        assert_eq!(sys.cp(2).profitability(), 1.0, "other providers untouched");
        assert!(sys.set_profitability(99, 1.0).is_err());
        assert!(sys.set_profitability(0, -0.1).is_err());
        assert!(sys.set_profitability(0, f64::INFINITY).is_err());
        // The congestion fixed point is independent of profitability.
        let m = sys.populations(&[0.4; 9]).unwrap();
        let before = paper_section3_system().solve_state(&m).unwrap();
        let after = sys.solve_state(&m).unwrap();
        assert_eq!(before.phi.to_bits(), after.phi.to_bits());
    }

    #[test]
    fn patch_cps_matches_rebuild_bit_exactly() {
        // Three patch flavours: β reused from the table, a genuinely new β
        // (appends a distinct-β slot), and one orphaning the last use of an
        // old β (forces the compaction rebuild) — each must be
        // bit-identical to System::new on the patched provider list.
        let mk = |beta: f64| {
            ContentProvider::builder(format!("b{beta}"))
                .demand(ExpDemand::new(1.0, 2.0))
                .throughput(ExpThroughput::new(1.2, beta))
                .profitability(0.8)
                .build()
        };
        let base = vec![mk(2.0), mk(5.0), mk(2.0)];
        let m = [0.5, 0.3, 0.4];
        for (idx, new_beta) in [(2usize, 5.0), (0, 7.0), (1, 2.0)] {
            let mut patched_sys = System::new(base.clone(), 1.0, LinearUtilization).unwrap();
            patched_sys.patch_cps([(idx, mk(new_beta))]).unwrap();
            let mut cps = base.clone();
            cps[idx] = mk(new_beta);
            let fresh = System::new(cps, 1.0, LinearUtilization).unwrap();
            let a = patched_sys.solve_state(&m).unwrap();
            let b = fresh.solve_state(&m).unwrap();
            assert_eq!(a.phi.to_bits(), b.phi.to_bits(), "patch cp {idx} -> beta {new_beta}");
            for j in 0..3 {
                assert_eq!(a.theta_i[j].to_bits(), b.theta_i[j].to_bits());
                assert_eq!(a.lambda[j].to_bits(), b.lambda[j].to_bits());
            }
            assert_eq!(a.dg_dphi.to_bits(), b.dg_dphi.to_bits());
        }
    }

    #[test]
    fn patch_cps_rejects_out_of_range_and_leaves_system_intact() {
        let mut sys = paper_section3_system();
        let cp = sys.cp(0).clone();
        assert!(sys.patch_cps([(0, cp.clone()), (99, cp)]).is_err());
        // Nothing was applied: state solves are unchanged.
        let m = sys.populations(&[0.4; 9]).unwrap();
        let a = sys.solve_state(&m).unwrap();
        let b = paper_section3_system().solve_state(&m).unwrap();
        assert_eq!(a.phi.to_bits(), b.phi.to_bits());
    }

    #[test]
    fn populations_reject_wrong_arity() {
        let sys = paper_section3_system();
        assert!(sys.populations(&[0.5]).is_err());
        assert!(sys.solve_state(&[0.5]).is_err());
    }

    #[test]
    fn negative_population_rejected() {
        let sys = paper_section3_system();
        let mut m = vec![0.1; 9];
        m[3] = -0.1;
        assert!(sys.solve_state(&m).is_err());
    }

    #[test]
    fn more_capacity_less_utilization() {
        // Theorem 1 (capacity direction), verified end to end.
        let sys = paper_section3_system();
        let m = sys.populations(&[0.4; 9]).unwrap();
        let s1 = sys.solve_state(&m).unwrap();
        let s2 = sys.with_capacity(2.0).unwrap().solve_state(&m).unwrap();
        assert!(s2.phi < s1.phi);
        assert!(s2.theta() > s1.theta());
    }

    #[test]
    fn more_users_more_utilization() {
        // Theorem 1 (user direction).
        let sys = paper_section3_system();
        let m1 = vec![0.4; 9];
        let mut m2 = m1.clone();
        m2[0] += 0.2;
        let s1 = sys.solve_state(&m1).unwrap();
        let s2 = sys.solve_state(&m2).unwrap();
        assert!(s2.phi > s1.phi);
        // CP 0 gains throughput; all others lose.
        assert!(s2.theta_i[0] > s1.theta_i[0]);
        for j in 1..9 {
            assert!(s2.theta_i[j] < s1.theta_i[j], "CP {j} should lose throughput");
        }
    }

    #[test]
    fn queue_family_stays_below_capacity() {
        let cps = vec![ContentProvider::builder("heavy")
            .demand(ExpDemand::new(5.0, 1.0))
            .throughput(ExpThroughput::new(2.0, 1.0))
            .profitability(1.0)
            .build()];
        let sys = System::new(cps, 1.0, QueueUtilization).unwrap();
        let state = sys.state_at_uniform_price(0.1).unwrap();
        assert!(state.theta() < 1.0, "theta {} must stay below mu", state.theta());
        assert!(state.phi.is_finite());
        assert!(state.residual(&sys) < 1e-9);
    }

    #[test]
    fn uniform_price_equals_explicit_vector() {
        let sys = paper_section3_system();
        let a = sys.state_at_uniform_price(0.7).unwrap();
        let b = sys.state_at_prices(&[0.7; 9]).unwrap();
        assert!((a.phi - b.phi).abs() < 1e-14);
    }

    #[test]
    fn heavier_demand_raises_utilization_price_lowers_it() {
        let sys = paper_section3_system();
        let hi = sys.state_at_uniform_price(0.1).unwrap();
        let lo = sys.state_at_uniform_price(1.5).unwrap();
        assert!(hi.phi > lo.phi);
    }

    #[test]
    fn debug_format() {
        let sys = paper_section3_system();
        let s = format!("{sys:?}");
        assert!(s.contains("n_cps: 9"));
    }
}
