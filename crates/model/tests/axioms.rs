//! Property tests of the model axioms (Assumptions 1 and 2) across every
//! function family the crate ships, plus cross-family system solves.

use proptest::prelude::*;
use subcomp_model::cp::ContentProvider;
use subcomp_model::demand::{DemandFn, ExpDemand, IsoelasticDemand, LinearDemand, LogisticDemand};
use subcomp_model::system::System;
use subcomp_model::throughput::{ExpThroughput, LogisticThroughput, PowerThroughput, ThroughputFn};
use subcomp_model::utilization::{
    LinearUtilization, PowerUtilization, QueueUtilization, UtilizationFn,
};

fn throughput_family(idx: usize, lambda0: f64, beta: f64) -> Box<dyn ThroughputFn> {
    match idx % 3 {
        0 => Box::new(ExpThroughput::new(lambda0, beta)),
        1 => Box::new(PowerThroughput::new(lambda0, beta)),
        _ => Box::new(LogisticThroughput::new(lambda0, beta + 1.0, 0.5).unwrap()),
    }
}

fn demand_family(idx: usize, m0: f64, alpha: f64) -> Box<dyn DemandFn> {
    match idx % 4 {
        0 => Box::new(ExpDemand::new(m0, alpha)),
        1 => Box::new(LinearDemand::new(m0, 1.0 + alpha).unwrap()),
        2 => Box::new(IsoelasticDemand::new(m0, alpha).unwrap()),
        _ => Box::new(LogisticDemand::new(m0, alpha, 0.8).unwrap()),
    }
}

fn utilization_family(idx: usize) -> Box<dyn UtilizationFn> {
    match idx % 3 {
        0 => Box::new(LinearUtilization),
        1 => Box::new(PowerUtilization::new(1.4).unwrap()),
        _ => Box::new(QueueUtilization),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn throughput_axioms_all_families(
        fam in 0usize..3,
        lambda0 in 0.3f64..3.0,
        beta in 0.5f64..5.0,
        phi in 0.01f64..4.0,
    ) {
        let t = throughput_family(fam, lambda0, beta);
        // Positive, decreasing, derivative negative, elasticity <= 0.
        prop_assert!(t.lambda(phi) > 0.0);
        prop_assert!(t.lambda(phi + 0.1) < t.lambda(phi));
        prop_assert!(t.dlambda_dphi(phi) < 0.0);
        prop_assert!(t.elasticity(phi) <= 0.0);
        // Vanishing tail — the power-law family decays like phi^{-beta},
        // so probe far enough out for the slowest admissible beta.
        prop_assert!(t.lambda(1e6) < 1e-2 * t.peak());
    }

    #[test]
    fn demand_axioms_all_families(
        fam in 0usize..4,
        m0 in 0.3f64..3.0,
        alpha in 0.5f64..5.0,
        t1 in 0.0f64..2.0,
    ) {
        let d = demand_family(fam, m0, alpha);
        prop_assert!(d.m(t1) >= 0.0);
        prop_assert!(d.m(t1 + 0.1) <= d.m(t1) + 1e-12);
        prop_assert!(d.dm_dt(t1) <= 0.0);
        // Scaled copy multiplies the population, preserves elasticity.
        let s = d.scaled(2.0);
        prop_assert!((s.m(t1) - 2.0 * d.m(t1)).abs() < 1e-9);
    }

    #[test]
    fn utilization_inverse_roundtrip(
        fam in 0usize..3,
        theta in 0.01f64..0.9,
        mu in 0.5f64..3.0,
    ) {
        let u = utilization_family(fam);
        let phi = u.phi(theta, mu);
        prop_assume!(phi.is_finite());
        let back = u.theta(phi, mu);
        prop_assert!((back - theta).abs() < 1e-8 * (1.0 + theta));
        // Partials positive.
        prop_assert!(u.dtheta_dphi(phi.max(1e-6), mu) > 0.0);
        prop_assert!(u.dtheta_dmu(phi, mu) >= 0.0);
    }

    #[test]
    fn mixed_family_systems_solve(
        tf in 0usize..3,
        df in 0usize..4,
        uf in 0usize..3,
        mu in 0.4f64..2.5,
        p in 0.0f64..1.5,
    ) {
        // Any combination of families yields a solvable, consistent system.
        let cps = vec![
            ContentProvider::builder("mixed-a")
                .demand_boxed(demand_family(df, 1.0, 2.0))
                .throughput_boxed(throughput_family(tf, 1.0, 2.0))
                .profitability(1.0)
                .build(),
            ContentProvider::builder("mixed-b")
                .demand_boxed(demand_family((df + 1) % 4, 0.7, 4.0))
                .throughput_boxed(throughput_family((tf + 1) % 3, 1.2, 3.0))
                .profitability(0.5)
                .build(),
        ];
        let sys = match uf % 3 {
            0 => System::new(cps, mu, LinearUtilization).unwrap(),
            1 => System::new(cps, mu, PowerUtilization::new(1.4).unwrap()).unwrap(),
            _ => System::new(cps, mu, QueueUtilization).unwrap(),
        };
        let state = sys.state_at_uniform_price(p).unwrap();
        prop_assert!(state.phi >= 0.0 && state.phi.is_finite());
        prop_assert!(state.residual(&sys) < 1e-7, "residual {}", state.residual(&sys));
        prop_assert!(state.dg_dphi > 0.0);
        // Theorem 1 monotonicity survives family mixing.
        let bigger = sys.with_capacity(mu * 1.3).unwrap();
        let state2 = bigger.state_at_uniform_price(p).unwrap();
        prop_assert!(state2.phi <= state.phi + 1e-12);
    }

    #[test]
    fn price_monotonicity_all_families(
        tf in 0usize..3,
        df in 0usize..4,
        p in 0.05f64..1.2,
    ) {
        let cps = vec![ContentProvider::builder("x")
            .demand_boxed(demand_family(df, 1.0, 3.0))
            .throughput_boxed(throughput_family(tf, 1.0, 2.5))
            .profitability(1.0)
            .build()];
        let sys = System::new(cps, 1.0, LinearUtilization).unwrap();
        let lo = sys.state_at_uniform_price(p).unwrap();
        let hi = sys.state_at_uniform_price(p + 0.2).unwrap();
        // Theorem 2: utilization and aggregate throughput fall with price.
        prop_assert!(hi.phi <= lo.phi + 1e-12);
        prop_assert!(hi.theta() <= lo.theta() + 1e-12);
    }
}
