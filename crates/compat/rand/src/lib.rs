//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access to a crates
//! registry, so the real `rand` cannot be fetched. This crate implements the
//! exact API subset `subcomp-sim` consumes — `rngs::StdRng`, `SeedableRng`,
//! and `Rng::gen` — on top of xoshiro256++ seeded through SplitMix64.
//!
//! The stream differs from upstream `rand`'s `StdRng` (which is ChaCha12),
//! but every property the workspace relies on holds: determinism per seed,
//! distinct streams for distinct seeds, and 53-bit-precision uniform `f64`
//! samples in `[0, 1)`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic pseudo-random generator (xoshiro256++ core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seed-construction trait, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

/// Sampling trait, mirroring the `rand::Rng` subset the workspace uses.
pub trait Rng {
    /// Next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the "standard" distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference code).
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(StdRng::seed_from_u64(1).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
