//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the real `criterion`
//! cannot be fetched. This crate provides the API subset the workspace's
//! bench suites use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//!
//! Reported numbers are medians over `sample_size` samples, each sample
//! timing a batch of iterations sized to fill roughly
//! `measurement_time / sample_size`. Good enough for the relative
//! comparisons the suites are tuned for; not a replacement for real
//! criterion when rigorous statistics are needed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            filter: None,
            list_only: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Applies CLI arguments (`cargo bench -- <filter>`, `--list`).
    ///
    /// Recognized: an optional positional substring filter, `--list`, and
    /// (ignored for compatibility) `--bench`/`--profile-time`-style flags.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--list" => self.list_only = true,
                "--bench" | "--test" => {}
                "--profile-time" | "--save-baseline" | "--baseline" | "--load-baseline" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, None, &id.render(), f);
        self
    }

    fn should_run(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the warm-up time for this group (applies globally in this
    /// stand-in; fine for the workspace's per-suite configs).
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.warm_up_time = t;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.render());
        run_one(self.criterion, self.sample_size, &name, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.render());
        run_one(self.criterion, self.sample_size, &name, |b| f(b, input));
        self
    }

    /// Ends the group. (No-op here; exists for API compatibility.)
    pub fn finish(self) {}
}

/// Identifier for one benchmark, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function_name: None, parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function_name: Some(s.to_owned()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function_name: Some(s), parameter: None }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    n_samples: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(iters_per_sample: u64, n_samples: usize) -> Self {
        Bencher { iters_per_sample, n_samples, samples: Vec::with_capacity(n_samples) }
    }

    /// Times `f`, recording one duration sample per configured batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    group_samples: Option<usize>,
    name: &str,
    mut f: F,
) {
    if c.list_only {
        println!("{name}: benchmark");
        return;
    }
    if !c.should_run(name) {
        return;
    }
    let sample_size = group_samples.unwrap_or(c.sample_size);

    // Calibration pass: find how many iterations fit in one sample slot.
    let mut probe = Bencher::new(1, 1);
    let warm_start = Instant::now();
    f(&mut probe);
    let mut per_iter = probe.samples.first().copied().unwrap_or(Duration::from_nanos(1));
    // Keep warming until the configured warm-up time has elapsed.
    while warm_start.elapsed() < c.warm_up_time {
        let mut w = Bencher::new(1, 1);
        f(&mut w);
        per_iter = (per_iter + w.samples.first().copied().unwrap_or(per_iter)) / 2;
    }
    let slot = c.measurement_time.div_f64(sample_size as f64);
    let iters = (slot.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut b = Bencher::new(iters, sample_size);
    f(&mut b);
    if b.samples.is_empty() {
        // The closure never called `b.iter` (e.g. it filtered itself out).
        println!("{name:<48} time: [no samples]");
        return;
    }

    let mut per_iter_ns: Vec<f64> =
        b.samples.iter().map(|d| d.as_nanos() as f64 / iters as f64).collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns.first().copied().unwrap_or(median);
    let hi = per_iter_ns.last().copied().unwrap_or(median);
    println!("{name:<48} time: [{} {} {}]", format_ns(lo), format_ns(median), format_ns(hi));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench harness entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("solve", 8).render(), "solve/8");
        assert_eq!(BenchmarkId::from_parameter(16).render(), "16");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }
}
