//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the real `criterion`
//! cannot be fetched. This crate provides the API subset the workspace's
//! bench suites use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//!
//! Reported numbers are medians over `sample_size` samples, each sample
//! timing a batch of iterations sized to fill roughly
//! `measurement_time / sample_size`. Good enough for the relative
//! comparisons the suites are tuned for; not a replacement for real
//! criterion when rigorous statistics are needed.
//!
//! ## Machine-readable output
//!
//! Setting `SUBCOMP_BENCH_JSON=/path/to/file.json` makes the harness
//! (via [`finalize`], which `criterion_main!` invokes after every group
//! has run) write a JSON document mapping each benchmark id to its median
//! ns/iter — the format behind the committed `BENCH_nash.json` perf
//! trajectory at the repo root. Setting `SUBCOMP_BENCH_QUICK=1` clamps
//! every benchmark to a tiny sample budget (CI smoke mode: proves the
//! harness and the emitter work without paying for stable statistics; the
//! emitted JSON is marked `"quick": true` so nobody mistakes it for a
//! trajectory point).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Medians recorded by every benchmark that ran in this process, in run
/// order: `(full benchmark id, median ns/iter)`.
static RECORDED: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn quick_mode() -> bool {
    std::env::var("SUBCOMP_BENCH_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// Records a computed metric under `name` (ns units), printing it like a
/// timed benchmark and including it in the [`finalize`] JSON.
///
/// The timing loop in [`Bencher::iter`] can only measure *mean* cost per
/// iteration; suites that need distribution statistics — the equilibrium
/// server's p50/p99 request latencies — time individual operations
/// themselves and publish the computed quantiles through this entry
/// point, so they land in the same `SUBCOMP_BENCH_JSON` trajectory file
/// as every timed id.
pub fn record_metric(name: &str, ns: f64) {
    println!("{name:<48} metric: {}", format_ns(ns));
    RECORDED.lock().expect("bench registry poisoned").push((name.to_owned(), ns));
}

/// Writes the recorded medians as JSON if `SUBCOMP_BENCH_JSON` is set.
/// Called automatically by [`criterion_main!`] after all groups finish;
/// public so custom `main`s can opt in too.
///
/// If the target file already holds a document written by this harness,
/// the runs are **merged**: this run's ids overwrite matching entries and
/// every other id is retained, so `cargo bench -p subcomp-bench` (which
/// runs the suites as separate processes, each calling `finalize`) cannot
/// silently truncate the file to the last suite's medians. A merge that
/// retains entries from a quick run keeps the `quick` marker. Delete the
/// file first for a clean slate. Panics if the file cannot be written (a
/// bench harness has no better channel than failing loudly).
pub fn finalize() {
    let Ok(path) = std::env::var("SUBCOMP_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let fresh = RECORDED.lock().expect("bench registry poisoned").clone();
    let mut quick = quick_mode();
    let mut results = fresh.clone();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        if let Some((prior, prior_quick)) = parse_results_json(&existing) {
            let mut retained = 0usize;
            for (name, median) in prior {
                if !fresh.iter().any(|(n, _)| *n == name) {
                    results.push((name, median));
                    retained += 1;
                }
            }
            if retained > 0 {
                println!("merged {retained} median(s) from the existing {path}");
                quick |= prior_quick;
            }
        }
    }
    results.sort_by(|a, b| a.0.cmp(&b.0));
    let doc = render_results_json(&results, quick);
    std::fs::write(&path, doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote benchmark medians to {path}");
}

/// Parses a document previously written by [`finalize`] (and only that —
/// the harness reads back its own canonical output, not arbitrary JSON).
/// Returns the `(id, median)` entries and the `quick` flag, or `None` if
/// the file is not this harness's format.
fn parse_results_json(doc: &str) -> Option<(Vec<(String, f64)>, bool)> {
    if !doc.contains("\"schema\": \"subcomp-bench-v1\"") {
        return None;
    }
    let quick = doc.contains("\"quick\": true");
    let mut entries = Vec::new();
    let mut in_results = false;
    for line in doc.lines() {
        let line = line.trim();
        if line.starts_with("\"results\"") {
            in_results = true;
            continue;
        }
        if !in_results {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        // Canonical entry shape: "id": 123.45[,]
        let Some((name_part, value_part)) = line.rsplit_once(": ") else {
            continue;
        };
        let name = name_part.trim().trim_matches('"');
        let value = value_part.trim_end_matches(',').parse::<f64>().ok()?;
        // The writer only escapes quotes/backslashes; reverse it.
        let name = name.replace("\\\"", "\"").replace("\\\\", "\\");
        entries.push((name, value));
    }
    Some((entries, quick))
}

/// Renders the benchmark registry as a deterministic JSON document:
/// `schema` / `units` / `quick` header plus an id-sorted `results` map.
fn render_results_json(results: &[(String, f64)], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"subcomp-bench-v1\",\n");
    out.push_str("  \"units\": \"ns_per_iter\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"results\": {\n");
    for (k, (name, median)) in results.iter().enumerate() {
        let _ = write!(out, "    \"{}\": {:?}", escape_json(name), median);
        out.push_str(if k + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            filter: None,
            list_only: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Applies CLI arguments (`cargo bench -- <filter>`, `--list`).
    ///
    /// Recognized: an optional positional substring filter, `--list`, and
    /// (ignored for compatibility) `--bench`/`--profile-time`-style flags.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--list" => self.list_only = true,
                "--bench" | "--test" => {}
                "--profile-time" | "--save-baseline" | "--baseline" | "--load-baseline" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, None, &id.render(), f);
        self
    }

    fn should_run(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the warm-up time for this group (applies globally in this
    /// stand-in; fine for the workspace's per-suite configs).
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.warm_up_time = t;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.render());
        run_one(self.criterion, self.sample_size, &name, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.render());
        run_one(self.criterion, self.sample_size, &name, |b| f(b, input));
        self
    }

    /// Ends the group. (No-op here; exists for API compatibility.)
    pub fn finish(self) {}
}

/// Identifier for one benchmark, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function_name: None, parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function_name: Some(s.to_owned()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function_name: Some(s), parameter: None }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    n_samples: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(iters_per_sample: u64, n_samples: usize) -> Self {
        Bencher { iters_per_sample, n_samples, samples: Vec::with_capacity(n_samples) }
    }

    /// Times `f`, recording one duration sample per configured batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    group_samples: Option<usize>,
    name: &str,
    mut f: F,
) {
    if c.list_only {
        println!("{name}: benchmark");
        return;
    }
    if !c.should_run(name) {
        return;
    }
    // CI smoke mode: clamp every budget knob so the whole suite runs in
    // seconds while still exercising the measurement and JSON paths.
    let quick = quick_mode();
    let sample_size = if quick { 2 } else { group_samples.unwrap_or(c.sample_size) };
    let warm_up_time = if quick { Duration::from_millis(5) } else { c.warm_up_time };
    let measurement_time = if quick { Duration::from_millis(20) } else { c.measurement_time };

    // Calibration pass: find how many iterations fit in one sample slot.
    let mut probe = Bencher::new(1, 1);
    let warm_start = Instant::now();
    f(&mut probe);
    let mut per_iter = probe.samples.first().copied().unwrap_or(Duration::from_nanos(1));
    // Keep warming until the configured warm-up time has elapsed.
    while warm_start.elapsed() < warm_up_time {
        let mut w = Bencher::new(1, 1);
        f(&mut w);
        per_iter = (per_iter + w.samples.first().copied().unwrap_or(per_iter)) / 2;
    }
    let slot = measurement_time.div_f64(sample_size as f64);
    let iters = (slot.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut b = Bencher::new(iters, sample_size);
    f(&mut b);
    if b.samples.is_empty() {
        // The closure never called `b.iter` (e.g. it filtered itself out).
        println!("{name:<48} time: [no samples]");
        return;
    }

    let mut per_iter_ns: Vec<f64> =
        b.samples.iter().map(|d| d.as_nanos() as f64 / iters as f64).collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns.first().copied().unwrap_or(median);
    let hi = per_iter_ns.last().copied().unwrap_or(median);
    println!("{name:<48} time: [{} {} {}]", format_ns(lo), format_ns(median), format_ns(hi));
    RECORDED.lock().expect("bench registry poisoned").push((name.to_owned(), median));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench harness entry point, mirroring criterion's macro.
/// After every group has run, [`finalize`] emits the machine-readable
/// medians when `SUBCOMP_BENCH_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("solve", 8).render(), "solve/8");
        assert_eq!(BenchmarkId::from_parameter(16).render(), "16");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        // The registry picked the run up (medians are positive timings).
        let recorded = RECORDED.lock().unwrap();
        let entry = recorded.iter().find(|(n, _)| n == "smoke");
        assert!(entry.is_some_and(|(_, median)| *median > 0.0));
    }

    #[test]
    fn record_metric_lands_in_the_registry() {
        record_metric("server/test/p50", 123.5);
        let recorded = RECORDED.lock().unwrap();
        let entry = recorded.iter().find(|(n, _)| n == "server/test/p50");
        assert!(entry.is_some_and(|(_, ns)| *ns == 123.5));
    }

    #[test]
    fn json_rendering_is_deterministic_and_escaped() {
        let results =
            vec![("nash/solver/a\"b".to_string(), 1234.5), ("nash/solver/plain".to_string(), 7.0)];
        let doc = render_results_json(&results, true);
        assert!(doc.contains("\"schema\": \"subcomp-bench-v1\""));
        assert!(doc.contains("\"units\": \"ns_per_iter\""));
        assert!(doc.contains("\"quick\": true"));
        assert!(doc.contains("\"nash/solver/a\\\"b\": 1234.5"));
        assert!(doc.contains("\"nash/solver/plain\": 7.0"));
        assert_eq!(doc, render_results_json(&results, true));
        // Empty registry still renders a valid document.
        let empty = render_results_json(&[], false);
        assert!(empty.contains("\"results\": {\n  }"));
    }

    #[test]
    fn parse_roundtrips_canonical_output() {
        let results =
            vec![("nash/solver/a\"b".to_string(), 1234.5), ("nash/solver/plain".to_string(), 7.25)];
        let doc = render_results_json(&results, true);
        let (parsed, quick) = parse_results_json(&doc).expect("own output must parse");
        assert!(quick);
        assert_eq!(parsed, results);
        // Foreign documents are rejected rather than half-parsed.
        assert!(parse_results_json("{\"something\": 1}").is_none());
    }
}
