//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec()`]: an exact size or a size range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo) as u64 + 1;
        self.lo + (rng.next_u64() % span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with per-case length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
