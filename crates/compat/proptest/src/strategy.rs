//! Value-generation strategies: ranges, tuples, `prop_map`, `Just`.

use crate::test_runner::TestRng;

/// A recipe for generating random values of an associated type.
///
/// Unlike upstream proptest there is no value tree or shrinking; a strategy
/// simply draws one value per case from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)` for each generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let u = rng.unit_f64();
        let x = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; nudge back inside.
        if x >= self.end {
            0.5 * (self.start + self.end)
        } else {
            x
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

signed_int_range_strategy!(isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
);
