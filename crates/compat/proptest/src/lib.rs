//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates registry, so the real
//! `proptest` is unavailable. This crate reimplements the subset the
//! workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with range, tuple and
//!   [`prop_map`](strategy::Strategy::prop_map) strategies;
//! * [`collection::vec`] with exact, half-open and inclusive size ranges;
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`);
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`;
//! * [`test_runner::ProptestConfig`] and a deterministic
//!   [`test_runner::TestRunner`].
//!
//! Differences from upstream: generation is derandomized (the RNG seed is
//! derived from the test name, so every run explores the same cases) and
//! failing inputs are reported but **not shrunk**. Neither difference
//! affects what the workspace's tests assert.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs one property test function: `proptest! { #[test] fn name(x in strat) { .. } }`.
///
/// Supports an optional leading `#![proptest_config(expr)]` inner attribute
/// and any number of test functions whose arguments are `ident in strategy`
/// bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __runner =
                    $crate::test_runner::TestRunner::new_for(__config, stringify!($name));
                __runner.run(|__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg),*
                    );
                    let __case = move || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    (__inputs, __case())
                });
            }
        )*
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current test case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
