//! Deterministic case runner and configuration.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected (assumed-away) cases tolerated before
    /// the test errors out as under-constrained.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it does not count as a
    /// success or a failure.
    Reject(String),
    /// The case failed a `prop_assert!`-family assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection (discard) error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-case result type used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies.
///
/// Derandomized: the seed derives from the test name, so a given test
/// explores an identical case sequence on every run and on every machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_name(name: &str) -> Self {
        // FNV-1a over the test name, mixed with a fixed workspace salt.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h ^ 0x5ab5_1d12_7f41_c09d_u64.rotate_left(1)) }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

/// Drives one property test to `config.cases` successes.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: String,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new_for(config: ProptestConfig, name: &str) -> Self {
        TestRunner { config, rng: TestRng::from_name(name), name: name.to_owned() }
    }

    /// Runs `case` until `cases` successes accumulate, panicking on the
    /// first failure with the generated inputs included in the message.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, TestCaseResult),
    {
        let mut successes = 0u32;
        let mut rejects = 0u32;
        while successes < self.config.cases {
            let (inputs, outcome) = case(&mut self.rng);
            match outcome {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_global_rejects,
                        "proptest '{}': too many rejected cases ({} rejects for {} successes)",
                        self.name,
                        rejects,
                        successes
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{}' failed after {} passing case(s)\n  inputs: {}\n  {}",
                        self.name, successes, inputs, msg
                    );
                }
            }
        }
    }
}
