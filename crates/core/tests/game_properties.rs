//! Property tests on the game layer: equilibrium existence, feasibility,
//! certificates, and comparative statics across random markets.

use proptest::prelude::*;
use subcomp_core::equilibrium::verify_equilibrium;
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::NashSolver;
use subcomp_core::vi::natural_residual;
use subcomp_core::welfare::WelfareBreakdown;
use subcomp_model::aggregation::{build_system, ExpCpSpec};

fn market_strategy() -> impl Strategy<Value = Vec<ExpCpSpec>> {
    proptest::collection::vec(
        (0.8f64..6.0, 0.8f64..6.0, 0.1f64..1.2)
            .prop_map(|(alpha, beta, v)| ExpCpSpec::unit(alpha, beta, v)),
        2..=4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn equilibrium_exists_and_certifies(
        specs in market_strategy(),
        p in 0.1f64..1.2,
        q in 0.05f64..1.0,
    ) {
        let game = SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap();
        let eq = NashSolver::default().with_tol(1e-8).solve(&game).unwrap();
        // Three independent certificates agree.
        let kkt = verify_equilibrium(&game, &eq.subsidies).unwrap();
        prop_assert!(kkt.is_equilibrium(1e-4));
        let nr = natural_residual(&game, &eq.subsidies).unwrap();
        prop_assert!(nr < 1e-5, "natural residual {nr}");
    }

    #[test]
    fn money_is_conserved_at_equilibrium(
        specs in market_strategy(),
        p in 0.1f64..1.2,
        q in 0.0f64..1.0,
    ) {
        let game = SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap();
        let eq = NashSolver::default().solve(&game).unwrap();
        let b = WelfareBreakdown::compute(&game, &eq.subsidies).unwrap();
        prop_assert!((b.user_payments + b.subsidy_outlay - b.isp_revenue).abs() < 1e-9);
        prop_assert!(b.cp_net_utility >= -1e-9);
        prop_assert!(b.welfare >= b.cp_net_utility - 1e-9);
    }

    #[test]
    fn subsidies_weakly_increase_with_cap(
        specs in market_strategy(),
        p in 0.2f64..1.0,
        q in 0.1f64..0.6,
    ) {
        // Corollary 1's ∂s/∂q ≥ 0 observed between re-solved equilibria.
        let sys = build_system(&specs, 1.0).unwrap();
        let solver = NashSolver::default().with_tol(1e-9);
        let tight = solver.solve(&SubsidyGame::new(sys.clone(), p, q).unwrap()).unwrap();
        let loose = solver.solve(&SubsidyGame::new(sys, p, q + 0.2).unwrap()).unwrap();
        for i in 0..tight.subsidies.len() {
            prop_assert!(
                loose.subsidies[i] >= tight.subsidies[i] - 1e-6,
                "CP {i}: {} -> {}", tight.subsidies[i], loose.subsidies[i]
            );
        }
    }

    #[test]
    fn raising_one_profitability_never_lowers_its_subsidy(
        specs in market_strategy(),
        p in 0.2f64..1.0,
        bump in 0.1f64..0.8,
    ) {
        // Theorem 5 across random markets.
        let game = SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, 1.0).unwrap();
        let solver = NashSolver::default().with_tol(1e-9);
        let base = solver.solve(&game).unwrap();
        let richer = game.with_profitability(0, specs[0].v + bump).unwrap();
        let after = solver.solve(&richer).unwrap();
        prop_assert!(
            after.subsidies[0] >= base.subsidies[0] - 1e-6,
            "{} -> {}", base.subsidies[0], after.subsidies[0]
        );
    }

    #[test]
    fn clamped_and_unclamped_agree_when_subsidies_below_price(
        specs in market_strategy(),
        p in 0.8f64..1.5,
    ) {
        // With q well below p the clamp never binds; both conventions
        // must produce the same equilibrium.
        let q = 0.3;
        let sys = build_system(&specs, 1.0).unwrap();
        let plain = SubsidyGame::new(sys.clone(), p, q).unwrap();
        let clamped = SubsidyGame::new(sys, p, q).unwrap().with_clamped_price(true);
        let solver = NashSolver::default().with_tol(1e-9);
        let a = solver.solve(&plain).unwrap();
        let b = solver.solve(&clamped).unwrap();
        for i in 0..a.subsidies.len() {
            prop_assert!((a.subsidies[i] - b.subsidies[i]).abs() < 1e-6);
        }
    }
}
