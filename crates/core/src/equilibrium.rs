//! Equilibrium characterization and verification (Theorem 3).
//!
//! Theorem 3: a profile `s` is a Nash equilibrium only if every provider
//! sits at its threshold, `s_i = min{τ_i(s), q}`, where
//!
//! ```text
//! τ_i(s) = (v_i − s_i) · ε^{m_i}_{s_i} · (1 + ε^{λ_i}_φ ε^φ_{m_i})
//!        = (v_i − s_i) · ε^{θ_i}_{s_i},
//! ```
//!
//! and, at the `s_i = 0` corner, `v_i ≤ (∂θ_i/∂s_i)^{-1} θ_i`. These are
//! exactly the KKT conditions of each provider's box-constrained problem,
//! so this module verifies candidate equilibria two independent ways:
//! through the *threshold residuals* `|s_i − min{τ_i, q}|` and through the
//! *KKT residuals* on the analytic marginal utilities. (A third,
//! optimization-based certificate — the deviation gap — lives in
//! [`crate::best_response::deviation_gap`].)

use crate::game::SubsidyGame;
use subcomp_num::NumResult;

/// Verification report for a candidate equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumReport {
    /// Theorem 3 thresholds `τ_i(s)`.
    pub tau: Vec<f64>,
    /// Residuals `|s_i − min{τ_i(s), q}|`.
    pub threshold_residuals: Vec<f64>,
    /// KKT residuals on `u_i(s)` (see [`kkt_residual`]).
    pub kkt_residuals: Vec<f64>,
    /// Maximum threshold residual.
    pub max_threshold_residual: f64,
    /// Maximum KKT residual.
    pub max_kkt_residual: f64,
}

impl EquilibriumReport {
    /// Whether both certificates pass at tolerance `tol`.
    pub fn is_equilibrium(&self, tol: f64) -> bool {
        self.max_threshold_residual <= tol && self.max_kkt_residual <= tol
    }
}

/// Boundary-pinning tolerance: a subsidy within this distance of `0` or
/// `q` is treated as a corner for KKT classification.
pub const PIN_TOL: f64 = 1e-7;

/// The KKT residual of provider `i` at profile `s` given the marginal
/// utility `u_i`: `max(0, u_i)` at the lower corner, `max(0, −u_i)` at the
/// upper corner, `|u_i|` in the interior.
pub fn kkt_residual(si: f64, q: f64, u_i: f64) -> f64 {
    if si <= PIN_TOL {
        u_i.max(0.0)
    } else if si >= q - PIN_TOL {
        (-u_i).max(0.0)
    } else {
        u_i.abs()
    }
}

/// Computes Theorem 3's threshold `τ_i(s)` for every provider.
///
/// Uses the elasticity form of Equation (9); the identity
/// `τ_i = (v_i − s_i) s_i (∂θ_i/∂s_i)/θ_i` makes the implementation a
/// two-liner on top of the game's closed-form `∂θ_i/∂s_i`.
pub fn thresholds(game: &SubsidyGame, s: &[f64]) -> NumResult<Vec<f64>> {
    game.validate(s)?;
    let state = game.state(s)?;
    let mut tau = Vec::with_capacity(game.n());
    for i in 0..game.n() {
        let theta_i = state.theta_i[i];
        if theta_i == 0.0 {
            tau.push(0.0);
            continue;
        }
        let dtheta = game.dtheta_dsi_at_state(i, s, &state);
        tau.push((game.profitability(i) - s[i]) * s[i] * dtheta / theta_i);
    }
    Ok(tau)
}

/// Verifies a candidate equilibrium per Theorem 3 (thresholds + KKT).
pub fn verify_equilibrium(game: &SubsidyGame, s: &[f64]) -> NumResult<EquilibriumReport> {
    game.validate(s)?;
    let tau = thresholds(game, s)?;
    let u = game.marginal_utilities(s)?;
    let q = game.cap();
    let n = game.n();
    let mut threshold_residuals = Vec::with_capacity(n);
    let mut kkt_residuals = Vec::with_capacity(n);
    for i in 0..n {
        threshold_residuals.push((s[i] - tau[i].min(q)).abs());
        kkt_residuals.push(kkt_residual(s[i], q, u[i]));
    }
    let max_threshold_residual = threshold_residuals.iter().fold(0.0f64, |m, &r| m.max(r));
    let max_kkt_residual = kkt_residuals.iter().fold(0.0f64, |m, &r| m.max(r));
    Ok(EquilibriumReport {
        tau,
        threshold_residuals,
        kkt_residuals,
        max_threshold_residual,
        max_kkt_residual,
    })
}

/// Theorem 3's corner statement: at `s_i = 0`, equilibrium requires
/// `v_i ≤ (∂θ_i/∂s_i)^{-1} θ_i`. Returns the providers violating it.
pub fn zero_corner_violations(game: &SubsidyGame, s: &[f64]) -> NumResult<Vec<usize>> {
    game.validate(s)?;
    let state = game.state(s)?;
    let mut out = Vec::new();
    for i in 0..game.n() {
        if s[i] <= PIN_TOL {
            let dtheta = game.dtheta_dsi_at_state(i, s, &state);
            if dtheta > 0.0 && game.profitability(i) > state.theta_i[i] / dtheta + 1e-9 {
                out.push(i);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::NashSolver;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn paper_game(p: f64, q: f64) -> SubsidyGame {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    }

    #[test]
    fn solved_equilibrium_passes_verification() {
        let game = paper_game(0.5, 1.0);
        let eq = NashSolver::default().solve(&game).unwrap();
        let report = verify_equilibrium(&game, &eq.subsidies).unwrap();
        assert!(
            report.is_equilibrium(1e-5),
            "threshold {:.2e}, kkt {:.2e}",
            report.max_threshold_residual,
            report.max_kkt_residual
        );
        assert!(zero_corner_violations(&game, &eq.subsidies).unwrap().is_empty());
    }

    #[test]
    fn non_equilibrium_fails_verification() {
        let game = paper_game(0.5, 1.0);
        // All-zero is not an equilibrium here: profitable CPs want in.
        let report = verify_equilibrium(&game, &[0.0; 8]).unwrap();
        assert!(!report.is_equilibrium(1e-5));
        assert!(!zero_corner_violations(&game, &[0.0; 8]).unwrap().is_empty());
    }

    #[test]
    fn threshold_zero_at_zero_subsidy() {
        // tau contains a factor s_i, so tau = 0 at s = 0 and the threshold
        // condition s = min(tau, q) holds trivially there.
        let game = paper_game(0.5, 1.0);
        let tau = thresholds(&game, &[0.0; 8]).unwrap();
        assert!(tau.iter().all(|&t| t == 0.0));
    }

    #[test]
    fn interior_equilibrium_sits_on_threshold() {
        // Pick (p, q) where several subsidies are interior and check
        // s_i = tau_i there specifically.
        let game = paper_game(0.9, 1.0);
        let eq = NashSolver::default().solve(&game).unwrap();
        let tau = thresholds(&game, &eq.subsidies).unwrap();
        let mut checked_interior = 0;
        for i in 0..8 {
            let si = eq.subsidies[i];
            if si > 1e-4 && si < game.cap() - 1e-4 {
                assert!((si - tau[i]).abs() < 1e-5, "CP {i}: s = {si}, tau = {}", tau[i]);
                checked_interior += 1;
            }
        }
        assert!(checked_interior > 0, "test needs at least one interior subsidy");
    }

    #[test]
    fn capped_equilibrium_exceeds_threshold_cap() {
        // Small p and q: thresholds exceed q, subsidies pinned at q.
        let game = paper_game(0.2, 0.1);
        let eq = NashSolver::default().solve(&game).unwrap();
        let report = verify_equilibrium(&game, &eq.subsidies).unwrap();
        assert!(report.is_equilibrium(1e-5));
        let pinned = eq.subsidies.iter().filter(|&&s| (s - 0.1).abs() < 1e-6).count();
        assert!(pinned >= 4, "expected most CPs at the cap, got {pinned}");
        for i in 0..8 {
            if (eq.subsidies[i] - 0.1).abs() < 1e-6 {
                assert!(report.tau[i] >= 0.1 - 1e-4, "pinned CP {i} must have tau >= q");
            }
        }
    }

    #[test]
    fn kkt_residual_cases() {
        assert_eq!(kkt_residual(0.0, 1.0, -0.5), 0.0); // lower corner, u <= 0: fine
        assert_eq!(kkt_residual(0.0, 1.0, 0.5), 0.5); // lower corner, wants up: violation
        assert_eq!(kkt_residual(1.0, 1.0, 0.5), 0.0); // upper corner, u >= 0: fine
        assert_eq!(kkt_residual(1.0, 1.0, -0.5), 0.5); // upper corner, wants down
        assert_eq!(kkt_residual(0.5, 1.0, 0.2), 0.2); // interior: |u|
    }

    #[test]
    fn report_shapes() {
        let game = paper_game(0.5, 1.0);
        let r = verify_equilibrium(&game, &[0.0; 8]).unwrap();
        assert_eq!(r.tau.len(), 8);
        assert_eq!(r.threshold_residuals.len(), 8);
        assert_eq!(r.kkt_residuals.len(), 8);
    }
}
