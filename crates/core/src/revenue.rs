//! ISP revenue under equilibrium response (Theorem 7).
//!
//! With subsidies at their Nash response `s(p)`, the ISP's revenue is
//! `R(p) = p Σ_i m_i(p − s_i(p)) λ_i(φ(s(p)))` and its marginal revenue
//! decomposes as
//!
//! ```text
//! dR/dp = Σ_i θ_i + Υ Σ_i ε^{m_i}_p θ_i,
//! Υ = 1 + Σ_j ε^{λ_j}_{m_j},      ε^{m_i}_p = (p/m_i) m_i'(t_i) (1 − ∂s_i/∂p),
//! ```
//!
//! isolating the subsidization feedback in the `∂s_i/∂p` terms (one-sided
//! pricing is the special case `∂s_i/∂p = 0`). The `Υ` factor is the
//! physical-layer attenuation of Equation (14).

use crate::game::SubsidyGame;
use crate::nash::{NashSolution, NashSolver};
use crate::sensitivity::Sensitivity;
use subcomp_num::NumResult;

/// Revenue and its Theorem 7 decomposition at one price.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalRevenue {
    /// The price at which everything is evaluated.
    pub p: f64,
    /// Revenue `R(p)` at the equilibrium response.
    pub revenue: f64,
    /// The volume term `Σ_i θ_i` of Theorem 7.
    pub volume_term: f64,
    /// The elasticity term `Υ Σ_i ε^{m_i}_p θ_i` of Theorem 7.
    pub elasticity_term: f64,
    /// `Υ` itself.
    pub upsilon: f64,
    /// Marginal revenue `dR/dp` (sum of the two terms).
    pub dr_dp: f64,
}

/// Solves the equilibrium at `(p, q)` and evaluates Theorem 7's marginal
/// revenue formula there. Uses [`Sensitivity`] for the `∂s_i/∂p` feedback.
pub fn marginal_revenue(game: &SubsidyGame, solver: &NashSolver) -> NumResult<MarginalRevenue> {
    let eq = solver.solve(game)?;
    marginal_revenue_at(game, &eq)
}

/// Theorem 7 evaluated at an already-solved equilibrium.
pub fn marginal_revenue_at(game: &SubsidyGame, eq: &NashSolution) -> NumResult<MarginalRevenue> {
    let p = game.price();
    let s = &eq.subsidies;
    let state = &eq.state;
    let sens = Sensitivity::compute(game, s)?;
    let n = game.n();
    // Υ = 1 + Σ_j ε^{λ_j}_{m_j} = 1 + Σ_j m_j λ_j'(φ) / (dg/dφ)  (Eq. 14).
    let upsilon = 1.0
        + (0..n)
            .map(|j| state.m[j] * game.system().cp(j).throughput().dlambda_dphi(state.phi))
            .sum::<f64>()
            / state.dg_dphi;
    let volume_term = state.theta();
    let mut elasticity_sum = 0.0;
    for i in 0..n {
        if state.m[i] == 0.0 {
            continue;
        }
        let t_i = p - s[i];
        let eps_m_p =
            p / state.m[i] * game.system().cp(i).demand().dm_dt(t_i) * (1.0 - sens.ds_dp[i]);
        elasticity_sum += eps_m_p * state.theta_i[i];
    }
    let elasticity_term = upsilon * elasticity_sum;
    Ok(MarginalRevenue {
        p,
        revenue: p * state.theta(),
        volume_term,
        elasticity_term,
        upsilon,
        dr_dp: volume_term + elasticity_term,
    })
}

/// Revenue at a single `(p, q)` with equilibrium response, convenience
/// wrapper returning `(R, equilibrium)`.
pub fn revenue_with_response(
    game: &SubsidyGame,
    solver: &NashSolver,
) -> NumResult<(f64, NashSolution)> {
    let eq = solver.solve(game)?;
    Ok((eq.isp_revenue(game), eq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn paper_game(p: f64, q: f64) -> SubsidyGame {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    }

    fn numeric_dr_dp(q: f64, p: f64, h: f64) -> f64 {
        let solver = NashSolver::default().with_tol(1e-10);
        let hi = revenue_with_response(&paper_game(p + h, q), &solver).unwrap().0;
        let lo = revenue_with_response(&paper_game(p - h, q), &solver).unwrap().0;
        (hi - lo) / (2.0 * h)
    }

    #[test]
    fn marginal_revenue_matches_finite_difference_interior() {
        // q large enough that subsidies are interior: the ∂s/∂p feedback
        // matters and Theorem 7 must still match.
        let (p, q) = (0.9, 1.0);
        let game = paper_game(p, q);
        let mr = marginal_revenue(&game, &NashSolver::default().with_tol(1e-10)).unwrap();
        let fd = numeric_dr_dp(q, p, 1e-4);
        assert!((mr.dr_dp - fd).abs() < 2e-2 * (1.0 + fd.abs()), "theorem {} vs fd {fd}", mr.dr_dp);
    }

    #[test]
    fn marginal_revenue_matches_finite_difference_pinned() {
        // Small q: most subsidies pinned at the cap, ds/dp = 0 there.
        let (p, q) = (0.5, 0.15);
        let game = paper_game(p, q);
        let mr = marginal_revenue(&game, &NashSolver::default().with_tol(1e-10)).unwrap();
        let fd = numeric_dr_dp(q, p, 1e-4);
        assert!((mr.dr_dp - fd).abs() < 2e-2 * (1.0 + fd.abs()), "theorem {} vs fd {fd}", mr.dr_dp);
    }

    #[test]
    fn one_sided_special_case_matches_model_crate() {
        // q = 0 collapses Theorem 7 to the one-sided marginal revenue; the
        // model crate computes the same quantity through Theorem 2.
        let (p, q) = (0.7, 0.0);
        let game = paper_game(p, q);
        let mr = marginal_revenue(&game, &NashSolver::default()).unwrap();
        let fd = numeric_dr_dp(q, p, 1e-5);
        assert!((mr.dr_dp - fd).abs() < 1e-3 * (1.0 + fd.abs()), "{} vs {fd}", mr.dr_dp);
    }

    #[test]
    fn upsilon_in_unit_interval() {
        // Υ = 1 + Σ ε^{λ}_{m} with the sum in (-1, 0) under Lemma 1.
        for (p, q) in [(0.3, 0.5), (0.8, 1.0), (1.5, 2.0)] {
            let game = paper_game(p, q);
            let mr = marginal_revenue(&game, &NashSolver::default()).unwrap();
            assert!(mr.upsilon > 0.0 && mr.upsilon < 1.0, "upsilon = {}", mr.upsilon);
        }
    }

    #[test]
    fn volume_and_elasticity_terms_have_expected_signs() {
        let game = paper_game(0.8, 0.5);
        let mr = marginal_revenue(&game, &NashSolver::default()).unwrap();
        assert!(mr.volume_term > 0.0);
        assert!(mr.elasticity_term < 0.0, "demand response must drag revenue");
        assert!((mr.dr_dp - (mr.volume_term + mr.elasticity_term)).abs() < 1e-12);
    }
}
