//! The ISP's pricing decision `p*(q)` (Section 5).
//!
//! Under policy `q` the ISP sets the price that maximizes revenue *given*
//! the CPs' equilibrium subsidy response: `p*(q) = argmax_p p·θ(s(p, q))`.
//! The paper observes (Figure 7) that with `q = 2` the optimum sits a bit
//! below `p = 1`, where subsidies are still held high. Endogenizing `p(q)`
//! is what turns Corollary 1's "deregulation is good" into Theorem 8's
//! more cautious "deregulation may trigger a price increase".

use crate::game::SubsidyGame;
use crate::nash::{NashSolution, NashSolver};
use subcomp_model::system::System;
use subcomp_num::optimize::maximize_multistart;
use subcomp_num::{NumResult, Tolerance};

/// The ISP's optimal price under a policy cap.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceChoice {
    /// Revenue-maximizing price `p*`.
    pub p_star: f64,
    /// Revenue at `p*`.
    pub revenue: f64,
    /// The CP equilibrium at `(p*, q)`.
    pub equilibrium: NashSolution,
}

/// Finds `p*(q)` on `[lo, hi]` for a system under cap `q`.
///
/// Every objective evaluation solves a Nash equilibrium; the search uses a
/// modest multi-start grid, which is robust to the kinks that appear in
/// `R(p)` where providers enter/leave the cap.
pub fn optimal_price(
    system: &System,
    q: f64,
    lo: f64,
    hi: f64,
    solver: &NashSolver,
) -> NumResult<PriceChoice> {
    let objective = |p: f64| -> f64 {
        SubsidyGame::new(system.clone(), p, q)
            .and_then(|g| solver.solve(&g))
            .map(|eq| p * eq.state.theta())
            .unwrap_or(f64::NEG_INFINITY)
    };
    let m = maximize_multistart(&objective, lo, hi, 3, 24, Tolerance::new(1e-7, 1e-7))?;
    let game = SubsidyGame::new(system.clone(), m.x, q)?;
    let equilibrium = solver.solve(&game)?;
    Ok(PriceChoice { p_star: m.x, revenue: m.value, equilibrium })
}

/// Sweeps `p*(q)` over a grid of caps — the endogenous-pricing experiment
/// behind the paper's §5 regulatory discussion.
pub fn price_response_curve(
    system: &System,
    qs: &[f64],
    lo: f64,
    hi: f64,
    solver: &NashSolver,
) -> NumResult<Vec<(f64, PriceChoice)>> {
    qs.iter().map(|&q| optimal_price(system, q, lo, hi, solver).map(|c| (q, c))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn paper_system() -> System {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        build_system(&specs, 1.0).unwrap()
    }

    fn fast_solver() -> NashSolver {
        NashSolver::default().with_tol(1e-7).with_max_sweeps(120)
    }

    #[test]
    fn optimal_price_beats_neighbors() {
        let sys = paper_system();
        let solver = fast_solver();
        let choice = optimal_price(&sys, 1.0, 0.0, 2.0, &solver).unwrap();
        for dp in [-0.05, 0.05] {
            let p = (choice.p_star + dp).clamp(0.0, 2.0);
            let g = SubsidyGame::new(sys.clone(), p, 1.0).unwrap();
            let r = solver.solve(&g).unwrap().isp_revenue(&g);
            assert!(
                choice.revenue >= r - 1e-6,
                "neighbor p = {p} earns {r} > p* = {} earning {}",
                choice.p_star,
                choice.revenue
            );
        }
    }

    #[test]
    fn deregulation_raises_optimal_revenue() {
        // R(p*(q), q) is monotone in q: more subsidy room can only help
        // the ISP at its optimum (it can always ignore the response).
        let sys = paper_system();
        let solver = fast_solver();
        let r0 = optimal_price(&sys, 0.0, 0.0, 2.0, &solver).unwrap().revenue;
        let r1 = optimal_price(&sys, 1.0, 0.0, 2.0, &solver).unwrap().revenue;
        assert!(r1 > r0, "q=1 optimum {r1} must beat q=0 optimum {r0}");
    }

    #[test]
    fn paper_figure7_peak_location() {
        // The paper: with q = 2, the revenue-maximizing price is "a bit
        // less than 1".
        let sys = paper_system();
        let choice = optimal_price(&sys, 2.0, 0.0, 2.0, &fast_solver()).unwrap();
        assert!(
            choice.p_star > 0.6 && choice.p_star < 1.1,
            "p* = {} should be a bit below 1",
            choice.p_star
        );
    }

    #[test]
    fn price_response_curve_is_reported_per_q() {
        let sys = paper_system();
        let curve = price_response_curve(&sys, &[0.0, 0.5], 0.0, 2.0, &fast_solver()).unwrap();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].0, 0.0);
        assert!(curve[1].1.revenue >= curve[0].1.revenue - 1e-9);
    }
}
