//! Off-equilibrium dynamics (the §6 limitation, made computable).
//!
//! The paper's analysis is static; its §6 notes it "might not be able to
//! capture short-term off-equilibrium types of system dynamics". This
//! module implements two standard adjustment processes whose rest points
//! are exactly the Nash equilibria:
//!
//! * **discrete best-response dynamics** — every period, a (rotating or
//!   simultaneous) subset of providers re-optimizes; the trajectory is the
//!   paper's tâtonnement story and converges under the same P-function
//!   stability that gives uniqueness;
//! * **continuous gradient dynamics** — the projected system
//!   `ṡ_i = [u_i(s)]` clipped at the box boundary, integrated with RK4;
//!   Lyapunov-style decrease of the natural residual is observable in the
//!   trajectories.

use crate::best_response::{best_response, BrConfig};
use crate::game::SubsidyGame;
use subcomp_num::ode::rk4;
use subcomp_num::{NumError, NumResult};

/// One step of a recorded adjustment trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Time (periods for discrete, model time for continuous).
    pub t: f64,
    /// Strategy profile at this time.
    pub s: Vec<f64>,
    /// Sup-norm distance moved since the previous point.
    pub step: f64,
}

/// Discrete best-response dynamics: `rounds` full sweeps from `s0`,
/// recording the profile after every sweep. Simultaneous (Jacobi) updates.
pub fn best_response_trajectory(
    game: &SubsidyGame,
    s0: &[f64],
    rounds: usize,
    cfg: &BrConfig,
) -> NumResult<Vec<TrajectoryPoint>> {
    game.validate(s0)?;
    let n = game.n();
    let mut s = s0.to_vec();
    let mut out = vec![TrajectoryPoint { t: 0.0, s: s.clone(), step: 0.0 }];
    for round in 0..rounds {
        let snapshot = s.clone();
        let mut next = vec![0.0; n];
        for i in 0..n {
            next[i] = best_response(game, i, &snapshot, cfg)?.s;
        }
        let step = next.iter().zip(&s).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        s = next;
        out.push(TrajectoryPoint { t: (round + 1) as f64, s: s.clone(), step });
    }
    Ok(out)
}

/// Continuous projected gradient dynamics `ṡ = Π'(u(s))` integrated with
/// RK4 over `[0, horizon]` in `steps` steps.
///
/// The projection is implemented as a boundary clip of the vector field:
/// at `s_i = 0` upward-only, at the effective cap downward-only — the
/// standard projected-dynamical-systems construction on a box.
pub fn gradient_flow(
    game: &SubsidyGame,
    s0: &[f64],
    horizon: f64,
    steps: usize,
) -> NumResult<Vec<TrajectoryPoint>> {
    game.validate(s0)?;
    if !(horizon > 0.0) {
        return Err(NumError::Domain { what: "horizon must be positive", value: horizon });
    }
    let n = game.n();
    let caps: Vec<f64> = (0..n).map(|i| game.effective_cap(i)).collect();
    let field = |_t: f64, y: &[f64], dy: &mut [f64]| {
        // Clamp the state into the box before evaluating: RK4 stages may
        // probe slightly outside.
        let yy: Vec<f64> = y.iter().zip(&caps).map(|(v, c)| v.clamp(0.0, *c)).collect();
        match game.marginal_utilities(&yy) {
            Ok(u) => {
                for i in 0..n {
                    let mut d = u[i];
                    if yy[i] <= 0.0 && d < 0.0 {
                        d = 0.0;
                    }
                    if yy[i] >= caps[i] && d > 0.0 {
                        d = 0.0;
                    }
                    dy[i] = d;
                }
            }
            Err(_) => dy.iter_mut().for_each(|d| *d = 0.0),
        }
    };
    let traj = rk4(&field, 0.0, horizon, s0, steps)?;
    let mut out = Vec::with_capacity(traj.len());
    let mut prev: Option<Vec<f64>> = None;
    for pt in traj {
        let s: Vec<f64> = pt.y.iter().zip(&caps).map(|(v, c)| v.clamp(0.0, *c)).collect();
        let step = prev
            .as_ref()
            .map(|p| s.iter().zip(p).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max))
            .unwrap_or(0.0);
        prev = Some(s.clone());
        out.push(TrajectoryPoint { t: pt.t, s, step });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::NashSolver;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn two_cp_game() -> SubsidyGame {
        let specs = [ExpCpSpec::unit(5.0, 2.0, 1.0), ExpCpSpec::unit(3.0, 4.0, 0.8)];
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), 0.7, 1.0).unwrap()
    }

    #[test]
    fn br_dynamics_converge_to_nash() {
        let game = two_cp_game();
        let nash = NashSolver::default().solve(&game).unwrap();
        let traj = best_response_trajectory(&game, &[0.0, 0.0], 30, &BrConfig::default()).unwrap();
        let last = traj.last().unwrap();
        for i in 0..2 {
            assert!(
                (last.s[i] - nash.subsidies[i]).abs() < 1e-5,
                "CP {i}: dyn {} vs nash {}",
                last.s[i],
                nash.subsidies[i]
            );
        }
        // Steps shrink along the trajectory (stability).
        assert!(traj[traj.len() - 1].step < traj[2].step + 1e-12);
    }

    #[test]
    fn br_dynamics_from_above_converge_too() {
        // Global pull: starting at the cap lands on the same equilibrium
        // (uniqueness, Theorem 4).
        let game = two_cp_game();
        let from_zero =
            best_response_trajectory(&game, &[0.0, 0.0], 30, &BrConfig::default()).unwrap();
        let from_cap =
            best_response_trajectory(&game, &[1.0, 0.8], 30, &BrConfig::default()).unwrap();
        let a = &from_zero.last().unwrap().s;
        let b = &from_cap.last().unwrap().s;
        for i in 0..2 {
            assert!((a[i] - b[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_flow_settles_at_nash() {
        let game = two_cp_game();
        let nash = NashSolver::default().solve(&game).unwrap();
        let traj = gradient_flow(&game, &[0.0, 0.0], 60.0, 600).unwrap();
        let last = traj.last().unwrap();
        for i in 0..2 {
            assert!(
                (last.s[i] - nash.subsidies[i]).abs() < 1e-3,
                "CP {i}: flow {} vs nash {}",
                last.s[i],
                nash.subsidies[i]
            );
        }
    }

    #[test]
    fn gradient_flow_respects_box() {
        let game = two_cp_game();
        let traj = gradient_flow(&game, &[1.0, 0.8], 20.0, 200).unwrap();
        for pt in &traj {
            for (i, &si) in pt.s.iter().enumerate() {
                assert!(si >= -1e-12 && si <= game.effective_cap(i) + 1e-12);
            }
        }
    }

    #[test]
    fn trajectory_records_time_and_steps() {
        let game = two_cp_game();
        let traj = best_response_trajectory(&game, &[0.0, 0.0], 5, &BrConfig::default()).unwrap();
        assert_eq!(traj.len(), 6);
        assert_eq!(traj[0].t, 0.0);
        assert_eq!(traj[5].t, 5.0);
        assert!(traj[1].step > 0.0);
    }

    #[test]
    fn bad_horizon_rejected() {
        let game = two_cp_game();
        assert!(gradient_flow(&game, &[0.0, 0.0], 0.0, 10).is_err());
    }
}
