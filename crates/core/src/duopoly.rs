//! Access-ISP duopoly: the paper's §6 conjecture, made computable.
//!
//! The paper studies a single access ISP and conjectures that
//! "competition between ISPs will also incentivize them to adopt
//! subsidization schemes" and discipline prices. This module models the
//! smallest such market:
//!
//! * two access ISPs `A`, `B` with capacities `µ_A`, `µ_B` and usage
//!   prices `p_A`, `p_B`;
//! * each CP chooses **one** subsidy `s_i` applied uniformly (the
//!   neutrality requirement of §6: the subsidization option must be
//!   identical everywhere);
//! * users of CP `i` face effective prices `t_{ik} = p_k − s_i` and
//!   split by a logit rule with sensitivity `κ`, while total demand
//!   follows the CP's demand curve at the *inclusive* (logsumexp) price
//!   — so fiercer price competition both shifts users to the cheaper
//!   ISP and grows the market;
//! * each network separately settles its own Definition 1 fixed point.
//!
//! On top sit the CPs' subsidy equilibrium (best-response iteration, as
//! in [`crate::nash`]) and the ISPs' price best-response dynamics. The
//! tests verify the conjecture's economics: duopoly prices undercut the
//! monopoly price and welfare rises, while deregulated subsidization
//! still lifts both ISPs' revenues.

use crate::game::SubsidyGame;
use subcomp_model::system::System;
use subcomp_num::optimize::maximize_scalar;
use subcomp_num::seq::ConvergenceTracker;
use subcomp_num::{NumError, NumResult, Tolerance};

/// A two-ISP access market over a shared CP population.
#[derive(Clone)]
pub struct Duopoly {
    /// The CP population with network A's capacity.
    system_a: System,
    /// The same CPs with network B's capacity.
    system_b: System,
    /// Logit sensitivity of the users' ISP choice.
    kappa: f64,
    /// Subsidy cap `q`.
    cap: f64,
}

/// A solved duopoly state at prices `(p_a, p_b)`.
#[derive(Debug, Clone)]
pub struct DuopolyState {
    /// Equilibrium subsidies (shared across networks).
    pub subsidies: Vec<f64>,
    /// Per-CP populations on network A.
    pub m_a: Vec<f64>,
    /// Per-CP populations on network B.
    pub m_b: Vec<f64>,
    /// Utilization of network A.
    pub phi_a: f64,
    /// Utilization of network B.
    pub phi_b: f64,
    /// Revenue of ISP A.
    pub revenue_a: f64,
    /// Revenue of ISP B.
    pub revenue_b: f64,
    /// System welfare `Σ v_i (θ_iA + θ_iB)`.
    pub welfare: f64,
}

impl Duopoly {
    /// Creates a duopoly; both capacities positive, `κ > 0`, `q ≥ 0`.
    pub fn new(system: &System, mu_a: f64, mu_b: f64, kappa: f64, cap: f64) -> NumResult<Self> {
        if !(kappa > 0.0) {
            return Err(NumError::Domain {
                what: "logit sensitivity must be positive",
                value: kappa,
            });
        }
        if !(cap >= 0.0) {
            return Err(NumError::Domain { what: "cap must be non-negative", value: cap });
        }
        Ok(Duopoly {
            system_a: system.with_capacity(mu_a)?,
            system_b: system.with_capacity(mu_b)?,
            kappa,
            cap,
        })
    }

    /// Number of CPs.
    pub fn n(&self) -> usize {
        self.system_a.n()
    }

    /// Splits CP `i`'s demand between the ISPs at effective prices
    /// `(t_a, t_b)`: returns `(m_a, m_b)`.
    ///
    /// Total demand is evaluated at the inclusive logsumexp price
    /// `t̄ = −κ^{-1} ln((e^{−κ t_a} + e^{−κ t_b})/2)`, which equals `t`
    /// when both ISPs charge `t` (no spurious demand from duplication)
    /// and drops below `min(t_a, t_b) + κ^{-1} ln 2` under competition.
    pub fn split_demand(&self, i: usize, t_a: f64, t_b: f64) -> (f64, f64) {
        let ea = (-self.kappa * t_a).exp();
        let eb = (-self.kappa * t_b).exp();
        let inclusive = -((ea + eb) / 2.0).ln() / self.kappa;
        let total = self.system_a.cp(i).population(inclusive);
        let share_a = ea / (ea + eb);
        (total * share_a, total * (1.0 - share_a))
    }

    /// Solves both networks' congestion fixed points and the ledger at
    /// given prices and subsidies.
    pub fn state_at(&self, p_a: f64, p_b: f64, s: &[f64]) -> NumResult<DuopolyState> {
        let n = self.n();
        if s.len() != n {
            return Err(NumError::DimensionMismatch { expected: n, actual: s.len() });
        }
        let mut m_a = vec![0.0; n];
        let mut m_b = vec![0.0; n];
        for i in 0..n {
            let (a, b) = self.split_demand(i, p_a - s[i], p_b - s[i]);
            m_a[i] = a;
            m_b[i] = b;
        }
        let st_a = self.system_a.solve_state(&m_a)?;
        let st_b = self.system_b.solve_state(&m_b)?;
        let welfare = (0..n)
            .map(|i| self.system_a.cp(i).profitability() * (st_a.theta_i[i] + st_b.theta_i[i]))
            .sum();
        Ok(DuopolyState {
            subsidies: s.to_vec(),
            m_a,
            m_b,
            phi_a: st_a.phi,
            phi_b: st_b.phi,
            revenue_a: p_a * st_a.theta(),
            revenue_b: p_b * st_b.theta(),
            welfare,
        })
    }

    /// CP `i`'s utility at `(p_a, p_b, s)`.
    fn utility(&self, i: usize, p_a: f64, p_b: f64, s: &[f64]) -> NumResult<f64> {
        let n = self.n();
        let mut m_a = vec![0.0; n];
        let mut m_b = vec![0.0; n];
        for j in 0..n {
            let (a, b) = self.split_demand(j, p_a - s[j], p_b - s[j]);
            m_a[j] = a;
            m_b[j] = b;
        }
        let st_a = self.system_a.solve_state(&m_a)?;
        let st_b = self.system_b.solve_state(&m_b)?;
        let v = self.system_a.cp(i).profitability();
        Ok((v - s[i]) * (st_a.theta_i[i] + st_b.theta_i[i]))
    }

    /// Solves the CPs' subsidy equilibrium at fixed prices by damped
    /// Gauss–Seidel best response.
    pub fn subsidy_equilibrium(&self, p_a: f64, p_b: f64) -> NumResult<DuopolyState> {
        let n = self.n();
        let mut s = vec![0.0; n];
        let mut tracker = ConvergenceTracker::new(6);
        tracker.push(&s);
        let tol = Tolerance::new(1e-9, 1e-9).with_max_iter(80);
        for _ in 0..200 {
            let mut next = s.clone();
            for i in 0..n {
                let hi = self.cap.min(self.system_a.cp(i).profitability());
                let f = |si: f64| {
                    let mut prof = next.clone();
                    prof[i] = si;
                    self.utility(i, p_a, p_b, &prof).unwrap_or(f64::NEG_INFINITY)
                };
                next[i] = maximize_scalar(&f, 0.0, hi, 16, tol)?.x;
            }
            let delta = tracker.push(&next).unwrap_or(f64::INFINITY);
            s = next;
            if delta < 1e-7 {
                return self.state_at(p_a, p_b, &s);
            }
        }
        Err(NumError::MaxIterations {
            max_iter: 200,
            residual: tracker.last_delta().unwrap_or(f64::NAN),
        })
    }

    /// ISP price best-response dynamics: alternate `p_A`, `p_B` revenue
    /// maximization (with the CP equilibrium re-solved inside) until the
    /// price pair settles. Returns the final state and prices.
    pub fn price_competition(
        &self,
        p_range: (f64, f64),
        rounds: usize,
    ) -> NumResult<(f64, f64, DuopolyState)> {
        let mut p_a = 0.5 * (p_range.0 + p_range.1);
        let mut p_b = p_a * 0.9; // asymmetric start breaks symmetry traps
        let tol = Tolerance::new(1e-4, 1e-4).with_max_iter(40);
        for _ in 0..rounds {
            let rev_a = |p: f64| {
                self.subsidy_equilibrium(p, p_b).map(|st| st.revenue_a).unwrap_or(f64::NEG_INFINITY)
            };
            let new_a = maximize_scalar(&rev_a, p_range.0, p_range.1, 10, tol)?.x;
            let rev_b = |p: f64| {
                self.subsidy_equilibrium(new_a, p)
                    .map(|st| st.revenue_b)
                    .unwrap_or(f64::NEG_INFINITY)
            };
            let new_b = maximize_scalar(&rev_b, p_range.0, p_range.1, 10, tol)?.x;
            let moved = (new_a - p_a).abs().max((new_b - p_b).abs());
            p_a = new_a;
            p_b = new_b;
            if moved < 5e-3 {
                break;
            }
        }
        let st = self.subsidy_equilibrium(p_a, p_b)?;
        Ok((p_a, p_b, st))
    }
}

impl std::fmt::Debug for Duopoly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Duopoly")
            .field("n_cps", &self.n())
            .field("mu_a", &self.system_a.mu())
            .field("mu_b", &self.system_b.mu())
            .field("kappa", &self.kappa)
            .field("cap", &self.cap)
            .finish()
    }
}

/// Convenience: the monopoly counterpart (one ISP with the combined
/// capacity) for comparison, returning `(p*, revenue, welfare)`.
pub fn monopoly_benchmark(
    system: &System,
    total_mu: f64,
    cap: f64,
    p_range: (f64, f64),
) -> NumResult<(f64, f64, f64)> {
    let sys = system.with_capacity(total_mu)?;
    let solver = crate::nash::NashSolver::default().with_tol(1e-7).with_max_sweeps(120);
    let choice = crate::pricing::optimal_price(&sys, cap, p_range.0, p_range.1, &solver)?;
    let game = SubsidyGame::new(sys, choice.p_star, cap)?;
    let w = crate::welfare::welfare(&game, &choice.equilibrium.state);
    Ok((choice.p_star, choice.revenue, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn market() -> System {
        build_system(&[ExpCpSpec::unit(4.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 4.0, 0.5)], 1.0)
            .unwrap()
    }

    #[test]
    fn split_demand_symmetric_and_total_consistent() {
        let duo = Duopoly::new(&market(), 0.5, 0.5, 6.0, 0.5).unwrap();
        // Equal prices: even split, total equals the single-network demand.
        let (a, b) = duo.split_demand(0, 0.4, 0.4);
        assert!((a - b).abs() < 1e-12);
        let single = market().cp(0).population(0.4);
        assert!((a + b - single).abs() < 1e-12);
        // Cheaper ISP gets the bigger share and total demand grows.
        let (a2, b2) = duo.split_demand(0, 0.3, 0.5);
        assert!(a2 > b2);
        assert!(a2 + b2 > single);
    }

    #[test]
    fn state_solves_both_networks() {
        let duo = Duopoly::new(&market(), 0.6, 0.4, 6.0, 0.5).unwrap();
        let st = duo.state_at(0.5, 0.7, &[0.1, 0.0]).unwrap();
        assert!(st.phi_a > 0.0 && st.phi_b > 0.0);
        // The cheaper, bigger network A carries more and is busier.
        assert!(st.revenue_a > st.revenue_b);
        assert!(st.welfare > 0.0);
    }

    #[test]
    fn subsidy_equilibrium_feasible_and_stable() {
        let duo = Duopoly::new(&market(), 0.5, 0.5, 6.0, 0.6).unwrap();
        let st = duo.subsidy_equilibrium(0.6, 0.6).unwrap();
        assert!(st.subsidies[0] > 0.0, "the profitable CP subsidizes");
        assert!(st.subsidies[1] < 0.1, "the poor CP mostly sits out");
        for (i, &s) in st.subsidies.iter().enumerate() {
            assert!(s >= 0.0 && s <= duo.cap.min(duo.system_a.cp(i).profitability()) + 1e-9);
        }
    }

    #[test]
    fn competition_undercuts_monopoly() {
        // The paper's §6 conjecture: duopoly competition disciplines the
        // access price and raises welfare relative to a monopolist with
        // the same total capacity.
        let sys = market();
        let duo = Duopoly::new(&sys, 0.5, 0.5, 6.0, 0.5).unwrap();
        let (p_a, p_b, st) = duo.price_competition((0.05, 1.5), 6).unwrap();
        let (p_mono, _, w_mono) = monopoly_benchmark(&sys, 1.0, 0.5, (0.05, 1.5)).unwrap();
        assert!(
            p_a < p_mono && p_b < p_mono,
            "duopoly prices ({p_a:.3}, {p_b:.3}) must undercut monopoly {p_mono:.3}"
        );
        assert!(
            st.welfare > w_mono,
            "duopoly welfare {} must beat monopoly {}",
            st.welfare,
            w_mono
        );
    }

    #[test]
    fn subsidization_still_lifts_revenues_under_competition() {
        let sys = market();
        let banned = Duopoly::new(&sys, 0.5, 0.5, 6.0, 0.0).unwrap();
        let open = Duopoly::new(&sys, 0.5, 0.5, 6.0, 0.6).unwrap();
        let st0 = banned.subsidy_equilibrium(0.5, 0.5).unwrap();
        let st1 = open.subsidy_equilibrium(0.5, 0.5).unwrap();
        assert!(st1.revenue_a > st0.revenue_a);
        assert!(st1.revenue_b > st0.revenue_b);
        assert!(st1.welfare > st0.welfare);
    }

    #[test]
    fn constructor_validation() {
        let sys = market();
        assert!(Duopoly::new(&sys, 0.0, 0.5, 6.0, 0.5).is_err());
        assert!(Duopoly::new(&sys, 0.5, 0.5, 0.0, 0.5).is_err());
        assert!(Duopoly::new(&sys, 0.5, 0.5, 6.0, -0.1).is_err());
    }
}
