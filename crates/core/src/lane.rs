//! Lane-batched Nash solving: K same-shape games advanced in lockstep.
//!
//! [`LaneGame`] packs K [`SubsidyGame`]s of identical market shape over a
//! [`LaneSystem`] (structure-of-arrays parameters, one distinct-`β` table
//! per lane); [`LaneSolver`] runs the Gauss–Seidel best-response sweep
//! *column-outer, lanes-inner*: for each provider column `i`, every
//! still-active lane computes its best response through the same
//! [`threshold_br_core`]/[`grid_br_core`] engine bodies the scalar
//! [`crate::nash::NashSolver`] runs. Converged lanes freeze — their
//! iterate, state and utilities are assembled once and never touched
//! again — while iteration continues until the active mask is empty.
//!
//! **Equivalence contract.** Per lane, the solver is *bit-identical* to
//! `NashSolver::default().with_threshold_br(true)` solving that lane's
//! game from [`crate::nash::WarmStart::Zero`]: the probe sequences are the
//! literal shared engine bodies, the φ-solves mirror the scalar kernel
//! expression-for-expression, and the population cache holds exactly the
//! bits `populations_for` would recompute (`exp` is pure). Lanes never
//! read each other's slices, so results are independent of how a batch is
//! blocked into lanes and of which thread solves which block — the
//! bit-identity contracts `tests/lane_equivalence.rs` pins. Against the
//! *default* grid-scan solver the agreement is that of the threshold
//! engine: exact at corner equilibria, ~1e-9 at interior ones (the
//! documented `threshold_br` tolerance; see `tests/README.md`).
//!
//! One deliberate difference from the scalar solver: sweep exhaustion
//! does not abort the batch. A lane that fails to converge (or whose
//! probe errors) is reported through [`LaneWorkspace::result_of`] while
//! its lane-mates finish normally — per-lane independence would otherwise
//! be lost.
//!
//! The lane-wide residual loop is hand-tiled in fixed-width chunks the
//! autovectorizer lowers to vector code; the pinned stable toolchain
//! has no `std::simd`, so there is no explicit SIMD path. Tiling only
//! reorders the max-reduction of the residual, which is
//! order-independent — values are unchanged. Plain copies use
//! `copy_from_slice` (a single `memcpy`).

use crate::best_response::{grid_br_core, threshold_br_core, BrConfig, BrObjective};
use crate::game::SubsidyGame;
use crate::nash::SolveStats;
use crate::workspace::SolveWorkspace;
use subcomp_model::lane::LaneSystem;
use subcomp_num::{NumError, NumResult};

/// Fixed tile width for the lane-wide residual loop.
const LANE_TILE: usize = 8;

/// `max_j |a_j − b_j|` in fixed-width chunks; the max-reduction is
/// order-independent, so this equals the sequential `sub_inf_norm`.
#[inline]
fn sup_diff_tiled(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / LANE_TILE;
    let mut acc = [0.0f64; LANE_TILE];
    for c in 0..chunks {
        let base = c * LANE_TILE;
        for k in 0..LANE_TILE {
            acc[k] = acc[k].max((a[base + k] - b[base + k]).abs());
        }
    }
    let mut r = acc.iter().fold(0.0f64, |m, &v| m.max(v));
    for k in chunks * LANE_TILE..a.len() {
        r = r.max((a[k] - b[k]).abs());
    }
    r
}

/// K same-shape subsidy games over a [`LaneSystem`].
#[derive(Debug, Clone)]
pub struct LaneGame {
    system: LaneSystem,
    /// ISP price `p` per lane.
    price: Vec<f64>,
    /// Regulatory cap `q` per lane.
    cap: Vec<f64>,
}

impl LaneGame {
    /// Packs games into lanes. Returns `None` when the batch is not
    /// lane-eligible (see [`LaneSystem::from_systems`]) or any game uses
    /// the non-paper clamped-price convention — callers fall back to the
    /// scalar path.
    pub fn from_games(games: &[&SubsidyGame]) -> Option<LaneGame> {
        if games.iter().any(|g| g.clamps_effective_price()) {
            return None;
        }
        let systems: Vec<&subcomp_model::system::System> =
            games.iter().map(|g| g.system()).collect();
        let system = LaneSystem::from_systems(&systems)?;
        Some(LaneGame {
            system,
            price: games.iter().map(|g| g.price()).collect(),
            cap: games.iter().map(|g| g.cap()).collect(),
        })
    }

    /// Number of lanes K.
    pub fn lanes(&self) -> usize {
        self.system.lanes()
    }

    /// Providers per lane.
    pub fn n(&self) -> usize {
        self.system.n()
    }

    /// The packed physical systems.
    pub fn system(&self) -> &LaneSystem {
        &self.system
    }

    /// One lane's ISP price `p`.
    pub fn price_of(&self, lane: usize) -> f64 {
        self.price[lane]
    }

    /// One lane's effective strategy bound `min(q, v_i)` — the scalar
    /// [`SubsidyGame::effective_cap`] expression.
    pub fn effective_cap(&self, lane: usize, i: usize) -> f64 {
        self.cap[lane].min(self.system.profitability(lane, i))
    }
}

/// [`BrObjective`] over one (lane, provider) pair: probes overwrite
/// `m[i]` only, mirroring the scalar `utility_probe`/`marginal_probe`
/// expression-for-expression (unclamped effective price — `from_games`
/// declines clamped games).
struct LaneBrObjective<'a> {
    game: &'a LaneGame,
    lane: usize,
    i: usize,
    /// This lane's population cache (length `n`).
    m: &'a mut [f64],
    /// Per-lane `e^{-βφ}` scratch.
    exp: &'a mut [f64],
}

impl BrObjective for LaneBrObjective<'_> {
    fn cap(&self) -> f64 {
        self.game.effective_cap(self.lane, self.i)
    }

    fn utility(&mut self, si: f64) -> NumResult<f64> {
        let sys = self.game.system();
        let (lane, i) = (self.lane, self.i);
        self.m[i] = sys.population(lane, i, self.game.price[lane] - si);
        let phi = sys.solve_phi(lane, self.m, self.exp)?;
        let lambda_i = sys.lambda_of(lane, i, phi);
        Ok((sys.profitability(lane, i) - si) * (self.m[i] * lambda_i))
    }

    fn marginal(&mut self, si: f64) -> NumResult<f64> {
        let sys = self.game.system();
        let (lane, i) = (self.lane, self.i);
        self.m[i] = sys.population(lane, i, self.game.price[lane] - si);
        let phi = sys.solve_phi(lane, self.m, self.exp)?;
        let lambda_i = sys.lambda_of(lane, i, phi);
        let theta_ii = self.m[i] * lambda_i;
        let dg_dphi = sys.dgap_dphi(lane, phi, self.m, self.exp);
        // The scalar `marginal_from_parts` body (unclamped branch).
        let t_i = self.game.price[lane] - si;
        let dm_dsi = -sys.dm_dt(lane, i, t_i);
        let dphi_dsi = lambda_i * dm_dsi / dg_dphi;
        let dlambda = sys.dlambda_dphi(lane, i, phi);
        let dtheta_dsi = dm_dsi * lambda_i + self.m[i] * dlambda * dphi_dsi;
        Ok(-theta_ii + (sys.profitability(lane, i) - si) * dtheta_dsi)
    }
}

/// Reusable buffers plus per-lane results for [`LaneSolver::solve_into`].
/// All per-provider arrays are lane-major (`lane * n + j`); buffers only
/// grow, so one workspace hops between batches of any shape and warm
/// solves allocate nothing (pinned by `tests/alloc_free.rs`).
#[derive(Debug, Clone, Default)]
pub struct LaneWorkspace {
    /// Current iterate; converged lanes hold their equilibrium.
    s: Vec<f64>,
    /// Next iterate under construction.
    next: Vec<f64>,
    /// Population cache: `m[lane*n+j] = m_j(p_lane − s_j)` of the iterate
    /// the Gauss–Seidel basis currently holds.
    m: Vec<f64>,
    /// Shared `e^{-βφ}` scratch (one best response runs at a time).
    exp: Vec<f64>,
    /// Active mask: `true` while a lane is still iterating.
    active: Vec<bool>,
    /// Per-lane stats (valid once the lane froze or sweeps ran out).
    stats: Vec<SolveStats>,
    /// Per-lane probe error, if one occurred.
    errors: Vec<Option<NumError>>,
    /// Converged per-provider throughputs `λ_j(φ)`.
    lambda: Vec<f64>,
    /// Converged per-provider aggregate throughputs `θ_j = m_j λ_j`.
    theta_i: Vec<f64>,
    /// Converged utilities `(v_j − s_j) θ_j`.
    utilities: Vec<f64>,
    /// Converged utilization per lane.
    phi: Vec<f64>,
    /// Converged gap slope per lane.
    dg_dphi: Vec<f64>,
}

impl LaneWorkspace {
    /// An empty workspace; buffers are sized lazily on first solve.
    pub fn new() -> LaneWorkspace {
        LaneWorkspace::default()
    }

    /// Sizes every buffer for `game` (allocation-free once warm).
    fn ensure(&mut self, game: &LaneGame) {
        let total = game.lanes() * game.n();
        self.s.resize(total, 0.0);
        self.next.resize(total, 0.0);
        self.m.resize(total, 0.0);
        self.lambda.resize(total, 0.0);
        self.theta_i.resize(total, 0.0);
        self.utilities.resize(total, 0.0);
        self.exp.resize(self.exp.len().max(game.system().max_distinct_betas()), 0.0);
        self.active.resize(game.lanes(), false);
        self.stats
            .resize(game.lanes(), SolveStats { iterations: 0, residual: 0.0, converged: false });
        self.errors.resize(game.lanes(), None);
        self.phi.resize(game.lanes(), 0.0);
        self.dg_dphi.resize(game.lanes(), 0.0);
    }

    /// One lane's equilibrium subsidies.
    pub fn subsidies_of(&self, lane: usize, n: usize) -> &[f64] {
        &self.s[lane * n..lane * n + n]
    }

    /// One lane's equilibrium utilities.
    pub fn utilities_of(&self, lane: usize, n: usize) -> &[f64] {
        &self.utilities[lane * n..lane * n + n]
    }

    /// One lane's converged utilization `φ`.
    pub fn phi_of(&self, lane: usize) -> f64 {
        self.phi[lane]
    }

    /// One lane's outcome: the solve stats on convergence, the probe
    /// error if one occurred, or `MaxIterations` mirroring the scalar
    /// solver's exhaustion error.
    pub fn result_of(&self, lane: usize) -> NumResult<SolveStats> {
        if let Some(err) = &self.errors[lane] {
            return Err(err.clone());
        }
        let stats = self.stats[lane];
        if !stats.converged {
            return Err(NumError::MaxIterations {
                max_iter: stats.iterations,
                residual: stats.residual,
            });
        }
        Ok(stats)
    }

    /// Copies one lane's solution into a scalar [`SolveWorkspace`] —
    /// subsidies, full congestion state and utilities land exactly where
    /// a scalar solve would leave them, so downstream consumers
    /// (equilibrium verification, welfare) run unchanged on either path.
    pub fn export_into(&self, game: &LaneGame, lane: usize, out: &mut SolveWorkspace) {
        let n = game.n();
        let base = lane * n;
        out.s.resize(n, 0.0);
        out.s.copy_from_slice(&self.s[base..base + n]);
        out.utilities.resize(n, 0.0);
        out.utilities.copy_from_slice(&self.utilities[base..base + n]);
        out.state.phi = self.phi[lane];
        out.state.dg_dphi = self.dg_dphi[lane];
        out.state.m.resize(n, 0.0);
        out.state.m.copy_from_slice(&self.m[base..base + n]);
        out.state.lambda.resize(n, 0.0);
        out.state.lambda.copy_from_slice(&self.lambda[base..base + n]);
        out.state.theta_i.resize(n, 0.0);
        out.state.theta_i.copy_from_slice(&self.theta_i[base..base + n]);
    }
}

/// Lockstep Gauss–Seidel over a [`LaneGame`], mirroring the scalar
/// [`crate::nash::NashSolver`] defaults (damping 1, tolerance `1e-9`,
/// 600 sweeps, threshold best responses with grid-scan fallback).
#[derive(Debug, Clone, Copy)]
pub struct LaneSolver {
    /// Damping `ω ∈ (0, 1]`: `s ← (1−ω) s + ω BR(s)`.
    pub damping: f64,
    /// Convergence threshold on the per-lane sup-norm sweep update.
    pub tol: f64,
    /// Maximum sweeps.
    pub max_sweeps: usize,
    /// Grid-fallback configuration for profiles the threshold engine
    /// declines.
    pub br: BrConfig,
}

impl Default for LaneSolver {
    fn default() -> Self {
        LaneSolver { damping: 1.0, tol: 1e-9, max_sweeps: 600, br: BrConfig::default() }
    }
}

impl LaneSolver {
    /// Sets the sup-norm convergence tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the sweep budget.
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Solves every lane from the zero profile (the paper's baseline
    /// start). Returns the number of lanes that converged; per-lane
    /// outcomes are read back through [`LaneWorkspace::result_of`].
    /// Allocation-free on a warm workspace.
    pub fn solve_into(&self, game: &LaneGame, ws: &mut LaneWorkspace) -> usize {
        let lanes = game.lanes();
        let n = game.n();
        ws.ensure(game);
        ws.s[..lanes * n].fill(0.0);
        for lane in 0..lanes {
            let base = lane * n;
            for j in 0..n {
                // The scalar populations_for expression at the zero start.
                ws.m[base + j] = game.system.population(lane, j, game.price[lane] - ws.s[base + j]);
            }
            ws.active[lane] = true;
            ws.stats[lane] =
                SolveStats { iterations: 0, residual: f64::INFINITY, converged: false };
            ws.errors[lane] = None;
        }
        let mut remaining = lanes;
        for sweep in 0..self.max_sweeps {
            if remaining == 0 {
                break;
            }
            for lane in 0..lanes {
                if ws.active[lane] {
                    let base = lane * n;
                    ws.next[base..base + n].copy_from_slice(&ws.s[base..base + n]);
                }
            }
            // Column-outer, lanes-inner: provider i best-responds in every
            // active lane before the sweep moves to provider i + 1.
            for i in 0..n {
                for lane in 0..lanes {
                    if !ws.active[lane] {
                        continue;
                    }
                    let base = lane * n;
                    let hint = ws.s[base + i];
                    let br = {
                        let obj = LaneBrObjective {
                            game,
                            lane,
                            i,
                            m: &mut ws.m[base..base + n],
                            exp: &mut ws.exp,
                        };
                        match threshold_br_core(obj, hint) {
                            Ok(Some(br)) => Ok(br),
                            Ok(None) => grid_br_core(
                                LaneBrObjective {
                                    game,
                                    lane,
                                    i,
                                    m: &mut ws.m[base..base + n],
                                    exp: &mut ws.exp,
                                },
                                &self.br,
                            ),
                            Err(e) => Err(e),
                        }
                    };
                    match br {
                        Ok(br) => {
                            ws.next[base + i] =
                                (1.0 - self.damping) * ws.s[base + i] + self.damping * br.s;
                            // Restore the cache invariant: m reflects the
                            // Gauss–Seidel basis (the updated `next`).
                            ws.m[base + i] = game.system.population(
                                lane,
                                i,
                                game.price[lane] - ws.next[base + i],
                            );
                        }
                        Err(e) => {
                            ws.active[lane] = false;
                            ws.errors[lane] = Some(e);
                            ws.stats[lane] = SolveStats {
                                iterations: sweep + 1,
                                residual: f64::INFINITY,
                                converged: false,
                            };
                            remaining -= 1;
                        }
                    }
                }
            }
            for lane in 0..lanes {
                if !ws.active[lane] {
                    continue;
                }
                let base = lane * n;
                let residual = sup_diff_tiled(&ws.s[base..base + n], &ws.next[base..base + n]);
                let (s_block, next_block) = (&mut ws.s[base..base + n], &ws.next[base..base + n]);
                s_block.copy_from_slice(next_block);
                if residual <= self.tol {
                    ws.active[lane] = false;
                    remaining -= 1;
                    ws.stats[lane] =
                        SolveStats { iterations: sweep + 1, residual, converged: true };
                    if let Err(e) = finish_lane(game, ws, lane) {
                        ws.errors[lane] = Some(e);
                        ws.stats[lane].converged = false;
                    }
                } else {
                    ws.stats[lane] =
                        SolveStats { iterations: sweep + 1, residual, converged: false };
                }
            }
        }
        for lane in 0..lanes {
            ws.active[lane] = false;
        }
        (0..lanes).filter(|&l| ws.stats[l].converged).count()
    }
}

/// Assembles one converged lane's state and utilities, mirroring the
/// scalar convergence epilogue (`state_into` + `utility_at_state`): the
/// populations are recomputed from the final iterate, the fixed point
/// re-solved once, and `λ`, `θ_i`, `dg/dφ` assembled from one exp fill.
fn finish_lane(game: &LaneGame, ws: &mut LaneWorkspace, lane: usize) -> NumResult<()> {
    let n = game.n();
    let base = lane * n;
    for j in 0..n {
        ws.m[base + j] = game.system.population(lane, j, game.price[lane] - ws.s[base + j]);
    }
    let phi = game.system.solve_phi(lane, &ws.m[base..base + n], &mut ws.exp)?;
    let dg_dphi = game.system.state_into(
        lane,
        phi,
        &ws.m[base..base + n],
        &mut ws.exp,
        &mut ws.lambda[base..base + n],
        &mut ws.theta_i[base..base + n],
    );
    ws.phi[lane] = phi;
    ws.dg_dphi[lane] = dg_dphi;
    for j in 0..n {
        ws.utilities[base + j] =
            (game.system.profitability(lane, j) - ws.s[base + j]) * ws.theta_i[base + j];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::{NashSolver, WarmStart};
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn game(mu: f64, p: f64, q: f64, bump: f64) -> SubsidyGame {
        let specs = [
            ExpCpSpec::unit(2.0 + bump, 2.0, 1.0),
            ExpCpSpec::unit(5.0, 3.0 + bump, 0.6),
            ExpCpSpec::unit(3.0, 3.0 + bump, 1.0),
        ];
        SubsidyGame::new(build_system(&specs, mu).unwrap(), p, q).unwrap()
    }

    #[test]
    fn lane_solve_is_bit_identical_to_scalar_threshold_solver() {
        let games = [game(1.0, 0.6, 0.8, 0.0), game(1.3, 0.9, 1.2, 0.5), game(0.7, 0.4, 0.3, 1.0)];
        let refs: Vec<&SubsidyGame> = games.iter().collect();
        let lane_game = LaneGame::from_games(&refs).expect("paper-family games are eligible");
        let mut lw = LaneWorkspace::new();
        let converged = LaneSolver::default().solve_into(&lane_game, &mut lw);
        assert_eq!(converged, games.len());

        let scalar = NashSolver::default().with_threshold_br(true);
        let mut ws = SolveWorkspace::new();
        for (l, g) in games.iter().enumerate() {
            let stats = scalar.solve_into(g, WarmStart::Zero, &mut ws).unwrap();
            let lane_stats = lw.result_of(l).unwrap();
            assert_eq!(lane_stats.iterations, stats.iterations, "lane {l} iteration drift");
            assert_eq!(
                lane_stats.residual.to_bits(),
                stats.residual.to_bits(),
                "lane {l} residual drift"
            );
            for (a, b) in lw.subsidies_of(l, g.n()).iter().zip(ws.subsidies()) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {l} subsidy drift");
            }
            for (a, b) in lw.utilities_of(l, g.n()).iter().zip(ws.utilities()) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {l} utility drift");
            }
            assert_eq!(lw.phi_of(l).to_bits(), ws.state().phi.to_bits());
        }
    }

    #[test]
    fn results_do_not_depend_on_lane_blocking() {
        // Lanes never read each other's slices: solving [g0, g1, g2] as
        // one 3-lane batch or as {[g0], [g1, g2]} gives identical bits.
        let games = [game(1.0, 0.6, 0.8, 0.0), game(1.3, 0.9, 1.2, 0.5), game(0.7, 0.4, 0.3, 1.0)];
        let refs: Vec<&SubsidyGame> = games.iter().collect();
        let all = LaneGame::from_games(&refs).unwrap();
        let mut lw_all = LaneWorkspace::new();
        LaneSolver::default().solve_into(&all, &mut lw_all);

        let first = LaneGame::from_games(&refs[..1]).unwrap();
        let rest = LaneGame::from_games(&refs[1..]).unwrap();
        let mut lw_split = LaneWorkspace::new();
        LaneSolver::default().solve_into(&first, &mut lw_split);
        let n = games[0].n();
        let s0: Vec<f64> = lw_split.subsidies_of(0, n).to_vec();
        LaneSolver::default().solve_into(&rest, &mut lw_split);
        for (a, b) in lw_all.subsidies_of(0, n).iter().zip(&s0) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for l in 0..2 {
            for (a, b) in lw_all.subsidies_of(l + 1, n).iter().zip(lw_split.subsidies_of(l, n)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn export_matches_scalar_workspace() {
        let games = [game(1.0, 0.6, 0.8, 0.0), game(1.3, 0.9, 1.2, 0.5)];
        let refs: Vec<&SubsidyGame> = games.iter().collect();
        let lane_game = LaneGame::from_games(&refs).unwrap();
        let mut lw = LaneWorkspace::new();
        LaneSolver::default().solve_into(&lane_game, &mut lw);
        let scalar = NashSolver::default().with_threshold_br(true);
        let mut want = SolveWorkspace::new();
        let mut got = SolveWorkspace::new();
        for (l, g) in games.iter().enumerate() {
            scalar.solve_into(g, WarmStart::Zero, &mut want).unwrap();
            lw.export_into(&lane_game, l, &mut got);
            assert_eq!(got.subsidies(), want.subsidies());
            assert_eq!(got.utilities(), want.utilities());
            assert_eq!(got.state().phi.to_bits(), want.state().phi.to_bits());
            assert_eq!(got.state().dg_dphi.to_bits(), want.state().dg_dphi.to_bits());
            assert_eq!(got.state().theta_i, want.state().theta_i);
            assert_eq!(got.state().m, want.state().m);
            assert_eq!(got.state().lambda, want.state().lambda);
        }
    }

    #[test]
    fn tiled_residual_matches_reference() {
        let a: Vec<f64> = (0..19).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..19).map(|i| (i as f64 * 0.3).cos()).collect();
        let want = subcomp_num::linalg::vector::sub_inf_norm(&a, &b);
        assert_eq!(sup_diff_tiled(&a, &b).to_bits(), want.to_bits());
    }

    #[test]
    fn declines_clamped_games() {
        let g = game(1.0, 0.6, 0.8, 0.0).with_clamped_price(true);
        assert!(LaneGame::from_games(&[&g]).is_none());
    }
}
