//! The game as a variational inequality (the Theorem 4/6 formulation).
//!
//! By Proposition 1.4.2 of Facchinei–Pang (cited in the paper's proofs),
//! the Nash equilibria of the subsidization game coincide with the
//! solutions of `VI(F, K)` where `F = −u` (negated marginal utilities) and
//! `K = [0, q]^N`: find `s ∈ K` with `(x − s)ᵀ F(s) ≥ 0 ∀x ∈ K`.
//!
//! Two classical solvers are provided — fixed-step **projection**
//! (`s ← Π_K(s − γ F(s))`) and Korpelevich **extragradient** — as
//! independent cross-checks on the best-response solvers in [`crate::nash`].
//! The natural-residual map `‖s − Π_K(s − F(s))‖_∞` doubles as an
//! equilibrium certificate.

use crate::game::SubsidyGame;
use crate::workspace::SolveWorkspace;
use subcomp_model::system::SystemState;
use subcomp_num::linalg::vector::{clamp_in_place, step_into, sub_inf_norm};
use subcomp_num::{NumError, NumResult};

/// Result of a VI solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ViSolution {
    /// The solution profile.
    pub subsidies: Vec<f64>,
    /// Solved state at the solution.
    pub state: SystemState,
    /// Natural residual `‖s − Π_K(s − F(s))‖_∞` at the solution.
    pub natural_residual: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual met the tolerance.
    pub converged: bool,
}

/// Configuration for the VI solvers.
#[derive(Debug, Clone, Copy)]
pub struct ViConfig {
    /// Step size `γ > 0`.
    pub step: f64,
    /// Convergence threshold on the natural residual.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
}

impl Default for ViConfig {
    fn default() -> Self {
        ViConfig { step: 0.15, tol: 1e-9, max_iter: 20_000 }
    }
}

fn project(game: &SubsidyGame, s: &mut [f64]) {
    for (i, si) in s.iter_mut().enumerate() {
        *si = si.clamp(0.0, game.effective_cap(i));
    }
}

/// The VI map `F(s) = −u(s)`.
pub fn vi_map(game: &SubsidyGame, s: &[f64]) -> NumResult<Vec<f64>> {
    Ok(game.marginal_utilities(s)?.iter().map(|u| -u).collect())
}

/// Natural residual `‖s − Π_K(s − F(s))‖_∞`; zero exactly at solutions.
pub fn natural_residual(game: &SubsidyGame, s: &[f64]) -> NumResult<f64> {
    let f = vi_map(game, s)?;
    let mut proj: Vec<f64> = s.iter().zip(&f).map(|(si, fi)| si - fi).collect();
    project(game, &mut proj);
    Ok(s.iter().zip(&proj).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max))
}

/// Health summary of one VI `_into` solve; the solution itself stays in
/// the workspace. Mirrors the corresponding [`ViSolution`] fields
/// bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViStats {
    /// Natural residual at the solution.
    pub natural_residual: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual met the tolerance.
    pub converged: bool,
}

/// Fixed-step projection method. Converges for co-coercive maps; on this
/// game the step default is conservative enough in practice, and the
/// method is used as a cross-check rather than the primary solver.
pub fn projection_solve(game: &SubsidyGame, s0: &[f64], cfg: &ViConfig) -> NumResult<ViSolution> {
    let mut ws = SolveWorkspace::for_game(game);
    let stats = projection_solve_into(game, s0, cfg, &mut ws)?;
    Ok(vi_solution(&ws, stats))
}

/// Korpelevich extragradient: a predictor step probes `F`, the corrector
/// applies it — convergent for merely monotone maps, at twice the cost
/// per iteration.
pub fn extragradient_solve(
    game: &SubsidyGame,
    s0: &[f64],
    cfg: &ViConfig,
) -> NumResult<ViSolution> {
    let mut ws = SolveWorkspace::for_game(game);
    let stats = extragradient_solve_into(game, s0, cfg, &mut ws)?;
    Ok(vi_solution(&ws, stats))
}

fn vi_solution(ws: &SolveWorkspace, stats: ViStats) -> ViSolution {
    ViSolution {
        subsidies: ws.subsidies().to_vec(),
        state: ws.state().clone(),
        natural_residual: stats.natural_residual,
        iterations: stats.iterations,
        converged: stats.converged,
    }
}

/// [`projection_solve`] on a caller-owned workspace: bit-identical
/// iterates, zero heap allocation once the workspace is warm. On success
/// the solution stays in `ws` ([`SolveWorkspace::subsidies`] /
/// [`SolveWorkspace::state`]).
pub fn projection_solve_into(
    game: &SubsidyGame,
    s0: &[f64],
    cfg: &ViConfig,
    ws: &mut SolveWorkspace,
) -> NumResult<ViStats> {
    game.validate(s0)?;
    ws.ensure(game);
    ws.s.copy_from_slice(s0);
    clamp_in_place(&mut ws.s, 0.0, &ws.caps);
    let mut residual = f64::INFINITY;
    for iter in 0..cfg.max_iter {
        game.vi_map_into(&ws.s, &mut ws.prices, &mut ws.scratch, &mut ws.state, &mut ws.vi_f)?;
        step_into(&ws.s, &ws.vi_f, cfg.step, &mut ws.next);
        clamp_in_place(&mut ws.next, 0.0, &ws.caps);
        residual = sub_inf_norm(&ws.s, &ws.next) / cfg.step;
        std::mem::swap(&mut ws.s, &mut ws.next);
        if residual <= cfg.tol {
            return finish_vi(game, ws, iter + 1);
        }
    }
    Err(NumError::MaxIterations { max_iter: cfg.max_iter, residual })
}

/// [`extragradient_solve`] on a caller-owned workspace: bit-identical
/// iterates, zero heap allocation once the workspace is warm.
pub fn extragradient_solve_into(
    game: &SubsidyGame,
    s0: &[f64],
    cfg: &ViConfig,
    ws: &mut SolveWorkspace,
) -> NumResult<ViStats> {
    game.validate(s0)?;
    ws.ensure(game);
    ws.s.copy_from_slice(s0);
    clamp_in_place(&mut ws.s, 0.0, &ws.caps);
    let mut residual = f64::INFINITY;
    for iter in 0..cfg.max_iter {
        game.vi_map_into(&ws.s, &mut ws.prices, &mut ws.scratch, &mut ws.state, &mut ws.vi_f)?;
        step_into(&ws.s, &ws.vi_f, cfg.step, &mut ws.vi_pred);
        clamp_in_place(&mut ws.vi_pred, 0.0, &ws.caps);
        game.vi_map_into(
            &ws.vi_pred,
            &mut ws.prices,
            &mut ws.scratch,
            &mut ws.state,
            &mut ws.vi_f,
        )?;
        step_into(&ws.s, &ws.vi_f, cfg.step, &mut ws.next);
        clamp_in_place(&mut ws.next, 0.0, &ws.caps);
        residual = sub_inf_norm(&ws.s, &ws.next) / cfg.step;
        std::mem::swap(&mut ws.s, &mut ws.next);
        if residual <= cfg.tol {
            return finish_vi(game, ws, iter + 1);
        }
    }
    Err(NumError::MaxIterations { max_iter: cfg.max_iter, residual })
}

/// Terminal bookkeeping shared by the VI engines: solve the state at the
/// converged iterate and compute the natural residual, all in workspace
/// buffers (`vi_f` holds `F(s)`, `vi_pred` the projected probe).
fn finish_vi(game: &SubsidyGame, ws: &mut SolveWorkspace, iterations: usize) -> NumResult<ViStats> {
    game.vi_map_into(&ws.s, &mut ws.prices, &mut ws.scratch, &mut ws.state, &mut ws.vi_f)?;
    for i in 0..ws.s.len() {
        ws.vi_pred[i] = ws.s[i] - ws.vi_f[i];
    }
    clamp_in_place(&mut ws.vi_pred, 0.0, &ws.caps);
    let nr = sub_inf_norm(&ws.s, &ws.vi_pred);
    Ok(ViStats { natural_residual: nr, iterations, converged: true })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::NashSolver;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn paper_game(p: f64, q: f64) -> SubsidyGame {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    }

    #[test]
    fn projection_agrees_with_best_response() {
        let game = paper_game(0.7, 0.6);
        let br = NashSolver::default().solve(&game).unwrap();
        let vi = projection_solve(&game, &[0.0; 8], &ViConfig::default()).unwrap();
        assert!(vi.converged);
        for i in 0..8 {
            assert!(
                (br.subsidies[i] - vi.subsidies[i]).abs() < 1e-5,
                "CP {i}: BR {} vs VI {}",
                br.subsidies[i],
                vi.subsidies[i]
            );
        }
    }

    #[test]
    fn extragradient_agrees_with_projection() {
        let game = paper_game(0.5, 1.0);
        let pj = projection_solve(&game, &[0.1; 8], &ViConfig::default()).unwrap();
        let eg = extragradient_solve(&game, &[0.4; 8], &ViConfig::default()).unwrap();
        for i in 0..8 {
            assert!((pj.subsidies[i] - eg.subsidies[i]).abs() < 1e-5, "CP {i}");
        }
    }

    #[test]
    fn natural_residual_zero_at_solution_positive_elsewhere() {
        let game = paper_game(0.6, 0.5);
        let sol = projection_solve(&game, &[0.0; 8], &ViConfig::default()).unwrap();
        assert!(sol.natural_residual < 1e-7);
        let off = natural_residual(&game, &[0.0; 8]).unwrap();
        assert!(off > 1e-3, "residual at the origin should be large, got {off}");
    }

    #[test]
    fn vi_map_is_negated_marginal_utility() {
        let game = paper_game(0.5, 1.0);
        let s = vec![0.2; 8];
        let f = vi_map(&game, &s).unwrap();
        let u = game.marginal_utilities(&s).unwrap();
        for i in 0..8 {
            assert_eq!(f[i], -u[i]);
        }
    }

    #[test]
    fn tiny_budget_errors_out() {
        let game = paper_game(0.5, 1.0);
        let cfg = ViConfig { max_iter: 2, ..Default::default() };
        assert!(matches!(
            projection_solve(&game, &[0.0; 8], &cfg),
            Err(NumError::MaxIterations { .. })
        ));
    }
}
