//! Concurrent-reader-safe snapshots of solved equilibria, plus the
//! tangent warm-start admission policy — the session/state layer the
//! equilibrium server builds on.
//!
//! A [`SolveWorkspace`] is a *mutable* scratch: the next solve overwrites
//! the solution it holds, so it cannot be handed to readers while the
//! server keeps serving. [`EqSnapshot`] is the immutable counterpart —
//! every quantity a query answer needs, copied out of the workspace once
//! and then shared freely behind an [`Arc`] (`EqSnapshot` is plain `Send +
//! Sync` data, so any number of reader threads can hold the same solved
//! state while the workspace moves on).
//!
//! Snapshots double as reusable buffers: [`EqSnapshot::capture_into`]
//! overwrites an existing snapshot in place, growing vectors at most to
//! the game's size, so a server that recycles retired snapshots performs
//! zero heap allocation per warm capture — the contract the warm-server
//! case in `tests/alloc_free.rs` pins.
//!
//! [`TangentPolicy`] decides when a parameter delta is small enough to
//! admit the Theorem 6 first-order predictor ([`WarmStart::Tangent`])
//! instead of plain previous-iterate seeding: tangent extrapolation only
//! pays off inside the equilibrium's differentiable neighbourhood, and a
//! large step (or a blown-up derivative near an active-set change) makes
//! the predictor *worse* than [`WarmStart::Previous`].
//!
//! [`WarmStart::Tangent`]: crate::nash::WarmStart::Tangent
//! [`WarmStart::Previous`]: crate::nash::WarmStart::Previous

use crate::game::SubsidyGame;
use crate::nash::SolveStats;
use crate::workspace::SolveWorkspace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use subcomp_model::system::SystemState;

/// An immutable copy of one solved equilibrium: parameters, subsidies,
/// congestion state, utilities and the derived report scalars. Share it
/// behind an `Arc` — cloning the `Arc` is the server's cache-hit path.
#[derive(Debug, Clone, PartialEq)]
pub struct EqSnapshot {
    price: f64,
    cap: f64,
    mu: f64,
    subsidies: Vec<f64>,
    utilities: Vec<f64>,
    state: SystemState,
    revenue: f64,
    welfare: f64,
    stats: SolveStats,
}

impl Default for EqSnapshot {
    fn default() -> Self {
        EqSnapshot {
            price: 0.0,
            cap: 0.0,
            mu: 0.0,
            subsidies: Vec::new(),
            utilities: Vec::new(),
            state: SystemState::empty(),
            revenue: 0.0,
            welfare: 0.0,
            stats: SolveStats { iterations: 0, residual: 0.0, converged: false },
        }
    }
}

impl EqSnapshot {
    /// An empty snapshot to use as a reusable capture buffer.
    pub fn empty() -> EqSnapshot {
        EqSnapshot::default()
    }

    /// Copies the solution a successful solve left in `ws` (see
    /// [`SolveWorkspace::subsidies`]) into a fresh snapshot.
    pub fn capture(game: &SubsidyGame, ws: &SolveWorkspace, stats: SolveStats) -> EqSnapshot {
        let mut snap = EqSnapshot::empty();
        snap.capture_into(game, ws, stats);
        snap
    }

    /// Overwrites this snapshot with the solution in `ws`, reusing every
    /// buffer — allocation-free once the snapshot has held a game at
    /// least this large.
    pub fn capture_into(&mut self, game: &SubsidyGame, ws: &SolveWorkspace, stats: SolveStats) {
        let n = game.n();
        self.price = game.price();
        self.cap = game.cap();
        self.mu = game.system().mu();
        copy_slice_into(&mut self.subsidies, ws.subsidies());
        copy_slice_into(&mut self.utilities, ws.utilities());
        let state = ws.state();
        self.state.phi = state.phi;
        self.state.dg_dphi = state.dg_dphi;
        copy_slice_into(&mut self.state.m, &state.m);
        copy_slice_into(&mut self.state.lambda, &state.lambda);
        copy_slice_into(&mut self.state.theta_i, &state.theta_i);
        let theta = state.theta();
        self.revenue = game.price() * theta;
        self.welfare = (0..n).map(|i| game.profitability(i) * state.theta_i[i]).sum();
        self.stats = stats;
    }

    /// The ISP price the equilibrium was solved at.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// The subsidy cap the equilibrium was solved at.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// The system capacity the equilibrium was solved at.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Equilibrium subsidies `s*`.
    pub fn subsidies(&self) -> &[f64] {
        &self.subsidies
    }

    /// Utilities `U_i(s*)`.
    pub fn utilities(&self) -> &[f64] {
        &self.utilities
    }

    /// Solved congestion state at `s*`.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// ISP revenue `p · θ(s*)`.
    pub fn revenue(&self) -> f64 {
        self.revenue
    }

    /// System welfare `W = Σ v_i θ_i` at `s*`.
    pub fn welfare(&self) -> f64 {
        self.welfare
    }

    /// The solve's health summary (sweeps, residual, convergence).
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Number of CP types in the snapshot.
    pub fn n(&self) -> usize {
        self.subsidies.len()
    }
}

/// Resizes `dst` to `src`'s length and copies — allocation-free when
/// `dst`'s capacity already covers `src` (buffers only grow).
fn copy_slice_into(dst: &mut Vec<f64>, src: &[f64]) {
    dst.resize(src.len(), 0.0);
    dst.copy_from_slice(src);
}

/// The shared map type behind a [`SnapshotIndex`]: key → (publishing
/// fingerprint, published snapshot). The fingerprint names the market
/// parameterization the snapshot answers — the supervision layer uses it
/// to re-seed a rebuilt server's cache under the right key after a shard
/// restart. The whole map lives behind an `Arc` so readers can hold a
/// consistent version without any lock.
type SnapMap = HashMap<u64, (u64, Arc<EqSnapshot>)>;

/// Retired map versions kept for buffer recycling. Two suffice for one
/// writer and steadily-refreshing readers; a few extra absorb readers
/// that lag a couple of generations.
const RETIRED_CAP: usize = 8;

/// Interior of a [`SnapshotIndex`], shared between the writer-side
/// handle and every [`SnapshotReader`].
struct IndexShared {
    /// Publication generation. Bumped (release) under the state lock
    /// after the new map version is in place, so a reader that observes
    /// a new generation and then takes the lock always finds a map at
    /// least that new.
    generation: AtomicU64,
    state: Mutex<IndexState>,
}

struct IndexState {
    map: Arc<SnapMap>,
    /// Old map versions awaiting reuse. A retired map still referenced
    /// by a lagging reader is skipped (never mutated) until that reader
    /// refreshes and drops it.
    retired: Vec<Arc<SnapMap>>,
}

/// A read-mostly publication index of solved equilibria: writers
/// [`publish`]/[`retract`] under a short lock, readers [`get`] through
/// an epoch-style lock-free fast path.
///
/// Publication is copy-on-write: each edit builds a fresh map version
/// (recycled from a retired-version freelist, so the steady state
/// allocates nothing) and swaps it in behind an `Arc`, then bumps a
/// generation counter with release ordering. A [`SnapshotReader`] caches
/// the map version it last saw and re-reads the shared state **only**
/// when the generation counter (one atomic acquire load) has moved —
/// so between publications, reads are a hash lookup plus an `Arc`
/// clone: no lock, no contention with the shard that owns the solver
/// state, and `Send`-safe to fan out across threads.
///
/// [`publish`]: SnapshotIndex::publish
/// [`retract`]: SnapshotIndex::retract
/// [`get`]: SnapshotReader::get
#[derive(Clone)]
pub struct SnapshotIndex {
    shared: Arc<IndexShared>,
}

impl Default for SnapshotIndex {
    fn default() -> Self {
        SnapshotIndex::new()
    }
}

impl std::fmt::Debug for SnapshotIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotIndex")
            .field("generation", &self.shared.generation.load(Ordering::Relaxed))
            .finish()
    }
}

impl SnapshotIndex {
    /// An empty index at generation 0.
    pub fn new() -> SnapshotIndex {
        SnapshotIndex {
            shared: Arc::new(IndexShared {
                generation: AtomicU64::new(0),
                state: Mutex::new(IndexState {
                    map: Arc::new(SnapMap::new()),
                    retired: Vec::with_capacity(RETIRED_CAP),
                }),
            }),
        }
    }

    /// Publishes `snap` under `key`, replacing any previous entry.
    /// `fingerprint` names the parameterization the snapshot answers (see
    /// [`SnapshotIndex::published`]).
    pub fn publish(&self, key: u64, fingerprint: u64, snap: Arc<EqSnapshot>) {
        self.rebuild(|map| {
            map.insert(key, (fingerprint, snap));
        });
    }

    /// The published (fingerprint, snapshot) pair for `key`, if any — the
    /// supervision layer's rehydration source: a respawned shard preloads
    /// each market's rebuilt cache with exactly this pair, so post-restart
    /// reads at an unchanged parameterization stay bit-identical cache
    /// hits instead of fresh solves.
    pub fn published(&self, key: u64) -> Option<(u64, Arc<EqSnapshot>)> {
        let state = self.shared.state.lock().expect("snapshot index lock poisoned");
        state.map.get(&key).map(|(fp, snap)| (*fp, Arc::clone(snap)))
    }

    /// Removes `key` from the index (a no-op if absent). Readers holding
    /// the old version keep serving it until they observe the new
    /// generation — exactly the staleness window the caller's ordering
    /// discipline (retract *before* acknowledging a write) must cover.
    pub fn retract(&self, key: u64) {
        self.rebuild(|map| {
            map.remove(&key);
        });
    }

    /// A detached reader over this index.
    pub fn reader(&self) -> SnapshotReader {
        let state = self.shared.state.lock().expect("snapshot index lock poisoned");
        let map = Arc::clone(&state.map);
        let seen = self.shared.generation.load(Ordering::Acquire);
        drop(state);
        SnapshotReader { shared: Arc::clone(&self.shared), map, seen }
    }

    /// Number of published entries.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("snapshot index lock poisoned").map.len()
    }

    /// Whether nothing is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy-on-write edit: clone the current version into a recycled (or
    /// fresh) buffer, apply `edit`, swap it in, retire the old version,
    /// bump the generation. All under the state lock, so edits serialize
    /// and the generation bump is ordered after the map swap.
    fn rebuild(&self, edit: impl FnOnce(&mut SnapMap)) {
        let mut state = self.shared.state.lock().expect("snapshot index lock poisoned");
        let mut next = take_unique(&mut state.retired).unwrap_or_else(|| Arc::new(SnapMap::new()));
        {
            let buf = Arc::get_mut(&mut next).expect("recycled map versions are unique");
            buf.clear();
            for (k, (fp, snap)) in state.map.iter() {
                buf.insert(*k, (*fp, Arc::clone(snap)));
            }
            edit(buf);
        }
        let old = std::mem::replace(&mut state.map, next);
        if state.retired.len() < RETIRED_CAP {
            state.retired.push(old);
        }
        self.shared.generation.fetch_add(1, Ordering::Release);
    }
}

/// Pops a retired map version no reader references any more (safe to
/// mutate through `Arc::get_mut`); versions still held stay in the list
/// untouched until their readers move on.
fn take_unique(retired: &mut Vec<Arc<SnapMap>>) -> Option<Arc<SnapMap>> {
    let at = retired.iter().position(|arc| Arc::strong_count(arc) == 1)?;
    Some(retired.swap_remove(at))
}

/// One thread's lock-free read handle over a [`SnapshotIndex`].
///
/// The reader caches the map version it last observed; [`get`] takes the
/// lock only when the index generation has moved since. Between
/// publications — the read-mostly steady state — a lookup touches no
/// lock and allocates nothing.
///
/// [`get`]: SnapshotReader::get
pub struct SnapshotReader {
    shared: Arc<IndexShared>,
    map: Arc<SnapMap>,
    seen: u64,
}

impl std::fmt::Debug for SnapshotReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("seen", &self.seen)
            .field("entries", &self.map.len())
            .finish()
    }
}

impl SnapshotReader {
    /// Looks up `key` in the freshest published version, refreshing the
    /// cached version first if the index has moved.
    pub fn get(&mut self, key: u64) -> Option<Arc<EqSnapshot>> {
        let generation = self.shared.generation.load(Ordering::Acquire);
        if generation != self.seen {
            let state = self.shared.state.lock().expect("snapshot index lock poisoned");
            self.map = Arc::clone(&state.map);
            // Re-read under the lock: the generation cannot advance while
            // we hold it, so `seen` exactly labels the version we cached.
            self.seen = self.shared.generation.load(Ordering::Acquire);
        }
        self.map.get(&key).map(|(_, snap)| Arc::clone(snap))
    }

    /// The index generation this reader last synchronized with — test
    /// hooks use it to assert that a retraction was observed (the
    /// generation moved) rather than merely that a lookup missed.
    pub fn seen_generation(&self) -> u64 {
        self.seen
    }
}

/// Admission policy for [`WarmStart::Tangent`] on small parameter deltas.
///
/// The Theorem 6 tangent is a *local* object: it predicts the equilibrium
/// displacement to first order around the point it was computed at. The
/// policy admits the predictor only when both the parameter step and the
/// predicted subsidy displacement stay inside a trust region; everything
/// else degrades to [`WarmStart::Previous`], which is always safe.
///
/// [`WarmStart::Tangent`]: crate::nash::WarmStart::Tangent
/// [`WarmStart::Previous`]: crate::nash::WarmStart::Previous
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TangentPolicy {
    /// Largest admissible parameter step `|Δθ|`.
    pub max_dtheta: f64,
    /// Largest admissible predicted displacement `max_i |Δθ · ∂s_i/∂θ|`.
    pub max_predicted_step: f64,
}

impl Default for TangentPolicy {
    fn default() -> Self {
        TangentPolicy { max_dtheta: 0.25, max_predicted_step: 0.5 }
    }
}

impl TangentPolicy {
    /// Whether a tangent step from `ds_dtheta` over `dtheta` is admitted.
    /// Non-finite inputs are always rejected.
    pub fn admits(&self, ds_dtheta: &[f64], dtheta: f64) -> bool {
        if !dtheta.is_finite() || dtheta.abs() > self.max_dtheta {
            return false;
        }
        ds_dtheta.iter().all(|d| {
            let step = d * dtheta;
            step.is_finite() && step.abs() <= self.max_predicted_step
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::{NashSolver, WarmStart};
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn game() -> SubsidyGame {
        let specs = [ExpCpSpec::unit(2.0, 3.0, 0.8), ExpCpSpec::unit(5.0, 2.0, 0.6)];
        SubsidyGame::new(build_system(&specs, 1.2).unwrap(), 0.6, 0.9).unwrap()
    }

    #[test]
    fn capture_matches_workspace() {
        let game = game();
        let solver = NashSolver::default().with_tol(1e-8);
        let mut ws = SolveWorkspace::for_game(&game);
        let stats = solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
        let snap = EqSnapshot::capture(&game, &ws, stats);
        assert_eq!(snap.subsidies(), ws.subsidies());
        assert_eq!(snap.utilities(), ws.utilities());
        assert_eq!(snap.state().phi.to_bits(), ws.state().phi.to_bits());
        assert_eq!(snap.n(), 2);
        assert_eq!(snap.price(), 0.6);
        assert_eq!(snap.cap(), 0.9);
        assert_eq!(snap.mu(), 1.2);
        assert_eq!(snap.stats(), stats);
        assert_eq!(snap.revenue(), 0.6 * ws.state().theta());
        let w: f64 = (0..2).map(|i| game.profitability(i) * ws.state().theta_i[i]).sum();
        assert_eq!(snap.welfare().to_bits(), w.to_bits());
    }

    #[test]
    fn capture_into_overwrites_and_reuses_buffers() {
        let game = game();
        let solver = NashSolver::default().with_tol(1e-8);
        let mut ws = SolveWorkspace::for_game(&game);
        let stats = solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
        let mut snap = EqSnapshot::capture(&game, &ws, stats);
        let reference = snap.clone();
        // Dirty the snapshot, then recapture: bit-identical to the first.
        snap.subsidies.iter_mut().for_each(|s| *s = -1.0);
        snap.revenue = f64::NAN;
        snap.capture_into(&game, &ws, stats);
        assert_eq!(snap, reference);
    }

    #[test]
    fn snapshot_is_shareable_across_threads() {
        let game = game();
        let solver = NashSolver::default();
        let mut ws = SolveWorkspace::for_game(&game);
        let stats = solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
        let snap = std::sync::Arc::new(EqSnapshot::capture(&game, &ws, stats));
        let phi = snap.state().phi;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reader = std::sync::Arc::clone(&snap);
                scope.spawn(move || {
                    assert_eq!(reader.state().phi.to_bits(), phi.to_bits());
                });
            }
        });
    }

    #[test]
    fn snapshot_index_publish_retract_and_reader_refresh() {
        let index = SnapshotIndex::new();
        let mut reader = index.reader();
        assert!(reader.get(1).is_none());
        assert!(index.is_empty());

        let snap = std::sync::Arc::new(EqSnapshot::empty());
        index.publish(1, 0xfeed, std::sync::Arc::clone(&snap));
        assert_eq!(index.len(), 1);
        // The pre-existing reader observes the new generation and the
        // published entry is the *same* allocation, not a copy.
        let got = reader.get(1).expect("published entry visible");
        assert!(std::sync::Arc::ptr_eq(&got, &snap));
        // The publishing fingerprint rides along for rehydration.
        let (fp, published) = index.published(1).expect("entry present");
        assert_eq!(fp, 0xfeed);
        assert!(std::sync::Arc::ptr_eq(&published, &snap));

        // Replacing a key swaps the entry readers see.
        let newer = std::sync::Arc::new(EqSnapshot::empty());
        index.publish(1, 0xbeef, std::sync::Arc::clone(&newer));
        assert!(std::sync::Arc::ptr_eq(&reader.get(1).unwrap(), &newer));
        assert_eq!(index.published(1).unwrap().0, 0xbeef);

        index.retract(1);
        assert!(index.published(1).is_none());
        assert!(reader.get(1).is_none());
        assert!(index.is_empty());
        // Retracting an absent key is a harmless no-op.
        index.retract(42);
    }

    #[test]
    fn snapshot_index_reader_is_stable_between_publications() {
        // Between publications, repeated gets return the same allocation
        // — the steady-state fast path never rebuilds anything.
        let index = SnapshotIndex::new();
        index.publish(5, 0, std::sync::Arc::new(EqSnapshot::empty()));
        let mut reader = index.reader();
        let a = reader.get(5).unwrap();
        let b = reader.get(5).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_index_fans_out_across_threads() {
        let game = game();
        let solver = NashSolver::default();
        let mut ws = SolveWorkspace::for_game(&game);
        let stats = solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
        let snap = std::sync::Arc::new(EqSnapshot::capture(&game, &ws, stats));
        let phi = snap.state().phi;

        let index = SnapshotIndex::new();
        index.publish(9, 0, std::sync::Arc::clone(&snap));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let mut reader = index.reader();
                scope.spawn(move || {
                    let got = reader.get(9).expect("published before spawn");
                    assert_eq!(got.state().phi.to_bits(), phi.to_bits());
                });
            }
        });
    }

    #[test]
    fn tangent_policy_trust_region() {
        let policy = TangentPolicy::default();
        assert!(policy.admits(&[0.5, -1.0], 0.1));
        // Parameter step too large.
        assert!(!policy.admits(&[0.5, -1.0], 0.3));
        // Predicted displacement too large even for a small step.
        assert!(!policy.admits(&[100.0], 0.01));
        // Non-finite inputs are rejected, never admitted.
        assert!(!policy.admits(&[f64::NAN], 0.01));
        assert!(!policy.admits(&[1.0], f64::NAN));
        // A tighter policy rejects what the default admits.
        let tight = TangentPolicy { max_dtheta: 0.05, max_predicted_step: 0.5 };
        assert!(!tight.admits(&[0.5], 0.1));
    }
}
