//! Concurrent-reader-safe snapshots of solved equilibria, plus the
//! tangent warm-start admission policy — the session/state layer the
//! equilibrium server builds on.
//!
//! A [`SolveWorkspace`] is a *mutable* scratch: the next solve overwrites
//! the solution it holds, so it cannot be handed to readers while the
//! server keeps serving. [`EqSnapshot`] is the immutable counterpart —
//! every quantity a query answer needs, copied out of the workspace once
//! and then shared freely behind an [`Arc`] (`EqSnapshot` is plain `Send +
//! Sync` data, so any number of reader threads can hold the same solved
//! state while the workspace moves on).
//!
//! Snapshots double as reusable buffers: [`EqSnapshot::capture_into`]
//! overwrites an existing snapshot in place, growing vectors at most to
//! the game's size, so a server that recycles retired snapshots performs
//! zero heap allocation per warm capture — the contract the warm-server
//! case in `tests/alloc_free.rs` pins.
//!
//! [`TangentPolicy`] decides when a parameter delta is small enough to
//! admit the Theorem 6 first-order predictor ([`WarmStart::Tangent`])
//! instead of plain previous-iterate seeding: tangent extrapolation only
//! pays off inside the equilibrium's differentiable neighbourhood, and a
//! large step (or a blown-up derivative near an active-set change) makes
//! the predictor *worse* than [`WarmStart::Previous`].
//!
//! [`WarmStart::Tangent`]: crate::nash::WarmStart::Tangent
//! [`WarmStart::Previous`]: crate::nash::WarmStart::Previous

use crate::game::SubsidyGame;
use crate::nash::SolveStats;
use crate::workspace::SolveWorkspace;
use subcomp_model::system::SystemState;

/// An immutable copy of one solved equilibrium: parameters, subsidies,
/// congestion state, utilities and the derived report scalars. Share it
/// behind an `Arc` — cloning the `Arc` is the server's cache-hit path.
#[derive(Debug, Clone, PartialEq)]
pub struct EqSnapshot {
    price: f64,
    cap: f64,
    mu: f64,
    subsidies: Vec<f64>,
    utilities: Vec<f64>,
    state: SystemState,
    revenue: f64,
    welfare: f64,
    stats: SolveStats,
}

impl Default for EqSnapshot {
    fn default() -> Self {
        EqSnapshot {
            price: 0.0,
            cap: 0.0,
            mu: 0.0,
            subsidies: Vec::new(),
            utilities: Vec::new(),
            state: SystemState::empty(),
            revenue: 0.0,
            welfare: 0.0,
            stats: SolveStats { iterations: 0, residual: 0.0, converged: false },
        }
    }
}

impl EqSnapshot {
    /// An empty snapshot to use as a reusable capture buffer.
    pub fn empty() -> EqSnapshot {
        EqSnapshot::default()
    }

    /// Copies the solution a successful solve left in `ws` (see
    /// [`SolveWorkspace::subsidies`]) into a fresh snapshot.
    pub fn capture(game: &SubsidyGame, ws: &SolveWorkspace, stats: SolveStats) -> EqSnapshot {
        let mut snap = EqSnapshot::empty();
        snap.capture_into(game, ws, stats);
        snap
    }

    /// Overwrites this snapshot with the solution in `ws`, reusing every
    /// buffer — allocation-free once the snapshot has held a game at
    /// least this large.
    pub fn capture_into(&mut self, game: &SubsidyGame, ws: &SolveWorkspace, stats: SolveStats) {
        let n = game.n();
        self.price = game.price();
        self.cap = game.cap();
        self.mu = game.system().mu();
        copy_slice_into(&mut self.subsidies, ws.subsidies());
        copy_slice_into(&mut self.utilities, ws.utilities());
        let state = ws.state();
        self.state.phi = state.phi;
        self.state.dg_dphi = state.dg_dphi;
        copy_slice_into(&mut self.state.m, &state.m);
        copy_slice_into(&mut self.state.lambda, &state.lambda);
        copy_slice_into(&mut self.state.theta_i, &state.theta_i);
        let theta = state.theta();
        self.revenue = game.price() * theta;
        self.welfare = (0..n).map(|i| game.profitability(i) * state.theta_i[i]).sum();
        self.stats = stats;
    }

    /// The ISP price the equilibrium was solved at.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// The subsidy cap the equilibrium was solved at.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// The system capacity the equilibrium was solved at.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Equilibrium subsidies `s*`.
    pub fn subsidies(&self) -> &[f64] {
        &self.subsidies
    }

    /// Utilities `U_i(s*)`.
    pub fn utilities(&self) -> &[f64] {
        &self.utilities
    }

    /// Solved congestion state at `s*`.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// ISP revenue `p · θ(s*)`.
    pub fn revenue(&self) -> f64 {
        self.revenue
    }

    /// System welfare `W = Σ v_i θ_i` at `s*`.
    pub fn welfare(&self) -> f64 {
        self.welfare
    }

    /// The solve's health summary (sweeps, residual, convergence).
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Number of CP types in the snapshot.
    pub fn n(&self) -> usize {
        self.subsidies.len()
    }
}

/// Resizes `dst` to `src`'s length and copies — allocation-free when
/// `dst`'s capacity already covers `src` (buffers only grow).
fn copy_slice_into(dst: &mut Vec<f64>, src: &[f64]) {
    dst.resize(src.len(), 0.0);
    dst.copy_from_slice(src);
}

/// Admission policy for [`WarmStart::Tangent`] on small parameter deltas.
///
/// The Theorem 6 tangent is a *local* object: it predicts the equilibrium
/// displacement to first order around the point it was computed at. The
/// policy admits the predictor only when both the parameter step and the
/// predicted subsidy displacement stay inside a trust region; everything
/// else degrades to [`WarmStart::Previous`], which is always safe.
///
/// [`WarmStart::Tangent`]: crate::nash::WarmStart::Tangent
/// [`WarmStart::Previous`]: crate::nash::WarmStart::Previous
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TangentPolicy {
    /// Largest admissible parameter step `|Δθ|`.
    pub max_dtheta: f64,
    /// Largest admissible predicted displacement `max_i |Δθ · ∂s_i/∂θ|`.
    pub max_predicted_step: f64,
}

impl Default for TangentPolicy {
    fn default() -> Self {
        TangentPolicy { max_dtheta: 0.25, max_predicted_step: 0.5 }
    }
}

impl TangentPolicy {
    /// Whether a tangent step from `ds_dtheta` over `dtheta` is admitted.
    /// Non-finite inputs are always rejected.
    pub fn admits(&self, ds_dtheta: &[f64], dtheta: f64) -> bool {
        if !dtheta.is_finite() || dtheta.abs() > self.max_dtheta {
            return false;
        }
        ds_dtheta.iter().all(|d| {
            let step = d * dtheta;
            step.is_finite() && step.abs() <= self.max_predicted_step
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::{NashSolver, WarmStart};
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn game() -> SubsidyGame {
        let specs = [ExpCpSpec::unit(2.0, 3.0, 0.8), ExpCpSpec::unit(5.0, 2.0, 0.6)];
        SubsidyGame::new(build_system(&specs, 1.2).unwrap(), 0.6, 0.9).unwrap()
    }

    #[test]
    fn capture_matches_workspace() {
        let game = game();
        let solver = NashSolver::default().with_tol(1e-8);
        let mut ws = SolveWorkspace::for_game(&game);
        let stats = solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
        let snap = EqSnapshot::capture(&game, &ws, stats);
        assert_eq!(snap.subsidies(), ws.subsidies());
        assert_eq!(snap.utilities(), ws.utilities());
        assert_eq!(snap.state().phi.to_bits(), ws.state().phi.to_bits());
        assert_eq!(snap.n(), 2);
        assert_eq!(snap.price(), 0.6);
        assert_eq!(snap.cap(), 0.9);
        assert_eq!(snap.mu(), 1.2);
        assert_eq!(snap.stats(), stats);
        assert_eq!(snap.revenue(), 0.6 * ws.state().theta());
        let w: f64 = (0..2).map(|i| game.profitability(i) * ws.state().theta_i[i]).sum();
        assert_eq!(snap.welfare().to_bits(), w.to_bits());
    }

    #[test]
    fn capture_into_overwrites_and_reuses_buffers() {
        let game = game();
        let solver = NashSolver::default().with_tol(1e-8);
        let mut ws = SolveWorkspace::for_game(&game);
        let stats = solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
        let mut snap = EqSnapshot::capture(&game, &ws, stats);
        let reference = snap.clone();
        // Dirty the snapshot, then recapture: bit-identical to the first.
        snap.subsidies.iter_mut().for_each(|s| *s = -1.0);
        snap.revenue = f64::NAN;
        snap.capture_into(&game, &ws, stats);
        assert_eq!(snap, reference);
    }

    #[test]
    fn snapshot_is_shareable_across_threads() {
        let game = game();
        let solver = NashSolver::default();
        let mut ws = SolveWorkspace::for_game(&game);
        let stats = solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
        let snap = std::sync::Arc::new(EqSnapshot::capture(&game, &ws, stats));
        let phi = snap.state().phi;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reader = std::sync::Arc::clone(&snap);
                scope.spawn(move || {
                    assert_eq!(reader.state().phi.to_bits(), phi.to_bits());
                });
            }
        });
    }

    #[test]
    fn tangent_policy_trust_region() {
        let policy = TangentPolicy::default();
        assert!(policy.admits(&[0.5, -1.0], 0.1));
        // Parameter step too large.
        assert!(!policy.admits(&[0.5, -1.0], 0.3));
        // Predicted displacement too large even for a small step.
        assert!(!policy.admits(&[100.0], 0.01));
        // Non-finite inputs are rejected, never admitted.
        assert!(!policy.admits(&[f64::NAN], 0.01));
        assert!(!policy.admits(&[1.0], f64::NAN));
        // A tighter policy rejects what the default admits.
        let tight = TangentPolicy { max_dtheta: 0.05, max_predicted_step: 0.5 };
        assert!(!tight.admits(&[0.5], 0.1));
    }
}
