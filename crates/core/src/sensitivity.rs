//! Equilibrium sensitivity analysis (Theorem 6).
//!
//! Near a regular equilibrium, `s(p, q)` is differentiable with
//!
//! ```text
//! ∂s_i/∂q = 0                                  i ∈ N⁻ (pinned at 0)
//! ∂s_i/∂q = 1                                  i ∈ N⁺ (pinned at q)
//! ∂s_i/∂q = −Σ_k ψ_{ik} Σ_{j∈N⁺} ∂u_k/∂s_j     i ∈ Ñ  (interior)
//!
//! ∂s_i/∂p = 0                                  i ∉ Ñ
//! ∂s_i/∂p = −Σ_k ψ_{ik} ∂u_k/∂p                i ∈ Ñ
//! ```
//!
//! with `Ψ = (∇_s̃ ũ)^{-1}`, the inverse Jacobian of interior marginal
//! utilities. This module classifies the active sets, assembles the
//! Jacobian (central differences of the *analytic* `u`), inverts it by LU,
//! and reports both derivative vectors. Degenerate equilibria (a pinned
//! provider with `u_i = 0`, violating strict complementarity) are flagged
//! rather than silently differentiated.

use crate::equilibrium::PIN_TOL;
use crate::game::{Axis, SubsidyGame};
use crate::structure::marginal_utility_jacobian;
use subcomp_model::system::{StateScratch, SystemState};
use subcomp_num::linalg::lu::LuDecomposition;
use subcomp_num::{NumError, NumResult};

/// Strict-complementarity tolerance: a pinned provider whose marginal
/// utility is within this bound of zero makes the equilibrium *degenerate*
/// — the active set is about to change and one-sided derivatives are the
/// best Theorem 6 can offer. [`Sensitivity::compute`] flags such
/// equilibria (`regular = false`); [`Sensitivity::directional`] refuses to
/// differentiate them.
pub const DEGENERATE_U_TOL: f64 = 1e-6;

/// The boundary classification `N⁻ / Ñ / N⁺` of an equilibrium profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    /// Providers pinned at `s_i = 0`.
    pub lower: Vec<usize>,
    /// Interior providers (`0 < s_i < q`).
    pub interior: Vec<usize>,
    /// Providers pinned at `s_i = q`.
    pub upper: Vec<usize>,
}

impl ActiveSet {
    /// Classifies a profile against the box `[0, q]` with tolerance
    /// [`PIN_TOL`].
    ///
    /// The classification is *total* (every index lands in exactly one
    /// set) and *order-independent* (membership depends only on `(s_i, q)`,
    /// never on which corner is tested first). The subtle case is the
    /// degenerate box `q ≤ 2·PIN_TOL`, where the two pin conditions
    /// overlap and a provider can satisfy both: there each provider is
    /// assigned to the *nearer* corner (ties to the lower one), instead of
    /// letting the first-tested condition win.
    pub fn classify(s: &[f64], q: f64) -> ActiveSet {
        let mut lower = Vec::new();
        let mut interior = Vec::new();
        let mut upper = Vec::new();
        let degenerate = q <= 2.0 * PIN_TOL;
        for (i, &si) in s.iter().enumerate() {
            if degenerate {
                // Both corners are within PIN_TOL of each other; the
                // interior is empty by construction.
                if si <= q - si {
                    lower.push(i);
                } else {
                    upper.push(i);
                }
            } else if si <= PIN_TOL {
                lower.push(i);
            } else if si >= q - PIN_TOL {
                upper.push(i);
            } else {
                interior.push(i);
            }
        }
        ActiveSet { lower, interior, upper }
    }
}

/// Reusable buffers for the finite-difference leg of the sensitivity
/// engine ([`Sensitivity::axis_shift_into`]): the two probe outputs plus
/// the price/scratch/state buffers the allocation-free marginal-utility
/// evaluation threads through. After warm-up (one call per game size) a
/// probe performs zero heap allocation — pinned in `tests/alloc_free.rs`.
#[derive(Debug, Clone, Default)]
pub struct FdWorkspace {
    up: Vec<f64>,
    um: Vec<f64>,
    prices: Vec<f64>,
    scratch: StateScratch,
    state: SystemState,
}

impl FdWorkspace {
    /// Creates an empty workspace; buffers size themselves on first use
    /// and only ever grow, so one workspace serves games of any size.
    pub fn new() -> FdWorkspace {
        FdWorkspace::default()
    }
}

/// Theorem 6 sensitivities at an equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Active-set partition used.
    pub active: ActiveSet,
    /// `∂s_i/∂q` per provider.
    pub ds_dq: Vec<f64>,
    /// `∂s_i/∂p` per provider.
    pub ds_dp: Vec<f64>,
    /// Whether strict complementarity held (no pinned provider with
    /// `u_i ≈ 0`); when false the derivatives are one-sided at best.
    pub regular: bool,
}

impl Sensitivity {
    /// Computes Theorem 6's formulas at the (solved) equilibrium `s`.
    pub fn compute(game: &SubsidyGame, s: &[f64]) -> NumResult<Sensitivity> {
        game.validate(s)?;
        let n = game.n();
        let q = game.cap();
        let active = ActiveSet::classify(s, q);
        let u = game.marginal_utilities(s)?;

        // Regularity (strict complementarity): pinned providers must have
        // strictly one-sided marginal utility.
        let regular = degenerate_pin(&active, &u).is_none();

        let mut ds_dq = vec![0.0; n];
        let mut ds_dp = vec![0.0; n];
        for &i in &active.upper {
            ds_dq[i] = 1.0;
        }
        if !active.interior.is_empty() {
            let jac = marginal_utility_jacobian(game, s)?;
            let sub = jac.submatrix(&active.interior)?;
            let lu = LuDecomposition::new(&sub)?;
            // One clone for the whole call (the caller's game stays
            // shared); the in-place probe+restore inside `axis_rhs`
            // keeps it bit-exact across both axes.
            let mut probe = game.clone();
            let mut fd = FdWorkspace::new();

            // ∂s̃/∂q = −Ψ · (Σ_{j∈N⁺} ∂u_k/∂s_j)_k  — solve instead of
            // invert (the rhs is identically zero when nobody pins at q).
            if !active.upper.is_empty() {
                let rhs = axis_rhs(&mut probe, s, Axis::Cap, &active, &jac, &mut fd)?;
                let sol = lu.solve(&rhs)?;
                for (slot, &i) in active.interior.iter().enumerate() {
                    ds_dq[i] = -sol[slot];
                }
            }

            // ∂s̃/∂p = −Ψ ∂ũ/∂p with ∂u/∂p by central difference.
            let rhs = axis_rhs(&mut probe, s, Axis::Price, &active, &jac, &mut fd)?;
            let sol = lu.solve(&rhs)?;
            for (slot, &i) in active.interior.iter().enumerate() {
                ds_dp[i] = -sol[slot];
            }
        }
        Ok(Sensitivity { active, ds_dq, ds_dp, regular })
    }

    /// The Theorem 6 directional derivative `∂s/∂θ` of the equilibrium
    /// along an arbitrary parameter axis `θ` — the generalization of
    /// [`Sensitivity::compute`]'s `ds_dq`/`ds_dp` columns to the capacity
    /// `µ` (Theorem 1 direction) and per-provider profitabilities `v_j`
    /// (Theorem 5 direction). This is the tangent the predictor-corrector
    /// continuation engine feeds into
    /// [`crate::nash::WarmStart::Tangent`].
    ///
    /// Structure per Theorem 6: providers pinned at `s_i = 0` do not move
    /// (`∂s_i/∂θ = 0`); providers pinned at `s_i = q` move one-for-one
    /// with the cap (`∂s_i/∂q = 1`) and not at all with any other axis;
    /// interior providers solve `∂s̃/∂θ = −Ψ ∂ũ/∂θ` with
    /// `Ψ = (∇_s̃ ũ)^{-1}`. For [`Axis::Cap`] and [`Axis::Price`] the
    /// result coincides with `compute`'s `ds_dq`/`ds_dp`; for the other
    /// axes `∂u/∂θ` is a central difference of the *analytic* marginal
    /// utilities under the in-place reparameterization
    /// ([`SubsidyGame::set_mu`]/[`SubsidyGame::set_profitability`]).
    ///
    /// The FD leg is **clone-free**: the game is probed in place
    /// (`θ₀ ± h`) through [`Sensitivity::axis_shift_into`] and restored
    /// to exactly `θ₀` before returning — which is why the receiver is
    /// `&mut`. On return the game is bit-identical to what was passed
    /// in, on error paths included (axis writes are pure parameter
    /// stores, so the restore is exact).
    ///
    /// # Errors
    /// A degenerate equilibrium — a pinned provider with `u_i ≈ 0`,
    /// violating strict complementarity — is refused with a domain error
    /// rather than silently differentiated: the one-sided derivative a
    /// continuation step would extrapolate from it is wrong on one side.
    pub fn directional(game: &mut SubsidyGame, s: &[f64], axis: Axis) -> NumResult<Vec<f64>> {
        game.validate(s)?;
        if let Axis::Profitability(j) = axis {
            if j >= game.n() {
                return Err(NumError::DimensionMismatch { expected: game.n(), actual: j });
            }
        }
        let n = game.n();
        let q = game.cap();
        let active = ActiveSet::classify(s, q);
        let u = game.marginal_utilities(s)?;
        if let Some(&i) = degenerate_pin(&active, &u) {
            return Err(NumError::Domain {
                what: "degenerate equilibrium: pinned provider with u_i = 0 \
                       (strict complementarity fails; derivatives are one-sided)",
                value: u[i],
            });
        }

        let mut ds = vec![0.0; n];
        if axis == Axis::Cap {
            for &i in &active.upper {
                ds[i] = 1.0;
            }
        }
        // Interior providers are the only ones that move through Ψ — and
        // along the cap axis the right-hand side is identically zero when
        // nobody pins at q, so the Jacobian/LU work is skipped there too.
        if active.interior.is_empty() || (axis == Axis::Cap && active.upper.is_empty()) {
            return Ok(ds);
        }
        let jac = marginal_utility_jacobian(game, s)?;
        let sub = jac.submatrix(&active.interior)?;
        let lu = LuDecomposition::new(&sub)?;
        let mut fd = FdWorkspace::new();
        let rhs = axis_rhs(game, s, axis, &active, &jac, &mut fd)?;
        let sol = lu.solve(&rhs)?;
        for (slot, &i) in active.interior.iter().enumerate() {
            ds[i] = -sol[slot];
        }
        Ok(ds)
    }

    /// The finite-difference marginal-utility shift `∂u/∂θ` under the
    /// in-place reparameterization, written into `out` — the FD
    /// cross-check leg of [`Sensitivity::directional`], exposed so
    /// resident engines can pin it. Clone-free probe+restore: the axis
    /// is written to `θ₀ ± h` in place and **always restored to exactly
    /// `θ₀`** before returning, error paths included (axis writes are
    /// pure parameter stores, so the restore is bit-exact). After `ws`
    /// warm-up the probe performs zero heap allocation (pinned in
    /// `tests/alloc_free.rs`).
    ///
    /// # Errors
    /// [`Axis::Cap`] is refused — the cap moves the feasible box, not
    /// the marginal utilities, so it has no FD leg (its Theorem 6
    /// right-hand side is a Jacobian column sum instead).
    pub fn axis_shift_into(
        game: &mut SubsidyGame,
        s: &[f64],
        axis: Axis,
        ws: &mut FdWorkspace,
        out: &mut Vec<f64>,
    ) -> NumResult<()> {
        if axis == Axis::Cap {
            return Err(NumError::Domain {
                what: "the cap axis has no finite-difference leg \
                       (it moves the box, not the marginal utilities)",
                value: f64::NAN,
            });
        }
        if let Axis::Profitability(j) = axis {
            if j >= game.n() {
                return Err(NumError::DimensionMismatch { expected: game.n(), actual: j });
            }
        }
        let theta0 = axis.value(game);
        // Respect each axis' domain: price/profitability live on
        // [0, ∞), capacity on (0, ∞).
        let h = match axis {
            Axis::Mu => (1e-6 * (1.0 + theta0)).min(0.5 * theta0),
            _ => 1e-6 * (1.0 + theta0),
        };
        let hi = theta0 + h;
        let lo = (theta0 - h).max(if axis == Axis::Mu { 0.5 * theta0 } else { 0.0 });
        let probes = (|| {
            axis.apply(game, hi)?;
            game.marginal_utilities_into(
                s,
                &mut ws.prices,
                &mut ws.scratch,
                &mut ws.state,
                &mut ws.up,
            )?;
            axis.apply(game, lo)?;
            game.marginal_utilities_into(
                s,
                &mut ws.prices,
                &mut ws.scratch,
                &mut ws.state,
                &mut ws.um,
            )
        })();
        // Restore θ₀ *before* surfacing any probe error, so the game
        // comes back unchanged whatever happened.
        let restored = axis.apply(game, theta0);
        probes?;
        restored?;
        let denom = hi - lo;
        out.resize(game.n(), 0.0);
        for (o, (&u, &m)) in out.iter_mut().zip(ws.up.iter().zip(&ws.um)) {
            *o = (u - m) / denom;
        }
        Ok(())
    }

    /// Tests the equilibrium `s` for degeneracy *without* differentiating:
    /// `Ok(Some(active_set))` when a pinned provider violates strict
    /// complementarity (the exact condition [`Sensitivity::directional`]
    /// refuses with a domain error), `Ok(None)` when differentiation is
    /// admissible. The serving layer answers degenerate sensitivity reads
    /// with the returned partition (a typed, recoverable reply) instead of
    /// failing the request — the same fallback ladder the µ-sweep uses.
    pub fn degeneracy(game: &SubsidyGame, s: &[f64]) -> NumResult<Option<ActiveSet>> {
        game.validate(s)?;
        let active = ActiveSet::classify(s, game.cap());
        let u = game.marginal_utilities(s)?;
        Ok(degenerate_pin(&active, &u).is_some().then_some(active))
    }
}

/// The first pinned provider violating strict complementarity, if any —
/// the one degeneracy test [`Sensitivity::compute`],
/// [`Sensitivity::directional`] and [`Sensitivity::degeneracy`] all share,
/// so their verdicts can never drift apart.
fn degenerate_pin<'a>(active: &'a ActiveSet, u: &[f64]) -> Option<&'a usize> {
    active.lower.iter().chain(&active.upper).find(|&&i| u[i].abs() <= DEGENERATE_U_TOL)
}

/// The Theorem 6 right-hand side `(∂u_k/∂θ)_{k ∈ Ñ}` for one axis — the
/// single implementation [`Sensitivity::compute`] and
/// [`Sensitivity::directional`] both solve against (the agreement test
/// pins them bit-identical, so the FD constants live in exactly one
/// place). For the cap axis this is the pinned-provider column sum
/// `Σ_{j∈N⁺} ∂u_k/∂s_j` read off the Jacobian; for every other axis the
/// clone-free in-place probe+restore [`Sensitivity::axis_shift_into`]
/// gathered over the interior set.
fn axis_rhs(
    game: &mut SubsidyGame,
    s: &[f64],
    axis: Axis,
    active: &ActiveSet,
    jac: &subcomp_num::linalg::Matrix,
    fd: &mut FdWorkspace,
) -> NumResult<Vec<f64>> {
    match axis {
        // ∂s̃/∂q: the pinned-at-q providers drag their neighbours.
        Axis::Cap => Ok(active
            .interior
            .iter()
            .map(|&k| active.upper.iter().map(|&j| jac[(k, j)]).sum::<f64>())
            .collect()),
        _ => {
            let mut shift = Vec::new();
            Sensitivity::axis_shift_into(game, s, axis, fd, &mut shift)?;
            Ok(active.interior.iter().map(|&k| shift[k]).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::NashSolver;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn paper_game(p: f64, q: f64) -> SubsidyGame {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    }

    fn solve(game: &SubsidyGame) -> Vec<f64> {
        NashSolver::default().with_tol(1e-10).solve(game).unwrap().subsidies
    }

    #[test]
    fn active_set_classification() {
        let a = ActiveSet::classify(&[0.0, 0.5, 1.0, 1e-9, 1.0 - 1e-9], 1.0);
        assert_eq!(a.lower, vec![0, 3]);
        assert_eq!(a.interior, vec![1]);
        assert_eq!(a.upper, vec![2, 4]);
    }

    #[test]
    fn degenerate_box_classification_is_total_and_order_independent() {
        // q ≤ 2·PIN_TOL: both pin conditions overlap, so a provider can
        // satisfy both. The classification must still assign each index to
        // exactly one set, by corner proximity (ties to lower) rather than
        // by whichever condition happens to be tested first.
        let q = 1e-8;
        let s = [0.0, 1e-8, 4e-9, 6e-9, 5e-9];
        let a = ActiveSet::classify(&s, q);
        assert_eq!(a.lower, vec![0, 2, 4], "nearer (or tied with) the 0 corner");
        assert_eq!(a.upper, vec![1, 3], "strictly nearer the q corner");
        assert!(a.interior.is_empty(), "a degenerate box has no interior");
        let total = a.lower.len() + a.interior.len() + a.upper.len();
        assert_eq!(total, s.len(), "classification must be total");
        let mut all: Vec<usize> =
            a.lower.iter().chain(&a.interior).chain(&a.upper).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), s.len(), "no index may appear in two sets");
        // q = 0 exactly: everyone sits on both corners at once; ties go low.
        let z = ActiveSet::classify(&[0.0, 0.0], 0.0);
        assert_eq!(z.lower, vec![0, 1]);
        assert!(z.upper.is_empty() && z.interior.is_empty());
    }

    #[test]
    fn sensitivity_computes_on_a_degenerate_box_equilibrium() {
        // Regression at q ≈ 0: before the proximity rule, classification
        // near the overlapping corners depended on test order; Theorem 6's
        // formulas must still come out total and finite here.
        let game = paper_game(0.6, 1e-8);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        assert!(sens.active.interior.is_empty());
        assert_eq!(
            sens.active.lower.len() + sens.active.upper.len(),
            8,
            "every provider classified exactly once"
        );
        for &i in &sens.active.upper {
            assert_eq!(sens.ds_dq[i], 1.0);
        }
        for &i in &sens.active.lower {
            assert_eq!(sens.ds_dq[i], 0.0);
        }
    }

    #[test]
    fn ds_dq_matches_finite_difference_of_equilibria() {
        // A setting with all three sets populated: moderate price, cap
        // binding for the most aggressive CPs.
        let q = 0.35;
        let game = paper_game(0.6, q);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        let h = 1e-4;
        let s_hi = solve(&game.with_cap(q + h).unwrap());
        let s_lo = solve(&game.with_cap(q - h).unwrap());
        for i in 0..8 {
            let fd = (s_hi[i] - s_lo[i]) / (2.0 * h);
            assert!(
                (sens.ds_dq[i] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "CP {i}: theorem {} vs fd {fd} (active: {:?})",
                sens.ds_dq[i],
                sens.active
            );
        }
    }

    #[test]
    fn ds_dp_matches_finite_difference_of_equilibria() {
        let p = 0.9;
        let game = paper_game(p, 1.0);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        let h = 1e-4;
        let s_hi = solve(&game.with_price(p + h).unwrap());
        let s_lo = solve(&game.with_price(p - h).unwrap());
        for i in 0..8 {
            let fd = (s_hi[i] - s_lo[i]) / (2.0 * h);
            assert!(
                (sens.ds_dp[i] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "CP {i}: theorem {} vs fd {fd}",
                sens.ds_dp[i]
            );
        }
    }

    #[test]
    fn pinned_at_cap_moves_one_for_one_with_q() {
        // Small p, small q: everyone profitable is pinned; Theorem 6 says
        // ds/dq = 1 for them.
        let game = paper_game(0.2, 0.1);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        assert!(!sens.active.upper.is_empty());
        for &i in &sens.active.upper {
            assert_eq!(sens.ds_dq[i], 1.0);
        }
        for &i in &sens.active.lower {
            assert_eq!(sens.ds_dq[i], 0.0);
            assert_eq!(sens.ds_dp[i], 0.0);
        }
    }

    #[test]
    fn corollary1_nonnegative_ds_dq() {
        // Under off-diagonal monotonicity (checked in structure tests for
        // this game), Corollary 1 gives ds/dq >= 0 for every provider.
        for (p, q) in [(0.4, 0.3), (0.6, 0.35), (0.8, 0.5)] {
            let game = paper_game(p, q);
            let s = solve(&game);
            let sens = Sensitivity::compute(&game, &s).unwrap();
            for i in 0..8 {
                assert!(sens.ds_dq[i] >= -1e-8, "(p={p}, q={q}) CP {i}: ds/dq = {}", sens.ds_dq[i]);
            }
        }
    }

    #[test]
    fn regularity_flag_on_clean_equilibrium() {
        let game = paper_game(0.6, 0.35);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        assert!(sens.regular, "paper equilibrium should satisfy strict complementarity");
    }

    #[test]
    fn directional_matches_compute_on_price_and_cap() {
        let mut game = paper_game(0.6, 0.35);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        assert!(sens.regular);
        let dq = Sensitivity::directional(&mut game, &s, Axis::Cap).unwrap();
        let dp = Sensitivity::directional(&mut game, &s, Axis::Price).unwrap();
        // Same Jacobian, same LU, same right-hand sides — bit-identical.
        assert_eq!(dq, sens.ds_dq);
        assert_eq!(dp, sens.ds_dp);
    }

    #[test]
    fn ds_dmu_matches_finite_difference_of_equilibria() {
        // Theorem 1's comparative statics through the Theorem 6 system:
        // the directional derivative along µ must match re-solved
        // equilibria at perturbed capacities.
        let mut game = paper_game(0.6, 0.35);
        let s = solve(&game);
        let ds = Sensitivity::directional(&mut game, &s, Axis::Mu).unwrap();
        let h = 1e-4;
        let s_hi = solve(&game.with_mu(1.0 + h).unwrap());
        let s_lo = solve(&game.with_mu(1.0 - h).unwrap());
        for i in 0..8 {
            let fd = (s_hi[i] - s_lo[i]) / (2.0 * h);
            assert!(
                (ds[i] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "CP {i}: theorem {} vs fd {fd}",
                ds[i]
            );
        }
    }

    #[test]
    fn ds_dv_matches_finite_difference_of_equilibria() {
        // Theorem 5's direction: bump one provider's profitability and
        // compare the whole equilibrium response against the directional
        // derivative ∂s/∂v_j.
        let mut game = paper_game(0.6, 0.35);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        let h = 1e-4;
        // One interior provider (its own subsidy responds) and one pinned
        // provider (its neighbours still respond through the Jacobian).
        let mut probes = Vec::new();
        if let Some(&j) = sens.active.interior.first() {
            probes.push(j);
        }
        if let Some(&j) = sens.active.upper.first() {
            probes.push(j);
        }
        assert!(!probes.is_empty(), "test setting must populate at least one probe set");
        for j in probes {
            let ds = Sensitivity::directional(&mut game, &s, Axis::Profitability(j)).unwrap();
            let v = game.profitability(j);
            let s_hi = solve(&game.with_profitability(j, v + h).unwrap());
            let s_lo = solve(&game.with_profitability(j, v - h).unwrap());
            for i in 0..8 {
                let fd = (s_hi[i] - s_lo[i]) / (2.0 * h);
                assert!(
                    (ds[i] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                    "v[{j}], CP {i}: theorem {} vs fd {fd}",
                    ds[i]
                );
            }
        }
    }

    #[test]
    fn directional_rejects_degenerate_equilibrium() {
        // Build a genuinely degenerate equilibrium: solve an interior best
        // response, then set the cap exactly there — the provider is
        // pinned at q with u_i ≈ 0, violating strict complementarity.
        use subcomp_model::aggregation::ExpCpSpec;
        let sys = build_system(&[ExpCpSpec::unit(8.0, 2.0, 1.0)], 1.0).unwrap();
        let free = SubsidyGame::new(sys.clone(), 1.0, 2.0).unwrap();
        let s_star = NashSolver::default().with_tol(1e-10).solve(&free).unwrap().subsidies[0];
        assert!(s_star > 0.1 && s_star < 2.0 - 0.1, "interior by construction");
        let mut pinned = SubsidyGame::new(sys, 1.0, s_star).unwrap();
        let s = solve(&pinned);
        assert!((s[0] - s_star).abs() < 1e-6, "the cap now binds exactly at the old optimum");
        // compute() flags it; directional() refuses to differentiate it.
        let sens = Sensitivity::compute(&pinned, &s).unwrap();
        assert!(!sens.regular, "pinned provider with u = 0 must be flagged degenerate");
        for axis in [Axis::Cap, Axis::Price, Axis::Mu, Axis::Profitability(0)] {
            let err = Sensitivity::directional(&mut pinned, &s, axis);
            assert!(err.is_err(), "degenerate equilibrium must error along {}", axis.describe());
        }
        // degeneracy() agrees with both, returning the partition instead
        // of an error — the serving layer's typed-reply source.
        let active = Sensitivity::degeneracy(&pinned, &s)
            .unwrap()
            .expect("degenerate equilibrium must be detected");
        assert_eq!(active, ActiveSet::classify(&s, pinned.cap()));
        assert!(active.upper.contains(&0), "the pinned provider sits in N+");
        // A regular equilibrium reports None.
        assert!(Sensitivity::degeneracy(&free, &solve(&free)).unwrap().is_none());
    }

    #[test]
    fn directional_validates_inputs() {
        let mut game = paper_game(0.6, 0.35);
        let s = solve(&game);
        assert!(Sensitivity::directional(&mut game, &s, Axis::Profitability(99)).is_err());
        assert!(Sensitivity::directional(&mut game, &[0.0; 3], Axis::Mu).is_err());
    }

    #[test]
    fn all_interior_case_has_zero_dq_except_psi_terms() {
        // Large cap: nobody pinned at q; N+ empty makes ds/dq = 0 for
        // interior providers (Theorem 6 with empty sum).
        let game = paper_game(0.9, 2.0);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        assert!(sens.active.upper.is_empty());
        for &i in &sens.active.interior {
            assert!(sens.ds_dq[i].abs() < 1e-9);
        }
    }
}
