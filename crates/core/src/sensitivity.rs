//! Equilibrium sensitivity analysis (Theorem 6).
//!
//! Near a regular equilibrium, `s(p, q)` is differentiable with
//!
//! ```text
//! ∂s_i/∂q = 0                                  i ∈ N⁻ (pinned at 0)
//! ∂s_i/∂q = 1                                  i ∈ N⁺ (pinned at q)
//! ∂s_i/∂q = −Σ_k ψ_{ik} Σ_{j∈N⁺} ∂u_k/∂s_j     i ∈ Ñ  (interior)
//!
//! ∂s_i/∂p = 0                                  i ∉ Ñ
//! ∂s_i/∂p = −Σ_k ψ_{ik} ∂u_k/∂p                i ∈ Ñ
//! ```
//!
//! with `Ψ = (∇_s̃ ũ)^{-1}`, the inverse Jacobian of interior marginal
//! utilities. This module classifies the active sets, assembles the
//! Jacobian (central differences of the *analytic* `u`), inverts it by LU,
//! and reports both derivative vectors. Degenerate equilibria (a pinned
//! provider with `u_i = 0`, violating strict complementarity) are flagged
//! rather than silently differentiated.

use crate::equilibrium::PIN_TOL;
use crate::game::SubsidyGame;
use crate::structure::marginal_utility_jacobian;
use subcomp_num::linalg::lu::LuDecomposition;
use subcomp_num::{NumError, NumResult};

/// The boundary classification `N⁻ / Ñ / N⁺` of an equilibrium profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    /// Providers pinned at `s_i = 0`.
    pub lower: Vec<usize>,
    /// Interior providers (`0 < s_i < q`).
    pub interior: Vec<usize>,
    /// Providers pinned at `s_i = q`.
    pub upper: Vec<usize>,
}

impl ActiveSet {
    /// Classifies a profile against the box `[0, q]` with tolerance
    /// [`PIN_TOL`].
    pub fn classify(s: &[f64], q: f64) -> ActiveSet {
        let mut lower = Vec::new();
        let mut interior = Vec::new();
        let mut upper = Vec::new();
        for (i, &si) in s.iter().enumerate() {
            if si <= PIN_TOL {
                lower.push(i);
            } else if si >= q - PIN_TOL {
                upper.push(i);
            } else {
                interior.push(i);
            }
        }
        ActiveSet { lower, interior, upper }
    }
}

/// Theorem 6 sensitivities at an equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Active-set partition used.
    pub active: ActiveSet,
    /// `∂s_i/∂q` per provider.
    pub ds_dq: Vec<f64>,
    /// `∂s_i/∂p` per provider.
    pub ds_dp: Vec<f64>,
    /// Whether strict complementarity held (no pinned provider with
    /// `u_i ≈ 0`); when false the derivatives are one-sided at best.
    pub regular: bool,
}

impl Sensitivity {
    /// Computes Theorem 6's formulas at the (solved) equilibrium `s`.
    pub fn compute(game: &SubsidyGame, s: &[f64]) -> NumResult<Sensitivity> {
        game.validate(s)?;
        let n = game.n();
        let q = game.cap();
        let active = ActiveSet::classify(s, q);
        let u = game.marginal_utilities(s)?;

        // Regularity (strict complementarity): pinned providers must have
        // strictly one-sided marginal utility.
        let mut regular = true;
        for &i in &active.lower {
            if u[i].abs() <= 1e-6 {
                regular = false;
            }
        }
        for &i in &active.upper {
            if u[i].abs() <= 1e-6 {
                regular = false;
            }
        }

        let mut ds_dq = vec![0.0; n];
        let mut ds_dp = vec![0.0; n];
        for &i in &active.upper {
            ds_dq[i] = 1.0;
        }
        if !active.interior.is_empty() {
            let jac = marginal_utility_jacobian(game, s)?;
            let sub = jac.submatrix(&active.interior)?;
            let lu = LuDecomposition::new(&sub).map_err(|e| match e {
                NumError::SingularMatrix { pivot, magnitude } => {
                    NumError::SingularMatrix { pivot, magnitude }
                }
                other => other,
            })?;

            // ∂s̃/∂q = −Ψ · (Σ_{j∈N⁺} ∂u_k/∂s_j)_k  — solve instead of invert.
            if !active.upper.is_empty() {
                let rhs: Vec<f64> = active
                    .interior
                    .iter()
                    .map(|&k| active.upper.iter().map(|&j| jac[(k, j)]).sum::<f64>())
                    .collect();
                let sol = lu.solve(&rhs)?;
                for (slot, &i) in active.interior.iter().enumerate() {
                    ds_dq[i] = -sol[slot];
                }
            }

            // ∂s̃/∂p = −Ψ ∂ũ/∂p with ∂u/∂p by central difference.
            let h = 1e-6 * (1.0 + game.price());
            let up = game.with_price(game.price() + h)?.marginal_utilities(s)?;
            let low_price = (game.price() - h).max(0.0);
            let um = game.with_price(low_price)?.marginal_utilities(s)?;
            let denom = game.price() + h - low_price;
            let rhs: Vec<f64> = active.interior.iter().map(|&k| (up[k] - um[k]) / denom).collect();
            let sol = lu.solve(&rhs)?;
            for (slot, &i) in active.interior.iter().enumerate() {
                ds_dp[i] = -sol[slot];
            }
        }
        Ok(Sensitivity { active, ds_dq, ds_dp, regular })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::NashSolver;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn paper_game(p: f64, q: f64) -> SubsidyGame {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    }

    fn solve(game: &SubsidyGame) -> Vec<f64> {
        NashSolver::default().with_tol(1e-10).solve(game).unwrap().subsidies
    }

    #[test]
    fn active_set_classification() {
        let a = ActiveSet::classify(&[0.0, 0.5, 1.0, 1e-9, 1.0 - 1e-9], 1.0);
        assert_eq!(a.lower, vec![0, 3]);
        assert_eq!(a.interior, vec![1]);
        assert_eq!(a.upper, vec![2, 4]);
    }

    #[test]
    fn ds_dq_matches_finite_difference_of_equilibria() {
        // A setting with all three sets populated: moderate price, cap
        // binding for the most aggressive CPs.
        let q = 0.35;
        let game = paper_game(0.6, q);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        let h = 1e-4;
        let s_hi = solve(&game.with_cap(q + h).unwrap());
        let s_lo = solve(&game.with_cap(q - h).unwrap());
        for i in 0..8 {
            let fd = (s_hi[i] - s_lo[i]) / (2.0 * h);
            assert!(
                (sens.ds_dq[i] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "CP {i}: theorem {} vs fd {fd} (active: {:?})",
                sens.ds_dq[i],
                sens.active
            );
        }
    }

    #[test]
    fn ds_dp_matches_finite_difference_of_equilibria() {
        let p = 0.9;
        let game = paper_game(p, 1.0);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        let h = 1e-4;
        let s_hi = solve(&game.with_price(p + h).unwrap());
        let s_lo = solve(&game.with_price(p - h).unwrap());
        for i in 0..8 {
            let fd = (s_hi[i] - s_lo[i]) / (2.0 * h);
            assert!(
                (sens.ds_dp[i] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "CP {i}: theorem {} vs fd {fd}",
                sens.ds_dp[i]
            );
        }
    }

    #[test]
    fn pinned_at_cap_moves_one_for_one_with_q() {
        // Small p, small q: everyone profitable is pinned; Theorem 6 says
        // ds/dq = 1 for them.
        let game = paper_game(0.2, 0.1);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        assert!(!sens.active.upper.is_empty());
        for &i in &sens.active.upper {
            assert_eq!(sens.ds_dq[i], 1.0);
        }
        for &i in &sens.active.lower {
            assert_eq!(sens.ds_dq[i], 0.0);
            assert_eq!(sens.ds_dp[i], 0.0);
        }
    }

    #[test]
    fn corollary1_nonnegative_ds_dq() {
        // Under off-diagonal monotonicity (checked in structure tests for
        // this game), Corollary 1 gives ds/dq >= 0 for every provider.
        for (p, q) in [(0.4, 0.3), (0.6, 0.35), (0.8, 0.5)] {
            let game = paper_game(p, q);
            let s = solve(&game);
            let sens = Sensitivity::compute(&game, &s).unwrap();
            for i in 0..8 {
                assert!(sens.ds_dq[i] >= -1e-8, "(p={p}, q={q}) CP {i}: ds/dq = {}", sens.ds_dq[i]);
            }
        }
    }

    #[test]
    fn regularity_flag_on_clean_equilibrium() {
        let game = paper_game(0.6, 0.35);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        assert!(sens.regular, "paper equilibrium should satisfy strict complementarity");
    }

    #[test]
    fn all_interior_case_has_zero_dq_except_psi_terms() {
        // Large cap: nobody pinned at q; N+ empty makes ds/dq = 0 for
        // interior providers (Theorem 6 with empty sum).
        let game = paper_game(0.9, 2.0);
        let s = solve(&game);
        let sens = Sensitivity::compute(&game, &s).unwrap();
        assert!(sens.active.upper.is_empty());
        for &i in &sens.active.interior {
            assert!(sens.ds_dq[i].abs() < 1e-9);
        }
    }
}
