//! Single-provider best responses.
//!
//! Provider `i`'s best response solves `max_{s_i ∈ [0, q]} U_i(s_i; s_{-i})`
//! — the inner problem of Definition 3. Because `U_i < 0 = U_i(v_i)` for
//! `s_i > v_i` (a subsidy above the per-unit profit burns money on every
//! byte), the search interval shrinks to `[0, min(q, v_i)]` without loss.
//!
//! Each utility evaluation requires re-solving the congestion fixed point;
//! a coarse grid scan localizes the maximum (corner solutions at both ends
//! are *expected* equilibria per Theorem 3), then Brent polishing refines
//! interior candidates.

use crate::game::SubsidyGame;
use std::cell::RefCell;
use subcomp_model::system::StateScratch;
use subcomp_num::optimize::maximize_scalar_reusing_ends;
use subcomp_num::roots::Bracket;
use subcomp_num::{NumError, NumResult, Tolerance};

/// Outcome of a best-response computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestResponse {
    /// The maximizing subsidy.
    pub s: f64,
    /// The utility achieved.
    pub utility: f64,
    /// Objective evaluations spent (each solves a fixed point).
    pub evaluations: usize,
}

/// Configuration for best-response searches.
#[derive(Debug, Clone, Copy)]
pub struct BrConfig {
    /// Grid points for the localization scan.
    pub grid: usize,
    /// Polish tolerance.
    pub tol: Tolerance,
}

impl Default for BrConfig {
    fn default() -> Self {
        BrConfig { grid: 24, tol: Tolerance::new(1e-11, 1e-11).with_max_iter(120) }
    }
}

/// Computes provider `i`'s best response to the profile `s` (the value of
/// `s[i]` itself is ignored) — a thin shim allocating throwaway buffers
/// for [`best_response_into`], the engine the Nash solvers iterate.
pub fn best_response(
    game: &SubsidyGame,
    i: usize,
    s: &[f64],
    cfg: &BrConfig,
) -> NumResult<BestResponse> {
    let mut m = Vec::new();
    let mut scratch = game.system().make_scratch();
    best_response_into(game, i, s, cfg, &mut m, &mut scratch)
}

/// A single-provider objective the two best-response engines below
/// maximize: the utility `U_i(s_i; s_{-i})` and its analytic marginal
/// `u_i(s_i)`, with every other coordinate frozen. The scalar solvers
/// implement it over a [`SubsidyGame`] plus cached populations; the lane
/// engine implements it over one lane of a structure-of-arrays batch.
/// Both run the *identical* engine bodies, so the lane path cannot drift
/// from the scalar reference by construction.
pub(crate) trait BrObjective {
    /// Search upper bound `min(q, v_i)`.
    fn cap(&self) -> f64;
    /// `U_i` at `s_i` (solves the congestion fixed point).
    fn utility(&mut self, si: f64) -> NumResult<f64>;
    /// `u_i = ∂U_i/∂s_i` at `s_i` (solves the fixed point).
    fn marginal(&mut self, si: f64) -> NumResult<f64>;
}

/// [`BrObjective`] over a scalar game: probes overwrite `m[i]` only (the
/// frozen components' populations are precomputed by the caller).
struct GameBrObjective<'a> {
    game: &'a SubsidyGame,
    i: usize,
    m: &'a mut Vec<f64>,
    scratch: &'a mut StateScratch,
}

impl BrObjective for GameBrObjective<'_> {
    fn cap(&self) -> f64 {
        self.game.effective_cap(self.i)
    }
    fn utility(&mut self, si: f64) -> NumResult<f64> {
        self.game.utility_probe(self.i, si, self.m, self.scratch)
    }
    fn marginal(&mut self, si: f64) -> NumResult<f64> {
        self.game.marginal_probe(self.i, si, self.m, self.scratch)
    }
}

/// The allocation-free best-response engine: grid localization, Brent
/// polish of the cell, then (for interior maximizers, which
/// value-comparison locates only to ~sqrt(eps)) a root-finding refinement
/// of the *analytic* marginal utility `u_i(s_i) = 0` — the ~1e-12
/// accuracy the sensitivity analysis (Theorem 6) needs. Every transient
/// lives in the caller's buffers: `m` caches the populations of the
/// frozen components `s_{-i}` (they do not depend on `s_i`), so each
/// objective evaluation recomputes only `m[i]` and the congestion fixed
/// point. `evaluations` counts actual fixed-point solves (duplicate
/// endpoint evaluations are reused, not recomputed).
pub(crate) fn best_response_into(
    game: &SubsidyGame,
    i: usize,
    s: &[f64],
    cfg: &BrConfig,
    m: &mut Vec<f64>,
    scratch: &mut StateScratch,
) -> NumResult<BestResponse> {
    // The allocating path validates the probed profile on every objective
    // evaluation; the components other than `i` never change, so validate
    // once. A failure maps to the same error the allocating path surfaces
    // when every objective evaluation comes back non-finite.
    if game.validate(s).is_err() {
        return Err(NumError::NonFinite { what: "grid_scan objective", at: 0.0 });
    }
    game.populations_for(s, m);
    grid_br_core(GameBrObjective { game, i, m, scratch }, cfg)
}

/// The grid-scan engine body, generic over the objective (see
/// [`BrObjective`]). Probe sequence, constants and acceptance rules are
/// the literal former `best_response_into` body — goldens pin the bits.
pub(crate) fn grid_br_core<O: BrObjective>(obj: O, cfg: &BrConfig) -> NumResult<BestResponse> {
    let hi = obj.cap();
    let buffers = RefCell::new(obj);
    let f = |si: f64| buffers.borrow_mut().utility(si).unwrap_or(f64::NEG_INFINITY);
    let m = maximize_scalar_reusing_ends(&f, 0.0, hi, cfg.grid, cfg.tol)?;
    let mut best = BestResponse { s: m.x, utility: m.value, evaluations: m.evaluations };
    let interior_margin = 1e-5 * (1.0 + hi);
    if m.x > interior_margin && m.x < hi - interior_margin {
        let u_of = |si: f64| buffers.borrow_mut().marginal(si).unwrap_or(f64::NAN);
        let mut delta = 16.0 * interior_margin;
        let mut bracket = None;
        for _ in 0..8 {
            let a = (m.x - delta).max(0.0);
            let b = (m.x + delta).min(hi);
            let (ua, ub) = (u_of(a), u_of(b));
            if ua.is_finite() && ub.is_finite() && ua >= 0.0 && ub <= 0.0 {
                bracket = Some((subcomp_num::roots::Bracket::new(a, b), ua, ub));
                break;
            }
            delta *= 2.0;
        }
        if let Some((br, ua, ub)) = bracket {
            if let Ok(root) = subcomp_num::roots::brent_seeded(
                &mut |si| u_of(si),
                br,
                ua,
                ub,
                subcomp_num::Tolerance::new(1e-13, 1e-13).with_max_iter(120),
            ) {
                let refined = root.x.clamp(0.0, hi);
                let val = f(refined);
                if val.is_finite() && val >= best.utility - 1e-12 {
                    best = BestResponse {
                        s: refined,
                        utility: val,
                        evaluations: best.evaluations + root.evaluations,
                    };
                }
            }
        }
    }
    Ok(best)
}

/// Theorem 3 threshold best response: instead of a grid scan, exploit the
/// paper's own characterization `s_i* = min{τ_i, min(q, v_i)}`, where the
/// marginal utility `u_i(s_i)` has a single `+ → −` sign change at the
/// threshold `τ_i` (Assumptions 1–2 guarantee this structure). Three
/// marginal probes classify the corners; an interior threshold is a Brent
/// root of the *analytic* `u_i`, seeded near `hint` (the continuation
/// iterate) so nearby grid points converge in a handful of probes.
///
/// Returns `Ok(None)` when the observed signs do not match the single-
/// crossing structure (non-finite probes, a non-exponential family
/// violating the assumptions numerically) — the caller falls back to the
/// robust grid-scan engine, so enabling this path can never *wrongly*
/// answer, only decline. Agrees with [`best_response_into`] to the shared
/// root tolerance (~1e-12) at interior optima and exactly at corners;
/// it is not bit-identical (different probe sequence), which is why the
/// solvers only use it behind an explicit opt-in.
pub(crate) fn best_response_threshold_into(
    game: &SubsidyGame,
    i: usize,
    s: &[f64],
    hint: f64,
    m: &mut Vec<f64>,
    scratch: &mut StateScratch,
) -> NumResult<Option<BestResponse>> {
    if game.validate(s).is_err() {
        return Err(NumError::NonFinite { what: "threshold_br profile", at: 0.0 });
    }
    game.populations_for(s, m);
    threshold_br_core(GameBrObjective { game, i, m, scratch }, hint)
}

/// The threshold engine body, generic over the objective (see
/// [`BrObjective`]). Probe sequence, constants and corner logic are the
/// literal former `best_response_threshold_into` body.
pub(crate) fn threshold_br_core<O: BrObjective>(
    obj: O,
    hint: f64,
) -> NumResult<Option<BestResponse>> {
    let hi = obj.cap();
    let buffers = RefCell::new(obj);
    if hi <= 0.0 {
        let utility = buffers.borrow_mut().utility(0.0)?;
        return Ok(Some(BestResponse { s: 0.0, utility, evaluations: 1 }));
    }
    let evals = std::cell::Cell::new(0usize);
    let mut u_of = |si: f64| {
        evals.set(evals.get() + 1);
        buffers.borrow_mut().marginal(si).unwrap_or(f64::NAN)
    };
    // Corner classification (Theorem 3's KKT cases).
    let u0 = u_of(0.0);
    if !u0.is_finite() {
        return Ok(None);
    }
    if u0 <= 0.0 {
        // τ_i ≤ 0: the margin loss dominates from the start.
        let utility = buffers.borrow_mut().utility(0.0)?;
        return Ok(Some(BestResponse { s: 0.0, utility, evaluations: evals.get() + 1 }));
    }
    let u_hi = u_of(hi);
    if !u_hi.is_finite() {
        return Ok(None);
    }
    if u_hi >= 0.0 {
        // τ_i ≥ min(q, v_i): pinned at the effective cap.
        let utility = buffers.borrow_mut().utility(hi)?;
        return Ok(Some(BestResponse { s: hi, utility, evaluations: evals.get() + 1 }));
    }
    // Interior threshold: u(0) > 0 > u(hi). Shrink the bracket around the
    // continuation hint first — under continuation the root moved O(Δp)
    // from `hint`, so a tight bracket usually survives and Brent finishes
    // in a few probes. Fall back to the full interval otherwise.
    let hint = hint.clamp(0.0, hi);
    let u_hint = u_of(hint);
    if !u_hint.is_finite() {
        return Ok(None);
    }
    if u_hint == 0.0 {
        let utility = buffers.borrow_mut().utility(hint)?;
        return Ok(Some(BestResponse { s: hint, utility, evaluations: evals.get() + 1 }));
    }
    let delta = 1e-2 * (1.0 + hi);
    let (br, ua, ub) = if u_hint > 0.0 {
        let b = (hint + delta).min(hi);
        let ub = if b < hi { u_of(b) } else { u_hi };
        if ub.is_finite() && ub <= 0.0 {
            (Bracket::new(hint, b), u_hint, ub)
        } else {
            (Bracket::new(hint, hi), u_hint, u_hi)
        }
    } else {
        let a = (hint - delta).max(0.0);
        let ua = if a > 0.0 { u_of(a) } else { u0 };
        if ua.is_finite() && ua >= 0.0 {
            (Bracket::new(a, hint), ua, u_hint)
        } else {
            (Bracket::new(0.0, hint), u0, u_hint)
        }
    };
    let Ok(root) = subcomp_num::roots::brent_seeded(
        &mut u_of,
        br,
        ua,
        ub,
        Tolerance::new(1e-13, 1e-13).with_max_iter(120),
    ) else {
        return Ok(None);
    };
    let s_star = root.x.clamp(0.0, hi);
    let utility = buffers.borrow_mut().utility(s_star)?;
    Ok(Some(BestResponse { s: s_star, utility, evaluations: evals.get() + 1 }))
}

/// The maximum utility any provider can gain by unilaterally deviating
/// from `s` — the *deviation gap*, zero exactly at a Nash equilibrium.
/// Returns `(gap, argmax_provider)`.
pub fn deviation_gap(game: &SubsidyGame, s: &[f64], cfg: &BrConfig) -> NumResult<(f64, usize)> {
    game.validate(s)?;
    let us = game.utilities(s)?;
    let mut worst = (0.0f64, 0usize);
    for i in 0..game.n() {
        let br = best_response(game, i, s, cfg)?;
        let gain = br.utility - us[i];
        if gain > worst.0 {
            worst = (gain, i);
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn single_cp_game(alpha: f64, v: f64, p: f64, q: f64) -> SubsidyGame {
        let sys = build_system(&[ExpCpSpec::unit(alpha, 2.0, v)], 1.0).unwrap();
        SubsidyGame::new(sys, p, q).unwrap()
    }

    #[test]
    fn monopolist_interior_best_response() {
        // With one CP and weak congestion feedback, the optimum is near the
        // no-feedback solution s* = v - 1/alpha (from d/ds[(v-s)e^{alpha s}]).
        let g = single_cp_game(8.0, 1.0, 1.0, 2.0);
        let br = best_response(&g, 0, &[0.0], &BrConfig::default()).unwrap();
        let no_feedback = 1.0 - 1.0 / 8.0;
        assert!(br.s > 0.5 && br.s <= no_feedback + 1e-6, "br = {}", br.s);
        // Must be a stationary point: u_i ~ 0 there.
        let u = g.marginal_utility(0, &[br.s]).unwrap();
        assert!(u.abs() < 1e-4, "marginal utility at BR = {u}");
    }

    #[test]
    fn unprofitable_cp_does_not_subsidize() {
        // alpha small, v small: margin loss dominates, corner at 0.
        let g = single_cp_game(0.5, 0.3, 0.5, 1.0);
        let br = best_response(&g, 0, &[0.0], &BrConfig::default()).unwrap();
        assert_eq!(br.s, 0.0);
        // Theorem 3's corner condition: u_i <= 0 at s_i = 0.
        assert!(g.marginal_utility(0, &[0.0]).unwrap() <= 1e-10);
    }

    #[test]
    fn tight_cap_binds() {
        // Strong demand response, low cap: corner at q.
        let g = single_cp_game(8.0, 1.0, 1.0, 0.2);
        let br = best_response(&g, 0, &[0.0], &BrConfig::default()).unwrap();
        assert!((br.s - 0.2).abs() < 1e-9, "br = {}", br.s);
        assert!(g.marginal_utility(0, &[0.2]).unwrap() >= -1e-10);
    }

    #[test]
    fn best_response_never_exceeds_profitability() {
        let g = single_cp_game(10.0, 0.4, 1.0, 2.0);
        let br = best_response(&g, 0, &[0.0], &BrConfig::default()).unwrap();
        assert!(br.s <= 0.4 + 1e-12);
    }

    #[test]
    fn best_response_beats_grid() {
        let g = single_cp_game(5.0, 1.0, 0.8, 1.0);
        let br = best_response(&g, 0, &[0.0], &BrConfig::default()).unwrap();
        for k in 0..=50 {
            let s = k as f64 * 0.02;
            let u = g.utility(0, &[s]).unwrap();
            assert!(br.utility >= u - 1e-9, "grid point {s} beats BR");
        }
    }

    #[test]
    fn deviation_gap_zero_at_br_fixed_point() {
        let g = single_cp_game(5.0, 1.0, 0.8, 1.0);
        let br = best_response(&g, 0, &[0.0], &BrConfig::default()).unwrap();
        let (gap, _) = deviation_gap(&g, &[br.s], &BrConfig::default()).unwrap();
        assert!(gap < 1e-8, "gap = {gap}");
    }

    #[test]
    fn deviation_gap_positive_off_equilibrium() {
        let g = single_cp_game(8.0, 1.0, 1.0, 2.0);
        let (gap, who) = deviation_gap(&g, &[0.0], &BrConfig::default()).unwrap();
        assert!(gap > 1e-3, "gap = {gap}");
        assert_eq!(who, 0);
    }

    #[test]
    fn threshold_br_agrees_with_grid_scan() {
        // Theorem 3's threshold characterization must land on the same
        // answer as the robust grid-scan engine — exactly at corners,
        // to root tolerance at interior optima — across corner, interior
        // and cap-pinned regimes, with and without a useful hint.
        let cases = [
            (0.5, 0.3, 0.5, 1.0),  // corner at 0
            (8.0, 1.0, 1.0, 2.0),  // interior
            (8.0, 1.0, 1.0, 0.2),  // pinned at cap
            (5.0, 1.0, 0.8, 1.0),  // interior, moderate elasticity
            (10.0, 0.4, 1.0, 2.0), // pinned at v < q
        ];
        for (alpha, v, p, q) in cases {
            let g = single_cp_game(alpha, v, p, q);
            let grid = best_response(&g, 0, &[0.0], &BrConfig::default()).unwrap();
            for hint in [0.0, 0.5 * grid.s, grid.s, g.effective_cap(0)] {
                let mut m = Vec::new();
                let mut scratch = g.system().make_scratch();
                let thr = best_response_threshold_into(&g, 0, &[0.0], hint, &mut m, &mut scratch)
                    .unwrap()
                    .expect("exponential family satisfies the Theorem 3 structure");
                assert!(
                    (thr.s - grid.s).abs() < 1e-9,
                    "(α={alpha}, v={v}, p={p}, q={q}, hint={hint}): threshold {} vs grid {}",
                    thr.s,
                    grid.s
                );
                assert!((thr.utility - grid.utility).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn threshold_br_zero_width_box() {
        let g = single_cp_game(5.0, 1.0, 0.8, 0.0);
        let mut m = Vec::new();
        let mut scratch = g.system().make_scratch();
        let thr = best_response_threshold_into(&g, 0, &[0.0], 0.3, &mut m, &mut scratch)
            .unwrap()
            .unwrap();
        assert_eq!(thr.s, 0.0);
    }

    #[test]
    fn two_player_responses_interact() {
        // CP 1's best response shrinks when CP 0 floods the system
        // (congestion externality, Lemma 3).
        let sys =
            build_system(&[ExpCpSpec::unit(6.0, 1.0, 1.0), ExpCpSpec::unit(6.0, 8.0, 1.0)], 1.0)
                .unwrap();
        let g = SubsidyGame::new(sys, 0.8, 1.0).unwrap();
        let br_alone = best_response(&g, 1, &[0.0, 0.0], &BrConfig::default()).unwrap();
        let br_crowded = best_response(&g, 1, &[0.9, 0.0], &BrConfig::default()).unwrap();
        assert!(br_crowded.utility < br_alone.utility);
    }
}
