//! Policy effects with endogenous ISP pricing (Theorem 8) and regulator
//! tooling.
//!
//! Theorem 8 chains the policy cap `q` through both responses — the ISP's
//! price `p(q)` and the CPs' equilibrium `s(p, q)`:
//!
//! ```text
//! dt_i/dq = (1 − ∂s_i/∂p) dp/dq − ∂s_i/∂q
//! dm_i/dq = m_i'(t_i) · dt_i/dq
//! dφ/dq  = (dg/dφ)^{-1} Σ_i λ_i dm_i/dq,     dλ_i/dq = λ_i'(φ) dφ/dq
//! dθ_i/dq = λ_i dm_i/dq + m_i dλ_i/dq
//! ```
//!
//! with the per-provider sign condition (17) in elasticity form. The
//! [`PriceResponse`] enum selects between the paper's two regimes — fixed
//! (competitive/regulated) price and revenue-maximizing monopoly price —
//! and [`policy_sweep`] drives the Figure 7-style `q` experiments.

use crate::game::SubsidyGame;
use crate::nash::{NashSolution, NashSolver};
use crate::pricing::optimal_price;
use crate::sensitivity::Sensitivity;
use crate::welfare::{corollary2, welfare, Corollary2};
use subcomp_model::system::System;
use subcomp_num::{NumError, NumResult};

/// How the ISP's price reacts to the policy cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PriceResponse {
    /// Competitive or regulated access market: `p` fixed, `dp/dq = 0`
    /// (the Corollary 1 regime).
    Fixed(f64),
    /// Monopoly ISP re-optimizing `p*(q)` on the given bracket
    /// (the Theorem 8 regime); `dp/dq` is obtained by finite difference.
    Optimal {
        /// Lower end of the price search bracket.
        lo: f64,
        /// Upper end of the price search bracket.
        hi: f64,
    },
}

/// Theorem 8's derivatives at one policy point.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEffect {
    /// The cap `q` at which effects are evaluated.
    pub q: f64,
    /// The (possibly endogenous) price `p(q)`.
    pub p: f64,
    /// `dp/dq` (zero in the fixed regime).
    pub dp_dq: f64,
    /// The equilibrium at `(p(q), q)`.
    pub equilibrium: NashSolution,
    /// `dt_i/dq` per provider.
    pub dt_dq: Vec<f64>,
    /// `dm_i/dq` per provider.
    pub dm_dq: Vec<f64>,
    /// `dφ/dq`.
    pub dphi_dq: f64,
    /// `dθ_i/dq` per provider (condition (17) decides the sign).
    pub dtheta_dq: Vec<f64>,
    /// Corollary 2 evaluation at this point.
    pub corollary2: Corollary2,
    /// `dR/dq` for the ISP, assembled from the same chain.
    pub dr_dq: f64,
}

impl PolicyEffect {
    /// Whether condition (17) predicts provider `i`'s throughput to rise
    /// with deregulation.
    pub fn throughput_increasing(&self, i: usize) -> bool {
        self.dtheta_dq[i] > 0.0
    }
}

fn price_at(
    system: &System,
    q: f64,
    response: PriceResponse,
    solver: &NashSolver,
) -> NumResult<f64> {
    match response {
        PriceResponse::Fixed(p) => Ok(p),
        PriceResponse::Optimal { lo, hi } => Ok(optimal_price(system, q, lo, hi, solver)?.p_star),
    }
}

/// Evaluates Theorem 8 at `(q, price_response)`.
pub fn policy_effect(
    system: &System,
    q: f64,
    response: PriceResponse,
    solver: &NashSolver,
) -> NumResult<PolicyEffect> {
    if !(q >= 0.0) {
        return Err(NumError::Domain { what: "policy cap must be non-negative", value: q });
    }
    let p = price_at(system, q, response, solver)?;
    let game = SubsidyGame::new(system.clone(), p, q)?;
    let equilibrium = solver.solve(&game)?;
    let s = &equilibrium.subsidies;
    let state = &equilibrium.state;
    let sens = Sensitivity::compute(&game, s)?;

    // dp/dq by central difference of the price response (0 when fixed).
    let dp_dq = match response {
        PriceResponse::Fixed(_) => 0.0,
        PriceResponse::Optimal { .. } => {
            let h = (1e-3 * (1.0 + q)).min(q.max(1e-3));
            let p_hi = price_at(system, q + h, response, solver)?;
            let q_lo = (q - h).max(0.0);
            let p_lo = price_at(system, q_lo, response, solver)?;
            (p_hi - p_lo) / (q + h - q_lo)
        }
    };

    let n = system.n();
    let mut dt_dq = Vec::with_capacity(n);
    let mut dm_dq = Vec::with_capacity(n);
    for i in 0..n {
        let dti = (1.0 - sens.ds_dp[i]) * dp_dq - sens.ds_dq[i];
        dt_dq.push(dti);
        dm_dq.push(system.cp(i).demand().dm_dt(p - s[i]) * dti);
    }
    let dphi_dq: f64 =
        dm_dq.iter().zip(&state.lambda).map(|(dm, l)| dm * l).sum::<f64>() / state.dg_dphi;
    let mut dtheta_dq = Vec::with_capacity(n);
    for i in 0..n {
        let dlam = system.cp(i).throughput().dlambda_dphi(state.phi) * dphi_dq;
        dtheta_dq.push(state.lambda[i] * dm_dq[i] + state.m[i] * dlam);
    }
    let c2 = corollary2(&game, state, s, &dt_dq)?;
    // dR/dq = d(p θ)/dq = (dp/dq) θ + p Σ dθ_i/dq.
    let dr_dq = dp_dq * state.theta() + p * dtheta_dq.iter().sum::<f64>();
    Ok(PolicyEffect {
        q,
        p,
        dp_dq,
        equilibrium,
        dt_dq,
        dm_dq,
        dphi_dq,
        dtheta_dq,
        corollary2: c2,
        dr_dq,
    })
}

/// One row of a policy sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyPoint {
    /// The cap.
    pub q: f64,
    /// Price in force at this cap.
    pub p: f64,
    /// Equilibrium subsidies.
    pub subsidies: Vec<f64>,
    /// Utilization.
    pub phi: f64,
    /// ISP revenue.
    pub revenue: f64,
    /// Welfare `W`.
    pub welfare: f64,
}

/// Sweeps the cap grid, solving price (per the response regime) and CP
/// equilibrium at each point — the engine behind the Figure 7 family and
/// the endogenous-pricing extension.
pub fn policy_sweep(
    system: &System,
    qs: &[f64],
    response: PriceResponse,
    solver: &NashSolver,
) -> NumResult<Vec<PolicyPoint>> {
    let mut out = Vec::with_capacity(qs.len());
    for &q in qs {
        let p = price_at(system, q, response, solver)?;
        let game = SubsidyGame::new(system.clone(), p, q)?;
        let eq = solver.solve(&game)?;
        out.push(PolicyPoint {
            q,
            p,
            subsidies: eq.subsidies.clone(),
            phi: eq.state.phi,
            revenue: eq.isp_revenue(&game),
            welfare: welfare(&game, &eq.state),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn paper_system() -> System {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        build_system(&specs, 1.0).unwrap()
    }

    fn solver() -> NashSolver {
        NashSolver::default().with_tol(1e-9)
    }

    #[test]
    fn fixed_price_policy_effect_matches_finite_difference() {
        let sys = paper_system();
        let q = 0.35;
        let pe = policy_effect(&sys, q, PriceResponse::Fixed(0.6), &solver()).unwrap();
        assert_eq!(pe.dp_dq, 0.0);
        // dphi/dq vs re-solved equilibria.
        let h = 1e-4;
        let phi = |qq: f64| {
            let g = SubsidyGame::new(sys.clone(), 0.6, qq).unwrap();
            solver().solve(&g).unwrap().state.phi
        };
        let fd = (phi(q + h) - phi(q - h)) / (2.0 * h);
        assert!(
            (pe.dphi_dq - fd).abs() < 3e-2 * (1.0 + fd.abs()),
            "dphi/dq {} vs fd {fd}",
            pe.dphi_dq
        );
        // Corollary 1: both utilization and revenue rise with q at fixed p.
        assert!(pe.dphi_dq > 0.0);
        assert!(pe.dr_dq > 0.0);
    }

    #[test]
    fn dtheta_dq_signs_match_finite_difference() {
        let sys = paper_system();
        let q = 0.35;
        let pe = policy_effect(&sys, q, PriceResponse::Fixed(0.6), &solver()).unwrap();
        let h = 1e-4;
        for i in 0..8 {
            let th = |qq: f64| {
                let g = SubsidyGame::new(sys.clone(), 0.6, qq).unwrap();
                solver().solve(&g).unwrap().state.theta_i[i]
            };
            let fd = (th(q + h) - th(q - h)) / (2.0 * h);
            assert!(
                (pe.dtheta_dq[i] - fd).abs() < 3e-2 * (1.0 + fd.abs()),
                "CP {i}: {} vs {fd}",
                pe.dtheta_dq[i]
            );
        }
    }

    #[test]
    fn congestion_sensitive_poor_cp_loses_under_deregulation() {
        // The paper's §6 discussion: CPs that cannot afford to subsidize
        // and are congestion-sensitive lose throughput as q relaxes.
        let sys = paper_system();
        let pe = policy_effect(&sys, 0.35, PriceResponse::Fixed(0.6), &solver()).unwrap();
        // Spec order: v=0.5 block first, (alpha, beta) = (2,2),(2,5),(5,2),(5,5).
        // The (alpha=2, beta=5, v=0.5) type is index 1.
        assert!(!pe.throughput_increasing(1), "poor congestion-sensitive CP should lose");
        // The (alpha=5, beta=2, v=1.0) type is index 6: aggressive subsidizer.
        assert!(pe.throughput_increasing(6), "rich elastic CP should gain");
    }

    #[test]
    fn policy_sweep_fixed_price_monotone_revenue_and_welfare() {
        // Figure 7 at a fixed price column: R and W rise with q.
        let sys = paper_system();
        let qs = [0.0, 0.5, 1.0, 1.5, 2.0];
        let rows = policy_sweep(&sys, &qs, PriceResponse::Fixed(0.6), &solver()).unwrap();
        for w in rows.windows(2) {
            assert!(w[1].revenue >= w[0].revenue - 1e-9, "revenue must rise with q");
            assert!(w[1].welfare >= w[0].welfare - 1e-9, "welfare must rise with q");
            assert!(w[1].phi >= w[0].phi - 1e-9, "utilization must rise with q");
        }
    }

    #[test]
    fn endogenous_pricing_reoptimizes_with_q() {
        // Theorem 8's regime: the monopoly price re-optimizes under
        // deregulation. In the paper's §5 parameterization the optimal
        // price moves *down* slightly (≈0.85 → ≈0.75: subsidies make
        // demand effectively more elastic around the peak) while optimal
        // revenue rises sharply — the paper's caution that deregulation
        // "might" raise prices is a possibility statement, not a theorem,
        // and EXPERIMENTS.md records this measured direction.
        let sys = paper_system();
        let s = NashSolver::default().with_tol(1e-7).with_max_sweeps(120);
        let rows = policy_sweep(&sys, &[0.0, 1.0], PriceResponse::Optimal { lo: 0.0, hi: 2.0 }, &s)
            .unwrap();
        assert!(rows[0].p > 0.6 && rows[0].p < 1.1, "q=0 monopoly price {}", rows[0].p);
        assert!(rows[1].p > 0.6 && rows[1].p < 1.1, "q=1 monopoly price {}", rows[1].p);
        assert!((rows[0].p - rows[1].p).abs() < 0.3, "re-optimized price moved implausibly");
        assert!(rows[1].revenue > rows[0].revenue, "optimal revenue must rise with q");
        assert!(rows[1].phi > rows[0].phi, "utilization must rise with q at the optimum");
    }

    #[test]
    fn negative_cap_rejected() {
        let sys = paper_system();
        assert!(policy_effect(&sys, -0.1, PriceResponse::Fixed(0.5), &solver()).is_err());
    }
}
