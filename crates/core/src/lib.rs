//! # `subcomp-core` — subsidization competition (paper §4–5)
//!
//! The primary contribution of *Subsidization Competition: Vitalizing the
//! Neutral Internet* (Ma, CoNEXT 2014): content providers (CPs) voluntarily
//! subsidize the usage-based fee of their own traffic, `s_i ∈ [0, q]`,
//! under a regulatory cap `q`, competing through the congestion and demand
//! externalities of the shared access network.
//!
//! Layered on `subcomp-model` (the physical system of §3):
//!
//! * [`game`] — the strategic form: effective prices `t_i = p − s_i`,
//!   utilities `U_i = (v_i − s_i) θ_i(s)` and analytic marginal utilities;
//! * [`best_response`], [`nash`] — Gauss–Seidel/Jacobi best-response
//!   solvers for the Nash equilibrium of Definition 3;
//! * [`lane`] — the SoA lane engine: K same-shape games solved in
//!   lockstep with per-lane convergence masking, bit-identical per lane
//!   to the scalar threshold solver;
//! * [`workspace`] — caller-owned [`workspace::SolveWorkspace`] buffers
//!   behind the allocation-free `solve_into` engines (batch/ensemble
//!   solving without per-solve heap traffic);
//! * [`vi`] — the same equilibrium as a box-constrained variational
//!   inequality `VI(−u, [0,q]^N)` with projection and extragradient
//!   solvers (the formulation behind Theorems 4 and 6);
//! * [`equilibrium`] — Theorem 3's threshold characterization
//!   `s_i = min{τ_i(s), q}` and KKT/deviation verification;
//! * [`structure`] — Theorem 4's P-function uniqueness condition and
//!   Corollary 1's off-diagonal monotonicity / M-matrix structure;
//! * [`sensitivity`] — Theorem 6's equilibrium dynamics `∂s/∂p`, `∂s/∂q`
//!   via the inverse Jacobian `Ψ = (∇_s̃ ũ)^{-1}`, generalized to
//!   directional derivatives along any [`game::Axis`] (`∂s/∂µ`,
//!   `∂s/∂v_i`) for predictor-corrector continuation;
//! * [`snapshot`] — immutable, concurrent-reader-safe copies of solved
//!   equilibria plus the tangent warm-start admission policy (the state
//!   layer under the `exp` equilibrium server);
//! * [`dynamics`] — discrete and continuous best-response dynamics
//!   (off-equilibrium behaviour, §6);
//! * [`revenue`] — ISP revenue under equilibrium response and Theorem 7's
//!   marginal revenue with the `Υ` factor;
//! * [`pricing`] — the ISP's revenue-maximizing price `p*(q)`;
//! * [`welfare`] — system welfare `W = Σ v_i θ_i`, Corollary 2;
//! * [`policy`] — Theorem 8's policy effect with endogenous `p(q)` and
//!   regulator tooling;
//! * [`capacity`] — the §6 capacity-planning extension.
//!
//! ## Example: a two-provider subsidy war
//!
//! ```
//! use subcomp_model::aggregation::{build_system, ExpCpSpec};
//! use subcomp_core::game::SubsidyGame;
//! use subcomp_core::nash::NashSolver;
//!
//! // A profitable video CP and a startup, price 0.6, cap 0.8.
//! let sys = build_system(&[
//!     ExpCpSpec::unit(4.0, 2.0, 1.0),   // price-elastic users, v = 1
//!     ExpCpSpec::unit(2.0, 5.0, 0.2),   // congestion-sensitive, poor
//! ], 1.0).unwrap();
//! let game = SubsidyGame::new(sys, 0.6, 0.8).unwrap();
//! let eq = NashSolver::default().solve(&game).unwrap();
//! assert!(eq.converged);
//! // The profitable CP subsidizes; the startup cannot afford to.
//! assert!(eq.subsidies[0] > 0.1);
//! assert!(eq.subsidies[1] < 0.05);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod best_response;
pub mod capacity;
pub mod duopoly;
pub mod dynamics;
pub mod equilibrium;
pub mod game;
pub mod lane;
pub mod nash;
pub mod policy;
pub mod pricing;
pub mod revenue;
pub mod sensitivity;
pub mod snapshot;
pub mod structure;
pub mod vi;
pub mod welfare;
pub mod workspace;

/// One-stop imports for game-layer usage.
pub mod prelude {
    pub use crate::equilibrium::{verify_equilibrium, EquilibriumReport};
    pub use crate::game::{Axis, SubsidyGame};
    pub use crate::lane::{LaneGame, LaneSolver, LaneWorkspace};
    pub use crate::nash::{NashSolution, NashSolver, SolveStats, SweepMode, WarmStart};
    pub use crate::pricing::optimal_price;
    pub use crate::sensitivity::{ActiveSet, Sensitivity};
    pub use crate::snapshot::{EqSnapshot, TangentPolicy};
    pub use crate::welfare::{welfare, WelfareBreakdown};
    pub use crate::workspace::SolveWorkspace;
}
