//! System welfare and its decomposition (Section 5.2, Corollary 2).
//!
//! The paper measures welfare as the CPs' gross profit `W = Σ_i v_i θ_i`:
//! it internalizes the subsidy transfer (a subsidy moves money from CP to
//! user to ISP without destroying value) and proxies user welfare through
//! CP value. [`WelfareBreakdown`] additionally reports where the money
//! flows — user payments, subsidy outlays, ISP revenue, net CP utility —
//! which the examples use to tell the two-sided-market story.
//!
//! Corollary 2's marginal-welfare condition at a policy point is
//! implemented in [`corollary2`].

use crate::game::SubsidyGame;
use subcomp_model::system::SystemState;
use subcomp_num::{NumError, NumResult};

/// System welfare `W = Σ_i v_i θ_i` at a solved state.
pub fn welfare(game: &SubsidyGame, state: &SystemState) -> f64 {
    (0..game.n()).map(|i| game.profitability(i) * state.theta_i[i]).sum()
}

/// Full monetary decomposition of a strategy profile.
#[derive(Debug, Clone, PartialEq)]
pub struct WelfareBreakdown {
    /// Gross CP profit `W = Σ v_i θ_i` (the paper's welfare metric).
    pub welfare: f64,
    /// Per-provider contribution `v_i θ_i`.
    pub per_cp: Vec<f64>,
    /// ISP revenue `p θ`.
    pub isp_revenue: f64,
    /// What users pay out of pocket, `Σ t_i θ_i` (`t_i = p − s_i`).
    pub user_payments: f64,
    /// What CPs pay in subsidies, `Σ s_i θ_i`.
    pub subsidy_outlay: f64,
    /// Net CP utility `Σ (v_i − s_i) θ_i = W − outlay`.
    pub cp_net_utility: f64,
}

impl WelfareBreakdown {
    /// Computes the breakdown at profile `s`.
    pub fn compute(game: &SubsidyGame, s: &[f64]) -> NumResult<WelfareBreakdown> {
        game.validate(s)?;
        let state = game.state(s)?;
        let n = game.n();
        let per_cp: Vec<f64> = (0..n).map(|i| game.profitability(i) * state.theta_i[i]).collect();
        let w: f64 = per_cp.iter().sum();
        let outlay: f64 = s.iter().zip(&state.theta_i).map(|(si, th)| si * th).sum();
        let isp_revenue = game.price() * state.theta();
        Ok(WelfareBreakdown {
            welfare: w,
            per_cp,
            isp_revenue,
            user_payments: isp_revenue - outlay,
            subsidy_outlay: outlay,
            cp_net_utility: w - outlay,
        })
    }
}

/// Consumer surplus per provider, under the valuation-distribution
/// reading of Assumption 2 (the paper cites it: `m(t)` is the mass of
/// users whose valuation exceeds `t`).
///
/// A user with valuation `u ≥ t_i` enjoys surplus `u − t_i` per unit of
/// traffic; integrating over the population gives the classic
/// `CS_i = λ_i ∫_{t_i}^∞ m_i(u) du` — per-user traffic rate times the
/// area under the demand curve above the effective price. The integral
/// is evaluated by adaptive Simpson with an adaptive tail cutoff, so it
/// works for every demand family, not only the exponential one (whose
/// closed form `m₀ e^{-αt}/α` the tests cross-check).
///
/// The paper's welfare `W = Σ v_i θ_i` deliberately proxies user welfare
/// through CP profits; this function makes the user side explicit so the
/// examples can report a full `W + CS` picture.
pub fn consumer_surplus(game: &SubsidyGame, state: &SystemState, s: &[f64]) -> NumResult<Vec<f64>> {
    let n = game.n();
    if s.len() != n || state.n() != n {
        return Err(NumError::DimensionMismatch { expected: n, actual: s.len().min(state.n()) });
    }
    let p = game.price();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t_i = p - s[i];
        let demand = game.system().cp(i).demand();
        // Expand the upper limit until the demand tail is negligible.
        let mut hi = t_i.max(0.0) + 1.0;
        let scale = demand.m(t_i).max(1e-300);
        for _ in 0..60 {
            if demand.m(hi) <= 1e-10 * scale {
                break;
            }
            hi = t_i.max(0.0) + (hi - t_i.max(0.0)) * 2.0;
        }
        let mass = subcomp_num::quad::adaptive_simpson(&|u| demand.m(u), t_i, hi, 1e-10)?;
        out.push(state.lambda[i] * mass);
    }
    Ok(out)
}

/// The two sides of Corollary 2's marginal-welfare condition.
///
/// With `w_i = λ_i dm_i/dq` and `dφ/dq > 0`, welfare increases in `q` iff
///
/// ```text
/// Σ_i (w_i / Σ_k w_k) v_i  >  Σ_i (−ε^{λ_i}_{m_i}) v_i.
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Corollary2 {
    /// Weights `w_i = λ_i · dm_i/dq`.
    pub w: Vec<f64>,
    /// The population-gain side (left-hand side).
    pub lhs: f64,
    /// The congestion-loss side (right-hand side).
    pub rhs: f64,
    /// `dφ/dq` used (the corollary presumes it positive).
    pub dphi_dq: f64,
    /// Direct evaluation of `dW/dq` from the same ingredients.
    pub dw_dq: f64,
}

impl Corollary2 {
    /// Whether the corollary predicts increasing welfare.
    pub fn predicts_increase(&self) -> bool {
        self.lhs > self.rhs
    }
}

/// Evaluates Corollary 2 at an equilibrium, given the total derivatives
/// `dt_i/dq` of effective prices (from Theorem 8's chain through `p(q)`
/// and `s(p, q)`; pass `−∂s_i/∂q` for the fixed-price case).
pub fn corollary2(
    game: &SubsidyGame,
    state: &SystemState,
    s: &[f64],
    dt_dq: &[f64],
) -> NumResult<Corollary2> {
    let n = game.n();
    if dt_dq.len() != n || s.len() != n {
        return Err(NumError::DimensionMismatch { expected: n, actual: dt_dq.len().min(s.len()) });
    }
    let p = game.price();
    let mut w = Vec::with_capacity(n);
    let mut dm_dq = Vec::with_capacity(n);
    for i in 0..n {
        let t_i = p - s[i];
        let dm = game.system().cp(i).demand().dm_dt(t_i) * dt_dq[i];
        dm_dq.push(dm);
        w.push(state.lambda[i] * dm);
    }
    let dphi_dq: f64 = w.iter().sum::<f64>() / state.dg_dphi;
    let w_total: f64 = w.iter().sum();
    let lhs = if w_total != 0.0 {
        (0..n).map(|i| w[i] / w_total * game.profitability(i)).sum()
    } else {
        0.0
    };
    // RHS: Σ (−ε^{λ_i}_{m_i}) v_i with ε^{λ_i}_{m_i} = m_i λ_i'(φ)/(dg/dφ).
    let rhs = (0..n)
        .map(|i| {
            let eps = state.m[i] * game.system().cp(i).throughput().dlambda_dphi(state.phi)
                / state.dg_dphi;
            -eps * game.profitability(i)
        })
        .sum();
    // Direct dW/dq from the same chain (Corollary 2's proof line):
    // dW/dq = Σ v_i (m_i λ_i' dφ/dq + w_i).
    let dw_dq = (0..n)
        .map(|i| {
            let dlam = game.system().cp(i).throughput().dlambda_dphi(state.phi);
            game.profitability(i) * (state.m[i] * dlam * dphi_dq + w[i])
        })
        .sum();
    Ok(Corollary2 { w, lhs, rhs, dphi_dq, dw_dq })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::NashSolver;
    use crate::sensitivity::Sensitivity;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn paper_game(p: f64, q: f64) -> SubsidyGame {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    }

    #[test]
    fn breakdown_accounting_identities() {
        let game = paper_game(0.6, 0.5);
        let eq = NashSolver::default().solve(&game).unwrap();
        let b = WelfareBreakdown::compute(&game, &eq.subsidies).unwrap();
        // Money conservation: users + CP subsidies = ISP revenue.
        assert!((b.user_payments + b.subsidy_outlay - b.isp_revenue).abs() < 1e-10);
        // CP net = gross - outlay.
        assert!((b.cp_net_utility - (b.welfare - b.subsidy_outlay)).abs() < 1e-10);
        // Per-CP sums to total.
        assert!((b.per_cp.iter().sum::<f64>() - b.welfare).abs() < 1e-12);
    }

    #[test]
    fn welfare_higher_with_subsidies_at_fixed_price() {
        // Corollary 1 + Corollary 2 story at fixed p: allowing subsidies
        // raises W versus the q = 0 baseline.
        let p = 0.6;
        let base = paper_game(p, 0.0);
        let eq0 = NashSolver::default().solve(&base).unwrap();
        let w0 = welfare(&base, &eq0.state);
        let dereg = paper_game(p, 1.0);
        let eq1 = NashSolver::default().solve(&dereg).unwrap();
        let w1 = welfare(&dereg, &eq1.state);
        assert!(w1 > w0, "deregulated welfare {w1} must beat baseline {w0}");
    }

    #[test]
    fn corollary2_matches_finite_difference_fixed_price() {
        // Fixed price: dt_i/dq = -ds_i/dq. Compare dW/dq with re-solved
        // equilibria at q ± h.
        let (p, q) = (0.6, 0.35);
        let game = paper_game(p, q);
        let solver = NashSolver::default().with_tol(1e-10);
        let eq = solver.solve(&game).unwrap();
        let sens = Sensitivity::compute(&game, &eq.subsidies).unwrap();
        let dt_dq: Vec<f64> = sens.ds_dq.iter().map(|d| -d).collect();
        let c2 = corollary2(&game, &eq.state, &eq.subsidies, &dt_dq).unwrap();

        let h = 1e-4;
        let whi = {
            let g = game.with_cap(q + h).unwrap();
            let e = solver.solve(&g).unwrap();
            welfare(&g, &e.state)
        };
        let wlo = {
            let g = game.with_cap(q - h).unwrap();
            let e = solver.solve(&g).unwrap();
            welfare(&g, &e.state)
        };
        let fd = (whi - wlo) / (2.0 * h);
        assert!(
            (c2.dw_dq - fd).abs() < 3e-2 * (1.0 + fd.abs()),
            "corollary {} vs fd {fd}",
            c2.dw_dq
        );
        // Condition consistency: sign(dW/dq) agrees with lhs vs rhs when
        // dphi/dq > 0.
        if c2.dphi_dq > 1e-9 {
            assert_eq!(c2.predicts_increase(), c2.dw_dq > 0.0);
        }
    }

    #[test]
    fn corollary2_dphi_dq_positive_under_deregulation() {
        // Corollary 1: utilization rises with q at fixed price.
        let game = paper_game(0.6, 0.35);
        let eq = NashSolver::default().solve(&game).unwrap();
        let sens = Sensitivity::compute(&game, &eq.subsidies).unwrap();
        let dt_dq: Vec<f64> = sens.ds_dq.iter().map(|d| -d).collect();
        let c2 = corollary2(&game, &eq.state, &eq.subsidies, &dt_dq).unwrap();
        assert!(c2.dphi_dq > 0.0);
    }

    #[test]
    fn dimension_checks() {
        let game = paper_game(0.5, 0.5);
        let eq = NashSolver::default().solve(&game).unwrap();
        assert!(corollary2(&game, &eq.state, &eq.subsidies, &[0.0; 3]).is_err());
        assert!(consumer_surplus(&game, &eq.state, &[0.0; 3]).is_err());
    }

    #[test]
    fn consumer_surplus_matches_exponential_closed_form() {
        // For m(t) = e^{-alpha t}: integral above t is e^{-alpha t}/alpha,
        // so CS_i = lambda_i e^{-alpha t_i} / alpha_i = theta_i / (m_i alpha_i) * m_i...
        // = lambda_i m(t_i)/alpha_i.
        let game = paper_game(0.6, 0.5);
        let eq = NashSolver::default().solve(&game).unwrap();
        let cs = consumer_surplus(&game, &eq.state, &eq.subsidies).unwrap();
        let alphas = [2.0, 2.0, 5.0, 5.0, 2.0, 2.0, 5.0, 5.0];
        for i in 0..8 {
            let expect = eq.state.lambda[i] * eq.state.m[i] / alphas[i];
            assert!(
                (cs[i] - expect).abs() < 1e-6 * (1.0 + expect),
                "CP {i}: {} vs closed form {expect}",
                cs[i]
            );
        }
    }

    #[test]
    fn subsidies_raise_consumer_surplus() {
        // Users are the unambiguous winners of subsidization at fixed p:
        // cheaper access and more of them enjoying it.
        let p = 0.6;
        let banned = paper_game(p, 0.0);
        let eq0 = NashSolver::default().solve(&banned).unwrap();
        let cs0: f64 = consumer_surplus(&banned, &eq0.state, &eq0.subsidies).unwrap().iter().sum();
        let open = paper_game(p, 1.0);
        let eq1 = NashSolver::default().solve(&open).unwrap();
        let cs1: f64 = consumer_surplus(&open, &eq1.state, &eq1.subsidies).unwrap().iter().sum();
        // Note: congestion lowers lambda, but the direct price effect
        // dominates in the paper's setting.
        assert!(cs1 > cs0, "consumer surplus must rise: {cs0} -> {cs1}");
    }
}
