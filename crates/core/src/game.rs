//! The subsidization game in strategic form (Definition 3).
//!
//! Given the ISP's uniform price `p` and the regulator's cap `q`, each CP
//! `i` chooses a per-unit subsidy `s_i ∈ [0, q]`. Users of CP `i` face the
//! effective price `t_i = p − s_i`, populations respond (`m_i(t_i)`,
//! Assumption 2), the network re-equilibrates (Definition 1), and CP `i`
//! earns `U_i(s) = (v_i − s_i) θ_i(s)`.
//!
//! The marginal utility
//!
//! ```text
//! u_i(s) = ∂U_i/∂s_i = −θ_i + (v_i − s_i) ∂θ_i/∂s_i,
//! ∂θ_i/∂s_i = (∂m_i/∂s_i) λ_i + m_i λ_i'(φ) ∂φ/∂s_i,
//! ∂φ/∂s_i = (dg/dφ)^{-1} λ_i (∂m_i/∂s_i),      ∂m_i/∂s_i = −m_i'(t_i) ≥ 0
//! ```
//!
//! is computed in closed form from the model primitives (and cross-checked
//! against finite differences in tests); everything in [`equilibrium`],
//! [`sensitivity`] and [`vi`] builds on it.
//!
//! [`equilibrium`]: crate::equilibrium
//! [`sensitivity`]: crate::sensitivity
//! [`vi`]: crate::vi

use subcomp_model::cp::ContentProvider;
use subcomp_model::system::{StateScratch, System, SystemState};
use subcomp_num::{NumError, NumResult};

/// A sweepable game parameter — the axes the continuation engines
/// generalize over (Theorems 1, 5 and 6 give the comparative statics that
/// make warm starts along each of them work).
///
/// Every axis maps to an in-place scalar write on [`SubsidyGame`]
/// ([`SubsidyGame::set_price`], [`SubsidyGame::set_cap`],
/// [`SubsidyGame::set_mu`], [`SubsidyGame::set_profitability`]): the
/// precompiled congestion kernel is never rebuilt, which is what keeps a
/// warm sweep along any axis allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// The ISP's uniform price `p`.
    Price,
    /// The regulatory subsidy cap `q`.
    Cap,
    /// The ISP capacity `µ` (Theorem 1 direction).
    Mu,
    /// Provider `i`'s per-unit profitability `v_i` (Theorem 5 direction).
    Profitability(usize),
}

impl Axis {
    /// Writes `value` onto the axis' parameter — a validated scalar write,
    /// no rebuild, no allocation.
    pub fn apply(self, game: &mut SubsidyGame, value: f64) -> NumResult<()> {
        match self {
            Axis::Price => game.set_price(value),
            Axis::Cap => game.set_cap(value),
            Axis::Mu => game.set_mu(value),
            Axis::Profitability(i) => game.set_profitability(i, value),
        }
    }

    /// Reads the axis' current parameter value off the game.
    ///
    /// # Panics
    /// For [`Axis::Profitability`] with an out-of-range provider index.
    pub fn value(self, game: &SubsidyGame) -> f64 {
        match self {
            Axis::Price => game.price(),
            Axis::Cap => game.cap(),
            Axis::Mu => game.system().mu(),
            Axis::Profitability(i) => game.profitability(i),
        }
    }

    /// Human-readable axis name for reports and error messages.
    pub fn describe(self) -> String {
        match self {
            Axis::Price => "price p".to_string(),
            Axis::Cap => "cap q".to_string(),
            Axis::Mu => "capacity mu".to_string(),
            Axis::Profitability(i) => format!("profitability v[{i}]"),
        }
    }
}

/// The subsidization game: a system plus `(p, q)` and pricing conventions.
#[derive(Debug, Clone)]
pub struct SubsidyGame {
    system: System,
    price: f64,
    cap: f64,
    clamp_effective_price: bool,
}

impl SubsidyGame {
    /// Creates a game with ISP price `p ≥ 0` and policy cap `q ≥ 0`.
    pub fn new(system: System, price: f64, cap: f64) -> NumResult<Self> {
        if !(price >= 0.0) || !price.is_finite() {
            return Err(NumError::Domain {
                what: "price must be non-negative and finite",
                value: price,
            });
        }
        if !(cap >= 0.0) || !cap.is_finite() {
            return Err(NumError::Domain {
                what: "policy cap must be non-negative and finite",
                value: cap,
            });
        }
        Ok(SubsidyGame { system, price, cap, clamp_effective_price: false })
    }

    /// When enabled, the effective price is clamped at zero
    /// (`t_i = max(0, p − s_i)`): users are never *paid* to consume.
    /// The paper does not clamp; the default follows the paper.
    pub fn with_clamped_price(mut self, clamp: bool) -> Self {
        self.clamp_effective_price = clamp;
        self
    }

    /// Sets the ISP price in place — a scalar write, so reparameterizing a
    /// grid point costs nothing beyond validation. The underlying
    /// [`System`] (and its precompiled kernel) is untouched: price and cap
    /// live on the game, never in the congestion model, which is what
    /// makes continuation over a `(q, p)` grid allocation-free.
    pub fn set_price(&mut self, price: f64) -> NumResult<()> {
        if !(price >= 0.0) || !price.is_finite() {
            return Err(NumError::Domain {
                what: "price must be non-negative and finite",
                value: price,
            });
        }
        self.price = price;
        Ok(())
    }

    /// Sets the policy cap in place — the cap-axis counterpart of
    /// [`SubsidyGame::set_price`], with the same no-rebuild guarantee.
    pub fn set_cap(&mut self, cap: f64) -> NumResult<()> {
        if !(cap >= 0.0) || !cap.is_finite() {
            return Err(NumError::Domain {
                what: "policy cap must be non-negative and finite",
                value: cap,
            });
        }
        self.cap = cap;
        Ok(())
    }

    /// Returns a copy at a different ISP price (same cap and system).
    pub fn with_price(&self, price: f64) -> NumResult<SubsidyGame> {
        let mut game = self.clone();
        game.set_price(price)?;
        Ok(game)
    }

    /// Returns a copy under a different policy cap.
    pub fn with_cap(&self, cap: f64) -> NumResult<SubsidyGame> {
        let mut game = self.clone();
        game.set_cap(cap)?;
        Ok(game)
    }

    /// Sets the ISP capacity `µ` in place — the `µ`-axis counterpart of
    /// [`SubsidyGame::set_price`]/[`SubsidyGame::set_cap`], with the same
    /// no-rebuild, zero-allocation guarantee: the write lands on the
    /// [`System`]'s scalar capacity and its precompiled kernel is untouched
    /// (see [`System::set_mu`]).
    pub fn set_mu(&mut self, mu: f64) -> NumResult<()> {
        self.system.set_mu(mu)
    }

    /// Sets provider `i`'s profitability `v_i` in place — the Theorem 5
    /// axis as a scalar write (see [`System::set_profitability`]); the
    /// congestion kernel is untouched because `v_i` never enters the fixed
    /// point, only the utilities.
    pub fn set_profitability(&mut self, i: usize, v: f64) -> NumResult<()> {
        self.system.set_profitability(i, v)
    }

    /// Replaces whole providers in place, surgically patching the
    /// precompiled congestion kernel (see [`System::patch_cps`]): only the
    /// affected slots re-derive their cached peak and distinct-`β`
    /// assignment; results are bit-identical to rebuilding the game on the
    /// patched provider list.
    pub fn patch_cps(
        &mut self,
        patches: impl IntoIterator<Item = (usize, ContentProvider)>,
    ) -> NumResult<()> {
        self.system.patch_cps(patches)
    }

    /// Returns a copy at a different ISP capacity (same price, cap and
    /// providers) — a shim over the in-place [`SubsidyGame::set_mu`].
    pub fn with_mu(&self, mu: f64) -> NumResult<SubsidyGame> {
        let mut game = self.clone();
        game.set_mu(mu)?;
        Ok(game)
    }

    /// Returns a copy with provider `i`'s profitability replaced — the
    /// Theorem 5 experiment knob. A shim over the in-place
    /// [`SubsidyGame::set_profitability`]: the system (and its precompiled
    /// kernel) is cloned once, never rebuilt.
    pub fn with_profitability(&self, i: usize, v: f64) -> NumResult<SubsidyGame> {
        let mut game = self.clone();
        game.set_profitability(i, v)?;
        Ok(game)
    }

    /// The underlying physical system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Number of providers.
    pub fn n(&self) -> usize {
        self.system.n()
    }

    /// The ISP's uniform price `p`.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// The regulatory cap `q`.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// Whether the non-paper clamped-price convention is enabled
    /// (see [`SubsidyGame::with_clamped_price`]). The lane engine only
    /// accepts the paper's unclamped convention and checks this.
    pub fn clamps_effective_price(&self) -> bool {
        self.clamp_effective_price
    }

    /// Provider `i`'s profitability `v_i`.
    pub fn profitability(&self, i: usize) -> f64 {
        self.system.cp(i).profitability()
    }

    /// The per-provider strategy upper bound actually binding in practice:
    /// `min(q, v_i)`. A subsidy above `v_i` yields strictly negative
    /// utility whenever the provider carries traffic, so best responses
    /// never exceed it (Theorem 3's `v_i ≤ (∂θ_i/∂s_i)^{-1} θ_i` corner
    /// logic); solvers restrict their search accordingly.
    pub fn effective_cap(&self, i: usize) -> f64 {
        self.cap.min(self.profitability(i))
    }

    /// Validates a strategy profile against the box `[0, q]^N`.
    pub fn validate(&self, s: &[f64]) -> NumResult<()> {
        if s.len() != self.n() {
            return Err(NumError::DimensionMismatch { expected: self.n(), actual: s.len() });
        }
        for &si in s {
            if !si.is_finite() || si < -1e-12 || si > self.cap + 1e-12 {
                return Err(NumError::Domain { what: "subsidy outside [0, q]", value: si });
            }
        }
        Ok(())
    }

    /// Effective prices `t_i = p − s_i` (clamped at zero if configured).
    pub fn effective_prices(&self, s: &[f64]) -> Vec<f64> {
        s.iter().map(|&si| self.effective_price_of(si)).collect()
    }

    /// One provider's effective price `t = p − s` under this game's
    /// clamping convention.
    #[inline]
    pub fn effective_price_of(&self, si: f64) -> f64 {
        let t = self.price - si;
        if self.clamp_effective_price {
            t.max(0.0)
        } else {
            t
        }
    }

    /// Populations induced by the profile `s`, written into `out` — the
    /// allocation-free composition of [`SubsidyGame::effective_prices`]
    /// and [`System::populations`].
    pub(crate) fn populations_for(&self, s: &[f64], out: &mut Vec<f64>) {
        out.resize(self.n(), 0.0);
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.system.cp(j).population(self.effective_price_of(s[j]));
        }
    }

    /// Solves the congestion fixed point induced by the profile `s`.
    pub fn state(&self, s: &[f64]) -> NumResult<SystemState> {
        self.validate(s)?;
        self.system.state_at_prices(&self.effective_prices(s))
    }

    /// Utility `U_i(s) = (v_i − s_i) θ_i(s)` for one provider, given the
    /// already-solved state (avoids re-solving inside tight loops).
    pub fn utility_at_state(&self, i: usize, s: &[f64], state: &SystemState) -> f64 {
        (self.profitability(i) - s[i]) * state.theta_i[i]
    }

    /// All utilities at a profile.
    pub fn utilities(&self, s: &[f64]) -> NumResult<Vec<f64>> {
        let state = self.state(s)?;
        Ok((0..self.n()).map(|i| self.utility_at_state(i, s, &state)).collect())
    }

    /// Utility of provider `i` at profile `s` (solves the fixed point).
    pub fn utility(&self, i: usize, s: &[f64]) -> NumResult<f64> {
        let state = self.state(s)?;
        Ok(self.utility_at_state(i, s, &state))
    }

    /// Analytic marginal utility `u_i(s) = ∂U_i/∂s_i` (module docs).
    pub fn marginal_utility(&self, i: usize, s: &[f64]) -> NumResult<f64> {
        let state = self.state(s)?;
        Ok(self.marginal_utility_at_state(i, s, &state))
    }

    /// Analytic marginal utility given the already-solved state.
    pub fn marginal_utility_at_state(&self, i: usize, s: &[f64], state: &SystemState) -> f64 {
        self.marginal_from_parts(
            i,
            s[i],
            state.m[i],
            state.lambda[i],
            state.theta_i[i],
            state.phi,
            state.dg_dphi,
        )
    }

    /// The marginal-utility formula of the module docs on pre-extracted
    /// state components — shared by [`SubsidyGame::marginal_utility_at_state`]
    /// and the allocation-free best-response probes so the two paths cannot
    /// drift apart numerically.
    // One scalar per state component the formula reads; bundling them into
    // a struct would just re-create SystemState by another name.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn marginal_from_parts(
        &self,
        i: usize,
        si: f64,
        m_i: f64,
        lambda_i: f64,
        theta_ii: f64,
        phi: f64,
        dg_dphi: f64,
    ) -> f64 {
        let cp = self.system.cp(i);
        let t_i = self.price - si;
        if self.clamp_effective_price && t_i < 0.0 {
            // Clamped region: m_i no longer responds to s_i; only the
            // direct margin loss remains.
            return -theta_ii;
        }
        let dm_dsi = -cp.demand().dm_dt(t_i); // >= 0
        let dphi_dsi = lambda_i * dm_dsi / dg_dphi;
        let dlambda = cp.throughput().dlambda_dphi(phi);
        let dtheta_dsi = dm_dsi * lambda_i + m_i * dlambda * dphi_dsi;
        -theta_ii + (cp.profitability() - si) * dtheta_dsi
    }

    /// Best-response utility probe: `U_i` at the profile whose `i`-th
    /// component is `si`, with every *other* population pre-computed in
    /// `m` (they do not depend on `s_i`). Overwrites `m[i]`, solves the
    /// congestion fixed point through `scratch`, and touches no other
    /// memory — the allocation-free core of the solver hot loop.
    /// Bit-identical to `utility(i, profile)` on the matching profile.
    pub(crate) fn utility_probe(
        &self,
        i: usize,
        si: f64,
        m: &mut [f64],
        scratch: &mut StateScratch,
    ) -> NumResult<f64> {
        let cp = self.system.cp(i);
        m[i] = cp.population(self.effective_price_of(si));
        let phi = self.system.solve_phi_with(m, scratch)?;
        // λ_i and θ_i exactly as the full state assembly computes them.
        let lambda_i = self.system.lambda_of(i, phi);
        Ok((cp.profitability() - si) * (m[i] * lambda_i))
    }

    /// Best-response marginal-utility probe, the `u_i` counterpart of
    /// [`SubsidyGame::utility_probe`]. Bit-identical to
    /// `marginal_utility(i, profile)` on the matching profile.
    pub(crate) fn marginal_probe(
        &self,
        i: usize,
        si: f64,
        m: &mut [f64],
        scratch: &mut StateScratch,
    ) -> NumResult<f64> {
        let cp = self.system.cp(i);
        m[i] = cp.population(self.effective_price_of(si));
        let phi = self.system.solve_phi_with(m, scratch)?;
        let lambda_i = self.system.lambda_of(i, phi);
        let theta_ii = m[i] * lambda_i;
        let dg_dphi = self.system.dgap_dphi_with(phi, m, scratch);
        Ok(self.marginal_from_parts(i, si, m[i], lambda_i, theta_ii, phi, dg_dphi))
    }

    /// [`SubsidyGame::state`] into caller-owned buffers: validates `s`,
    /// fills `prices`, and solves the fixed point into `out`.
    pub(crate) fn state_into(
        &self,
        s: &[f64],
        prices: &mut Vec<f64>,
        scratch: &mut StateScratch,
        out: &mut SystemState,
    ) -> NumResult<()> {
        self.validate(s)?;
        prices.resize(self.n(), 0.0);
        for (o, &si) in prices.iter_mut().zip(s) {
            *o = self.effective_price_of(si);
        }
        self.system.state_at_prices_into(prices, scratch, out)
    }

    /// The VI map `F(s) = −u(s)` into a caller-owned buffer (the
    /// allocation-free core of [`crate::vi`]): solves the state at `s`
    /// into `state` and writes the negated marginal utilities into `out`.
    pub(crate) fn vi_map_into(
        &self,
        s: &[f64],
        prices: &mut Vec<f64>,
        scratch: &mut StateScratch,
        state: &mut SystemState,
        out: &mut Vec<f64>,
    ) -> NumResult<()> {
        self.state_into(s, prices, scratch, state)?;
        out.resize(self.n(), 0.0);
        for i in 0..self.n() {
            out[i] = -self.marginal_utility_at_state(i, s, state);
        }
        Ok(())
    }

    /// [`SubsidyGame::marginal_utilities`] into caller-owned buffers —
    /// the positive-sign sibling of [`SubsidyGame::vi_map_into`], the
    /// allocation-free core of the sensitivity engine's
    /// finite-difference leg. Bit-identical to the allocating wrapper
    /// (both ride the `_into` state solvers).
    pub(crate) fn marginal_utilities_into(
        &self,
        s: &[f64],
        prices: &mut Vec<f64>,
        scratch: &mut StateScratch,
        state: &mut SystemState,
        out: &mut Vec<f64>,
    ) -> NumResult<()> {
        self.state_into(s, prices, scratch, state)?;
        out.resize(self.n(), 0.0);
        for i in 0..self.n() {
            out[i] = self.marginal_utility_at_state(i, s, state);
        }
        Ok(())
    }

    /// All marginal utilities `u(s)` at a profile (one fixed-point solve).
    pub fn marginal_utilities(&self, s: &[f64]) -> NumResult<Vec<f64>> {
        let state = self.state(s)?;
        Ok((0..self.n()).map(|i| self.marginal_utility_at_state(i, s, &state)).collect())
    }

    /// `∂θ_i/∂s_i` at a solved state (used by Theorem 3's corner test).
    pub fn dtheta_dsi_at_state(&self, i: usize, s: &[f64], state: &SystemState) -> f64 {
        let cp = self.system.cp(i);
        let t_i = self.price - s[i];
        let dm_dsi =
            if self.clamp_effective_price && t_i < 0.0 { 0.0 } else { -cp.demand().dm_dt(t_i) };
        let dphi_dsi = state.lambda[i] * dm_dsi / state.dg_dphi;
        let dlambda = cp.throughput().dlambda_dphi(state.phi);
        dm_dsi * state.lambda[i] + state.m[i] * dlambda * dphi_dsi
    }

    /// ISP revenue at a profile: `R = p · θ(s)` (the ISP keeps charging
    /// the full price `p`; subsidies flow from CPs to users).
    pub fn isp_revenue(&self, s: &[f64]) -> NumResult<f64> {
        Ok(self.price * self.state(s)?.theta())
    }

    /// Total subsidy outlay `Σ_i s_i θ_i(s)` — the transfer from CPs to
    /// users (and onward to the ISP through usage fees).
    pub fn subsidy_outlay(&self, s: &[f64]) -> NumResult<f64> {
        let state = self.state(s)?;
        Ok(s.iter().zip(&state.theta_i).map(|(si, th)| si * th).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};
    use subcomp_num::diff::derivative;

    /// The paper's §5 setting: 8 types, alpha/beta in {2,5}, v in {0.5, 1}.
    pub(crate) fn paper_section5_game(p: f64, q: f64) -> SubsidyGame {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    }

    #[test]
    fn constructor_validates() {
        let sys = build_system(&[ExpCpSpec::unit(2.0, 2.0, 1.0)], 1.0).unwrap();
        assert!(SubsidyGame::new(sys.clone(), -0.1, 1.0).is_err());
        assert!(SubsidyGame::new(sys.clone(), 1.0, -0.5).is_err());
        assert!(SubsidyGame::new(sys, 1.0, 0.0).is_ok());
    }

    #[test]
    fn validate_profile() {
        let g = paper_section5_game(0.5, 1.0);
        assert!(g.validate(&[0.0; 8]).is_ok());
        assert!(g.validate(&[0.5; 8]).is_ok());
        assert!(g.validate(&[1.5; 8]).is_err());
        assert!(g.validate(&[-0.2; 8]).is_err());
        assert!(g.validate(&[0.0; 3]).is_err());
    }

    #[test]
    fn effective_prices_unclamped_and_clamped() {
        let g = paper_section5_game(0.3, 1.0);
        let s = vec![0.5; 8];
        assert!((g.effective_prices(&s)[0] + 0.2).abs() < 1e-15);
        let gc = g.clone().with_clamped_price(true);
        assert_eq!(gc.effective_prices(&s)[0], 0.0);
    }

    #[test]
    fn subsidy_raises_own_population_and_utilization() {
        // Lemma 3 direction, end to end.
        let g = paper_section5_game(0.8, 1.0);
        let s0 = vec![0.0; 8];
        let mut s1 = s0.clone();
        s1[7] = 0.5;
        let st0 = g.state(&s0).unwrap();
        let st1 = g.state(&s1).unwrap();
        assert!(st1.phi > st0.phi);
        assert!(st1.theta_i[7] > st0.theta_i[7]);
        for j in 0..7 {
            assert!(st1.theta_i[j] < st0.theta_i[j], "CP {j} must lose throughput");
        }
    }

    #[test]
    fn marginal_utility_matches_finite_difference() {
        let g = paper_section5_game(0.6, 1.0);
        // Interior profile: the finite-difference stencil must stay in the box.
        let s = vec![0.1, 0.07, 0.3, 0.2, 0.4, 0.15, 0.25, 0.05];
        for i in 0..8 {
            let fd = derivative(
                &|si| {
                    let mut ss = s.clone();
                    ss[i] = si;
                    g.utility(i, &ss).unwrap()
                },
                s[i],
            )
            .unwrap();
            let an = g.marginal_utility(i, &s).unwrap();
            assert!((an - fd).abs() < 1e-6, "CP {i}: analytic {an} vs fd {fd}");
        }
    }

    #[test]
    fn marginal_utility_under_clamping() {
        let g = paper_section5_game(0.2, 1.0).with_clamped_price(true);
        let mut s = vec![0.0; 8];
        s[3] = 0.6; // t_3 = -0.4 -> clamped to 0
        let state = g.state(&s).unwrap();
        let u = g.marginal_utility_at_state(3, &s, &state);
        assert!((u + state.theta_i[3]).abs() < 1e-12);
    }

    #[test]
    fn dtheta_dsi_positive() {
        // Lemma 3: own throughput increases in own subsidy.
        let g = paper_section5_game(0.7, 1.0);
        let s = vec![0.2; 8];
        let state = g.state(&s).unwrap();
        for i in 0..8 {
            assert!(g.dtheta_dsi_at_state(i, &s, &state) > 0.0);
        }
    }

    #[test]
    fn utilities_structure() {
        let g = paper_section5_game(0.5, 1.0);
        let s = vec![0.25; 8];
        let us = g.utilities(&s).unwrap();
        let state = g.state(&s).unwrap();
        for i in 0..8 {
            let expect = (g.profitability(i) - 0.25) * state.theta_i[i];
            assert!((us[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn effective_cap_min_of_q_and_v() {
        let g = paper_section5_game(0.5, 0.7);
        assert_eq!(g.effective_cap(0), 0.5); // v = 0.5 < q
        assert_eq!(g.effective_cap(7), 0.7); // v = 1.0 > q
    }

    #[test]
    fn with_price_and_cap_roundtrip() {
        let g = paper_section5_game(0.5, 1.0);
        let g2 = g.with_price(0.9).unwrap();
        assert_eq!(g2.price(), 0.9);
        assert_eq!(g2.cap(), 1.0);
        let g3 = g.with_cap(0.3).unwrap();
        assert_eq!(g3.cap(), 0.3);
        assert_eq!(g3.price(), 0.5);
    }

    #[test]
    fn set_price_and_cap_mutate_in_place() {
        let mut g = paper_section5_game(0.5, 1.0).with_clamped_price(true);
        g.set_price(0.9).unwrap();
        g.set_cap(0.3).unwrap();
        assert_eq!(g.price(), 0.9);
        assert_eq!(g.cap(), 0.3);
        // Clamping convention and system are untouched; results agree with
        // the cloning constructors on the same (p, q).
        let rebuilt = paper_section5_game(0.9, 0.3).with_clamped_price(true);
        let s = vec![0.1; 8];
        assert_eq!(g.state(&s).unwrap(), rebuilt.state(&s).unwrap());
        assert!(g.set_price(-0.1).is_err());
        assert!(g.set_cap(f64::NAN).is_err());
        // Failed sets leave the game unchanged.
        assert_eq!(g.price(), 0.9);
        assert_eq!(g.cap(), 0.3);
    }

    #[test]
    fn with_profitability_changes_only_v() {
        let g = paper_section5_game(0.5, 1.0);
        let g2 = g.with_profitability(0, 2.0).unwrap();
        assert_eq!(g2.profitability(0), 2.0);
        assert_eq!(g2.profitability(1), g.profitability(1));
        assert!(g.with_profitability(99, 1.0).is_err());
        assert!(g.with_profitability(0, -0.5).is_err());
    }

    #[test]
    fn set_mu_and_profitability_mutate_in_place() {
        let mut g = paper_section5_game(0.5, 1.0);
        g.set_mu(2.0).unwrap();
        g.set_profitability(3, 1.7).unwrap();
        assert_eq!(g.system().mu(), 2.0);
        assert_eq!(g.profitability(3), 1.7);
        assert!(g.set_mu(0.0).is_err());
        assert!(g.set_profitability(99, 1.0).is_err());
        assert!(g.set_profitability(0, f64::NAN).is_err());
        // Failed sets leave the game unchanged.
        assert_eq!(g.system().mu(), 2.0);
        assert_eq!(g.profitability(0), 0.5);
        // The mutated game agrees with cloning constructors on the same
        // parameterization, state for state.
        let rebuilt =
            paper_section5_game(0.5, 1.0).with_mu(2.0).unwrap().with_profitability(3, 1.7).unwrap();
        let s = vec![0.2; 8];
        assert_eq!(g.state(&s).unwrap(), rebuilt.state(&s).unwrap());
        assert_eq!(g.utilities(&s).unwrap(), rebuilt.utilities(&s).unwrap());
    }

    #[test]
    fn axis_apply_and_value_roundtrip() {
        let mut g = paper_section5_game(0.5, 1.0);
        for (axis, v) in
            [(Axis::Price, 0.9), (Axis::Cap, 0.4), (Axis::Mu, 2.5), (Axis::Profitability(6), 1.3)]
        {
            axis.apply(&mut g, v).unwrap();
            assert_eq!(axis.value(&g), v, "{}", axis.describe());
        }
        assert_eq!(g.price(), 0.9);
        assert_eq!(g.cap(), 0.4);
        assert_eq!(g.system().mu(), 2.5);
        assert_eq!(g.profitability(6), 1.3);
        // Validation flows through the per-axis setters.
        assert!(Axis::Price.apply(&mut g, -1.0).is_err());
        assert!(Axis::Mu.apply(&mut g, 0.0).is_err());
        assert!(Axis::Profitability(99).apply(&mut g, 1.0).is_err());
        assert!(Axis::Profitability(0).apply(&mut g, -1.0).is_err());
        assert!(Axis::Cap.describe().contains("q"));
        assert!(Axis::Profitability(2).describe().contains("v[2]"));
    }

    #[test]
    fn revenue_and_outlay() {
        let g = paper_section5_game(0.5, 1.0);
        let s = vec![0.2; 8];
        let state = g.state(&s).unwrap();
        let r = g.isp_revenue(&s).unwrap();
        assert!((r - 0.5 * state.theta()).abs() < 1e-12);
        let outlay = g.subsidy_outlay(&s).unwrap();
        assert!((outlay - 0.2 * state.theta()).abs() < 1e-12);
    }

    #[test]
    fn zero_cap_forces_baseline() {
        // q = 0 is the paper's regulated baseline: only s = 0 is feasible.
        let g = paper_section5_game(0.5, 0.0);
        assert!(g.validate(&[0.0; 8]).is_ok());
        assert!(g.validate(&[0.1; 8]).is_err());
    }
}
