//! Caller-owned solver workspaces: the allocation-free batch engine.
//!
//! Every Nash/VI solve needs the same transient storage — iterate vectors,
//! a best-response population scratch, a congestion-state buffer and the
//! model layer's [`StateScratch`]. A [`SolveWorkspace`] owns all of it, so
//! a caller that solves many games (parameter sweeps, seeded ensembles,
//! the `solve_farm` binary) pays for heap allocation once at warm-up and
//! never again: [`crate::nash::NashSolver::solve_into`],
//! [`crate::vi::projection_solve_into`] and
//! [`crate::vi::extragradient_solve_into`] all run allocation-free on a
//! warm workspace, as asserted by the counting-allocator suite in
//! `tests/alloc_free.rs`.
//!
//! Buffers only ever grow, so one workspace can hop between games of
//! different sizes; results are bit-identical to the allocating wrappers
//! (`solve`, `solve_from`, `projection_solve`, `extragradient_solve`),
//! which are now thin shims over this engine.

use crate::game::SubsidyGame;
use subcomp_model::system::{StateScratch, SystemState};

/// A deterministic per-solve iteration budget.
///
/// The serving layer needs a way to stop a pathological solve from
/// spinning without giving up determinism, so the budget is counted in
/// **best-response sweeps, never wall-clock time**: the same game under
/// the same budget always stops at the same iterate with the same
/// residual, on any machine. Checking it is an integer compare inside
/// the sweep loop — no boxing, no cloning, no allocation (the
/// counting-allocator suite pins the budgeted happy path at zero warm
/// allocations).
///
/// [`SolveBudget::unlimited`] (the default) never fires: the solver's
/// own `max_sweeps` bound is always reached first, so an unlimited
/// budget is bit-identical to the un-budgeted engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveBudget {
    max_sweeps: usize,
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget::unlimited()
    }
}

impl SolveBudget {
    /// No budget: the solver runs to its own `max_sweeps` bound.
    pub fn unlimited() -> SolveBudget {
        SolveBudget { max_sweeps: usize::MAX }
    }

    /// At most `n` sweeps (clamped to at least 1: a zero budget would
    /// forbid even looking at the start iterate).
    pub fn sweeps(n: usize) -> SolveBudget {
        SolveBudget { max_sweeps: n.max(1) }
    }

    /// The sweep ceiling this budget imposes.
    pub fn max_sweeps(&self) -> usize {
        self.max_sweeps
    }

    /// Whether this budget can never fire.
    pub fn is_unlimited(&self) -> bool {
        self.max_sweeps == usize::MAX
    }
}

/// Reusable buffers for the Nash and VI solvers.
///
/// Create one per worker thread with [`SolveWorkspace::for_game`] (or
/// [`SolveWorkspace::new`] for lazy sizing) and pass it to the `_into`
/// solver entry points. After a successful solve the workspace holds the
/// solution: [`SolveWorkspace::subsidies`], [`SolveWorkspace::state`] and
/// [`SolveWorkspace::utilities`] expose it without copying.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    /// Current iterate; holds the solution after a successful solve.
    pub(crate) s: Vec<f64>,
    /// Next iterate under construction.
    pub(crate) next: Vec<f64>,
    /// Frozen reference profile for Jacobi sweeps.
    pub(crate) reference: Vec<f64>,
    /// Per-provider effective caps `min(q, v_i)` of the current game.
    pub(crate) caps: Vec<f64>,
    /// Population scratch for best-response probes.
    pub(crate) m: Vec<f64>,
    /// Effective-price scratch for full state assembly.
    pub(crate) prices: Vec<f64>,
    /// VI map buffer `F(s) = −u(s)`.
    pub(crate) vi_f: Vec<f64>,
    /// VI predictor / projection buffer.
    pub(crate) vi_pred: Vec<f64>,
    /// Model-layer scratch (exp table, population buffer).
    pub(crate) scratch: StateScratch,
    /// Solved congestion state at the current iterate.
    pub(crate) state: SystemState,
    /// Utilities at the solution.
    pub(crate) utilities: Vec<f64>,
}

impl SolveWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> SolveWorkspace {
        SolveWorkspace::default()
    }

    /// A workspace pre-sized for `game`, so even the first solve against
    /// `game` allocates nothing.
    pub fn for_game(game: &SubsidyGame) -> SolveWorkspace {
        let mut ws = SolveWorkspace::default();
        ws.ensure(game);
        ws
    }

    /// Sizes every buffer for `game` and refreshes the per-game data
    /// (effective caps, exp-table width). Called by the solvers on entry;
    /// allocation-free once the workspace has seen a game at least this
    /// large. The current iterate is resized but its prefix is preserved,
    /// which is what [`crate::nash::WarmStart::Previous`] relies on.
    pub(crate) fn ensure(&mut self, game: &SubsidyGame) {
        let n = game.n();
        self.s.resize(n, 0.0);
        self.next.resize(n, 0.0);
        self.reference.resize(n, 0.0);
        self.caps.resize(n, 0.0);
        for i in 0..n {
            self.caps[i] = game.effective_cap(i);
        }
        self.m.resize(n, 0.0);
        self.prices.resize(n, 0.0);
        self.vi_f.resize(n, 0.0);
        self.vi_pred.resize(n, 0.0);
        self.utilities.resize(n, 0.0);
        game.system().prepare_scratch(&mut self.scratch);
    }

    /// The current iterate — the equilibrium after a successful solve.
    pub fn subsidies(&self) -> &[f64] {
        &self.s
    }

    /// The solved congestion state at [`SolveWorkspace::subsidies`].
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Utilities `U_i` at [`SolveWorkspace::subsidies`].
    pub fn utilities(&self) -> &[f64] {
        &self.utilities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn tiny_game(n: usize) -> SubsidyGame {
        let specs: Vec<ExpCpSpec> =
            (0..n).map(|i| ExpCpSpec::unit(2.0 + i as f64, 3.0, 0.8)).collect();
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), 0.6, 0.9).unwrap()
    }

    #[test]
    fn for_game_sizes_all_buffers() {
        let game = tiny_game(4);
        let ws = SolveWorkspace::for_game(&game);
        assert_eq!(ws.s.len(), 4);
        assert_eq!(ws.caps, vec![0.8, 0.8, 0.8, 0.8]);
        assert_eq!(ws.subsidies().len(), 4);
    }

    #[test]
    fn ensure_grows_and_shrinks_logical_size() {
        let mut ws = SolveWorkspace::new();
        ws.ensure(&tiny_game(5));
        assert_eq!(ws.s.len(), 5);
        let cap5 = ws.s.capacity();
        ws.ensure(&tiny_game(2));
        assert_eq!(ws.s.len(), 2);
        // Capacity is retained: shrinking is free, regrowth within the old
        // high-water mark allocates nothing.
        assert!(ws.s.capacity() >= cap5);
        ws.ensure(&tiny_game(5));
        assert_eq!(ws.s.len(), 5);
    }

    #[test]
    fn solve_budget_clamps_and_classifies() {
        assert!(SolveBudget::default().is_unlimited());
        assert!(SolveBudget::unlimited().is_unlimited());
        assert_eq!(SolveBudget::sweeps(0).max_sweeps(), 1, "zero budgets clamp to one sweep");
        assert_eq!(SolveBudget::sweeps(7).max_sweeps(), 7);
        assert!(!SolveBudget::sweeps(7).is_unlimited());
    }

    #[test]
    fn caps_refresh_per_game() {
        let mut ws = SolveWorkspace::new();
        ws.ensure(&tiny_game(2));
        assert_eq!(ws.caps, vec![0.8, 0.8]);
        let other = SubsidyGame::new(
            build_system(&[ExpCpSpec::unit(2.0, 3.0, 0.3), ExpCpSpec::unit(2.0, 3.0, 2.0)], 1.0)
                .unwrap(),
            0.6,
            0.5,
        )
        .unwrap();
        ws.ensure(&other);
        assert_eq!(ws.caps, vec![0.3, 0.5]);
    }
}
