//! Structural conditions behind uniqueness and stability (Theorem 4,
//! Corollary 1).
//!
//! * **Theorem 4 (uniqueness)**: if for every distinct pair of profiles
//!   some provider satisfies `(s'_i − s_i)(u_i(s') − u_i(s)) < 0` — i.e.
//!   `−u` is a *P-function* (Moré–Rheinboldt) — the Nash equilibrium is
//!   unique. [`p_function_evidence`] tests the condition on deterministic
//!   pseudo-random profile pairs and reports any counterexample.
//! * **Corollary 1 (stability/deregulation)**: if `u` is *off-diagonally
//!   monotone* (`∂u_i/∂s_j ≥ 0` for `j ≠ i`), `∇(−ũ)` is a Leontief
//!   M-matrix and `∂s/∂q ≥ 0`, `∂φ/∂q ≥ 0`, `∂R/∂q ≥ 0`.
//!   [`offdiagonal_monotone`] and [`neg_jacobian_is_m_matrix`] verify both
//!   halves numerically.
//!
//! The Jacobian `∇u` is computed by central differences *of the analytic*
//! marginal utilities, so its cost is `O(n²)` fixed-point solves.

use crate::game::SubsidyGame;
use subcomp_num::linalg::{is_m_matrix, is_p_matrix, Matrix};
use subcomp_num::{NumError, NumResult};

/// Minimal deterministic RNG (SplitMix64) for sampling strategy profiles.
///
/// Kept dependency-free on purpose: the sampled uniqueness check needs
/// *reproducible* profiles, not statistical quality.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Outcome of the sampled P-function test.
#[derive(Debug, Clone, PartialEq)]
pub struct PFunctionEvidence {
    /// Profile pairs tested.
    pub pairs_tested: usize,
    /// A counterexample `(s, s')` violating condition (10), if found.
    pub counterexample: Option<(Vec<f64>, Vec<f64>)>,
}

impl PFunctionEvidence {
    /// Whether no counterexample was found.
    pub fn holds(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Samples profile pairs in the effective box and checks Theorem 4's
/// condition (10): for each pair, some `i` must satisfy
/// `(s'_i − s_i)(u_i(s') − u_i(s)) < 0`.
pub fn p_function_evidence(
    game: &SubsidyGame,
    pairs: usize,
    seed: u64,
) -> NumResult<PFunctionEvidence> {
    let n = game.n();
    let mut rng = SplitMix64::new(seed);
    let caps: Vec<f64> = (0..n).map(|i| game.effective_cap(i)).collect();
    let sample =
        |rng: &mut SplitMix64| -> Vec<f64> { (0..n).map(|i| rng.next_f64() * caps[i]).collect() };
    for _ in 0..pairs {
        let s = sample(&mut rng);
        let sp = sample(&mut rng);
        if s == sp {
            continue;
        }
        let u = game.marginal_utilities(&s)?;
        let up = game.marginal_utilities(&sp)?;
        let ok = (0..n).any(|i| (sp[i] - s[i]) * (up[i] - u[i]) < 0.0);
        if !ok {
            return Ok(PFunctionEvidence { pairs_tested: pairs, counterexample: Some((s, sp)) });
        }
    }
    Ok(PFunctionEvidence { pairs_tested: pairs, counterexample: None })
}

/// Central-difference Jacobian of the marginal utilities, `(∇u)_{ij} =
/// ∂u_i/∂s_j`, at profile `s`. Steps shrink automatically near the box
/// boundary (one-sided there).
pub fn marginal_utility_jacobian(game: &SubsidyGame, s: &[f64]) -> NumResult<Matrix> {
    game.validate(s)?;
    let n = game.n();
    let q = game.cap();
    let h0 = 1e-6 * (1.0 + q);
    let mut jac = Matrix::zeros(n, n);
    let mut sp = s.to_vec();
    for j in 0..n {
        // Respect the box: central where possible, one-sided at corners.
        let hj_up = (q - s[j]).min(h0);
        let hj_dn = s[j].min(h0);
        let (a, b) = if hj_up > 0.0 && hj_dn > 0.0 {
            (s[j] - hj_dn, s[j] + hj_up)
        } else if hj_up > 0.0 {
            (s[j], s[j] + hj_up)
        } else if hj_dn > 0.0 {
            (s[j] - hj_dn, s[j])
        } else {
            // Degenerate box (q = 0): derivative is moot.
            continue;
        };
        sp[j] = b;
        let ub = game.marginal_utilities(&sp)?;
        sp[j] = a;
        let ua = game.marginal_utilities(&sp)?;
        sp[j] = s[j];
        for i in 0..n {
            jac[(i, j)] = (ub[i] - ua[i]) / (b - a);
        }
    }
    Ok(jac)
}

/// Checks Corollary 1's off-diagonal monotonicity (`∂u_i/∂s_j ≥ −tol`,
/// `j ≠ i`) at a profile, restricted to the rows in `idx` (pass all
/// indices for the global condition). Returns the most negative
/// off-diagonal entry found.
///
/// Note: for the paper's own exponential parameterization the *global*
/// condition can fail at rows pinned to the cap — Corollary 1 states it
/// as a sufficient assumption, not a property of the example. What the
/// deregulation result actually needs is the condition on the interior
/// block that enters `Ψ`, which is what the sensitivity tests check.
pub fn offdiagonal_monotone(
    game: &SubsidyGame,
    s: &[f64],
    idx: &[usize],
    tol: f64,
) -> NumResult<(bool, f64)> {
    check_indices(game.n(), idx)?;
    let jac = marginal_utility_jacobian(game, s)?;
    let mut worst = f64::INFINITY;
    for &i in idx {
        for &j in idx {
            if i != j {
                worst = worst.min(jac[(i, j)]);
            }
        }
    }
    if idx.len() < 2 {
        worst = 0.0;
    }
    Ok((worst >= -tol, worst))
}

/// Whether `∇(−u)` restricted to `idx` is a P-matrix at `s` — the local
/// certificate behind Theorem 6's invertibility of `∇_s̃ ũ`.
pub fn neg_jacobian_is_p_matrix(game: &SubsidyGame, s: &[f64], idx: &[usize]) -> NumResult<bool> {
    let jac = marginal_utility_jacobian(game, s)?;
    let sub = jac.submatrix(idx)?;
    is_p_matrix(&sub.scale(-1.0), 1e-12)
}

/// Whether `∇(−u)` restricted to `idx` is an M-matrix at `s` — Corollary
/// 1's Leontief structure (entrywise-nonnegative inverse ⇒ `∂s/∂q ≥ 0`).
pub fn neg_jacobian_is_m_matrix(game: &SubsidyGame, s: &[f64], idx: &[usize]) -> NumResult<bool> {
    let jac = marginal_utility_jacobian(game, s)?;
    let sub = jac.submatrix(idx)?;
    is_m_matrix(&sub.scale(-1.0), 1e-12)
}

/// Dimension guard shared by callers that restrict to interior sets.
pub fn check_indices(n: usize, idx: &[usize]) -> NumResult<()> {
    for &i in idx {
        if i >= n {
            return Err(NumError::DimensionMismatch { expected: n, actual: i });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::NashSolver;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn paper_game(p: f64, q: f64) -> SubsidyGame {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    }

    fn small_game(p: f64, q: f64) -> SubsidyGame {
        let specs = [ExpCpSpec::unit(4.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 5.0, 0.6)];
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    }

    #[test]
    fn splitmix_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn p_function_holds_on_paper_game() {
        // Theorem 4's condition on sampled pairs for the paper's setting.
        let game = paper_game(0.6, 1.0);
        let ev = p_function_evidence(&game, 60, 7).unwrap();
        assert!(ev.holds(), "counterexample: {:?}", ev.counterexample);
        assert_eq!(ev.pairs_tested, 60);
    }

    #[test]
    fn jacobian_diagonal_negative_at_equilibrium() {
        // Own-subsidy marginal utility decreases through a maximum: the
        // diagonal is negative *at the equilibrium* (second-order
        // condition). Away from stationary points the utility can be
        // locally convex — e^{αs} growth — so this is deliberately tested
        // at the solved equilibrium, not an arbitrary profile.
        let game = small_game(0.8, 1.0);
        let eq = NashSolver::default().solve(&game).unwrap();
        let jac = marginal_utility_jacobian(&game, &eq.subsidies).unwrap();
        assert!(jac[(0, 0)] < 0.0);
        assert!(jac[(1, 1)] < 0.0);
    }

    #[test]
    fn jacobian_matches_direct_difference() {
        let game = small_game(0.7, 1.0);
        let s = vec![0.25, 0.15];
        let jac = marginal_utility_jacobian(&game, &s).unwrap();
        let h = 1e-6;
        for (i, j) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
            let mut sp = s.clone();
            sp[j] += h;
            let up = game.marginal_utility(i, &sp).unwrap();
            sp[j] -= 2.0 * h;
            let um = game.marginal_utility(i, &sp).unwrap();
            let fd = (up - um) / (2.0 * h);
            assert!((jac[(i, j)] - fd).abs() < 1e-3 * (1.0 + fd.abs()), "entry ({i},{j})");
        }
    }

    #[test]
    fn neg_jacobian_p_matrix_on_interior_block() {
        // Theorem 6 needs ∇_s̃(-ũ) on the *interior* block to be a
        // P-matrix (hence invertible); that is what we certify.
        let game = paper_game(0.7, 0.6);
        let eq = NashSolver::default().solve(&game).unwrap();
        let interior: Vec<usize> = eq
            .subsidies
            .iter()
            .enumerate()
            .filter(|(i, &s)| s > 1e-6 && s < game.effective_cap(*i) - 1e-6)
            .map(|(i, _)| i)
            .collect();
        assert!(interior.len() >= 2);
        assert!(neg_jacobian_is_p_matrix(&game, &eq.subsidies, &interior).unwrap());
    }

    #[test]
    fn offdiagonal_monotonicity_on_interior_block() {
        // Corollary 1's stability condition, checked where it matters:
        // the interior (non-pinned) block that enters Ψ in Theorem 6.
        let game = paper_game(0.7, 0.6);
        let eq = NashSolver::default().solve(&game).unwrap();
        let interior: Vec<usize> = eq
            .subsidies
            .iter()
            .enumerate()
            .filter(|(i, &s)| s > 1e-6 && s < game.effective_cap(*i) - 1e-6)
            .map(|(i, _)| i)
            .collect();
        assert!(interior.len() >= 2, "need an interior block, got {interior:?}");
        let (ok, worst) = offdiagonal_monotone(&game, &eq.subsidies, &interior, 1e-6).unwrap();
        assert!(ok, "worst interior off-diagonal entry {worst}");
    }

    #[test]
    fn global_offdiagonal_monotonicity_can_fail() {
        // Documented behaviour: rows pinned at the cap can violate the
        // global condition in the paper's own parameterization — the
        // corollary's hypothesis is sufficient, not automatic.
        let game = paper_game(0.7, 0.6);
        let eq = NashSolver::default().solve(&game).unwrap();
        let all: Vec<usize> = (0..8).collect();
        let (_, worst) = offdiagonal_monotone(&game, &eq.subsidies, &all, 1e-6).unwrap();
        // We don't assert failure (it is parameter-dependent); we assert
        // the check runs and reports a finite answer.
        assert!(worst.is_finite());
    }

    #[test]
    fn m_matrix_on_interior_block_at_equilibrium() {
        let game = paper_game(0.7, 0.6);
        let eq = NashSolver::default().solve(&game).unwrap();
        let interior: Vec<usize> = eq
            .subsidies
            .iter()
            .enumerate()
            .filter(|(i, &s)| s > 1e-6 && s < game.effective_cap(*i) - 1e-6)
            .map(|(i, _)| i)
            .collect();
        assert!(interior.len() >= 2);
        assert!(neg_jacobian_is_m_matrix(&game, &eq.subsidies, &interior).unwrap());
    }

    #[test]
    fn degenerate_box_jacobian_is_zero() {
        let game = small_game(0.5, 0.0);
        let jac = marginal_utility_jacobian(&game, &[0.0, 0.0]).unwrap();
        assert_eq!(jac.norm_max(), 0.0);
    }

    #[test]
    fn check_indices_guards() {
        assert!(check_indices(3, &[0, 2]).is_ok());
        assert!(check_indices(3, &[3]).is_err());
    }
}
