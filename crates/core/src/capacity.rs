//! Capacity planning: the investment extension (paper §6, future work).
//!
//! The paper's central policy argument is that subsidization raises ISP
//! margins and therefore *investment incentives*; it explicitly defers the
//! capacity-planning decision to future work. This module implements the
//! natural formalization: the ISP chooses capacity `µ` (and price) to
//! maximize long-run profit `R(p*(µ, q), µ) − c·µ` against a linear
//! capacity cost `c`, with CPs at their subsidy equilibrium throughout.
//!
//! The headline experiment (`EXPERIMENTS.md`, E2): the optimal capacity
//! `µ*(q)` grows with the policy cap `q` — deregulated subsidization
//! funds expansion — and expansion relieves exactly the congestion-
//! sensitive providers that short-run deregulation hurt.

use crate::nash::NashSolver;
use crate::pricing::optimal_price;
use subcomp_model::system::System;
use subcomp_num::optimize::maximize_scalar;
use subcomp_num::{NumError, NumResult, Tolerance};

/// The ISP's capacity decision problem.
#[derive(Debug, Clone, Copy)]
pub struct CapacityPlanner {
    /// Linear capacity cost `c` per unit of `µ`.
    pub unit_cost: f64,
    /// Price search bracket.
    pub price_range: (f64, f64),
    /// Capacity search bracket.
    pub mu_range: (f64, f64),
    /// Grid used for the outer capacity scan.
    pub grid: usize,
}

impl CapacityPlanner {
    /// Creates a planner; cost must be positive, brackets ordered.
    pub fn new(unit_cost: f64, price_range: (f64, f64), mu_range: (f64, f64)) -> NumResult<Self> {
        if !(unit_cost > 0.0) {
            return Err(NumError::Domain {
                what: "capacity cost must be positive",
                value: unit_cost,
            });
        }
        if !(price_range.1 > price_range.0) || !(mu_range.1 > mu_range.0) || !(mu_range.0 > 0.0) {
            return Err(NumError::Domain { what: "invalid search brackets", value: mu_range.0 });
        }
        Ok(CapacityPlanner { unit_cost, price_range, mu_range, grid: 12 })
    }

    /// Long-run ISP profit at capacity `µ` under cap `q`: revenue at the
    /// re-optimized price minus capacity cost.
    pub fn profit(&self, system: &System, mu: f64, q: f64, solver: &NashSolver) -> NumResult<f64> {
        let sys = system.with_capacity(mu)?;
        let choice = optimal_price(&sys, q, self.price_range.0, self.price_range.1, solver)?;
        Ok(choice.revenue - self.unit_cost * mu)
    }

    /// Solves `max_µ R(p*(µ), µ) − c µ` for a given cap.
    pub fn optimal_capacity(
        &self,
        system: &System,
        q: f64,
        solver: &NashSolver,
    ) -> NumResult<CapacityChoice> {
        let f = |mu: f64| self.profit(system, mu, q, solver).unwrap_or(f64::NEG_INFINITY);
        let m = maximize_scalar(
            &f,
            self.mu_range.0,
            self.mu_range.1,
            self.grid,
            Tolerance::new(1e-4, 1e-4).with_max_iter(60),
        )?;
        let sys = system.with_capacity(m.x)?;
        let price = optimal_price(&sys, q, self.price_range.0, self.price_range.1, solver)?;
        Ok(CapacityChoice {
            mu_star: m.x,
            profit: m.value,
            p_star: price.p_star,
            revenue: price.revenue,
            equilibrium_phi: price.equilibrium.state.phi,
        })
    }
}

/// The solved capacity decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityChoice {
    /// Profit-maximizing capacity `µ*`.
    pub mu_star: f64,
    /// Long-run profit at `µ*`.
    pub profit: f64,
    /// The re-optimized price at `µ*`.
    pub p_star: f64,
    /// Revenue at `(µ*, p*)`.
    pub revenue: f64,
    /// Utilization at the long-run optimum.
    pub equilibrium_phi: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn small_system() -> System {
        // Four types keep the capacity tests fast.
        let specs = [
            ExpCpSpec::unit(2.0, 2.0, 0.5),
            ExpCpSpec::unit(5.0, 2.0, 1.0),
            ExpCpSpec::unit(2.0, 5.0, 1.0),
            ExpCpSpec::unit(5.0, 5.0, 0.5),
        ];
        build_system(&specs, 1.0).unwrap()
    }

    fn fast_solver() -> NashSolver {
        NashSolver::default().with_tol(1e-6).with_max_sweeps(80)
    }

    #[test]
    fn planner_validates_inputs() {
        assert!(CapacityPlanner::new(0.0, (0.0, 2.0), (0.5, 3.0)).is_err());
        assert!(CapacityPlanner::new(0.1, (2.0, 0.0), (0.5, 3.0)).is_err());
        assert!(CapacityPlanner::new(0.1, (0.0, 2.0), (0.0, 3.0)).is_err());
        assert!(CapacityPlanner::new(0.1, (0.0, 2.0), (0.5, 3.0)).is_ok());
    }

    #[test]
    fn profit_decreases_with_prohibitive_cost() {
        let sys = small_system();
        let solver = fast_solver();
        let cheap = CapacityPlanner::new(0.01, (0.0, 2.0), (0.5, 4.0)).unwrap();
        let dear = CapacityPlanner::new(0.5, (0.0, 2.0), (0.5, 4.0)).unwrap();
        let mu = 2.0;
        let pc = cheap.profit(&sys, mu, 0.5, &solver).unwrap();
        let pd = dear.profit(&sys, mu, 0.5, &solver).unwrap();
        assert!(pc > pd);
        assert!((pc - pd - (0.5 - 0.01) * mu).abs() < 1e-9);
    }

    #[test]
    fn deregulation_funds_capacity_expansion() {
        // The paper's investment-incentive claim, made quantitative:
        // mu*(q = 1) >= mu*(q = 0).
        let sys = small_system();
        let solver = fast_solver();
        let planner = CapacityPlanner::new(0.08, (0.0, 2.0), (0.4, 4.0)).unwrap();
        let reg = planner.optimal_capacity(&sys, 0.0, &solver).unwrap();
        let dereg = planner.optimal_capacity(&sys, 1.0, &solver).unwrap();
        assert!(
            dereg.mu_star >= reg.mu_star - 0.05,
            "deregulated mu* {} should not fall below regulated {}",
            dereg.mu_star,
            reg.mu_star
        );
        assert!(dereg.profit > reg.profit, "deregulation must raise long-run profit");
    }

    #[test]
    fn optimal_capacity_beats_neighbors() {
        let sys = small_system();
        let solver = fast_solver();
        let planner = CapacityPlanner::new(0.1, (0.0, 2.0), (0.4, 4.0)).unwrap();
        let choice = planner.optimal_capacity(&sys, 0.5, &solver).unwrap();
        for dmu in [-0.3, 0.3] {
            let mu = (choice.mu_star + dmu).clamp(0.4, 4.0);
            let p = planner.profit(&sys, mu, 0.5, &solver).unwrap();
            assert!(choice.profit >= p - 1e-4, "mu = {mu} earns {p} > {}", choice.profit);
        }
    }
}
