//! Nash equilibrium solvers (Definition 3) by iterated best response.
//!
//! The primary solver sweeps providers **Gauss–Seidel** style (each best
//! response immediately visible to the next provider), optionally damped;
//! a **Jacobi** sweep (simultaneous responses) is available as an
//! independent cross-check and for studying the paper's stability story —
//! under Theorem 4's P-function condition both settle on the same unique
//! equilibrium.
//!
//! Convergence is declared on the sup-norm of the sweep update; the
//! returned [`NashSolution`] carries the full solved state and diagnostics,
//! and [`crate::equilibrium::verify_equilibrium`] can be used post-hoc for
//! an independent KKT/deviation certificate.

use crate::best_response::{best_response_into, best_response_threshold_into, BrConfig};
use crate::game::SubsidyGame;
use crate::workspace::{SolveBudget, SolveWorkspace};
use subcomp_model::system::SystemState;
use subcomp_num::linalg::vector::{copy_clamped, sub_inf_norm};
use subcomp_num::{NumError, NumResult};

/// Sweep order for the best-response iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Sequential sweeps: provider `i` reacts to the freshest profile.
    GaussSeidel,
    /// Simultaneous sweeps: all providers react to the previous profile.
    Jacobi,
}

/// A solved equilibrium (or the best iterate when not converged).
#[derive(Debug, Clone, PartialEq)]
pub struct NashSolution {
    /// Equilibrium subsidies `s*`.
    pub subsidies: Vec<f64>,
    /// Solved system state at `s*`.
    pub state: SystemState,
    /// Utilities `U_i(s*)`.
    pub utilities: Vec<f64>,
    /// Best-response sweeps performed.
    pub iterations: usize,
    /// Sup-norm of the final sweep update.
    pub residual: f64,
    /// Whether the residual met the tolerance within the budget.
    pub converged: bool,
}

impl NashSolution {
    /// ISP revenue `p · θ(s*)` at this equilibrium (price from `game`).
    pub fn isp_revenue(&self, game: &SubsidyGame) -> f64 {
        game.price() * self.state.theta()
    }

    /// System welfare `W = Σ v_i θ_i` at this equilibrium.
    pub fn welfare(&self, game: &SubsidyGame) -> f64 {
        (0..game.n()).map(|i| game.profitability(i) * self.state.theta_i[i]).sum()
    }

    /// Bundles the solve's health indicators with the independent
    /// Theorem 3 certificate into one snapshot-friendly record.
    pub fn diagnostics(&self, game: &SubsidyGame) -> NumResult<SolveDiagnostics> {
        let report = crate::equilibrium::verify_equilibrium(game, &self.subsidies)?;
        let pin = crate::equilibrium::PIN_TOL;
        let mut pinned_low = 0usize;
        let mut pinned_high = 0usize;
        for (i, &s) in self.subsidies.iter().enumerate() {
            if s <= pin {
                pinned_low += 1;
            } else if s >= game.effective_cap(i) - pin {
                pinned_high += 1;
            }
        }
        Ok(SolveDiagnostics {
            iterations: self.iterations,
            residual: self.residual,
            converged: self.converged,
            max_kkt_residual: report.max_kkt_residual,
            max_threshold_residual: report.max_threshold_residual,
            pinned_low,
            pinned_high,
            interior: self.subsidies.len() - pinned_low - pinned_high,
        })
    }
}

/// Solver-health and certificate diagnostics of one Nash solve — the
/// record the golden-snapshot regression tier pins per scenario, so that
/// a refactor that degrades convergence (not just the answer) is caught.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveDiagnostics {
    /// Best-response sweeps performed.
    pub iterations: usize,
    /// Sup-norm of the final sweep update.
    pub residual: f64,
    /// Whether the solve met its tolerance.
    pub converged: bool,
    /// Maximum KKT residual over providers (Theorem 3 certificate).
    pub max_kkt_residual: f64,
    /// Maximum threshold residual `|s_i − min{τ_i, q}|`.
    pub max_threshold_residual: f64,
    /// Providers pinned at `s_i = 0`.
    pub pinned_low: usize,
    /// Providers pinned at the effective cap `min(q, v_i)`.
    pub pinned_high: usize,
    /// Providers strictly inside their strategy box.
    pub interior: usize,
}

/// Iterated best-response Nash solver.
#[derive(Debug, Clone, Copy)]
pub struct NashSolver {
    /// Sweep order.
    pub mode: SweepMode,
    /// Damping `ω ∈ (0, 1]`: `s ← (1−ω) s + ω BR(s)`.
    pub damping: f64,
    /// Convergence threshold on the sup-norm sweep update.
    pub tol: f64,
    /// Maximum sweeps.
    pub max_sweeps: usize,
    /// Inner best-response configuration.
    pub br: BrConfig,
    /// Use the Theorem 3 threshold best response (marginal-utility root
    /// finding seeded at the current iterate) instead of the grid-scan
    /// search. Roughly 3x fewer fixed-point solves per sweep under
    /// continuation; answers agree with the grid scan to root tolerance
    /// (~1e-12) but are **not bit-identical**, so the default stays
    /// `false` and the grid engines opt in explicitly. Any provider whose
    /// marginal structure does not match the single-crossing assumption
    /// silently falls back to the grid scan for that best response.
    pub threshold_br: bool,
}

impl Default for NashSolver {
    fn default() -> Self {
        NashSolver {
            mode: SweepMode::GaussSeidel,
            damping: 1.0,
            tol: 1e-9,
            max_sweeps: 600,
            br: BrConfig::default(),
            threshold_br: false,
        }
    }
}

impl NashSolver {
    /// Returns a copy using Jacobi sweeps.
    pub fn jacobi(mut self) -> Self {
        self.mode = SweepMode::Jacobi;
        self
    }

    /// Returns a copy with damping `ω ∈ (0, 1]`.
    pub fn with_damping(mut self, omega: f64) -> Self {
        self.damping = omega.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Returns a copy with a different convergence threshold.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol.max(0.0);
        self
    }

    /// Returns a copy with a different sweep budget.
    pub fn with_max_sweeps(mut self, n: usize) -> Self {
        self.max_sweeps = n.max(1);
        self
    }

    /// Returns a copy using the Theorem 3 threshold best response (see
    /// [`NashSolver::threshold_br`]).
    pub fn with_threshold_br(mut self, enabled: bool) -> Self {
        self.threshold_br = enabled;
        self
    }

    /// Solves from the no-subsidy profile `s = 0` (the paper's baseline).
    ///
    /// Thin wrapper over [`NashSolver::solve_into`] with a throwaway
    /// workspace; batch callers should hold a [`SolveWorkspace`] and call
    /// the engine directly to solve allocation-free.
    pub fn solve(&self, game: &SubsidyGame) -> NumResult<NashSolution> {
        let mut ws = SolveWorkspace::for_game(game);
        let stats = self.solve_into(game, WarmStart::Zero, &mut ws)?;
        Ok(ws.solution(stats))
    }

    /// Solves from an explicit starting profile — warm starts make the
    /// `p`/`q` sweeps of Figures 7–11 fast and continuous.
    pub fn solve_from(&self, game: &SubsidyGame, s0: &[f64]) -> NumResult<NashSolution> {
        let mut ws = SolveWorkspace::for_game(game);
        let stats = self.solve_into(game, WarmStart::Profile(s0), &mut ws)?;
        Ok(ws.solution(stats))
    }

    /// The allocation-free solve engine. Runs the same best-response
    /// iteration as [`NashSolver::solve`]/[`NashSolver::solve_from`] —
    /// bit-identical iterates, residuals and sweep counts — but every
    /// transient lives in the caller-owned `ws`: after a first solve at a
    /// given size (warm-up), repeated calls perform **zero heap
    /// allocation** (asserted by the counting-allocator suite). On success
    /// the solution is left in the workspace ([`SolveWorkspace::subsidies`],
    /// [`SolveWorkspace::state`], [`SolveWorkspace::utilities`]).
    pub fn solve_into(
        &self,
        game: &SubsidyGame,
        start: WarmStart<'_>,
        ws: &mut SolveWorkspace,
    ) -> NumResult<SolveStats> {
        self.solve_into_budgeted(game, start, ws, SolveBudget::unlimited())
    }

    /// [`NashSolver::solve_into`] under a deterministic [`SolveBudget`].
    ///
    /// The budget is a sweep-count ceiling checked inside the iteration
    /// loop (an integer compare — no allocation, no clock). When it fires
    /// before convergence the engine does **not** error: it assembles the
    /// full state and utilities at the best iterate and returns
    /// `Ok(SolveStats { converged: false, .. })`, so a serving layer can
    /// degrade to a partial answer instead of spinning or failing. A
    /// budget at or above the solver's own `max_sweeps` never fires —
    /// running out of `max_sweeps` stays the usual
    /// [`NumError::MaxIterations`] — and an unlimited budget makes this
    /// bit-identical to [`NashSolver::solve_into`].
    pub fn solve_into_budgeted(
        &self,
        game: &SubsidyGame,
        start: WarmStart<'_>,
        ws: &mut SolveWorkspace,
        budget: SolveBudget,
    ) -> NumResult<SolveStats> {
        if let WarmStart::Profile(s0) = start {
            game.validate(s0)?;
        }
        let n = game.n();
        ws.ensure(game);
        if n == 0 {
            game.state_into(&[], &mut ws.prices, &mut ws.scratch, &mut ws.state)?;
            return Ok(SolveStats { iterations: 0, residual: 0.0, converged: true });
        }
        // Clamp the start into the effective box [0, min(q, v_i)].
        match start {
            WarmStart::Zero => ws.s.fill(0.0),
            WarmStart::Profile(s0) => copy_clamped(s0, 0.0, &ws.caps, &mut ws.s),
            WarmStart::Previous => {
                // `ensure` preserved the previous iterate (padding with
                // zeros on growth); re-clamp it into the new game's box.
                for i in 0..n {
                    ws.s[i] = ws.s[i].clamp(0.0, ws.caps[i]);
                }
            }
            WarmStart::Tangent { ds_dtheta, dtheta } => {
                if ds_dtheta.len() != n {
                    return Err(NumError::DimensionMismatch {
                        expected: n,
                        actual: ds_dtheta.len(),
                    });
                }
                if !dtheta.is_finite() {
                    return Err(NumError::Domain {
                        what: "tangent step dtheta must be finite",
                        value: dtheta,
                    });
                }
                for i in 0..n {
                    let predicted = ws.s[i] + dtheta * ds_dtheta[i];
                    // A non-finite sensitivity component degrades to the
                    // plain Previous start for that provider.
                    let base = if predicted.is_finite() { predicted } else { ws.s[i] };
                    ws.s[i] = base.clamp(0.0, ws.caps[i]);
                }
            }
        }
        let mut residual = f64::INFINITY;
        for sweep in 0..self.max_sweeps {
            ws.next.copy_from_slice(&ws.s);
            if self.mode == SweepMode::Jacobi {
                ws.reference.copy_from_slice(&ws.s); // Jacobi responds to this snapshot
            }
            for i in 0..n {
                let basis = match self.mode {
                    SweepMode::GaussSeidel => &ws.next,
                    SweepMode::Jacobi => &ws.reference,
                };
                let br = if self.threshold_br {
                    match best_response_threshold_into(
                        game,
                        i,
                        basis,
                        ws.s[i],
                        &mut ws.m,
                        &mut ws.scratch,
                    )? {
                        Some(br) => br,
                        None => best_response_into(
                            game,
                            i,
                            basis,
                            &self.br,
                            &mut ws.m,
                            &mut ws.scratch,
                        )?,
                    }
                } else {
                    best_response_into(game, i, basis, &self.br, &mut ws.m, &mut ws.scratch)?
                };
                ws.next[i] = (1.0 - self.damping) * ws.s[i] + self.damping * br.s;
            }
            residual = sub_inf_norm(&ws.s, &ws.next);
            std::mem::swap(&mut ws.s, &mut ws.next);
            if residual <= self.tol {
                game.state_into(&ws.s, &mut ws.prices, &mut ws.scratch, &mut ws.state)?;
                for i in 0..n {
                    ws.utilities[i] = game.utility_at_state(i, &ws.s, &ws.state);
                }
                return Ok(SolveStats { iterations: sweep + 1, residual, converged: true });
            }
            // A budget at or above max_sweeps defers to the MaxIterations
            // error below, so unlimited budgets stay bit-identical to the
            // un-budgeted engine.
            if sweep + 1 >= budget.max_sweeps() && budget.max_sweeps() < self.max_sweeps {
                // Budget exhausted before convergence: degrade, don't
                // error. The best iterate is a legitimate (partial)
                // answer, so assemble the full state for it.
                game.state_into(&ws.s, &mut ws.prices, &mut ws.scratch, &mut ws.state)?;
                for i in 0..n {
                    ws.utilities[i] = game.utility_at_state(i, &ws.s, &ws.state);
                }
                return Ok(SolveStats { iterations: sweep + 1, residual, converged: false });
            }
        }
        Err(NumError::MaxIterations { max_iter: self.max_sweeps, residual })
    }
}

/// Starting profile for [`NashSolver::solve_into`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarmStart<'a> {
    /// The paper's baseline `s = 0` (what [`NashSolver::solve`] uses).
    Zero,
    /// An explicit profile, validated against the game then clamped into
    /// the effective box (what [`NashSolver::solve_from`] uses).
    Profile(&'a [f64]),
    /// Reuse whatever iterate the workspace holds — the batch warm start:
    /// consecutive solves of nearby games converge in a fraction of the
    /// sweeps. Dimension changes are padded with zeros; the iterate is
    /// re-clamped into the new game's box. Falls back to `Zero` behaviour
    /// on a fresh workspace.
    Previous,
    /// First-order predictor-corrector continuation: start from the
    /// workspace's previous iterate *plus* a tangent step
    /// `s ← clamp(s_prev + dtheta · ds_dtheta)`, where `ds_dtheta` is the
    /// Theorem 6 directional derivative of the equilibrium along the swept
    /// parameter ([`crate::sensitivity::Sensitivity::directional`]) and
    /// `dtheta` the parameter step. The solver then only *corrects* the
    /// predictor instead of re-converging from the previous point. The
    /// prediction is clamped into the new game's effective box
    /// component-wise, so a pinned provider predicted past a corner starts
    /// exactly on it.
    Tangent {
        /// Equilibrium sensitivity `∂s/∂θ` at the previous point (length
        /// must match the game).
        ds_dtheta: &'a [f64],
        /// Parameter step `Δθ` from the previous point to this one.
        dtheta: f64,
    },
}

/// Health summary of one [`NashSolver::solve_into`] run; the solution
/// itself stays in the workspace. Mirrors the corresponding fields of
/// [`NashSolution`] bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Best-response sweeps performed.
    pub iterations: usize,
    /// Sup-norm of the final sweep update.
    pub residual: f64,
    /// Whether the residual met the tolerance within the budget.
    pub converged: bool,
}

impl SolveWorkspace {
    /// Clones the workspace's solution out into an owning [`NashSolution`]
    /// (the one allocation the thin `solve`/`solve_from` wrappers make).
    pub fn solution(&self, stats: SolveStats) -> NashSolution {
        NashSolution {
            subsidies: self.subsidies().to_vec(),
            state: self.state().clone(),
            utilities: self.utilities().to_vec(),
            iterations: stats.iterations,
            residual: stats.residual,
            converged: stats.converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcomp_model::aggregation::{build_system, ExpCpSpec};

    fn paper_game(p: f64, q: f64) -> SubsidyGame {
        let mut specs = Vec::new();
        for &v in &[0.5, 1.0] {
            for &alpha in &[2.0, 5.0] {
                for &beta in &[2.0, 5.0] {
                    specs.push(ExpCpSpec::unit(alpha, beta, v));
                }
            }
        }
        SubsidyGame::new(build_system(&specs, 1.0).unwrap(), p, q).unwrap()
    }

    #[test]
    fn solves_paper_section5_game() {
        let game = paper_game(0.5, 1.0);
        let eq = NashSolver::default().solve(&game).unwrap();
        assert!(eq.converged);
        assert!(eq.residual <= 1e-9);
        // All subsidies feasible.
        for (i, &si) in eq.subsidies.iter().enumerate() {
            assert!(si >= 0.0 && si <= game.effective_cap(i) + 1e-12);
        }
    }

    #[test]
    fn gauss_seidel_and_jacobi_agree() {
        // Theorem 4 uniqueness: independent solvers land on the same point.
        let game = paper_game(0.7, 0.6);
        let gs = NashSolver::default().solve(&game).unwrap();
        let jc = NashSolver::default().jacobi().with_damping(0.7).solve(&game).unwrap();
        for i in 0..8 {
            assert!(
                (gs.subsidies[i] - jc.subsidies[i]).abs() < 1e-6,
                "CP {i}: GS {} vs Jacobi {}",
                gs.subsidies[i],
                jc.subsidies[i]
            );
        }
    }

    #[test]
    fn warm_start_agrees_with_cold_start() {
        let game = paper_game(0.9, 1.0);
        let cold = NashSolver::default().solve(&game).unwrap();
        let warm = NashSolver::default().solve_from(&game, &[0.3; 8]).unwrap();
        for i in 0..8 {
            assert!((cold.subsidies[i] - warm.subsidies[i]).abs() < 1e-6);
        }
        assert!(warm.iterations <= cold.iterations + 5);
    }

    #[test]
    fn zero_cap_yields_zero_subsidies() {
        let game = paper_game(0.5, 0.0);
        let eq = NashSolver::default().solve(&game).unwrap();
        assert!(eq.subsidies.iter().all(|&s| s == 0.0));
        assert!(eq.converged);
        assert_eq!(eq.iterations, 1);
    }

    #[test]
    fn profitable_cps_subsidize_more() {
        // Figure 8's headline pattern: v = 1 types out-subsidize v = 0.5
        // types with the same (alpha, beta).
        let game = paper_game(0.5, 1.0);
        let eq = NashSolver::default().solve(&game).unwrap();
        // Spec order: v=0.5 block (0..4), v=1.0 block (4..8), same
        // (alpha, beta) order within each block.
        for k in 0..4 {
            assert!(
                eq.subsidies[4 + k] >= eq.subsidies[k] - 1e-9,
                "type {k}: v=1 subsidy {} < v=0.5 subsidy {}",
                eq.subsidies[4 + k],
                eq.subsidies[k]
            );
        }
    }

    #[test]
    fn high_alpha_cps_subsidize_more() {
        // Figure 8: demand-elastic types (alpha = 5) subsidize more than
        // alpha = 2 types at the same (beta, v).
        let game = paper_game(0.5, 1.0);
        let eq = NashSolver::default().solve(&game).unwrap();
        // Within each v block: indices 0,1 are alpha=2; 2,3 are alpha=5.
        for blk in [0usize, 4] {
            for b in 0..2 {
                assert!(
                    eq.subsidies[blk + 2 + b] >= eq.subsidies[blk + b] - 1e-9,
                    "block {blk} beta-index {b}"
                );
            }
        }
    }

    #[test]
    fn empty_game() {
        let sys = build_system(&[], 1.0).unwrap();
        let game = SubsidyGame::new(sys, 0.5, 1.0).unwrap();
        let eq = NashSolver::default().solve(&game).unwrap();
        assert!(eq.converged);
        assert!(eq.subsidies.is_empty());
    }

    #[test]
    fn solution_accessors() {
        let game = paper_game(0.5, 1.0);
        let eq = NashSolver::default().solve(&game).unwrap();
        assert!((eq.isp_revenue(&game) - 0.5 * eq.state.theta()).abs() < 1e-12);
        let w: f64 = (0..8).map(|i| game.profitability(i) * eq.state.theta_i[i]).sum();
        assert!((eq.welfare(&game) - w).abs() < 1e-12);
    }

    #[test]
    fn diagnostics_report_certificates_and_active_set() {
        let game = paper_game(0.5, 1.0);
        let eq = NashSolver::default().solve(&game).unwrap();
        let d = eq.diagnostics(&game).unwrap();
        assert!(d.converged);
        assert_eq!(d.iterations, eq.iterations);
        assert!(d.max_kkt_residual < 1e-5, "kkt {}", d.max_kkt_residual);
        assert!(d.max_threshold_residual < 1e-5);
        assert_eq!(d.pinned_low + d.pinned_high + d.interior, 8);
        // At q = 0 everyone is pinned low.
        let flat = paper_game(0.5, 0.0);
        let eq0 = NashSolver::default().solve(&flat).unwrap();
        let d0 = eq0.diagnostics(&flat).unwrap();
        assert_eq!(d0.pinned_low, 8);
        assert_eq!(d0.interior, 0);
    }

    #[test]
    fn threshold_br_solver_matches_default() {
        // The continuation engines run with threshold_br = true; the
        // equilibria must agree with the grid-scan solver to well within
        // the sweep tolerance across interior and corner-heavy regimes.
        for (p, q) in [(0.5, 1.0), (0.2, 0.4), (1.2, 0.8), (0.6, 0.0)] {
            let game = paper_game(p, q);
            let gs = NashSolver::default().with_tol(1e-9).solve(&game).unwrap();
            let thr =
                NashSolver::default().with_tol(1e-9).with_threshold_br(true).solve(&game).unwrap();
            assert!(thr.converged);
            for i in 0..8 {
                assert!(
                    (gs.subsidies[i] - thr.subsidies[i]).abs() < 1e-7,
                    "(p={p}, q={q}) CP {i}: grid {} vs threshold {}",
                    gs.subsidies[i],
                    thr.subsidies[i]
                );
            }
        }
    }

    #[test]
    fn budgeted_solve_degrades_to_partial_instead_of_erroring() {
        use crate::workspace::SolveBudget;
        let game = paper_game(0.5, 1.0);
        let solver = NashSolver::default();
        let mut ws = SolveWorkspace::for_game(&game);
        let full = solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
        assert!(full.converged);
        assert!(full.iterations > 2, "need a multi-sweep solve for the budget to bite");

        // A starved budget returns the best iterate, fully assembled.
        let mut starved_ws = SolveWorkspace::for_game(&game);
        let partial = solver
            .solve_into_budgeted(&game, WarmStart::Zero, &mut starved_ws, SolveBudget::sweeps(2))
            .unwrap();
        assert!(!partial.converged);
        assert_eq!(partial.iterations, 2);
        assert!(partial.residual > solver.tol);
        assert!(partial.residual.is_finite());
        // The partial state/utilities are assembled at the best iterate.
        assert!(starved_ws.state().phi.is_finite());
        assert!(starved_ws.utilities().iter().all(|u| u.is_finite()));

        // An unlimited budget is bit-identical to the un-budgeted engine.
        let mut ws2 = SolveWorkspace::for_game(&game);
        let unlimited = solver
            .solve_into_budgeted(&game, WarmStart::Zero, &mut ws2, SolveBudget::unlimited())
            .unwrap();
        assert_eq!(unlimited.iterations, full.iterations);
        assert_eq!(unlimited.residual.to_bits(), full.residual.to_bits());
        for i in 0..ws.subsidies().len() {
            assert_eq!(ws.subsidies()[i].to_bits(), ws2.subsidies()[i].to_bits());
        }

        // A budget at or above max_sweeps defers to the MaxIterations
        // error path (never a silent partial).
        let tight = NashSolver::default().with_tol(0.0).with_max_sweeps(3);
        let mut ws3 = SolveWorkspace::for_game(&game);
        let err =
            tight.solve_into_budgeted(&game, WarmStart::Zero, &mut ws3, SolveBudget::sweeps(3));
        assert!(matches!(err, Err(NumError::MaxIterations { max_iter: 3, .. })));
    }

    #[test]
    fn equilibrium_continuous_in_price() {
        // s(p) should move smoothly (Theorem 6 differentiability): small
        // price perturbations move the equilibrium by O(dp).
        let a = NashSolver::default().solve(&paper_game(0.50, 1.0)).unwrap();
        let b = NashSolver::default().solve(&paper_game(0.52, 1.0)).unwrap();
        for i in 0..8 {
            assert!(
                (a.subsidies[i] - b.subsidies[i]).abs() < 0.1,
                "CP {i} jumped: {} -> {}",
                a.subsidies[i],
                b.subsidies[i]
            );
        }
    }
}
