//! # `subcomp-bench` — benchmark support
//!
//! The benchmarks live in `benches/`; this library only hosts the shared
//! scenario constructors so each bench file stays minimal.
//!
//! Run everything with `cargo bench -p subcomp-bench`. Benches are tuned
//! (small sample counts, reduced grids) so the full suite completes in a
//! few minutes while still producing meaningful relative numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use subcomp_model::aggregation::{build_system, ExpCpSpec};
use subcomp_model::system::System;

/// A market of `n` CPs drawn from the paper's §5 *type grid*
/// `(α, β) ∈ {2, 5}²` with profitabilities graded over the paper's range —
/// the Lemma 2 world where many providers aggregate into a few elasticity
/// types. This is the headline benchmark market: it has the type structure
/// every paper scenario (and the golden corpus) exhibits, which the
/// kernelized congestion loop exploits (one `exp` per distinct `β`).
///
/// For the opposite regime — a continuum market where every provider has
/// its own elasticity pair and no sharing is possible — see
/// [`market_spread`].
pub fn market_of(n: usize) -> System {
    const GRID: [(f64, f64); 4] = [(2.0, 2.0), (2.0, 5.0), (5.0, 2.0), (5.0, 5.0)];
    let specs: Vec<ExpCpSpec> = (0..n)
        .map(|i| {
            let (alpha, beta) = GRID[i % 4];
            let v = 0.4 + 0.1 * ((i % 7) as f64);
            ExpCpSpec::unit(alpha, beta, v)
        })
        .collect();
    build_system(&specs, 1.0).expect("static specs are valid")
}

/// A market of `n` synthetic exponential CPs with elasticities *spread*
/// over the paper's ranges (5 distinct `β` among any 8 providers) — the
/// continuum-type regime where the kernel's `exp` sharing buys little.
/// Benchmarked alongside [`market_of`] so the perf trajectory tracks both
/// market structures.
pub fn market_spread(n: usize) -> System {
    let specs: Vec<ExpCpSpec> = (0..n)
        .map(|i| {
            let alpha = 1.0 + (i % 5) as f64;
            let beta = 1.0 + ((i * 2) % 5) as f64;
            let v = 0.4 + 0.1 * ((i % 7) as f64);
            ExpCpSpec::unit(alpha, beta, v)
        })
        .collect();
    build_system(&specs, 1.0).expect("static specs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn market_scales() {
        for n in [2, 9, 40] {
            let m = market_of(n);
            assert_eq!(m.n(), n);
            assert!(m.state_at_uniform_price(0.5).unwrap().phi > 0.0);
            let s = market_spread(n);
            assert_eq!(s.n(), n);
            assert!(s.state_at_uniform_price(0.5).unwrap().phi > 0.0);
        }
    }
}
