//! # `subcomp-bench` — benchmark support
//!
//! The benchmarks live in `benches/`; this library only hosts the shared
//! scenario constructors so each bench file stays minimal.
//!
//! Run everything with `cargo bench -p subcomp-bench`. Benches are tuned
//! (small sample counts, reduced grids) so the full suite completes in a
//! few minutes while still producing meaningful relative numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use subcomp_model::aggregation::{build_system, ExpCpSpec};
use subcomp_model::system::System;

/// A market of `n` synthetic exponential CP types with deterministic
/// parameters spread over the paper's ranges.
pub fn market_of(n: usize) -> System {
    let specs: Vec<ExpCpSpec> = (0..n)
        .map(|i| {
            let alpha = 1.0 + (i % 5) as f64;
            let beta = 1.0 + ((i * 2) % 5) as f64;
            let v = 0.4 + 0.1 * ((i % 7) as f64);
            ExpCpSpec::unit(alpha, beta, v)
        })
        .collect();
    build_system(&specs, 1.0).expect("static specs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn market_scales() {
        for n in [2, 9, 40] {
            let m = market_of(n);
            assert_eq!(m.n(), n);
            assert!(m.state_at_uniform_price(0.5).unwrap().phi > 0.0);
        }
    }
}
