//! Benchmarks Nash equilibrium solvers: best-response (Gauss–Seidel,
//! Jacobi) and variational-inequality methods, and scaling in the number
//! of provider types.
//!
//! All solver benches measure the allocation-free engine entry points
//! (`solve_into` / `*_solve_into`) on a reused [`SolveWorkspace`] — the
//! per-solve cost a batch caller actually pays. Cold benches still solve
//! from the zero profile to full convergence, so their numbers are
//! directly comparable with the pre-workspace `solve(&game)` baselines.

use criterion::{criterion_group, criterion_main, record_metric, BenchmarkId, Criterion};
use std::time::Duration;
use subcomp_bench::{market_of, market_spread};
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::{NashSolver, WarmStart};
use subcomp_core::vi::{extragradient_solve_into, projection_solve_into, ViConfig};
use subcomp_core::workspace::SolveWorkspace;
use subcomp_exp::scenarios::farm_game;
use subcomp_exp::sweep::BatchSolver;

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("nash/solver");
    g.sample_size(10);
    let game = SubsidyGame::new(market_of(8), 0.6, 0.8).unwrap();
    g.bench_function("gauss_seidel", |b| {
        let solver = NashSolver::default().with_tol(1e-8);
        let mut ws = SolveWorkspace::for_game(&game);
        b.iter(|| solver.solve_into(std::hint::black_box(&game), WarmStart::Zero, &mut ws).unwrap())
    });
    // The continuum-market counterpart of gauss_seidel: every provider has
    // its own congestion elasticity, so the kernel's exp-sharing is moot
    // and the number tracks the raw per-provider evaluation cost.
    let spread = SubsidyGame::new(market_spread(8), 0.6, 0.8).unwrap();
    g.bench_function("gauss_seidel_spread", |b| {
        let solver = NashSolver::default().with_tol(1e-8);
        let mut ws = SolveWorkspace::for_game(&spread);
        b.iter(|| {
            solver.solve_into(std::hint::black_box(&spread), WarmStart::Zero, &mut ws).unwrap()
        })
    });
    g.bench_function("jacobi_damped", |b| {
        let solver = NashSolver::default().jacobi().with_damping(0.7).with_tol(1e-8);
        let mut ws = SolveWorkspace::for_game(&game);
        b.iter(|| solver.solve_into(std::hint::black_box(&game), WarmStart::Zero, &mut ws).unwrap())
    });
    g.bench_function("vi_projection", |b| {
        let cfg = ViConfig { tol: 1e-7, ..Default::default() };
        let mut ws = SolveWorkspace::for_game(&game);
        b.iter(|| {
            projection_solve_into(std::hint::black_box(&game), &[0.0; 8], &cfg, &mut ws).unwrap()
        })
    });
    g.bench_function("vi_extragradient", |b| {
        let cfg = ViConfig { tol: 1e-7, ..Default::default() };
        let mut ws = SolveWorkspace::for_game(&game);
        b.iter(|| {
            extragradient_solve_into(std::hint::black_box(&game), &[0.0; 8], &cfg, &mut ws).unwrap()
        })
    });
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("nash/market_size");
    g.sample_size(10);
    for n in [2usize, 4, 8, 16] {
        let game = SubsidyGame::new(market_of(n), 0.6, 0.8).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &game, |b, game| {
            let solver = NashSolver::default().with_tol(1e-7);
            let mut ws = SolveWorkspace::for_game(game);
            b.iter(|| solver.solve_into(game, WarmStart::Zero, &mut ws).unwrap())
        });
    }
    g.finish();
}

fn bench_warm_start(c: &mut Criterion) {
    let mut g = c.benchmark_group("nash/warm_start");
    g.sample_size(10);
    let game = SubsidyGame::new(market_of(8), 0.6, 0.8).unwrap();
    let solver = NashSolver::default().with_tol(1e-8);
    let eq = solver.solve(&game).unwrap();
    let nearby = SubsidyGame::new(market_of(8), 0.62, 0.8).unwrap();
    g.bench_function("cold", |b| {
        let mut ws = SolveWorkspace::for_game(&nearby);
        b.iter(|| solver.solve_into(&nearby, WarmStart::Zero, &mut ws).unwrap())
    });
    g.bench_function("warm", |b| {
        let mut ws = SolveWorkspace::for_game(&nearby);
        b.iter(|| {
            solver
                .solve_into(
                    &nearby,
                    WarmStart::Profile(std::hint::black_box(&eq.subsidies)),
                    &mut ws,
                )
                .unwrap()
        })
    });
    g.finish();
}

/// The farm engines at ensemble scale: the scalar warm-chain
/// `BatchSolver` against the SoA lane engine, on the exact `solve_farm`
/// ensemble definition ([`subcomp_exp::scenarios::farm_game`], seed 7,
/// n ∈ 2..12). 100k games per iteration — each iteration IS one farm
/// run, so `sample_size(2)` keeps the suite tractable; under
/// `SUBCOMP_BENCH_QUICK=1` the ensemble shrinks to 200 games so the CI
/// smoke still exercises both engines and emits both ids.
fn bench_farm(c: &mut Criterion) {
    let mut g = c.benchmark_group("nash/farm");
    g.sample_size(2);
    let quick =
        std::env::var("SUBCOMP_BENCH_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false);
    let games: u64 = if quick { 200 } else { 100_000 };
    let indices: Vec<u64> = (0..games).collect();
    let run = |batch: &BatchSolver| -> usize {
        batch
            .run(&indices, |&k| farm_game(7, k, 2, 12), |_, _, stats| stats.iterations)
            .into_iter()
            .map(|r| r.expect("farm ensemble solves"))
            .sum()
    };
    g.bench_function("scalar", |b| {
        let batch = BatchSolver::default();
        b.iter(|| run(std::hint::black_box(&batch)))
    });
    g.bench_function("lanes", |b| {
        let batch = BatchSolver::default().with_lanes(16);
        b.iter(|| run(std::hint::black_box(&batch)))
    });
    g.finish();
}

/// The million-game regime: the lane engine over the full `solve_farm`
/// ensemble at 1,000,000 games. One manually-timed run published
/// through [`record_metric`] — at the measured ~110 s per 100k games a
/// `Bencher::iter` sampling loop would take the better part of an
/// hour, and the scalar engine (~5.5 µs/game, ≈ 1.5 h per pass) is out
/// of the question entirely; `solve_farm --games 1000000` documents
/// the same regime interactively. Under `SUBCOMP_BENCH_QUICK=1` the
/// ensemble subsamples to 2000 games so the CI smoke still emits the
/// id for the drift gate. The published number is ns per 1M-game farm
/// run (headline: games/s = 1e9·1e6 / median).
///
/// Manual metrics bypass the harness's positional filter, so this
/// replicates the filter/`--list` scan — `cargo bench --bench nash --
/// gauss` must not silently pay the 18-minute run.
fn bench_farm_1m(_c: &mut Criterion) {
    let mut skip = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => skip = true,
            "--profile-time" | "--save-baseline" | "--baseline" | "--load-baseline" => {
                let _ = args.next();
            }
            s if s.starts_with("--") => {}
            s => skip |= !"nash/farm/lanes_1m".contains(s),
        }
    }
    if skip {
        return;
    }
    let quick =
        std::env::var("SUBCOMP_BENCH_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false);
    let games: u64 = if quick { 2_000 } else { 1_000_000 };
    let indices: Vec<u64> = (0..games).collect();
    let batch = BatchSolver::default().with_lanes(16);
    let t0 = std::time::Instant::now();
    let iterations: usize = batch
        .run(&indices, |&k| farm_game(7, k, 2, 12), |_, _, stats| stats.iterations)
        .into_iter()
        .map(|r| r.expect("farm ensemble solves"))
        .sum();
    let elapsed = t0.elapsed().as_nanos() as f64;
    assert!(iterations > 0, "the farm must do some work");
    // Scale the quick subsample to the full-ensemble denominator so the
    // id's units never depend on the mode.
    record_metric("nash/farm/lanes_1m", elapsed * (1_000_000.0 / games as f64));
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_secs(2));
    targets = bench_solvers, bench_scaling, bench_warm_start, bench_farm, bench_farm_1m
}
criterion_main!(benches);
