//! Benchmarks Nash equilibrium solvers: best-response (Gauss–Seidel,
//! Jacobi) and variational-inequality methods, and scaling in the number
//! of provider types.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use subcomp_bench::market_of;
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::NashSolver;
use subcomp_core::vi::{extragradient_solve, projection_solve, ViConfig};

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("nash/solver");
    g.sample_size(10);
    let game = SubsidyGame::new(market_of(8), 0.6, 0.8).unwrap();
    g.bench_function("gauss_seidel", |b| {
        let solver = NashSolver::default().with_tol(1e-8);
        b.iter(|| solver.solve(std::hint::black_box(&game)).unwrap())
    });
    g.bench_function("jacobi_damped", |b| {
        let solver = NashSolver::default().jacobi().with_damping(0.7).with_tol(1e-8);
        b.iter(|| solver.solve(std::hint::black_box(&game)).unwrap())
    });
    g.bench_function("vi_projection", |b| {
        let cfg = ViConfig { tol: 1e-7, ..Default::default() };
        b.iter(|| projection_solve(std::hint::black_box(&game), &[0.0; 8], &cfg).unwrap())
    });
    g.bench_function("vi_extragradient", |b| {
        let cfg = ViConfig { tol: 1e-7, ..Default::default() };
        b.iter(|| extragradient_solve(std::hint::black_box(&game), &[0.0; 8], &cfg).unwrap())
    });
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("nash/market_size");
    g.sample_size(10);
    for n in [2usize, 4, 8, 16] {
        let game = SubsidyGame::new(market_of(n), 0.6, 0.8).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &game, |b, game| {
            let solver = NashSolver::default().with_tol(1e-7);
            b.iter(|| solver.solve(game).unwrap())
        });
    }
    g.finish();
}

fn bench_warm_start(c: &mut Criterion) {
    let mut g = c.benchmark_group("nash/warm_start");
    g.sample_size(10);
    let game = SubsidyGame::new(market_of(8), 0.6, 0.8).unwrap();
    let solver = NashSolver::default().with_tol(1e-8);
    let eq = solver.solve(&game).unwrap();
    let nearby = SubsidyGame::new(market_of(8), 0.62, 0.8).unwrap();
    g.bench_function("cold", |b| b.iter(|| solver.solve(&nearby).unwrap()));
    g.bench_function("warm", |b| {
        b.iter(|| solver.solve_from(&nearby, std::hint::black_box(&eq.subsidies)).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_secs(2));
    targets = bench_solvers, bench_scaling, bench_warm_start
}
criterion_main!(benches);
