//! Benchmarks the simulators: flow-level ticks and market days per
//! second, the measurement pipeline, and the SoA adoption engine —
//! standalone at the million-user scale and inside the closed
//! simulate → warm-resolve loop through the sharded server.
//!
//! The adoption ids:
//!
//! * `simulator/adoption/step_1m` — one serial tick of a 1,000,000-user
//!   population (quick mode: 50k). The headline users-stepped/s is
//!   `1e9 · N / median`.
//! * `simulator/adoption/loop_warm` — one closed-loop tick (10k users):
//!   lock-free externality read, simulate, tangent-seeded µ write,
//!   warm re-solve.
//! * `simulator/adoption/loop_cold` — the same tick with every market
//!   cooled first (warm seeds, tangent seed, cache and published
//!   snapshot dropped), so the externality read pays a cold solve. The
//!   warm-vs-cold loop speedup is `loop_cold / loop_warm`.
//! * `simulator/adoption/served` — the loop tick at 512 users, where
//!   serving dominates simulation: the per-tick overhead floor of the
//!   server wiring.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subcomp_core::game::SubsidyGame;
use subcomp_exp::adoption::{AdoptionLoop, LoopConfig};
use subcomp_exp::scenarios::section5_specs;
use subcomp_model::aggregation::{build_system, ExpCpSpec};
use subcomp_sim::adoption::{AdoptionParams, Population, TickDrive, TypeSpec};
use subcomp_sim::flow::{FlowSim, FlowSimConfig, SharingMode};
use subcomp_sim::market::{MarketSim, MarketSimConfig};

fn bench_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/flow");
    g.sample_size(10);
    let sys = build_system(
        &[
            ExpCpSpec::unit(2.0, 2.0, 1.0),
            ExpCpSpec::unit(5.0, 5.0, 0.5),
            ExpCpSpec::unit(3.0, 1.0, 1.0),
        ],
        1.0,
    )
    .unwrap();
    let cfg = FlowSimConfig { ticks: 1000, warmup: 200, ..Default::default() };
    g.bench_function("adaptive_1000_ticks", |b| {
        b.iter(|| FlowSim::new(&sys, vec![0.5; 3], cfg).unwrap().run().unwrap())
    });
    let ps = FlowSimConfig { mode: SharingMode::ProcessorSharing, ..cfg };
    g.bench_function("processor_sharing_1000_ticks", |b| {
        b.iter(|| FlowSim::new(&sys, vec![0.5; 3], ps).unwrap().run().unwrap())
    });
    g.finish();
}

fn bench_market(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/market");
    g.sample_size(10);
    let sys = build_system(&[ExpCpSpec::unit(5.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 4.0, 0.4)], 1.0)
        .unwrap();
    let game = SubsidyGame::new(sys, 0.7, 1.0).unwrap();
    let cfg = MarketSimConfig { days: 500, ..Default::default() };
    g.bench_function("market_500_days", |b| {
        b.iter(|| MarketSim::new(&game, cfg).unwrap().run().unwrap())
    });
    g.finish();
}

fn quick() -> bool {
    std::env::var("SUBCOMP_BENCH_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// The SoA engine standalone: one tick over a million users, serial
/// (the parallel fan-out is bit-identical by construction, so the
/// single-lane number is the per-core cost the scaling study divides).
fn bench_adoption_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/adoption");
    g.sample_size(10);
    let n_users = if quick() { 50_000 } else { 1_000_000 };
    let types = [
        TypeSpec { mass: 1.0, alpha: 2.0 },
        TypeSpec { mass: 0.8, alpha: 5.0 },
        TypeSpec { mass: 1.2, alpha: 1.0 },
    ];
    let params = AdoptionParams { seed: 7, adopt: 0.5, churn: 0.5, ..Default::default() };
    let mut pop = Population::build(&types, n_users, 16_384, params).unwrap();
    let drive = TickDrive::uniform(types.len(), 0.4);
    g.bench_function("step_1m", |b| {
        b.iter(|| {
            pop.step(std::hint::black_box(&drive)).unwrap();
            pop.adopted_users()
        })
    });
    g.finish();
}

/// The closed loop through the sharded server, warm vs cooled, plus the
/// serving-dominated floor at a tiny population.
fn bench_adoption_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/adoption");
    g.sample_size(10);
    let specs = section5_specs();
    let users = if quick() { 2_000 } else { 10_000 };
    let build = |users: usize| {
        let cfg = LoopConfig { seed: 7, users, chunk: 16_384, ..Default::default() };
        let mut lp = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, &cfg).unwrap();
        lp.tick().unwrap(); // prime the resident state and published snapshot
        lp
    };
    let mut warm = build(users);
    g.bench_function("loop_warm", |b| b.iter(|| warm.tick().unwrap().adopted));
    let mut cold = build(users);
    g.bench_function("loop_cold", |b| {
        b.iter(|| {
            // Cooling is part of driving the cold regime; its cost (one
            // channel round-trip) is dwarfed by the cold solve it forces.
            cold.cool().unwrap();
            cold.tick().unwrap().adopted
        })
    });
    let mut tiny = build(512.min(users));
    g.bench_function("served", |b| b.iter(|| tiny.tick().unwrap().adopted));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_secs(2));
    targets = bench_flow, bench_market, bench_adoption_step, bench_adoption_loop
}
criterion_main!(benches);
