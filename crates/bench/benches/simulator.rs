//! Benchmarks the simulators: flow-level ticks and market days per
//! second, plus the measurement pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subcomp_core::game::SubsidyGame;
use subcomp_model::aggregation::{build_system, ExpCpSpec};
use subcomp_sim::flow::{FlowSim, FlowSimConfig, SharingMode};
use subcomp_sim::market::{MarketSim, MarketSimConfig};

fn bench_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/flow");
    g.sample_size(10);
    let sys = build_system(
        &[
            ExpCpSpec::unit(2.0, 2.0, 1.0),
            ExpCpSpec::unit(5.0, 5.0, 0.5),
            ExpCpSpec::unit(3.0, 1.0, 1.0),
        ],
        1.0,
    )
    .unwrap();
    let cfg = FlowSimConfig { ticks: 1000, warmup: 200, ..Default::default() };
    g.bench_function("adaptive_1000_ticks", |b| {
        b.iter(|| FlowSim::new(&sys, vec![0.5; 3], cfg).unwrap().run().unwrap())
    });
    let ps = FlowSimConfig { mode: SharingMode::ProcessorSharing, ..cfg };
    g.bench_function("processor_sharing_1000_ticks", |b| {
        b.iter(|| FlowSim::new(&sys, vec![0.5; 3], ps).unwrap().run().unwrap())
    });
    g.finish();
}

fn bench_market(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/market");
    g.sample_size(10);
    let sys = build_system(&[ExpCpSpec::unit(5.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 4.0, 0.4)], 1.0)
        .unwrap();
    let game = SubsidyGame::new(sys, 0.7, 1.0).unwrap();
    let cfg = MarketSimConfig { days: 500, ..Default::default() };
    g.bench_function("market_500_days", |b| {
        b.iter(|| MarketSim::new(&game, cfg).unwrap().run().unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_secs(2));
    targets = bench_flow, bench_market
}
criterion_main!(benches);
