//! Benchmarks the Theorem 6 sensitivity analysis (active sets, marginal
//! utility Jacobian, LU solve) and its Jacobian building block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use subcomp_bench::market_spread;
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::NashSolver;
use subcomp_core::sensitivity::Sensitivity;
use subcomp_core::structure::marginal_utility_jacobian;

fn bench_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("sensitivity/theorem6");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        let game = SubsidyGame::new(market_spread(n), 0.6, 0.4).unwrap();
        let eq = NashSolver::default().with_tol(1e-9).solve(&game).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &(game, eq), |b, (game, eq)| {
            b.iter(|| Sensitivity::compute(game, std::hint::black_box(&eq.subsidies)).unwrap())
        });
    }
    g.finish();
}

fn bench_jacobian(c: &mut Criterion) {
    let mut g = c.benchmark_group("sensitivity/jacobian");
    g.sample_size(10);
    let game = SubsidyGame::new(market_spread(8), 0.6, 0.8).unwrap();
    let s = vec![0.2; 8];
    g.bench_function("marginal_utility_jacobian_8", |b| {
        b.iter(|| marginal_utility_jacobian(&game, std::hint::black_box(&s)).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_secs(2));
    targets = bench_sensitivity, bench_jacobian
}
criterion_main!(benches);
