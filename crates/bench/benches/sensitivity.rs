//! Benchmarks the Theorem 6 sensitivity analysis (active sets, marginal
//! utility Jacobian, LU solve), its Jacobian building block, and the
//! predictor-corrector continuation the directional derivatives enable
//! along the µ axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use subcomp_bench::{market_of, market_spread};
use subcomp_core::game::{Axis, SubsidyGame};
use subcomp_core::nash::{NashSolver, WarmStart};
use subcomp_core::sensitivity::Sensitivity;
use subcomp_core::structure::marginal_utility_jacobian;
use subcomp_core::workspace::SolveWorkspace;

fn bench_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("sensitivity/theorem6");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        let game = SubsidyGame::new(market_spread(n), 0.6, 0.4).unwrap();
        let eq = NashSolver::default().with_tol(1e-9).solve(&game).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &(game, eq), |b, (game, eq)| {
            b.iter(|| Sensitivity::compute(game, std::hint::black_box(&eq.subsidies)).unwrap())
        });
    }
    g.finish();
}

fn bench_jacobian(c: &mut Criterion) {
    let mut g = c.benchmark_group("sensitivity/jacobian");
    g.sample_size(10);
    let game = SubsidyGame::new(market_spread(8), 0.6, 0.8).unwrap();
    let s = vec![0.2; 8];
    g.bench_function("marginal_utility_jacobian_8", |b| {
        b.iter(|| marginal_utility_jacobian(&game, std::hint::black_box(&s)).unwrap())
    });
    g.finish();
}

/// Tracks the axis-continuation win itself as a trajectory: the same
/// 12-point µ ladder on the paper-typed 8-CP market, solved three ways
/// through one in-place-reparameterized game and one reused workspace —
/// `cold` (every point from the zero profile), `previous` (each point
/// warm-started from the previous equilibrium, the default engine), and
/// `tangent` (each point seeded by the Theorem 6 first-order predictor
/// `s + Δµ·∂s/∂µ`, tangents from `Sensitivity::directional`, corrected by
/// the solver). The tangent id's cost *includes* assembling the
/// directional derivative — that is the real price of the predictor —
/// so the `tangent`/`cold` ratio is the honest predictor-corrector
/// speedup, and `tangent` vs `previous` records whether first-order
/// prediction beats plain reuse at this problem size.
fn bench_mu_continuation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sensitivity/continuation");
    g.sample_size(10);
    let mus: Vec<f64> = (0..12).map(|k| 0.6 + 0.1 * k as f64).collect();
    let base = SubsidyGame::new(market_of(8), 0.6, 0.4).unwrap();
    let solver = NashSolver::default().with_tol(1e-8);
    g.bench_function("cold", |b| {
        let mut game = base.clone();
        let mut ws = SolveWorkspace::for_game(&game);
        b.iter(|| {
            let mut sweeps = 0usize;
            for &mu in std::hint::black_box(&mus[..]) {
                game.set_mu(mu).unwrap();
                sweeps += solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap().iterations;
            }
            sweeps
        })
    });
    g.bench_function("previous", |b| {
        let mut game = base.clone();
        let mut ws = SolveWorkspace::for_game(&game);
        b.iter(|| {
            let mut sweeps = 0usize;
            for (k, &mu) in std::hint::black_box(&mus[..]).iter().enumerate() {
                game.set_mu(mu).unwrap();
                let start = if k == 0 { WarmStart::Zero } else { WarmStart::Previous };
                sweeps += solver.solve_into(&game, start, &mut ws).unwrap().iterations;
            }
            sweeps
        })
    });
    g.bench_function("tangent", |b| {
        let mut game = base.clone();
        let mut ws = SolveWorkspace::for_game(&game);
        b.iter(|| {
            let mut sweeps = 0usize;
            game.set_mu(mus[0]).unwrap();
            sweeps += solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap().iterations;
            for w in std::hint::black_box(&mus[..]).windows(2) {
                let ds = Sensitivity::directional(&mut game, ws.subsidies(), Axis::Mu).unwrap();
                game.set_mu(w[1]).unwrap();
                let start = WarmStart::Tangent { ds_dtheta: &ds, dtheta: w[1] - w[0] };
                sweeps += solver.solve_into(&game, start, &mut ws).unwrap().iterations;
            }
            sweeps
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_secs(2));
    targets = bench_sensitivity, bench_jacobian, bench_mu_continuation
}
criterion_main!(benches);
