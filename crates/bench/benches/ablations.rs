//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! best-response damping, the localization grid size, solver tolerance,
//! and the extension substrates (duopoly inner equilibrium, continuum
//! quadrature).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use subcomp_bench::market_spread;
use subcomp_core::best_response::BrConfig;
use subcomp_core::duopoly::Duopoly;
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::NashSolver;
use subcomp_model::continuum::ContinuumMarket;

fn bench_damping(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/damping");
    g.sample_size(10);
    let game = SubsidyGame::new(market_spread(8), 0.6, 0.8).unwrap();
    for omega in [1.0f64, 0.7, 0.4] {
        g.bench_with_input(BenchmarkId::from_parameter(omega), &omega, |b, &omega| {
            let solver = NashSolver::default().with_damping(omega).with_tol(1e-7);
            b.iter(|| solver.solve(std::hint::black_box(&game)).unwrap())
        });
    }
    g.finish();
}

fn bench_br_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/br_grid");
    g.sample_size(10);
    let game = SubsidyGame::new(market_spread(8), 0.6, 0.8).unwrap();
    for grid in [8usize, 24, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, &grid| {
            let mut solver = NashSolver::default().with_tol(1e-7);
            solver.br = BrConfig { grid, ..BrConfig::default() };
            b.iter(|| solver.solve(std::hint::black_box(&game)).unwrap())
        });
    }
    g.finish();
}

fn bench_tolerance(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/solver_tol");
    g.sample_size(10);
    let game = SubsidyGame::new(market_spread(8), 0.6, 0.8).unwrap();
    for tol in [1e-5f64, 1e-7, 1e-9] {
        g.bench_with_input(BenchmarkId::from_parameter(tol), &tol, |b, &tol| {
            let solver = NashSolver::default().with_tol(tol);
            b.iter(|| solver.solve(std::hint::black_box(&game)).unwrap())
        });
    }
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/extensions");
    g.sample_size(10);
    let duo = Duopoly::new(&market_spread(2), 0.5, 0.5, 6.0, 0.5).unwrap();
    g.bench_function("duopoly_subsidy_equilibrium", |b| {
        b.iter(|| duo.subsidy_equilibrium(std::hint::black_box(0.6), 0.6).unwrap())
    });
    let market = ContinuumMarket::new(
        1.0,
        (0.0, 1.0),
        |_| 1.0,
        |w| 1.0 + 4.0 * w,
        |w| 5.0 - 4.0 * w,
        |w| 0.5 + 0.5 * w,
    )
    .unwrap();
    g.bench_function("continuum_fixed_point", |b| {
        b.iter(|| market.utilization(std::hint::black_box(0.5)).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_secs(2));
    targets = bench_damping, bench_br_grid, bench_tolerance, bench_extensions
}
criterion_main!(benches);
