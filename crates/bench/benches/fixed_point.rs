//! Benchmarks the Definition 1 congestion fixed point: solver cost vs
//! market size and vs utilization family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use subcomp_bench::market_spread;
use subcomp_model::aggregation::{build_system, ExpCpSpec};
use subcomp_model::system::System;
use subcomp_model::utilization::{PowerUtilization, QueueUtilization};

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed_point/market_size");
    for n in [3usize, 9, 27, 81] {
        let sys = market_spread(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &sys, |b, sys| {
            b.iter(|| sys.state_at_uniform_price(std::hint::black_box(0.5)).unwrap())
        });
    }
    g.finish();
}

fn bench_families(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed_point/utilization_family");
    let specs: Vec<ExpCpSpec> =
        (0..9).map(|i| ExpCpSpec::unit(1.0 + (i % 3) as f64, 1.0 + (i / 3) as f64, 1.0)).collect();
    let linear = build_system(&specs, 1.0).unwrap();
    g.bench_function("linear", |b| {
        b.iter(|| linear.state_at_uniform_price(std::hint::black_box(0.5)).unwrap())
    });
    let cps: Vec<_> = linear.cps().to_vec();
    let power = System::new(cps.clone(), 1.0, PowerUtilization::new(1.5).unwrap()).unwrap();
    g.bench_function("power", |b| {
        b.iter(|| power.state_at_uniform_price(std::hint::black_box(0.5)).unwrap())
    });
    let queue = System::new(cps, 1.0, QueueUtilization).unwrap();
    g.bench_function("queue", |b| {
        b.iter(|| queue.state_at_uniform_price(std::hint::black_box(0.5)).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_secs(2));
    targets = bench_scaling, bench_families
}
criterion_main!(benches);
