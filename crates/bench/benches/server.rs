//! Equilibrium-server latency suite: per-request p50/p99 and sustained
//! throughput for the resident service, by answer path.
//!
//! `Bencher::iter` measures *mean* cost per iteration, which is the wrong
//! statistic for a server: the question is the latency *distribution* a
//! client sees, and the cache-hit fast path only matters if its tail stays
//! an order of magnitude under a solve. So this suite times individual
//! [`EquilibriumServer::serve`] calls itself and publishes computed
//! quantiles through [`criterion::record_metric`], landing in the same
//! `SUBCOMP_BENCH_JSON` trajectory file as every timed id.
//!
//! Four request mixes over the paper's §5 market, worst to best case:
//!
//! * `server/cold/*` — warm state and cache wiped before every read: each
//!   request pays a zero-seeded Nash solve (the batch-engine baseline).
//! * `server/warm_pool/*` — cache wiped before every read, slot iterates
//!   kept: each request pays a warm re-solve from the previous iterate.
//! * `server/cache_hit/*` — the fingerprint cache holds the answer: each
//!   request pays one fingerprint pass and an `Arc` clone, no solve.
//! * `server/mixed/*` — the deterministic load-generator stream (80%
//!   reads over 8 hot keys, Zipf skew): the end-to-end client view.
//!
//! Each mix records `p50`, `p99` and `mean` per-request ns plus a
//! `throughput` id: sustained wall-clock ns per request over the whole
//! loop (requests/s = 1e9 / value), the inverse-throughput form that
//! keeps the trajectory file in a single unit.
//!
//! The sharded tier rides the same conventions:
//!
//! * `server/sharded/S{1,2,4}/{p50,p99,throughput}` — the multi-market
//!   interleaved stream (8 resident §5 markets) through a
//!   [`ShardedServer`] at 1, 2 and 4 worker shards; read-latency
//!   quantiles plus sustained inverse throughput over all requests.
//! * `server/sharded/read_path/{locked,lockfree}` — median ns for the
//!   same already-cached equilibrium read answered through the owning
//!   shard's channel round-trip (`serve_direct`, `Source::CacheHit`) vs
//!   the router's lock-free snapshot-index path (`Source::LockFree`).

use std::time::Instant;
use subcomp_core::game::SubsidyGame;
use subcomp_exp::scenarios::section5_system;
use subcomp_exp::server::{
    generate, generate_multi, EquilibriumServer, LoadGenConfig, Reply, Request, ShardedConfig,
    ShardedServer, Source,
};
use subcomp_num::stats::{mean, quantile};

use criterion::{criterion_group, criterion_main, record_metric, Criterion};

fn quick() -> bool {
    std::env::var("SUBCOMP_BENCH_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// A fresh server over the §5 market (p = 0.6, q = 0.8) — the same
/// operating point `serve_market` defaults to.
fn section5_server() -> EquilibriumServer {
    let game = SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid");
    EquilibriumServer::new(game, 2, 64)
}

/// Publishes the four ids for one mix: latency quantiles from the
/// per-request samples, plus the sustained inverse throughput.
fn publish(mix: &str, samples: &[f64], ns_per_req: f64) {
    record_metric(&format!("server/{mix}/p50"), quantile(samples, 0.50).expect("samples"));
    record_metric(&format!("server/{mix}/p99"), quantile(samples, 0.99).expect("samples"));
    record_metric(&format!("server/{mix}/mean"), mean(samples).expect("samples"));
    record_metric(&format!("server/{mix}/throughput"), ns_per_req);
}

/// Times `reads` equilibrium reads, resetting server state before each
/// one via `reset` (untimed). Asserts every answer came from `expect` so
/// a regression in the warm-start ladder fails the suite instead of
/// silently shifting an id onto a different path.
fn time_reads(
    server: &mut EquilibriumServer,
    reads: usize,
    expect: Source,
    mut reset: impl FnMut(&mut EquilibriumServer),
) -> (Vec<f64>, f64) {
    let mut samples = Vec::with_capacity(reads);
    let mut wall_ns = 0.0;
    for _ in 0..reads {
        reset(server);
        let t0 = Instant::now();
        let (_, source) = server.equilibrium().expect("§5 equilibrium solves");
        let dt = t0.elapsed().as_nanos() as f64;
        assert_eq!(source, expect, "mix drifted off its answer path");
        samples.push(dt);
        wall_ns += dt;
    }
    let ns_per_req = wall_ns / reads as f64;
    (samples, ns_per_req)
}

fn bench_cold(_c: &mut Criterion) {
    let reads = if quick() { 40 } else { 600 };
    let mut server = section5_server();
    let (samples, wall) = time_reads(&mut server, reads, Source::Cold, |s| {
        s.cool();
        s.invalidate_cache();
    });
    publish("cold", &samples, wall);
}

fn bench_warm_pool(_c: &mut Criterion) {
    let reads = if quick() { 60 } else { 1_500 };
    let mut server = section5_server();
    server.equilibrium().expect("priming solve"); // slot iterate now warm
    let (samples, wall) = time_reads(&mut server, reads, Source::Warm, |s| s.invalidate_cache());
    publish("warm_pool", &samples, wall);
}

fn bench_cache_hit(_c: &mut Criterion) {
    let reads = if quick() { 2_000 } else { 50_000 };
    let mut server = section5_server();
    server.equilibrium().expect("priming solve"); // answer now cached
    let (samples, wall) = time_reads(&mut server, reads, Source::CacheHit, |_| {});
    publish("cache_hit", &samples, wall);
}

/// The load-generator stream end to end: updates, equilibrium reads and
/// sensitivity reads over a skewed hot-key table. Only read latencies are
/// summarized (updates are deferred writes, ~free by design), but the
/// sustained throughput covers every request served.
fn bench_mixed(_c: &mut Criterion) {
    let requests = if quick() { 600 } else { 12_000 };
    let warmup = requests / 10;
    let mut server = section5_server();
    let stream = generate(&LoadGenConfig { requests, ..LoadGenConfig::default() })
        .expect("default load-generator config is valid");
    let mut samples = Vec::with_capacity(stream.len());
    let t_all = Instant::now();
    for (i, req) in stream.iter().enumerate() {
        let t0 = Instant::now();
        server.serve(*req).expect("load-generator requests are valid");
        let dt = t0.elapsed().as_nanos() as f64;
        if i >= warmup && !matches!(req, Request::Update { .. }) {
            samples.push(dt);
        }
    }
    let ns_per_req = t_all.elapsed().as_nanos() as f64 / stream.len() as f64;
    publish("mixed", &samples, ns_per_req);
}

/// Fresh copies of the §5 market as resident sharded-server markets.
fn section5_markets(n: usize) -> Vec<(u64, SubsidyGame)> {
    (0..n as u64)
        .map(|id| (id, SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid")))
        .collect()
}

/// The multi-market interleaved stream through the sharded router at
/// S = 1, 2, 4 worker shards. Per-market traffic is bit-identical across
/// the three runs (the loadgen contract), so the ids differ only by the
/// serving topology.
fn bench_sharded(_c: &mut Criterion) {
    let requests = if quick() { 120 } else { 2_500 }; // per market
    let markets = 8;
    let stream = generate_multi(&LoadGenConfig { requests, ..LoadGenConfig::default() }, markets)
        .expect("default load-generator config is valid");
    let warmup = stream.len() / 10;
    for shards in [1usize, 2, 4] {
        let mut server = ShardedServer::new(
            section5_markets(markets),
            &ShardedConfig { shards, pool: 2, cache: 64 },
        )
        .expect("sharded config is valid");
        let mut samples = Vec::with_capacity(stream.len());
        let t_all = Instant::now();
        for (i, (market, req)) in stream.iter().enumerate() {
            let t0 = Instant::now();
            server.serve(*market, *req).expect("load-generator requests are valid");
            let dt = t0.elapsed().as_nanos() as f64;
            if i >= warmup && !matches!(req, Request::Update { .. }) {
                samples.push(dt);
            }
        }
        let ns_per_req = t_all.elapsed().as_nanos() as f64 / stream.len() as f64;
        record_metric(
            &format!("server/sharded/S{shards}/p50"),
            quantile(&samples, 0.50).expect("samples"),
        );
        record_metric(
            &format!("server/sharded/S{shards}/p99"),
            quantile(&samples, 0.99).expect("samples"),
        );
        record_metric(&format!("server/sharded/S{shards}/throughput"), ns_per_req);
    }
}

/// Reading the *same* already-cached equilibrium two ways: through the
/// owning shard's channel round-trip vs the router's lock-free snapshot
/// index. The source assertions keep both loops honest.
fn bench_read_path(_c: &mut Criterion) {
    let reads = if quick() { 1_000 } else { 30_000 };
    let mut server = ShardedServer::new(section5_markets(1), &ShardedConfig::default())
        .expect("sharded config is valid");
    server.serve(0, Request::Equilibrium).expect("priming solve"); // solved + published
    let time_path = |server: &mut ShardedServer,
                     expect: Source,
                     via: fn(&mut ShardedServer) -> Reply|
     -> Vec<f64> {
        let mut samples = Vec::with_capacity(reads);
        for _ in 0..reads {
            let t0 = Instant::now();
            let reply = via(server);
            let dt = t0.elapsed().as_nanos() as f64;
            match reply {
                Reply::Equilibrium { source, .. } => {
                    assert_eq!(source, expect, "read path drifted")
                }
                other => panic!("equilibrium read answered {other:?}"),
            }
            samples.push(dt);
        }
        samples
    };
    let locked = time_path(&mut server, Source::CacheHit, |s| {
        s.serve_direct(0, Request::Equilibrium).expect("cached read")
    });
    let lockfree = time_path(&mut server, Source::LockFree, |s| {
        s.serve(0, Request::Equilibrium).expect("cached read")
    });
    record_metric("server/sharded/read_path/locked", quantile(&locked, 0.50).expect("samples"));
    record_metric("server/sharded/read_path/lockfree", quantile(&lockfree, 0.50).expect("samples"));
}

/// The fault-recovery paths, timed end to end:
///
/// * `server/recovery/restart/*` — one whole-shard kill through the
///   router's channel-failure path: reap the dead thread, retract,
///   respawn, rehydrate every resident market (4 markets, 2 shards).
///   The timed call is the sabotaged serve itself, which returns the
///   typed `ShardRestarted` only after recovery completed.
/// * `server/recovery/degraded/*` — one budget-starved solve: a
///   one-sweep [`SolveBudget`] forces the deterministic partial-answer
///   path (best iterate + residual, never cached), the latency floor a
///   pathological market costs under deadlines.
fn bench_recovery(_c: &mut Criterion) {
    use subcomp_core::workspace::SolveBudget;
    use subcomp_exp::server::Sabotage;

    let kills = if quick() { 8 } else { 120 };
    let mut server =
        ShardedServer::new(section5_markets(4), &ShardedConfig { shards: 2, pool: 2, cache: 16 })
            .expect("sharded config is valid");
    for id in 0..4u64 {
        server.serve(id, Request::Equilibrium).expect("priming solve");
    }
    let mut samples = Vec::with_capacity(kills);
    let mut wall_ns = 0.0;
    for _ in 0..kills {
        let t0 = Instant::now();
        let err = server.serve_sabotaged(0, Request::Equilibrium, Sabotage::Kill);
        let dt = t0.elapsed().as_nanos() as f64;
        assert!(err.is_err(), "a killed shard must fail the in-flight request");
        samples.push(dt);
        wall_ns += dt;
    }
    publish("recovery/restart", &samples, wall_ns / kills as f64);

    let reads = if quick() { 60 } else { 1_500 };
    let game = SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid");
    let mut starved = EquilibriumServer::new(game, 2, 0).with_budget(SolveBudget::sweeps(1));
    let (samples, wall) = time_reads(&mut starved, reads, Source::Partial, |s| {
        // Untimed re-arm: a submit resets the strike counter so quarantine
        // never gates the loop, and wipes the warm state so every timed
        // read is the same budget-capped cold solve.
        let game = s.game().clone();
        s.submit(game).expect("starved submit still answers a partial");
    });
    publish("recovery/degraded", &samples, wall);
}

criterion_group!(
    benches,
    bench_cold,
    bench_warm_pool,
    bench_cache_hit,
    bench_mixed,
    bench_sharded,
    bench_read_path,
    bench_recovery
);
criterion_main!(benches);
