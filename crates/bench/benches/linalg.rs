//! Benchmarks the dense linear-algebra primitives behind Theorem 6
//! (LU solve/inverse) and Theorem 4 (P-matrix certification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use subcomp_num::linalg::lu::LuDecomposition;
use subcomp_num::linalg::structure::{is_m_matrix, is_p_matrix};
use subcomp_num::linalg::Matrix;

/// A well-conditioned M-matrix-style test matrix of size n.
fn test_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            2.0 + (i as f64) * 0.01
        } else {
            -1.0 / (n as f64 + (i + j) as f64)
        }
    })
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg/lu");
    for n in [4usize, 8, 16, 32] {
        let a = test_matrix(n);
        let b_vec = vec![1.0; n];
        g.bench_with_input(BenchmarkId::new("solve", n), &a, |b, a| {
            b.iter(|| LuDecomposition::new(a).unwrap().solve(&b_vec).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("inverse", n), &a, |b, a| {
            b.iter(|| LuDecomposition::new(a).unwrap().inverse().unwrap())
        });
    }
    g.finish();
}

fn bench_structure(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg/structure");
    g.sample_size(20);
    for n in [4usize, 8, 12] {
        let a = test_matrix(n);
        g.bench_with_input(BenchmarkId::new("p_matrix", n), &a, |b, a| {
            b.iter(|| is_p_matrix(a, 1e-12).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("m_matrix", n), &a, |b, a| {
            b.iter(|| is_m_matrix(a, 1e-12).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_secs(2));
    targets = bench_lu, bench_structure
}
criterion_main!(benches);
