//! One regeneration benchmark per paper figure.
//!
//! Each bench runs the same pipeline as the corresponding `subcomp-exp`
//! binary on a reduced grid, so `cargo bench` both times and re-validates
//! (via the embedded shape checks) every figure of the evaluation:
//! Figures 4, 5 (Section 3.2) and Figures 7–11 (Section 5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::WarmStart;
use subcomp_core::workspace::SolveWorkspace;
use subcomp_exp::figures::{fig10, fig11, fig4, fig5, fig7, fig8, fig9, panel};
use subcomp_exp::scenarios::section5_system;
use subcomp_exp::sweep::{EqGrid, GridContext, GridSolver};

fn bench_section3_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/section3");
    g.sample_size(10);
    let prices = fig4::default_prices(26);
    g.bench_function("fig4", |b| {
        b.iter(|| {
            let fig = fig4::compute(std::hint::black_box(&prices)).unwrap();
            fig.check_shape().unwrap();
            fig
        })
    });
    g.bench_function("fig5", |b| {
        b.iter(|| {
            let fig = fig5::compute(std::hint::black_box(&prices)).unwrap();
            fig.check_shape().unwrap();
            fig
        })
    });
    g.finish();
}

fn bench_section5_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/section5");
    g.sample_size(10);
    // The shared equilibrium panel dominates the cost; bench it once and
    // then each figure's extraction + shape validation on a precomputed
    // panel.
    let qs = [0.0, 0.5, 2.0];
    let prices: Vec<f64> = (0..9).map(|k| 0.1 + 0.2375 * k as f64).collect();
    g.bench_function("panel(3q x 9p)", |b| {
        b.iter(|| panel::compute_on(std::hint::black_box(&qs), &prices, 1).unwrap())
    });
    let p = panel::compute_on(&qs, &prices, 3).unwrap();
    g.bench_function("fig7", |b| {
        b.iter(|| {
            let f = fig7::compute(std::hint::black_box(&p));
            f.check_shape().unwrap();
            f
        })
    });
    g.bench_function("fig8", |b| {
        b.iter(|| {
            let f = fig8::compute(std::hint::black_box(&p));
            fig8::check_shape(&f).unwrap().unwrap();
            f
        })
    });
    g.bench_function("fig9", |b| {
        b.iter(|| {
            let f = fig9::compute(std::hint::black_box(&p));
            fig9::check_shape(&f).unwrap().unwrap();
            f
        })
    });
    g.bench_function("fig10", |b| {
        b.iter(|| {
            let f = fig10::compute(std::hint::black_box(&p));
            fig10::check_shape(&f, 0).unwrap().unwrap();
            f
        })
    });
    g.bench_function("fig11", |b| {
        b.iter(|| {
            let f = fig11::compute(std::hint::black_box(&p));
            fig11::check_shape(&f, 0, 2).unwrap().unwrap();
            f
        })
    });
    g.finish();
}

/// Tracks the continuation win itself as a trajectory point: the same
/// 3×9 grid solved through the [`GridSolver`] continuation engine
/// (`continuation`) versus point-by-point cold solves of the *same*
/// solver configuration on the same reused workspace (`cold`). The ratio
/// of the two ids is the warm-start speedup — committed to
/// `BENCH_figures.json` so a regression in continuation quality (e.g.
/// seeds stopping to help) shows up in review, not just a one-time claim
/// in a PR description.
fn bench_panel_warm_vs_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/panel/warm_vs_cold");
    g.sample_size(10);
    let system = section5_system();
    let qs = [0.0, 0.5, 2.0];
    let prices: Vec<f64> = (0..9).map(|k| 0.1 + 0.2375 * k as f64).collect();
    let solver = GridSolver::default();
    g.bench_function("continuation", |b| {
        let mut ctx = GridContext::new(&system);
        let mut grid = EqGrid::empty();
        b.iter(|| {
            solver.solve_seq_into(&mut ctx, std::hint::black_box(&qs), &prices, &mut grid).unwrap();
            grid.cold_solves()
        })
    });
    g.bench_function("cold", |b| {
        let mut game = SubsidyGame::new(system.clone(), 0.0, 0.0).unwrap();
        let mut ws = SolveWorkspace::for_game(&game);
        b.iter(|| {
            let mut sweeps = 0usize;
            for &q in std::hint::black_box(&qs[..]) {
                game.set_cap(q).unwrap();
                for &p in &prices {
                    game.set_price(p).unwrap();
                    let stats = solver.solver.solve_into(&game, WarmStart::Zero, &mut ws).unwrap();
                    sweeps += stats.iterations;
                }
            }
            sweeps
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_secs(2));
    targets = bench_section3_figures, bench_section5_figures, bench_panel_warm_vs_cold
}
criterion_main!(benches);
