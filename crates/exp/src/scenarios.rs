//! The paper's pinned parameterizations and randomized variants.

use subcomp_core::structure::SplitMix64;
use subcomp_model::aggregation::{build_system, ExpCpSpec};
use subcomp_model::system::System;

/// §3.2 numerical example: 9 CP types, `(α, β) ∈ {1,3,5}²`, `µ = 1`,
/// `Φ = θ/µ`, `λ = e^{-βφ}`, `m = e^{-αp}` (Figures 4 and 5).
///
/// Ordering: row-major in `(α, β)` — index `3a + b` where `a, b` index
/// into `{1, 3, 5}`.
pub fn section3_specs() -> Vec<ExpCpSpec> {
    let mut specs = Vec::with_capacity(9);
    for &alpha in &[1.0, 3.0, 5.0] {
        for &beta in &[1.0, 3.0, 5.0] {
            specs.push(ExpCpSpec::unit(alpha, beta, 1.0));
        }
    }
    specs
}

/// The §3.2 system (capacity 1, linear utilization).
pub fn section3_system() -> System {
    build_system(&section3_specs(), 1.0).expect("paper system is valid")
}

/// §5 numerical evaluation: 8 CP types, `α, β ∈ {2,5}`, `v ∈ {0.5, 1}`
/// (Figures 7–11).
///
/// Ordering: `v` slow, then `α`, then `β` — so indices 0–3 are the
/// `v = 0.5` block and 4–7 the `v = 1` block, each block ordered
/// `(α, β) = (2,2), (2,5), (5,2), (5,5)`.
pub fn section5_specs() -> Vec<ExpCpSpec> {
    let mut specs = Vec::with_capacity(8);
    for &v in &[0.5, 1.0] {
        for &alpha in &[2.0, 5.0] {
            for &beta in &[2.0, 5.0] {
                specs.push(ExpCpSpec::unit(alpha, beta, v));
            }
        }
    }
    specs
}

/// The §5 system (capacity 1, linear utilization).
pub fn section5_system() -> System {
    build_system(&section5_specs(), 1.0).expect("paper system is valid")
}

/// Human-readable label of a spec, e.g. `a2-b5-v1`.
pub fn spec_label(s: &ExpCpSpec) -> String {
    format!("a{}-b{}-v{}", s.alpha, s.beta, s.v)
}

/// The policy grid of Figures 7–11.
pub fn paper_policy_grid() -> Vec<f64> {
    vec![0.0, 0.5, 1.0, 1.5, 2.0]
}

/// The price grid of Figures 7–11 (`p ∈ [0, 2]`).
pub fn paper_price_grid(points: usize) -> Vec<f64> {
    let n = points.max(2);
    (0..n).map(|k| 2.0 * k as f64 / (n - 1) as f64).collect()
}

/// A randomized market for property tests and scaling benches: `n` CP
/// types with `α, β ∈ [1, 6]`, `v ∈ [0.2, 1.2]`, deterministic per seed.
pub fn random_specs(n: usize, seed: u64) -> Vec<ExpCpSpec> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            ExpCpSpec::unit(
                1.0 + 5.0 * rng.next_f64(),
                1.0 + 5.0 * rng.next_f64(),
                0.2 + rng.next_f64(),
            )
        })
        .collect()
}

/// Builds a system from [`random_specs`] with the given capacity.
pub fn random_system(n: usize, seed: u64, mu: f64) -> System {
    build_system(&random_specs(n, seed), mu).expect("random specs are valid")
}

/// One game of the `solve_farm` ensemble: provider count, market specs,
/// capacity, price and cap are drawn from a SplitMix64 stream keyed by
/// `(seed, index)`. This is *the* ensemble definition — the farm binary
/// and the `nash/farm/*` benches both call it, so their workloads are
/// identical game for game.
pub fn farm_game(
    seed: u64,
    index: u64,
    n_min: usize,
    n_max: usize,
) -> subcomp_num::NumResult<subcomp_core::game::SubsidyGame> {
    let mut rng = SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let span = (n_max - n_min + 1) as u64;
    let n = n_min + (rng.next_u64() % span) as usize;
    let specs = random_specs(n, rng.next_u64());
    let mu = 0.5 + 1.5 * rng.next_f64();
    let p = 0.3 + 0.9 * rng.next_f64();
    let q = 0.2 + 0.8 * rng.next_f64();
    subcomp_core::game::SubsidyGame::new(build_system(&specs, mu)?, p, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section3_layout() {
        let specs = section3_specs();
        assert_eq!(specs.len(), 9);
        // Row-major: index 3a + b.
        assert_eq!(specs[0].alpha, 1.0);
        assert_eq!(specs[0].beta, 1.0);
        assert_eq!(specs[2].beta, 5.0);
        assert_eq!(specs[6].alpha, 5.0);
        assert!(specs.iter().all(|s| s.v == 1.0 && s.m0 == 1.0 && s.lambda0 == 1.0));
    }

    #[test]
    fn section5_layout() {
        let specs = section5_specs();
        assert_eq!(specs.len(), 8);
        assert!(specs[..4].iter().all(|s| s.v == 0.5));
        assert!(specs[4..].iter().all(|s| s.v == 1.0));
        assert_eq!((specs[1].alpha, specs[1].beta), (2.0, 5.0));
        assert_eq!((specs[6].alpha, specs[6].beta), (5.0, 2.0));
        assert_eq!(spec_label(&specs[6]), "a5-b2-v1");
    }

    #[test]
    fn grids() {
        assert_eq!(paper_policy_grid(), vec![0.0, 0.5, 1.0, 1.5, 2.0]);
        let ps = paper_price_grid(41);
        assert_eq!(ps.len(), 41);
        assert_eq!(ps[0], 0.0);
        assert_eq!(*ps.last().unwrap(), 2.0);
        assert!((ps[1] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn random_specs_deterministic_and_in_range() {
        let a = random_specs(5, 3);
        let b = random_specs(5, 3);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.alpha, y.alpha);
            assert!(x.alpha >= 1.0 && x.alpha <= 6.0);
            assert!(x.v >= 0.2 && x.v <= 1.2);
        }
        let c = random_specs(5, 4);
        assert_ne!(a[0].alpha, c[0].alpha);
    }

    #[test]
    fn systems_build_and_solve() {
        let s3 = section3_system();
        assert_eq!(s3.n(), 9);
        assert!(s3.state_at_uniform_price(0.5).unwrap().phi > 0.0);
        let s5 = section5_system();
        assert_eq!(s5.n(), 8);
        let r = random_system(6, 1, 1.5);
        assert_eq!(r.mu(), 1.5);
    }
}
