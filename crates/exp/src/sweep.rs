//! Parameter-sweep engine.
//!
//! Two workhorses: [`parallel_map`] fans independent work items across OS
//! threads (`std::thread::scope`, no dependency), and
//! [`equilibrium_price_sweep`] walks a price grid with warm-started Nash
//! solves — consecutive equilibria are close (Theorem 6 differentiability),
//! so warm starts cut sweep time by roughly the iteration count ratio.

use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::{NashSolution, NashSolver};
use subcomp_model::system::System;
use subcomp_num::NumResult;

/// Maps `f` over `items` on up to `threads` OS threads, preserving order.
///
/// Falls back to a sequential map when `threads <= 1` (including 0) or
/// there is at most a single item. `f` must be `Sync` (it is shared across
/// threads by reference).
///
/// # Panics
///
/// If `f` panics for any item, the panic propagates to the caller after
/// all in-flight workers finish their chunks (`std::thread::scope` joins
/// every spawned thread before unwinding) — no result is silently
/// dropped, and no thread is leaked.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(n);
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (slab, slot) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                for (item, cell) in slab.iter().zip(slot.iter_mut()) {
                    *cell = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|c| c.expect("worker filled every slot")).collect()
}

/// One solved point of a price sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The price at this point.
    pub p: f64,
    /// The equilibrium solved at `(p, q)`.
    pub equilibrium: NashSolution,
}

/// Sweeps a price grid at fixed cap `q`, warm-starting each solve from the
/// previous equilibrium.
pub fn equilibrium_price_sweep(
    system: &System,
    q: f64,
    prices: &[f64],
    solver: &NashSolver,
) -> NumResult<Vec<SweepPoint>> {
    let mut out = Vec::with_capacity(prices.len());
    let mut warm: Option<Vec<f64>> = None;
    for &p in prices {
        let game = SubsidyGame::new(system.clone(), p, q)?;
        let eq = match &warm {
            Some(s0) => solver.solve_from(&game, s0)?,
            None => solver.solve(&game)?,
        };
        warm = Some(eq.subsidies.clone());
        out.push(SweepPoint { p, equilibrium: eq });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::section5_system;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<i64> = (0..100).collect();
        let seq = parallel_map(&items, 1, |x| x * x);
        let par = parallel_map(&items, 8, |x| x * x);
        assert_eq!(seq, par);
        assert_eq!(par[7], 49);
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(parallel_map(&[5], 4, |x| x + 1), vec![6]);
    }

    #[test]
    fn parallel_map_more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn parallel_map_zero_threads_is_sequential() {
        let items: Vec<i32> = (0..10).collect();
        assert_eq!(parallel_map(&items, 0, |x| x + 1), (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_uneven_chunks_preserve_order() {
        // 7 items over 3 workers: chunk sizes 3/3/1 — the tail chunk must
        // land in the right slots.
        let items: Vec<usize> = (0..7).collect();
        assert_eq!(parallel_map(&items, 3, |x| x * 2), vec![0, 2, 4, 6, 8, 10, 12]);
        // And a larger stress mix with a prime count.
        let big: Vec<i64> = (0..101).collect();
        assert_eq!(parallel_map(&big, 16, |x| -x), (0..101).map(|x| -x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_panic_in_worker_propagates() {
        let items: Vec<i32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |x| {
                if *x == 9 {
                    panic!("worker exploded on {x}");
                }
                *x
            })
        });
        assert!(result.is_err(), "panic inside a worker must reach the caller");
    }

    #[test]
    fn parallel_map_panic_in_sequential_path_propagates() {
        let items = [1, 2];
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, 1, |x| {
                if *x == 2 {
                    panic!("sequential path panic");
                }
                *x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn warm_sweep_matches_cold_solves() {
        let sys = section5_system();
        let solver = NashSolver::default().with_tol(1e-8);
        let prices = [0.3, 0.4, 0.5];
        let sweep = equilibrium_price_sweep(&sys, 0.6, &prices, &solver).unwrap();
        assert_eq!(sweep.len(), 3);
        for pt in &sweep {
            let game = SubsidyGame::new(sys.clone(), pt.p, 0.6).unwrap();
            let cold = solver.solve(&game).unwrap();
            for i in 0..8 {
                assert!(
                    (pt.equilibrium.subsidies[i] - cold.subsidies[i]).abs() < 1e-5,
                    "p = {}, CP {i}",
                    pt.p
                );
            }
        }
    }

    #[test]
    fn sweep_points_keep_prices() {
        let sys = section5_system();
        let solver = NashSolver::default().with_tol(1e-7);
        let prices = [0.2, 0.9];
        let sweep = equilibrium_price_sweep(&sys, 0.3, &prices, &solver).unwrap();
        assert_eq!(sweep[0].p, 0.2);
        assert_eq!(sweep[1].p, 0.9);
    }
}
