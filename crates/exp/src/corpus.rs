//! The scenario corpus: ~30 named, deterministic market scenarios and a
//! unified runner that takes each through the analytic Nash solver, a
//! Jacobi cross-check, the Theorem 3 certificate, and the agent-based
//! market simulator.
//!
//! The corpus extends the paper's two pinned parameterizations (§3.2 and
//! §5) along the axes the related literature explores — oligopolies of
//! growing size, heterogeneous capacities and loads, alternative
//! congestion laws, extreme elasticity corners, near-degenerate demand,
//! seeded random ensembles, and non-neutral/side-payment regimes in the
//! spirit of Lotfi et al. (*Is Non-Neutrality Profitable…*) and Altman,
//! Caron & Kesidis (*Application Neutrality and a Paradox of Side
//! Payments*). Every scenario is pinned by a golden snapshot under
//! `tests/golden/` (see [`crate::golden`]); `tests/golden_scenarios.rs`
//! re-runs the corpus on every CI pass so a solver or model refactor that
//! silently shifts any equilibrium fails with a named diff.

use crate::golden::Json;
use crate::scenarios::{random_specs, section3_specs, section5_specs};
use crate::sweep::parallel_map_with;
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::{NashSolver, SolveDiagnostics, WarmStart};
use subcomp_core::workspace::SolveWorkspace;
use subcomp_model::aggregation::{build_system_with, ExpCpSpec};
use subcomp_model::system::System;
use subcomp_model::utilization::{
    LinearUtilization, PowerUtilization, QueueUtilization, UtilizationFn,
};
use subcomp_num::NumResult;
use subcomp_sim::market::{MarketSim, MarketSimConfig};

/// Which Assumption 1 family a scenario runs under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UtilizationKind {
    /// The paper's `Φ = θ/µ`.
    Linear,
    /// Power-law `Φ = (θ/µ)^γ`.
    Power(f64),
    /// Queueing-delay shaped family (throughput saturates below `µ`).
    Queue,
}

impl UtilizationKind {
    fn build(&self) -> NumResult<Box<dyn UtilizationFn>> {
        Ok(match self {
            UtilizationKind::Linear => Box::new(LinearUtilization),
            UtilizationKind::Power(gamma) => Box::new(PowerUtilization::new(*gamma)?),
            UtilizationKind::Queue => Box::new(QueueUtilization),
        })
    }
}

/// Market-simulator parameters for a scenario (always deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Days to simulate.
    pub days: usize,
    /// RNG seed.
    pub seed: u64,
}

/// One named, fully pinned scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Unique corpus name (doubles as the golden file stem).
    pub name: &'static str,
    /// One-line description for reports.
    pub summary: &'static str,
    /// CP types.
    pub specs: Vec<ExpCpSpec>,
    /// ISP capacity `µ`.
    pub mu: f64,
    /// ISP price `p`.
    pub price: f64,
    /// Regulatory cap `q`.
    pub cap: f64,
    /// Clamp effective prices at zero (`t_i = max(0, p − s_i)`) — the
    /// side-payment regime where users are never paid to consume.
    pub clamp_price: bool,
    /// Congestion family.
    pub utilization: UtilizationKind,
    /// Gauss–Seidel damping for the primary solve.
    pub damping: f64,
    /// Market-simulator leg (None skips the sim for this scenario).
    pub sim: Option<SimParams>,
    /// Capacity applied *after* the base system builds, through the
    /// in-place [`SubsidyGame::set_mu`] — the µ-axis reparameterization
    /// path of the continuation engine, exercised inside the corpus
    /// pipeline (bit-identical to building at this µ directly).
    pub mu_patch: Option<f64>,
    /// Per-provider profitability shocks applied through the in-place
    /// [`SubsidyGame::set_profitability`] — the Theorem 5 `v`-axis
    /// counterpart of [`ScenarioSpec::mu_patch`].
    pub v_patches: Vec<(usize, f64)>,
}

impl ScenarioSpec {
    fn new(name: &'static str, summary: &'static str, specs: Vec<ExpCpSpec>) -> Self {
        ScenarioSpec {
            name,
            summary,
            specs,
            mu: 1.0,
            price: 0.6,
            cap: 1.0,
            clamp_price: false,
            utilization: UtilizationKind::Linear,
            damping: 1.0,
            sim: Some(SimParams { days: 1500, seed: 0xC0FFEE }),
            mu_patch: None,
            v_patches: Vec::new(),
        }
    }

    fn pq(mut self, price: f64, cap: f64) -> Self {
        self.price = price;
        self.cap = cap;
        self
    }

    fn mu(mut self, mu: f64) -> Self {
        self.mu = mu;
        self
    }

    fn clamped(mut self) -> Self {
        self.clamp_price = true;
        self
    }

    fn utilization(mut self, u: UtilizationKind) -> Self {
        self.utilization = u;
        self
    }

    fn sim_days(mut self, days: usize) -> Self {
        self.sim = Some(SimParams { days, seed: 0xC0FFEE });
        self
    }

    fn no_sim(mut self) -> Self {
        self.sim = None;
        self
    }

    fn expand_mu(mut self, mu: f64) -> Self {
        self.mu_patch = Some(mu);
        self
    }

    fn vshock(mut self, i: usize, v: f64) -> Self {
        self.v_patches.push((i, v));
        self
    }

    /// Builds the physical system (the *base* system — the µ/v patches of
    /// [`ScenarioSpec::mu_patch`]/[`ScenarioSpec::v_patches`] land on the
    /// game in [`ScenarioSpec::build_game`], through the in-place axis
    /// mutators).
    pub fn build_system(&self) -> NumResult<System> {
        build_system_with(&self.specs, self.mu, self.utilization.build()?)
    }

    /// Builds the subsidization game, applying the µ/v reparameterization
    /// patches through the continuation engine's in-place mutators.
    pub fn build_game(&self) -> NumResult<SubsidyGame> {
        let mut game = SubsidyGame::new(self.build_system()?, self.price, self.cap)?
            .with_clamped_price(self.clamp_price);
        if let Some(mu) = self.mu_patch {
            game.set_mu(mu)?;
        }
        for &(i, v) in &self.v_patches {
            game.set_profitability(i, v)?;
        }
        Ok(game)
    }
}

/// `n` CP types with deterministically graded `(α, β, v)`: `α` rises from
/// 2 to 5, `β` falls from 5 to 2, `v` rises from 0.5 to 1 across the list.
pub fn graded_specs(n: usize) -> Vec<ExpCpSpec> {
    (0..n)
        .map(|i| {
            let t = if n > 1 { i as f64 / (n - 1) as f64 } else { 0.0 };
            ExpCpSpec::unit(2.0 + 3.0 * t, 5.0 - 3.0 * t, 0.5 + 0.5 * t)
        })
        .collect()
}

/// The full scenario corpus, in deterministic order.
pub fn corpus() -> Vec<ScenarioSpec> {
    let mut list = Vec::new();

    // --- The paper's own parameterizations -------------------------------
    list.push(
        ScenarioSpec::new(
            "paper-s3",
            "§3.2 grid: 9 types, (α,β) ∈ {1,3,5}², v = 1",
            section3_specs(),
        )
        .pq(0.5, 1.0)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "paper-s5",
            "§5 evaluation: 8 types, α,β ∈ {2,5}, v ∈ {0.5,1}",
            section5_specs(),
        )
        .pq(0.6, 1.0)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new("paper-s5-lowcap", "§5 system under a tight cap q = 0.25", {
            section5_specs()
        })
        .pq(0.6, 0.25)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new("paper-s5-highprice", "§5 system at a high price p = 1.4", {
            section5_specs()
        })
        .pq(1.4, 1.0)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new("regulated-baseline", "§5 system with subsidies banned (q = 0)", {
            section5_specs()
        })
        .pq(0.6, 0.0)
        .sim_days(400),
    );

    // --- Oligopolies N = 3..8 -------------------------------------------
    list.push(
        ScenarioSpec::new("oligopoly-n3", "3 graded CP types", graded_specs(3))
            .pq(0.6, 0.8)
            .sim_days(6000),
    );
    list.push(
        ScenarioSpec::new("oligopoly-n4", "4 graded CP types", graded_specs(4))
            .pq(0.6, 0.8)
            .sim_days(2000),
    );
    list.push(
        ScenarioSpec::new("oligopoly-n5", "5 graded CP types", graded_specs(5))
            .pq(0.6, 0.8)
            .sim_days(2000),
    );
    list.push(
        ScenarioSpec::new("oligopoly-n6", "6 graded CP types", graded_specs(6))
            .pq(0.6, 0.8)
            .no_sim(),
    );
    list.push(
        ScenarioSpec::new("oligopoly-n7", "7 graded CP types", graded_specs(7))
            .pq(0.6, 0.8)
            .no_sim(),
    );
    list.push(
        ScenarioSpec::new("oligopoly-n8", "8 graded CP types", graded_specs(8))
            .pq(0.6, 0.8)
            .no_sim(),
    );

    // --- Heterogeneous capacities and loads ------------------------------
    list.push(
        ScenarioSpec::new("capacity-scarce", "§5 system on a scarce link µ = 0.25", {
            section5_specs()
        })
        .pq(0.6, 1.0)
        .mu(0.25)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new("capacity-rich", "§5 system on an overprovisioned link µ = 4", {
            section5_specs()
        })
        .pq(0.6, 1.0)
        .mu(4.0)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "load-asymmetric",
            "5 types with population masses graded 0.2..2.0 on µ = 1.5",
            (0..5)
                .map(|i| {
                    let t = i as f64 / 4.0;
                    ExpCpSpec { m0: 0.2 + 1.8 * t, ..ExpCpSpec::unit(3.0, 3.0, 0.4 + 0.6 * t) }
                })
                .collect(),
        )
        .pq(0.5, 0.9)
        .mu(1.5)
        .sim_days(1500),
    );

    // --- Alternative congestion laws -------------------------------------
    list.push(
        ScenarioSpec::new("util-power-sharp", "§5 system under Φ = (θ/µ)², late congestion", {
            section5_specs()
        })
        .pq(0.6, 1.0)
        .utilization(UtilizationKind::Power(2.0))
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "util-power-early",
            "§5 system under Φ = (θ/µ)^0.5, early congestion",
            section5_specs(),
        )
        .pq(0.6, 1.0)
        .utilization(UtilizationKind::Power(0.5))
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new("util-queue", "4 graded types behind a queueing-delay law", {
            graded_specs(4)
        })
        .pq(0.4, 0.8)
        .utilization(UtilizationKind::Queue)
        .sim_days(1500),
    );

    // --- Extreme elasticity corners --------------------------------------
    list.push(
        ScenarioSpec::new(
            "corner-inelastic",
            "price- and congestion-insensitive types (α = β = 0.1)",
            vec![
                ExpCpSpec::unit(0.1, 0.1, 1.0),
                ExpCpSpec::unit(0.1, 0.1, 0.5),
                ExpCpSpec::unit(0.1, 0.1, 0.25),
            ],
        )
        .pq(0.6, 0.8)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "corner-price-elastic",
            "hyper price-elastic types (α = 8)",
            vec![ExpCpSpec::unit(8.0, 2.0, 1.0), ExpCpSpec::unit(8.0, 5.0, 0.5)],
        )
        .pq(0.6, 1.0)
        .sim_days(1500),
    );
    list.push(
        ScenarioSpec::new(
            "corner-congestion-elastic",
            "hyper congestion-elastic types (β = 8)",
            vec![ExpCpSpec::unit(2.0, 8.0, 1.0), ExpCpSpec::unit(5.0, 8.0, 0.5)],
        )
        .pq(0.6, 1.0)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "corner-mixed-extremes",
            "all four (α, β) elasticity corners in one market",
            vec![
                ExpCpSpec::unit(0.1, 8.0, 1.0),
                ExpCpSpec::unit(8.0, 0.1, 1.0),
                ExpCpSpec::unit(8.0, 8.0, 0.5),
                ExpCpSpec::unit(0.1, 0.1, 0.5),
            ],
        )
        .pq(0.6, 0.8)
        .no_sim(),
    );

    // --- Near-degenerate demand ------------------------------------------
    list.push(
        ScenarioSpec::new(
            "degenerate-low-value",
            "profit margins barely above zero (v = 0.02)",
            vec![ExpCpSpec::unit(2.0, 2.0, 0.02), ExpCpSpec::unit(5.0, 5.0, 0.02)],
        )
        .pq(0.6, 1.0)
        .sim_days(400),
    );
    list.push(
        ScenarioSpec::new(
            "degenerate-thin-market",
            "populations three orders of magnitude below capacity (m₀ = 1e-3)",
            vec![
                ExpCpSpec { m0: 1e-3, ..ExpCpSpec::unit(2.0, 2.0, 1.0) },
                ExpCpSpec { m0: 1e-3, ..ExpCpSpec::unit(5.0, 5.0, 0.5) },
            ],
        )
        .pq(0.6, 1.0)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "degenerate-tiny-cap",
            "a cap so small subsidies barely move (q = 1e-3)",
            section5_specs(),
        )
        .pq(0.6, 1e-3)
        .no_sim(),
    );

    // --- Seeded random ensembles -----------------------------------------
    list.push(
        ScenarioSpec::new("random-n4-s1", "4 random types, seed 1", random_specs(4, 1))
            .pq(0.55, 0.9)
            .sim_days(2000),
    );
    list.push(
        ScenarioSpec::new("random-n6-s2", "6 random types, seed 2", random_specs(6, 2))
            .pq(0.7, 0.8)
            .no_sim(),
    );
    list.push(
        ScenarioSpec::new("random-n10-s3", "10 random types, seed 3", random_specs(10, 3))
            .pq(0.6, 1.0)
            .no_sim(),
    );
    list.push(
        ScenarioSpec::new("random-n16-s4", "16 random types, seed 4", random_specs(16, 4))
            .pq(0.5, 0.7)
            .mu(2.0)
            .no_sim(),
    );
    // Large-scale ensembles the batched allocation-free engine makes
    // tractable: sizes the corpus never reached before (the old ceiling
    // was n = 16). Capacity scales with n to keep per-provider load in
    // the paper's regime. Solved (and Jacobi cross-checked) like every
    // other scenario; the golden tier skips *running* them in debug
    // builds, where a 256-provider solve is prohibitively slow — release
    // CI and regen_golden always cover them.
    list.push(
        ScenarioSpec::new("random-n64-s5", "64 random types, seed 5, µ = 8", random_specs(64, 5))
            .pq(0.6, 0.9)
            .mu(8.0)
            .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "random-n256-s6",
            "256 random types, seed 6, µ = 32",
            random_specs(256, 6),
        )
        .pq(0.55, 0.8)
        .mu(32.0)
        .no_sim(),
    );

    // --- µ/v axis reparameterization (the axis-continuation corpus leg) --
    //
    // A capacity-expansion ladder and a per-provider profitability shock,
    // each built by patching the base §5 system *in place* through the
    // axis mutators (`set_mu`/`set_profitability`) — the same path the
    // continuation engine sweeps, so a kernel-patch regression shifts
    // these goldens even if every from-scratch scenario stays put.
    list.push(
        ScenarioSpec::new(
            "mu-ladder-half",
            "§5 system re-capacitated in place to µ = 0.5 (set_mu patch path)",
            section5_specs(),
        )
        .pq(0.5, 0.8)
        .expand_mu(0.5)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "mu-ladder-x2",
            "§5 system expanded in place to µ = 2 (set_mu patch path)",
            section5_specs(),
        )
        .pq(0.5, 0.8)
        .expand_mu(2.0)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "mu-ladder-x4",
            "§5 system expanded in place to µ = 4 (set_mu patch path)",
            section5_specs(),
        )
        .pq(0.5, 0.8)
        .expand_mu(4.0)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "vshock-deep-pocket",
            "§5 system with CP 7's profitability shocked 1 → 2 in place (Theorem 5 axis)",
            section5_specs(),
        )
        .pq(0.6, 1.0)
        .vshock(7, 2.0)
        .no_sim(),
    );

    // --- Non-neutral / side-payment regimes ------------------------------
    list.push(
        ScenarioSpec::new(
            "sidepay-clamped",
            "subsidies may exceed the price but users are never paid (t clamped at 0)",
            section5_specs(),
        )
        .pq(0.25, 1.0)
        .clamped()
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "sidepay-paradox",
            "cap far above profitability: v, not q, pins the side payment",
            vec![
                ExpCpSpec::unit(3.0, 3.0, 0.2),
                ExpCpSpec::unit(3.0, 3.0, 0.4),
                ExpCpSpec::unit(3.0, 3.0, 0.8),
            ],
        )
        .pq(0.5, 3.0)
        .sim_days(1500),
    );
    list.push(
        ScenarioSpec::new(
            "nonneutral-tiered-lanes",
            "fast-lane vs slow-lane peak rates (λ₀ = 4 vs 0.5) at equal demand",
            vec![
                ExpCpSpec { lambda0: 4.0, ..ExpCpSpec::unit(3.0, 3.0, 1.0) },
                ExpCpSpec { lambda0: 4.0, ..ExpCpSpec::unit(3.0, 3.0, 0.5) },
                ExpCpSpec { lambda0: 0.5, ..ExpCpSpec::unit(3.0, 3.0, 1.0) },
                ExpCpSpec { lambda0: 0.5, ..ExpCpSpec::unit(3.0, 3.0, 0.5) },
            ],
        )
        .pq(0.6, 0.9)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "nonneutral-subsidy-war",
            "deep-pocket CPs (v up to 2) under a loose cap: subsidies exceed the price",
            vec![
                ExpCpSpec::unit(3.0, 2.0, 2.0),
                ExpCpSpec::unit(4.0, 3.0, 1.5),
                ExpCpSpec::unit(2.0, 4.0, 1.0),
            ],
        )
        .pq(1.0, 2.0)
        .no_sim(),
    );
    list.push(
        ScenarioSpec::new(
            "duopoly-asym",
            "the asymmetric duopoly used across the sim-vs-theory suite",
            vec![ExpCpSpec::unit(5.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 4.0, 0.4)],
        )
        .pq(0.7, 1.0)
        .sim_days(6000),
    );

    list
}

/// Market-simulator summary worth pinning (all fields deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    /// Days simulated.
    pub days: usize,
    /// Final subsidies after the last day.
    pub final_subsidies: Vec<f64>,
    /// Sup-norm distance between the sim endpoint and the analytic Nash.
    pub distance_to_nash: f64,
    /// Cumulative ISP revenue over the run.
    pub isp_revenue: f64,
    /// Ledger conservation error (should be ~0 always).
    pub conservation_error: f64,
}

/// Everything one scenario run pins into its golden snapshot.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Number of providers.
    pub n: usize,
    /// Equilibrium subsidies `s*`.
    pub subsidies: Vec<f64>,
    /// Equilibrium populations `m_i`.
    pub m: Vec<f64>,
    /// Equilibrium per-CP throughput `θ_i`.
    pub theta_i: Vec<f64>,
    /// Equilibrium utilities `U_i`.
    pub utilities: Vec<f64>,
    /// Utilization `φ` at equilibrium.
    pub phi: f64,
    /// Aggregate throughput `θ`.
    pub theta_total: f64,
    /// ISP revenue `p θ`.
    pub isp_revenue: f64,
    /// Welfare `Σ v_i θ_i`.
    pub welfare: f64,
    /// Total subsidy outlay `Σ s_i θ_i`.
    pub subsidy_outlay: f64,
    /// Solver health + Theorem 3 certificate.
    pub diagnostics: SolveDiagnostics,
    /// Sup-norm gap to an independent damped-Jacobi solve (−1 when the
    /// Jacobi solve did not converge for this scenario).
    pub jacobi_gap: f64,
    /// Market-simulator leg, when the scenario runs one.
    pub sim: Option<SimSnapshot>,
}

impl ScenarioResult {
    /// Encodes the result as a JSON snapshot (field order is fixed and is
    /// part of the golden format).
    pub fn to_json(&self) -> Json {
        let mut eq = Json::obj();
        eq.set("subsidies", Json::nums(&self.subsidies));
        eq.set("m", Json::nums(&self.m));
        eq.set("theta", Json::nums(&self.theta_i));
        eq.set("utilities", Json::nums(&self.utilities));
        eq.set("phi", Json::Num(self.phi));
        eq.set("theta_total", Json::Num(self.theta_total));
        eq.set("isp_revenue", Json::Num(self.isp_revenue));
        eq.set("welfare", Json::Num(self.welfare));
        eq.set("subsidy_outlay", Json::Num(self.subsidy_outlay));

        let d = &self.diagnostics;
        let mut diag = Json::obj();
        diag.set("iterations", Json::Num(d.iterations as f64));
        diag.set("converged", Json::Bool(d.converged));
        diag.set("residual", Json::Num(d.residual));
        diag.set("max_kkt_residual", Json::Num(d.max_kkt_residual));
        diag.set("max_threshold_residual", Json::Num(d.max_threshold_residual));
        diag.set("pinned_low", Json::Num(d.pinned_low as f64));
        diag.set("pinned_high", Json::Num(d.pinned_high as f64));
        diag.set("interior", Json::Num(d.interior as f64));
        diag.set("jacobi_gap", Json::Num(self.jacobi_gap));

        let mut root = Json::obj();
        root.set("name", Json::Str(self.name.clone()));
        root.set("n", Json::Num(self.n as f64));
        root.set("equilibrium", eq);
        root.set("diagnostics", diag);
        match &self.sim {
            None => {
                root.set("sim", Json::Null);
            }
            Some(s) => {
                let mut sim = Json::obj();
                sim.set("days", Json::Num(s.days as f64));
                sim.set("final_subsidies", Json::nums(&s.final_subsidies));
                sim.set("distance_to_nash", Json::Num(s.distance_to_nash));
                sim.set("isp_revenue", Json::Num(s.isp_revenue));
                sim.set("conservation_error", Json::Num(s.conservation_error));
                root.set("sim", sim);
            }
        }
        root
    }
}

/// Runs one scenario end to end: primary Gauss–Seidel solve, Theorem 3
/// certificate, independent damped-Jacobi cross-check, and (when
/// configured) the agent-based market simulator.
///
/// Thin wrapper over [`run_scenario_with`] with a throwaway workspace;
/// batch callers ([`run_corpus`], `regen_golden`) hold one workspace per
/// worker instead.
pub fn run_scenario(spec: &ScenarioSpec) -> NumResult<ScenarioResult> {
    run_scenario_with(spec, &mut SolveWorkspace::new())
}

/// [`run_scenario`] on a caller-owned [`SolveWorkspace`]: both Nash
/// solves (primary Gauss–Seidel and the Jacobi cross-check) run through
/// the allocation-free engine on `ws`. Results are bit-identical to the
/// fresh-workspace path — both start cold from `s = 0` — which is what
/// keeps the golden snapshots byte-stable across the engine rework.
pub fn run_scenario_with(
    spec: &ScenarioSpec,
    ws: &mut SolveWorkspace,
) -> NumResult<ScenarioResult> {
    let game = spec.build_game()?;
    let solver = NashSolver::default().with_tol(1e-9).with_damping(spec.damping);
    let stats = solver.solve_into(&game, WarmStart::Zero, ws)?;
    let eq = ws.solution(stats);
    let diagnostics = eq.diagnostics(&game)?;

    let jacobi = NashSolver::default().with_tol(1e-9).jacobi().with_damping(0.6);
    let jacobi_gap = match jacobi.solve_into(&game, WarmStart::Zero, ws) {
        Ok(_) => eq
            .subsidies
            .iter()
            .zip(ws.subsidies())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max),
        Err(_) => -1.0,
    };

    let sim = match spec.sim {
        None => None,
        Some(params) => {
            let cfg =
                MarketSimConfig { days: params.days, seed: params.seed, ..Default::default() };
            // Compare against exactly the equilibrium this snapshot pins.
            let report = MarketSim::new(&game, cfg)?.run_against(&eq.subsidies)?;
            Some(SimSnapshot {
                days: params.days,
                final_subsidies: report.final_subsidies,
                distance_to_nash: report.distance_to_nash,
                isp_revenue: report.ledger.isp_revenue,
                conservation_error: report.ledger.conservation_error(),
            })
        }
    };

    Ok(ScenarioResult {
        name: spec.name.to_string(),
        n: game.n(),
        subsidies: eq.subsidies.clone(),
        m: eq.state.m.clone(),
        theta_i: eq.state.theta_i.clone(),
        utilities: eq.utilities.clone(),
        phi: eq.state.phi,
        theta_total: eq.state.theta(),
        isp_revenue: eq.isp_revenue(&game),
        welfare: eq.welfare(&game),
        subsidy_outlay: game.subsidy_outlay(&eq.subsidies)?,
        diagnostics,
        jacobi_gap,
        sim,
    })
}

/// Runs the whole corpus on up to `threads` OS threads (order preserved),
/// one reusable [`SolveWorkspace`] per worker — scenarios after the first
/// reuse the worker's buffers instead of re-allocating solver state.
pub fn run_corpus(threads: usize) -> Vec<(String, NumResult<ScenarioResult>)> {
    let specs = corpus();
    let results = parallel_map_with(&specs, threads, SolveWorkspace::new, |ws, spec| {
        run_scenario_with(spec, ws)
    });
    specs.iter().map(|s| s.name.to_string()).zip(results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_wellformed() {
        let specs = corpus();
        assert!(specs.len() >= 25, "corpus must stay substantial, got {}", specs.len());
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate scenario names");
        for s in &specs {
            assert!(
                s.name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "scenario name `{}` must be a safe file stem",
                s.name
            );
            assert!(!s.summary.is_empty());
            assert!(!s.specs.is_empty());
        }
    }

    #[test]
    fn every_scenario_builds_a_valid_game() {
        for spec in corpus() {
            let game = spec.build_game().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(game.n(), spec.specs.len(), "{}", spec.name);
        }
    }

    #[test]
    fn patched_scenarios_match_rebuilt_parameterizations() {
        // The µ/v scenarios parameterize through the in-place axis
        // mutators; the equilibria must be bit-identical to building the
        // same market from scratch (the kernel-patch contract).
        use subcomp_core::nash::NashSolver;
        let specs = corpus();
        let ladder = specs.iter().find(|s| s.name == "mu-ladder-x2").unwrap();
        assert_eq!(ladder.mu_patch, Some(2.0));
        let patched = ladder.build_game().unwrap();
        let mut direct = ladder.clone();
        direct.mu_patch = None;
        direct.mu = 2.0;
        let rebuilt = direct.build_game().unwrap();
        let solver = NashSolver::default().with_tol(1e-9);
        let a = solver.solve(&patched).unwrap();
        let b = solver.solve(&rebuilt).unwrap();
        assert_eq!(a.subsidies, b.subsidies);
        assert_eq!(a.state.phi.to_bits(), b.state.phi.to_bits());

        let shock = specs.iter().find(|s| s.name == "vshock-deep-pocket").unwrap();
        let game = shock.build_game().unwrap();
        assert_eq!(game.profitability(7), 2.0);
        assert_eq!(game.profitability(6), 1.0, "only the shocked provider moves");
    }

    #[test]
    fn run_scenario_is_deterministic() {
        let spec = &corpus()[0];
        let a = run_scenario(spec).unwrap();
        let b = run_scenario(spec).unwrap();
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    #[test]
    fn scenario_snapshot_has_the_expected_shape() {
        let specs = corpus();
        let duopoly = specs.iter().find(|s| s.name == "duopoly-asym").unwrap();
        // Trim the sim so the unit test stays fast; shape is unaffected.
        let mut quick = duopoly.clone();
        quick.sim = Some(SimParams { days: 200, seed: 7 });
        let result = run_scenario(&quick).unwrap();
        let json = result.to_json();
        assert_eq!(json.get("name").and_then(Json::as_str), Some("duopoly-asym"));
        assert_eq!(json.get("n").and_then(Json::as_num), Some(2.0));
        assert!(json.get("equilibrium").and_then(|e| e.get("phi")).is_some());
        assert!(json.get("diagnostics").and_then(|d| d.get("jacobi_gap")).is_some());
        assert!(json.get("sim").and_then(|s| s.get("distance_to_nash")).is_some());
        // Round-trips through the codec.
        let back = Json::parse(&json.render()).unwrap();
        assert_eq!(json, back);
    }
}
