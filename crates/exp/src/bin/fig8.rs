//! Regenerates paper Figure 8 (run: `cargo run -p subcomp-exp --bin fig8`).
use subcomp_exp::figures::{fig8, panel};
use subcomp_exp::report::results_dir;

fn main() {
    let panel = panel::compute(41, 5).expect("panel computes");
    let fig = fig8::compute(&panel);
    println!("{}", fig.render());
    match fig8::check_shape(&fig).expect("check runs") {
        Ok(()) => {
            println!("shape check: OK (rich/elastic types subsidize more; caps bind at small p)")
        }
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    let path = results_dir().join("fig8.csv");
    fig.write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
