//! Regenerates paper Figure 11 (run: `cargo run -p subcomp-exp --bin fig11`).
use subcomp_exp::figures::{fig11, panel};
use subcomp_exp::report::results_dir;

fn main() {
    let panel = panel::compute(41, 5).expect("panel computes");
    let fig = fig11::compute(&panel);
    println!("{}", fig.render());
    match fig11::check_shape(&fig, 0, fig.qs.len() - 1).expect("check runs") {
        Ok(()) => println!("shape check: OK (alpha=5,v=1 gain; alpha=2,beta=5 lose)"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    let path = results_dir().join("fig11.csv");
    fig.write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
