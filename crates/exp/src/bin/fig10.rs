//! Regenerates paper Figure 10 (run: `cargo run -p subcomp-exp --bin fig10`).
use subcomp_exp::figures::{fig10, panel};
use subcomp_exp::report::results_dir;

fn main() {
    let panel = panel::compute(41, 5).expect("panel computes");
    let fig = fig10::compute(&panel);
    println!("{}", fig.render());
    match fig10::check_shape(&fig, 0).expect("check runs") {
        Ok(()) => println!("shape check: OK (beta=2 out-carries beta=5; high-v types gain vs q=0)"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    let qi_last = fig.qs.len() - 1;
    let exceptions = fig10::exception_prices(&fig, 0, qi_last);
    println!(
        "paper's (2,5,1) exception (loses vs baseline) observed at prices: {:?}",
        &exceptions[..exceptions.len().min(8)]
    );
    let path = results_dir().join("fig10.csv");
    fig.write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
