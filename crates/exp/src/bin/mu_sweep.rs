//! Capacity sweep of the §5 subsidization equilibrium — Theorem 1's
//! comparative statics, solved through the axis-generic continuation
//! engine (run: `cargo run --release -p subcomp-exp --bin mu_sweep`).
//!
//! Sweeps the ISP capacity `µ` at the paper's §5 parameterization
//! (`p = 0.6`, `q = 1`), reparameterizing one game in place per point
//! ([`subcomp_core::game::SubsidyGame::set_mu`]) with warm-started Nash
//! solves, then re-runs the same ladder with the Theorem 6 tangent
//! predictor ([`subcomp_core::nash::WarmStart::Tangent`]) and reports the
//! corrector-sweep comparison. Prints the equilibrium series, a shape
//! check (aggregate throughput must rise with capacity), and writes
//! `results/mu_sweep.csv`.
//!
//! A degenerate equilibrium mid-ladder (a pinned provider with `u ≈ 0`,
//! where `Sensitivity::directional` refuses to differentiate) does NOT
//! abort the sweep: the continuation engine degrades that step to
//! previous-iterate seeding, the affected row is marked in the `fallback`
//! column, and the table and CSV stay complete.

use subcomp_core::game::SubsidyGame;
use subcomp_exp::report::{results_dir, sparkline, write_csv, Table};
use subcomp_exp::scenarios::section5_system;
use subcomp_exp::sweep::{Axis, ContinuationSolver, EqGrid};

fn main() {
    let (p, q) = (0.6, 1.0);
    let mus: Vec<f64> = (0..21).map(|k| 0.25 + 3.75 * k as f64 / 20.0).collect();
    let base = SubsidyGame::new(section5_system(), p, q).expect("paper parameterization is valid");
    let solver = ContinuationSolver::over(Axis::Cap, Axis::Mu);

    let grid = solver.solve_game(&base, &[q], &mus).expect("mu sweep solves");
    let tangent = solver
        .clone()
        .with_tangent(true)
        .solve_game(&base, &[q], &mus)
        .expect("tangent mu sweep solves");

    let col = |f: &dyn Fn(usize) -> f64| -> Vec<f64> { (0..mus.len()).map(f).collect() };
    let phi = col(&|c| grid.point(0, c).phi);
    let theta = col(&|c| grid.point(0, c).theta.iter().sum());
    let revenue = col(&|c| grid.point(0, c).revenue);
    let welfare = col(&|c| grid.point(0, c).welfare);
    let outlay = col(&|c| {
        let pt = grid.point(0, c);
        pt.subsidies.iter().zip(pt.theta).map(|(s, th)| s * th).sum()
    });
    // Where the tangent ladder degraded to previous-iterate seeding
    // (derivative unavailable at the preceding equilibrium): 1 = fell
    // back. All-zero on the paper's ladder; the column exists so a
    // degenerate point can never silently skew the predictor comparison.
    let fallback = col(&|c| tangent.point(0, c).tangent_fallback as u8 as f64);

    println!("mu sweep — §5 equilibrium vs ISP capacity (p = {p}, q = {q})");
    println!("  phi(mu):     {}", sparkline(&phi));
    println!("  theta(mu):   {}", sparkline(&theta));
    println!("  revenue(mu): {}", sparkline(&revenue));
    println!("  welfare(mu): {}", sparkline(&welfare));
    println!();
    let mut t =
        Table::new(&["mu", "phi", "theta", "revenue", "welfare", "outlay", "sweeps", "fallback"]);
    for (c, &mu) in mus.iter().enumerate() {
        let pt = grid.point(0, c);
        t.row(&[
            mu,
            pt.phi,
            theta[c],
            pt.revenue,
            pt.welfare,
            outlay[c],
            pt.iterations as f64,
            fallback[c],
        ]);
    }
    println!("{}", t.render());

    // Theorem 1's direction, end to end through the equilibrium response:
    // expanding the link must raise aggregate equilibrium throughput.
    let monotone = theta.windows(2).all(|w| w[1] > w[0] - 1e-9);
    println!(
        "shape check: {}",
        if monotone {
            "OK (equilibrium theta strictly increasing in mu — Theorem 1)"
        } else {
            "FAILED — equilibrium theta not increasing in mu"
        }
    );

    let report = |label: &str, g: &EqGrid| {
        println!(
            "  {label:<22} cold solves: {:>2}   total corrector sweeps: {:>4}   \
             tangent fallbacks: {:>2}",
            g.cold_solves(),
            g.total_sweeps(),
            g.tangent_fallbacks()
        );
    };
    println!("continuation engines over the same {}-point ladder:", mus.len());
    report("previous-iterate seed:", &grid);
    report("tangent predictor:", &tangent);

    let path = results_dir().join("mu_sweep.csv");
    write_csv(
        &path,
        &[
            ("mu", &mus),
            ("phi", &phi),
            ("theta", &theta),
            ("revenue", &revenue),
            ("welfare", &welfare),
            ("outlay", &outlay),
            ("fallback", &fallback),
        ],
    )
    .expect("write csv");
    println!("csv written to {}", path.display());

    if !monotone {
        std::process::exit(1);
    }
}
