//! Runs the extension experiments E1–E5
//! (run: `cargo run -p subcomp-exp --bin extensions`).
use subcomp_core::nash::NashSolver;
use subcomp_exp::extensions;

fn main() {
    let solver = NashSolver::default().with_tol(1e-7).with_max_sweeps(150);

    let e1 = extensions::endogenous_pricing(&[0.0, 0.5, 1.0, 1.5, 2.0], &solver).expect("E1");
    println!("{}", e1.render());

    let e2 = extensions::capacity_study(&[0.0, 0.5, 1.0], 0.08, &solver).expect("E2");
    println!("{}", e2.render());

    let e3 = extensions::sim_vs_theory(42).expect("E3");
    println!("{}", e3.render());

    let e4 = extensions::duopoly_study(0.5).expect("E4");
    println!("{}", e4.render());

    let e5 = extensions::continuum_study(0.5).expect("E5");
    println!("{}", e5.render());
}
